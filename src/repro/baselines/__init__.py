"""Baselines the paper compares against: DBG-PT-style plan diffing and no-RAG."""

from repro.baselines.dbgpt import DBGPTExplainer
from repro.baselines.norag import NoRagExplainer

__all__ = ["DBGPTExplainer", "NoRagExplainer"]
