"""No-RAG ablation of the paper's own method.

For the DBG-PT comparison the paper "adjusted the prompts in our method by
removing RAG-related context but retained the same plan details and any
additional user prompts".  :class:`NoRagExplainer` is exactly that: the same
prompt builder, the same question block (including the execution result), but
no retrieved knowledge.  Comparing it against the full pipeline isolates the
contribution of retrieval from the contribution of prompt engineering.
"""

from __future__ import annotations

from repro.baselines.dbgpt import BaselineExplanation
from repro.explainer.timing import LatencyProfile
from repro.htap.engines.base import EngineKind
from repro.htap.plan.serialize import plan_to_dict
from repro.htap.system import HTAPSystem, QueryExecution
from repro.llm.client import LLMClient, LLMRequest
from repro.llm.prompts import PromptBuilder, QuestionAttachment


class NoRagExplainer:
    """The paper's prompt without retrieved knowledge (ablation)."""

    def __init__(self, system: HTAPSystem, llm: LLMClient, *, prompt_builder: PromptBuilder | None = None):
        self.system = system
        self.llm = llm
        self.prompt_builder = prompt_builder or PromptBuilder(
            data_size_gb=system.catalog.database_size_bytes() / 1e9
        )

    def explain_execution(self, execution: QueryExecution, *, user_notes: str | None = None) -> BaselineExplanation:
        """Explain an executed query without any retrieved knowledge."""
        plan_pair = execution.plan_pair
        result_text = (
            f"{execution.faster_engine.value} was faster "
            f"(TP {execution.tp_result.latency_seconds:.3f}s vs "
            f"AP {execution.ap_result.latency_seconds:.3f}s)"
        )
        question = QuestionAttachment(
            sql=plan_pair.query.raw_sql,
            tp_plan=plan_to_dict(plan_pair.tp_plan),
            ap_plan=plan_to_dict(plan_pair.ap_plan),
            execution_result=result_text,
            faster_engine=execution.faster_engine,
        )
        prompt = self.prompt_builder.build(question, knowledge=[], user_notes=user_notes)
        response = self.llm.generate(LLMRequest(prompt=prompt.text, attachments=prompt.attachments()))
        winner_value = response.claims.get("winner")
        claimed_winner = EngineKind(winner_value) if winner_value in ("TP", "AP") else None
        return BaselineExplanation(
            sql=plan_pair.query.raw_sql,
            text=response.text,
            claimed_winner=claimed_winner,
            claims=dict(response.claims),
            latency=LatencyProfile(
                llm_thinking_seconds=response.thinking_seconds,
                llm_generation_seconds=response.generation_seconds,
            ),
            prompt_text=prompt.text,
        )

    def explain_sql(self, sql: str, *, user_notes: str | None = None) -> BaselineExplanation:
        return self.explain_execution(self.system.run_both(sql), user_notes=user_notes)
