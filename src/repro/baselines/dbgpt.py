"""DBG-PT-style baseline (paper Section VI-D).

DBG-PT (Giannakouris & Trummer, VLDB 2024) asks an LLM to reason about the
*structural differences* between two query plans.  The paper adapts it to the
HTAP setting by feeding it the TP and AP plans of the same query — without
any historical knowledge, expert explanation, or the new query's execution
result — and asking which engine should be faster and why.

The baseline therefore differs from the RAG pipeline in three ways:

* the prompt is built around a structural plan diff rather than retrieved
  knowledge;
* the LLM receives no execution result, so it must *infer* the winner;
* nothing grounds the answer, so the characteristic un-grounded failure
  modes (cost comparison, index misreads, storage over-emphasis, offset
  blindness) surface — these are exactly the limitations the paper lists.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.explainer.timing import LatencyProfile
from repro.htap.engines.base import EngineKind
from repro.htap.plan.diff import diff_plans
from repro.htap.plan.serialize import plan_to_dict
from repro.htap.system import HTAPSystem, PlanPair, QueryExecution
from repro.llm.client import LLMClient, LLMRequest, LLMResponse
from repro.llm.prompts import PromptBuilder, QuestionAttachment

_DBGPT_TASK = (
    "Task description: You are a query performance regression debugger. Below are the execution "
    "plans produced for the same query by two different engines, together with a summary of their "
    "structural differences. Analyse the differences and explain which engine is likely to execute "
    "the query faster and why."
)


@dataclass
class BaselineExplanation:
    """Answer produced by a baseline explainer."""

    sql: str
    text: str
    claimed_winner: EngineKind | None
    claims: dict[str, Any] = field(default_factory=dict)
    latency: LatencyProfile = field(default_factory=LatencyProfile)
    prompt_text: str = ""

    @property
    def is_none_answer(self) -> bool:
        return self.text.strip().lower() == "none"

    @property
    def cited_factors(self) -> list[str]:
        return list(self.claims.get("factors", []))


class DBGPTExplainer:
    """Plan-diff prompting without retrieval, execution results, or experts."""

    def __init__(self, system: HTAPSystem, llm: LLMClient, *, prompt_builder: PromptBuilder | None = None):
        self.system = system
        self.llm = llm
        self.prompt_builder = prompt_builder or PromptBuilder(
            data_size_gb=system.catalog.database_size_bytes() / 1e9
        )

    # ------------------------------------------------------------------ public
    def explain_sql(self, sql: str) -> BaselineExplanation:
        plan_pair = self.system.explain_pair(sql)
        return self.explain_plan_pair(plan_pair)

    def explain_execution(self, execution: QueryExecution) -> BaselineExplanation:
        """Explain from an execution record, ignoring its measured result.

        DBG-PT never sees the execution outcome; the record is accepted only
        so the baseline can be evaluated on exactly the same inputs as the
        RAG pipeline.
        """
        return self.explain_plan_pair(execution.plan_pair)

    def explain_plan_pair(self, plan_pair: PlanPair) -> BaselineExplanation:
        diff = diff_plans(plan_pair.tp_plan, plan_pair.ap_plan)
        question = QuestionAttachment(
            sql=plan_pair.query.raw_sql,
            tp_plan=plan_to_dict(plan_pair.tp_plan),
            ap_plan=plan_to_dict(plan_pair.ap_plan),
            execution_result=None,
            faster_engine=None,
        )
        prompt_text = "\n\n".join(
            [
                self.prompt_builder.background_section(),
                _DBGPT_TASK,
                "Plan differences:\n- " + "\n- ".join(diff.summary_lines()),
                self.prompt_builder.question_section(question),
            ]
        )
        request = LLMRequest(
            prompt=prompt_text,
            attachments={
                "question": question,
                "knowledge": [],
                # DBG-PT is instructed not to compare costs, but (as the paper
                # observes) un-grounded models drift back to them anyway; the
                # flag is passed through so the simulated LLM models that.
                "forbid_cost_comparison": True,
            },
        )
        response: LLMResponse = self.llm.generate(request)
        winner_value = response.claims.get("winner")
        claimed_winner = EngineKind(winner_value) if winner_value in ("TP", "AP") else None
        return BaselineExplanation(
            sql=plan_pair.query.raw_sql,
            text=response.text,
            claimed_winner=claimed_winner,
            claims=dict(response.claims),
            latency=LatencyProfile(
                llm_thinking_seconds=response.thinking_seconds,
                llm_generation_seconds=response.generation_seconds,
            ),
            prompt_text=prompt_text,
        )
