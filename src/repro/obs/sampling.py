"""Trace sampling — head probability composed with tail-based keep rules.

At high QPS "trace everything" is unaffordable and "trace nothing" is
blind exactly when it matters.  :class:`Sampler` implements the standard
production compromise:

* **Head sampling** decides once per root span, from a cheap
  deterministic hash of the request id, whether the whole trace records.
  The decision is per-trace, not per-span: a trace is kept or dropped
  whole, and because the hash is deterministic the same request id always
  samples the same way (replayable, shardable).
* **Tail-based keep rules** rescue the traces head sampling would have
  thrown away but that are exactly the ones worth keeping: traces slower
  than a latency threshold, rejected requests, and error-tagged requests.
  A head-dropped trace stays *undecided* until its root span finishes —
  the tracer suppresses its child spans (the per-trace "recording" bit,
  so an undecided trace costs near-zero beyond the root span) and hands
  the finished root to :meth:`tail_keep_reason`; a kept trace is retained
  as a partial (root-only) trace tagged ``sampled=tail_<reason>``.

The sampler also keeps its own kept/dropped accounting, surfaced by
:meth:`snapshot` (and therefore by ``Tracer.stage_snapshot`` and the
Prometheus exposition) as ``sampler.*`` counters plus a ``sampled_ratio``
gauge.
"""

from __future__ import annotations

import threading
import zlib
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs.tracing import Span

#: Tail-keep reasons, most severe first; the first matching rule wins.
TAIL_REASONS = ("error", "rejected", "slow")


def head_decision(key: str, probability: float) -> bool:
    """Deterministic keep/drop for one trace key at the given probability.

    CRC32 is stable across processes and platforms, so a request id keeps
    or drops identically wherever it is evaluated — no random source, no
    coordination.
    """
    if probability >= 1.0:
        return True
    if probability <= 0.0:
        return False
    return (zlib.crc32(key.encode("utf-8")) & 0xFFFFFFFF) / 2**32 < probability


class Sampler:
    """Head-probability + tail-keep sampling policy for one tracer."""

    def __init__(
        self,
        *,
        head_probability: float = 1.0,
        slow_threshold_seconds: float | None = None,
        keep_rejected: bool = True,
        keep_errors: bool = True,
    ):
        if not 0.0 <= head_probability <= 1.0:
            raise ValueError("head_probability must be in [0, 1]")
        if slow_threshold_seconds is not None and slow_threshold_seconds < 0:
            raise ValueError("slow_threshold_seconds must be non-negative")
        self.head_probability = head_probability
        self.slow_threshold_seconds = slow_threshold_seconds
        self.keep_rejected = keep_rejected
        self.keep_errors = keep_errors
        self._lock = threading.Lock()
        self._kept_head = 0
        self._kept_tail = {reason: 0 for reason in TAIL_REASONS}
        self._dropped = 0

    # ----------------------------------------------------------------- policy
    def sample_head(self, key: str) -> bool:
        """Whether the trace identified by ``key`` records from the start."""
        return head_decision(key, self.head_probability)

    def tail_keep_reason(self, root: "Span") -> str | None:
        """Why a head-dropped trace must be retained anyway (or ``None``).

        Consulted once, when the undecided trace's root span finishes, so
        the rules may read the root's final attributes and duration.
        """
        attributes = root.attributes
        if self.keep_errors and ("error" in attributes or attributes.get("status") == "failed"):
            return "error"
        if self.keep_rejected and attributes.get("status") == "rejected":
            return "rejected"
        if (
            self.slow_threshold_seconds is not None
            and root.duration_seconds >= self.slow_threshold_seconds
        ):
            return "slow"
        return None

    # ------------------------------------------------------------- accounting
    def record_kept(self, reason: str) -> None:
        """Count one retained trace (``reason``: ``head`` or a tail reason)."""
        with self._lock:
            if reason == "head":
                self._kept_head += 1
            else:
                self._kept_tail[reason] = self._kept_tail.get(reason, 0) + 1

    def record_dropped(self) -> None:
        with self._lock:
            self._dropped += 1

    @property
    def kept(self) -> int:
        with self._lock:
            return self._kept_head + sum(self._kept_tail.values())

    @property
    def dropped(self) -> int:
        with self._lock:
            return self._dropped

    def snapshot(self) -> dict[str, object]:
        """Counters and gauges in the metrics-snapshot dict convention.

        Integers render as Prometheus counters, floats as gauges (see
        :mod:`repro.obs.promtext`), so ``sampled_ratio`` and
        ``head_probability`` are deliberately floats.
        """
        with self._lock:
            kept = self._kept_head + sum(self._kept_tail.values())
            total = kept + self._dropped
            payload: dict[str, object] = {
                "kept": kept,
                "dropped": self._dropped,
                "kept_head": self._kept_head,
                "head_probability": float(self.head_probability),
                "sampled_ratio": (kept / total) if total else 1.0,
            }
            for reason, count in self._kept_tail.items():
                payload[f"kept_tail_{reason}"] = count
        return payload
