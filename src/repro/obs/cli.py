"""``repro-trace`` — render traces, latency breakdowns, and the admin plane.

Four subcommands:

``repro-trace demo``
    Build the quick experiment harness, serve real requests through a
    traced :class:`~repro.service.server.ExplanationService`, and print
    the slowest request's span tree, the pooled per-stage latency
    breakdown, and (with ``--promtext``) the Prometheus exposition.
    This is the self-contained "is tracing wired end to end" check.

``repro-trace show TRACES.jsonl``
    Pretty-print span trees from a JSON-lines trace log (newest first,
    ``--slowest`` to rank by duration, ``--limit`` to cap the count,
    ``--trace-id`` for one specific trace).

``repro-trace breakdown TRACES.jsonl``
    Aggregate every span in the log into a per-stage table: count,
    p50/p95/max milliseconds, and each stage's share of total traced
    time.

``repro-trace serve``
    Build the quick harness, start a traced
    :class:`~repro.service.server.ExplanationService` with the embedded
    admin HTTP server, pre-serve a few requests, and keep the endpoints
    (``/metrics``, ``/healthz``, ``/readyz``, ``/traces``, ``/slo``) up
    until interrupted.  ``--head-probability`` / ``--slow-threshold-ms``
    configure trace sampling; ``--smoke`` self-scrapes ``/metrics`` and
    ``/healthz`` once and exits nonzero on a bad or empty response —
    the CI liveness check.

Runs without installation: ``PYTHONPATH=src python -m repro.obs.cli``.
"""

from __future__ import annotations

import argparse
import sys
from typing import Any, Iterable, Sequence

from repro.bench.reporting import format_table
from repro.bench.stats import summarize
from repro.obs.jsonlog import read_traces

#: Attributes rendered inline next to each span in the tree.
_MAX_INLINE_ATTRIBUTES = 6


def _format_attributes(attributes: dict[str, Any]) -> str:
    items = list(attributes.items())[:_MAX_INLINE_ATTRIBUTES]
    rendered = " ".join(f"{key}={value}" for key, value in items)
    if len(attributes) > _MAX_INLINE_ATTRIBUTES:
        rendered += " …"
    return rendered


def render_trace_tree(trace: dict[str, Any]) -> str:
    """A nested, box-drawing span tree for one trace dict."""
    spans: list[dict[str, Any]] = list(trace.get("spans", []))
    children: dict[Any, list[dict[str, Any]]] = {}
    for span in spans:
        children.setdefault(span.get("parent_id"), []).append(span)
    for bucket in children.values():
        bucket.sort(key=lambda span: span.get("start_seconds", 0.0))

    lines = [
        f"trace {trace.get('trace_id', '?')} — "
        f"{trace.get('name', '?')} "
        f"({trace.get('duration_seconds', 0.0) * 1000.0:.3f} ms, "
        f"{len(spans)} spans)"
    ]

    def render(span: dict[str, Any], prefix: str, is_last: bool) -> None:
        connector = "└─ " if is_last else "├─ "
        duration_ms = span.get("duration_seconds", 0.0) * 1000.0
        line = f"{prefix}{connector}{span.get('name', '?')} {duration_ms:.3f} ms"
        attributes = span.get("attributes") or {}
        if attributes:
            line += f"  [{_format_attributes(attributes)}]"
        lines.append(line)
        child_prefix = prefix + ("   " if is_last else "│  ")
        kids = children.get(span.get("span_id"), [])
        for index, child in enumerate(kids):
            render(child, child_prefix, index == len(kids) - 1)

    roots = children.get(None, [])
    for index, root in enumerate(roots):
        render(root, "", index == len(roots) - 1)
    return "\n".join(lines)


def breakdown_rows(traces: Iterable[dict[str, Any]]) -> list[dict[str, Any]]:
    """Per-stage latency rows pooled over many trace dicts."""
    pooled: dict[str, list[float]] = {}
    for trace in traces:
        for span in trace.get("spans", []):
            pooled.setdefault(span.get("name", "?"), []).append(
                float(span.get("duration_seconds", 0.0))
            )
    total = sum(sum(samples) for samples in pooled.values())
    rows = []
    for name, samples in sorted(pooled.items(), key=lambda item: -sum(item[1])):
        summary = summarize(samples)
        rows.append(
            {
                "stage": name,
                "count": summary["count"],
                "p50 ms": round(summary["p50"] * 1000.0, 3),
                "p95 ms": round(summary["p95"] * 1000.0, 3),
                "max ms": round(summary["max"] * 1000.0, 3),
                "total ms": round(sum(samples) * 1000.0, 3),
                "share": f"{(sum(samples) / total * 100.0) if total else 0.0:.1f}%",
            }
        )
    return rows


# --------------------------------------------------------------------- demo
def _demo(args: argparse.Namespace) -> int:
    # Heavy imports stay local so `repro-trace show/breakdown --help` is instant.
    from repro.bench.strategies import build_harness
    from repro.obs.jsonlog import TraceLogWriter
    from repro.obs.promtext import merged_exposition
    from repro.obs.store import TraceStore
    from repro.obs.tracing import traced
    from repro.service.server import ExplanationService

    print(f"building harness (profile={args.profile}) ...", flush=True)
    harness = build_harness(args.profile)
    sqls = [labeled.sql for labeled in harness.dataset.test[: max(1, args.requests)]]
    if args.sql:
        sqls = [args.sql]

    writer = TraceLogWriter(args.jsonl) if args.jsonl else None
    store = TraceStore(max_slow=8, max_recent=max(32, len(sqls)))
    with traced(store=store, writer=writer) as tracer:
        service = ExplanationService(
            harness.system,
            harness.router,
            harness.knowledge_base,
            harness.llm,
            top_k=harness.top_k,
            max_workers=4,
        )
        try:
            for sql in sqls:
                result = service.explain(sql)
                if not result.ok:
                    print(f"request failed: {result.error}", file=sys.stderr)
                    return 1
            snapshot = service.metrics_snapshot()
        finally:
            service.shutdown()
    if writer is not None:
        writer.close()

    traces = store.slowest(1)
    if not traces:
        print("no traces recorded", file=sys.stderr)
        return 1
    print()
    print(render_trace_tree(traces[0].to_dict()))
    print()
    print(
        format_table(
            breakdown_rows(trace.to_dict() for trace in store.traces()),
            title=f"per-stage latency breakdown ({store.stats()['added']} traced requests)",
        )
    )
    if args.jsonl:
        print(f"\ntrace log written to {args.jsonl}")
    if args.promtext:
        print()
        print(merged_exposition(snapshot, tracer.stage_snapshot()), end="")
    return 0


# -------------------------------------------------------------------- serve
def _serve(args: argparse.Namespace) -> int:
    import time

    from repro.bench.strategies import build_harness
    from repro.obs.sampling import Sampler
    from repro.obs.store import TraceStore
    from repro.obs.tracing import traced
    from repro.service.server import ExplanationService

    print(f"building harness (profile={args.profile}) ...", flush=True)
    harness = build_harness(args.profile)
    sqls = [labeled.sql for labeled in harness.dataset.test[: max(1, args.requests)]]
    sampler = Sampler(
        head_probability=args.head_probability,
        slow_threshold_seconds=args.slow_threshold_ms / 1000.0,
    )
    store = TraceStore(max_slow=16, max_recent=256)
    with traced(store=store, sampler=sampler):
        service = ExplanationService(
            harness.system,
            harness.router,
            harness.knowledge_base,
            harness.llm,
            top_k=harness.top_k,
            max_workers=4,
            admin_port=args.port,
            admin_host=args.host,
        )
        try:
            admin = service.admin
            assert admin is not None
            print(f"admin endpoints at {admin.url}:")
            for endpoint in ("/metrics", "/healthz", "/readyz", "/traces", "/slo"):
                print(f"  GET {admin.url}{endpoint}")
            print(f"pre-serving {len(sqls)} traced requests ...", flush=True)
            for sql in sqls:
                result = service.explain(sql)
                if not result.ok:
                    print(f"request failed: {result.error}", file=sys.stderr)
                    return 1
            if args.smoke:
                return _smoke(admin.url)
            print("serving until Ctrl-C ...", flush=True)
            try:
                while True:
                    time.sleep(1.0)
            except KeyboardInterrupt:
                print("\nshutting down")
        finally:
            service.shutdown()
    return 0


def _smoke(base_url: str) -> int:
    """One self-scrape of /metrics and /healthz; nonzero on any problem."""
    import urllib.request

    failures = []
    for path, must_contain in (("/metrics", "repro_"), ("/healthz", '"ok": true')):
        try:
            with urllib.request.urlopen(base_url + path, timeout=10) as response:
                status = response.status
                body = response.read().decode("utf-8")
        except OSError as exc:
            failures.append(f"{path}: request failed ({exc})")
            continue
        if status != 200:
            failures.append(f"{path}: HTTP {status}")
        elif not body.strip():
            failures.append(f"{path}: empty response body")
        elif must_contain not in body:
            failures.append(f"{path}: response lacks {must_contain!r}")
        else:
            print(f"smoke OK: GET {path} -> 200, {len(body)} bytes")
    if failures:
        for failure in failures:
            print(f"smoke FAIL: {failure}", file=sys.stderr)
        return 1
    return 0


# --------------------------------------------------------------------- show
def _load(path: str) -> list[dict[str, Any]]:
    traces = list(read_traces(path))
    if not traces:
        print(f"no traces in {path}", file=sys.stderr)
    return traces


def _show(args: argparse.Namespace) -> int:
    traces = _load(args.file)
    if not traces:
        return 1
    if args.trace_id:
        traces = [trace for trace in traces if trace.get("trace_id") == args.trace_id]
        if not traces:
            print(f"trace {args.trace_id} not found in {args.file}", file=sys.stderr)
            return 1
    elif args.slowest:
        traces.sort(key=lambda trace: -float(trace.get("duration_seconds", 0.0)))
    else:
        traces.reverse()  # newest first
    for trace in traces[: args.limit]:
        print(render_trace_tree(trace))
        print()
    return 0


def _breakdown(args: argparse.Namespace) -> int:
    traces = _load(args.file)
    if not traces:
        return 1
    print(format_table(breakdown_rows(traces), title=f"per-stage latency breakdown ({len(traces)} traces)"))
    return 0


# ---------------------------------------------------------------------- main
def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-trace",
        description="Pretty-print request traces and per-stage latency breakdowns.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    demo = commands.add_parser("demo", help="serve traced requests and print the results")
    demo.add_argument("--profile", choices=("quick", "paper"), default="quick")
    demo.add_argument("--requests", type=int, default=4, help="how many test queries to serve")
    demo.add_argument("--sql", default=None, help="serve this SQL instead of test queries")
    demo.add_argument("--jsonl", default=None, help="also append traces to this JSON-lines file")
    demo.add_argument("--promtext", action="store_true", help="print the Prometheus exposition too")

    show = commands.add_parser("show", help="render span trees from a JSON-lines trace log")
    show.add_argument("file")
    show.add_argument("--trace-id", default=None, help="render one specific trace")
    show.add_argument("--slowest", action="store_true", help="rank by duration instead of recency")
    show.add_argument("--limit", type=int, default=1, help="how many traces to render")

    breakdown = commands.add_parser("breakdown", help="per-stage latency table from a trace log")
    breakdown.add_argument("file")

    serve = commands.add_parser(
        "serve", help="run a traced service with the admin HTTP endpoints"
    )
    serve.add_argument("--profile", choices=("quick", "paper"), default="quick")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=0, help="0 binds an ephemeral port")
    serve.add_argument("--requests", type=int, default=8, help="requests pre-served at startup")
    serve.add_argument(
        "--head-probability",
        type=float,
        default=1.0,
        help="head-sampling keep probability (tail rules still retain slow/rejected/error traces)",
    )
    serve.add_argument(
        "--slow-threshold-ms",
        type=float,
        default=50.0,
        help="tail-keep traces with root latency at or above this",
    )
    serve.add_argument(
        "--smoke",
        action="store_true",
        help="self-scrape /metrics and /healthz once, then exit (CI smoke)",
    )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "demo":
        return _demo(args)
    if args.command == "show":
        return _show(args)
    if args.command == "serve":
        return _serve(args)
    return _breakdown(args)


if __name__ == "__main__":
    sys.exit(main())
