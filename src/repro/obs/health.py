"""Typed health checks for the admin endpoints.

``/healthz`` (liveness) and ``/readyz`` (readiness) should never be a
bare 200/500: an operator paging at 3am needs to know *which* check
failed.  A :class:`HealthReport` is a tuple of named, typed
:class:`HealthCheck` results — the HTTP layer maps ``report.ok`` to the
status code and serializes the full report as the JSON body, so the
failing check (worker pool dead, queue saturated, …) is always in the
response.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable


@dataclass(frozen=True)
class HealthCheck:
    """One named check: passed or failed, with a human-readable detail."""

    name: str
    ok: bool
    detail: str = ""

    def to_dict(self) -> dict[str, Any]:
        return {"name": self.name, "ok": self.ok, "detail": self.detail}


@dataclass(frozen=True)
class HealthReport:
    """The outcome of a set of checks; healthy only if every check passed."""

    checks: tuple[HealthCheck, ...]

    @property
    def ok(self) -> bool:
        return all(check.ok for check in self.checks)

    @property
    def failing(self) -> tuple[HealthCheck, ...]:
        return tuple(check for check in self.checks if not check.ok)

    def to_dict(self) -> dict[str, Any]:
        return {
            "ok": self.ok,
            "checks": [check.to_dict() for check in self.checks],
        }


def report(checks: Iterable[HealthCheck]) -> HealthReport:
    """Assemble a :class:`HealthReport` from any iterable of checks."""
    return HealthReport(checks=tuple(checks))
