"""Bounded in-memory retention of finished traces.

Keeping every trace of a high-traffic service would be an unbounded
memory leak, but keeping none makes "why was that request slow" forever
unanswerable.  :class:`TraceStore` splits the difference the way
production tracing back-ends do:

* a **slow-trace exemplar heap** — the N slowest full traces ever seen
  (min-heap keyed by root duration, so a new trace only displaces the
  least-slow exemplar);
* a **recent-trace ring** — the last M traces regardless of speed, which
  is what gives percentile-ish visibility into the ordinary case.

Both sides hold complete traces (every span, every attribute), so a
retained trace can always be rendered as a full tree by ``repro-trace``.
"""

from __future__ import annotations

import heapq
import itertools
import threading
from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Iterable

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs.tracing import Span


@dataclass
class Trace:
    """One finished request: the root span plus every descendant."""

    trace_id: str
    root: "Span"
    spans: list["Span"] = field(default_factory=list)

    @property
    def duration_seconds(self) -> float:
        return self.root.duration_seconds

    @property
    def name(self) -> str:
        return self.root.name

    def __len__(self) -> int:
        return len(self.spans)

    def span_names(self) -> list[str]:
        return [span.name for span in self.spans]

    def find(self, name: str) -> list["Span"]:
        """Every span in the trace with the given name."""
        return [span for span in self.spans if span.name == name]

    def children_of(self, span_id: str | None) -> list["Span"]:
        """Direct children of ``span_id`` ordered by start time."""
        children = [span for span in self.spans if span.parent_id == span_id]
        children.sort(key=lambda span: span.start_seconds)
        return children

    def to_dict(self) -> dict[str, Any]:
        """The JSON-lines export shape (one object per trace)."""
        return {
            "trace_id": self.trace_id,
            "name": self.name,
            "duration_seconds": self.duration_seconds,
            "span_count": len(self.spans),
            "spans": [span.to_dict() for span in self.spans],
        }


class TraceStore:
    """Thread-safe bounded trace retention (slow exemplars + recent ring)."""

    def __init__(self, *, max_slow: int = 16, max_recent: int = 128):
        if max_slow < 0:
            raise ValueError("max_slow must be non-negative")
        if max_recent < 1:
            raise ValueError("max_recent must be at least 1")
        self.max_slow = max_slow
        self.max_recent = max_recent
        self._lock = threading.Lock()
        # Min-heap of (duration, tiebreak, trace); the top is the least-slow
        # exemplar and is displaced first.
        self._slow: list[tuple[float, int, Trace]] = []
        self._recent: "deque[Trace]" = deque(maxlen=max_recent)
        self._tiebreak = itertools.count()
        self._added = 0

    # ------------------------------------------------------------------ write
    def add(self, trace: Trace) -> None:
        with self._lock:
            self._added += 1
            self._recent.append(trace)
            if self.max_slow == 0:
                return
            item = (trace.duration_seconds, next(self._tiebreak), trace)
            if len(self._slow) < self.max_slow:
                heapq.heappush(self._slow, item)
            elif trace.duration_seconds > self._slow[0][0]:
                heapq.heapreplace(self._slow, item)

    def clear(self) -> None:
        with self._lock:
            self._slow.clear()
            self._recent.clear()

    # ------------------------------------------------------------------- read
    def slowest(self, n: int | None = None) -> list[Trace]:
        """The retained slow-trace exemplars, slowest first."""
        with self._lock:
            ordered = sorted(self._slow, key=lambda item: item[0], reverse=True)
        traces = [trace for _duration, _tiebreak, trace in ordered]
        return traces if n is None else traces[:n]

    def recent(self, n: int | None = None) -> list[Trace]:
        """The most recent traces, newest first."""
        with self._lock:
            traces = list(self._recent)
        traces.reverse()
        return traces if n is None else traces[:n]

    def get(self, trace_id: str) -> Trace | None:
        """A retained trace by id, or ``None`` if it aged out."""
        with self._lock:
            for trace in self._recent:
                if trace.trace_id == trace_id:
                    return trace
            for _duration, _tiebreak, trace in self._slow:
                if trace.trace_id == trace_id:
                    return trace
        return None

    def traces(self) -> list[Trace]:
        """Every distinct retained trace (recent ∪ slow), newest first."""
        seen: set[str] = set()
        combined: list[Trace] = []
        for trace in itertools.chain(self.recent(), self.slowest()):
            if trace.trace_id not in seen:
                seen.add(trace.trace_id)
                combined.append(trace)
        return combined

    def __len__(self) -> int:
        return len(self.traces())

    # ------------------------------------------------------------------ stats
    def stats(self) -> dict[str, int]:
        """Retention accounting: traces seen, retained, and both capacities.

        ``retained`` counts *distinct* traces (a slow exemplar usually also
        sits in the recent ring until it ages out).  This dict is what the
        admin server's ``/traces`` view and the tracer's Prometheus
        exposition surface, so a scraper can watch churn (``added``) and
        saturation (sizes vs. capacities) without pulling trace bodies.
        """
        with self._lock:
            distinct = {trace.trace_id for trace in self._recent}
            distinct.update(trace.trace_id for _d, _t, trace in self._slow)
            return {
                "added": self._added,
                "retained": len(distinct),
                "slow_retained": len(self._slow),
                "recent_retained": len(self._recent),
                "max_slow": self.max_slow,
                "max_recent": self.max_recent,
            }


def stage_durations(traces: Iterable[Trace]) -> dict[str, list[float]]:
    """Pool per-span durations by span name across many traces.

    This is the aggregation behind both ``repro-trace breakdown`` and the
    ``stage_breakdown`` bench suite.
    """
    pooled: dict[str, list[float]] = {}
    for trace in traces:
        for span in trace.spans:
            pooled.setdefault(span.name, []).append(span.duration_seconds)
    return pooled
