"""repro.obs — tracing, sampling, retention, exposition, and the admin plane.

The observability layer for the serving system: request-scoped
:class:`Span` trees with monotonic-clock timing and ``contextvars``
propagation (:mod:`repro.obs.tracing`), head+tail trace sampling
(:mod:`repro.obs.sampling`), bounded slow-trace retention
(:mod:`repro.obs.store`), a JSON-lines trace log
(:mod:`repro.obs.jsonlog`), a Prometheus-style text exposition
(:mod:`repro.obs.promtext`), typed health checks
(:mod:`repro.obs.health`), SLO burn-rate tracking (:mod:`repro.obs.slo`),
an embeddable asyncio admin HTTP server (:mod:`repro.obs.server`), and
the ``repro-trace`` CLI (:mod:`repro.obs.cli`).

Tracing is **off by default** and free when off; enable it for a scope
with::

    from repro.obs import Sampler, traced

    with traced(sampler=Sampler(head_probability=0.01,
                                slow_threshold_seconds=0.2)) as tracer:
        service.explain(sql)
    print(tracer.store.slowest(1)[0].span_names())
"""

from repro.obs.health import HealthCheck, HealthReport
from repro.obs.jsonlog import TraceLogWriter, read_traces
from repro.obs.promtext import (
    escape_label_value,
    merged_exposition,
    metric_name,
    render_prometheus,
)
from repro.obs.sampling import Sampler
from repro.obs.server import AdminServer
from repro.obs.slo import (
    ErrorRateObjective,
    LatencyObjective,
    SLOTracker,
    default_service_objectives,
)
from repro.obs.store import Trace, TraceStore, stage_durations
from repro.obs.tracing import (
    NULL_SPAN,
    Span,
    Tracer,
    get_tracer,
    set_tracer,
    traced,
)

__all__ = [
    "NULL_SPAN",
    "AdminServer",
    "ErrorRateObjective",
    "HealthCheck",
    "HealthReport",
    "LatencyObjective",
    "SLOTracker",
    "Sampler",
    "Span",
    "Trace",
    "TraceLogWriter",
    "TraceStore",
    "Tracer",
    "default_service_objectives",
    "escape_label_value",
    "get_tracer",
    "merged_exposition",
    "metric_name",
    "read_traces",
    "render_prometheus",
    "set_tracer",
    "stage_durations",
    "traced",
]
