"""repro.obs — tracing, trace retention, and metric exposition.

The observability layer for the serving system: request-scoped
:class:`Span` trees with monotonic-clock timing and ``contextvars``
propagation (:mod:`repro.obs.tracing`), bounded slow-trace retention
(:mod:`repro.obs.store`), a JSON-lines trace log
(:mod:`repro.obs.jsonlog`), a Prometheus-style text exposition
(:mod:`repro.obs.promtext`), and the ``repro-trace`` CLI
(:mod:`repro.obs.cli`).

Tracing is **off by default** and free when off; enable it for a scope
with::

    from repro.obs import traced

    with traced() as tracer:
        service.explain(sql)
    print(tracer.store.slowest(1)[0].span_names())
"""

from repro.obs.jsonlog import TraceLogWriter, read_traces
from repro.obs.promtext import merged_exposition, render_prometheus
from repro.obs.store import Trace, TraceStore, stage_durations
from repro.obs.tracing import (
    NULL_SPAN,
    Span,
    Tracer,
    get_tracer,
    set_tracer,
    traced,
)

__all__ = [
    "NULL_SPAN",
    "Span",
    "Trace",
    "TraceLogWriter",
    "TraceStore",
    "Tracer",
    "get_tracer",
    "merged_exposition",
    "read_traces",
    "render_prometheus",
    "set_tracer",
    "stage_durations",
    "traced",
]
