"""Span/Tracer — monotonic-clock request tracing with context propagation.

The design goals, in priority order:

1. **Zero cost when disabled.**  Every instrumentation point in the
   request path calls ``get_tracer().span(...)``; with tracing off (the
   default) that is one attribute check returning a shared no-op
   :data:`NULL_SPAN`, so the serving hot path pays nothing measurable.
2. **Spans survive thread hops.**  The current span lives in a
   :mod:`contextvars` ``ContextVar``.  Synchronous nesting propagates
   automatically; the two places the serving layer crosses threads — the
   worker pool and the micro-batching scheduler — re-parent explicitly:
   the pool worker re-enters the root span with :meth:`Tracer.attach`,
   and the batcher captures :meth:`Tracer.current_span` at submit time
   and replays it through :meth:`Tracer.record_span` at flush time.
3. **Child-only instrumentation.**  Library spans (router, knowledge
   base, LLM, caches) only record when a trace is already open — a bare
   ``router.route()`` call outside a served request does not spawn a
   one-span trace.  Roots are explicit: the service opens one per
   request with ``root=True``.

On every span finish the tracer also feeds a per-stage latency histogram
(``stage.<name>``) in its own :class:`MetricsRegistry`, which is what the
Prometheus exposition (:mod:`repro.obs.promtext`) and the
``stage_breakdown`` bench suite read.
"""

from __future__ import annotations

import itertools
import threading
import time
from contextvars import ContextVar
from typing import TYPE_CHECKING, Any, Callable

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs.sampling import Sampler
    from repro.obs.store import TraceStore
    from repro.service.metrics import MetricsRegistry


#: The active span for the calling execution context (thread / task).
_CURRENT: "ContextVar[Span | None]" = ContextVar("repro_obs_current_span", default=None)

_TRACE_IDS = itertools.count(1)
_SPAN_IDS = itertools.count(1)


class Span:
    """One timed operation inside a trace.

    Usable as a context manager (enters the context-propagation slot so
    nested ``tracer.span(...)`` calls parent under it) or manually via
    :meth:`end` when the span crosses threads (the service's root span).
    """

    __slots__ = (
        "name",
        "trace_id",
        "span_id",
        "parent_id",
        "start_seconds",
        "end_seconds",
        "attributes",
        "recording",
        "_tracer",
        "_token",
    )

    #: Real spans record; :data:`NULL_SPAN` overrides this with ``False``.
    enabled = True

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        trace_id: str,
        span_id: str,
        parent_id: str | None,
        start_seconds: float,
        attributes: dict[str, Any],
        recording: bool = True,
    ):
        self._tracer = tracer
        self.name = name
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.start_seconds = start_seconds
        self.end_seconds: float | None = None
        self.attributes = attributes
        #: Per-trace sampling bit: a head-dropped root keeps timing itself
        #: (the stage histogram and tail-keep rules need the duration) but
        #: spawns no child spans, so an unsampled trace costs near-zero
        #: beyond its root.
        self.recording = recording
        self._token = None

    # ----------------------------------------------------------- properties
    @property
    def finished(self) -> bool:
        return self.end_seconds is not None

    @property
    def duration_seconds(self) -> float:
        """Wall-clock duration; 0.0 while the span is still open."""
        if self.end_seconds is None:
            return 0.0
        return self.end_seconds - self.start_seconds

    @property
    def is_root(self) -> bool:
        return self.parent_id is None

    # ------------------------------------------------------------ recording
    def set_attribute(self, key: str, value: Any) -> "Span":
        self.attributes[key] = value
        return self

    def set_attributes(self, **attributes: Any) -> "Span":
        self.attributes.update(attributes)
        return self

    def end(self) -> None:
        """Finish the span (idempotent); roots finalize their trace."""
        self._tracer._finish(self)

    # ------------------------------------------------------ context manager
    def __enter__(self) -> "Span":
        self._token = _CURRENT.set(self)
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        if self._token is not None:
            _CURRENT.reset(self._token)
            self._token = None
        if exc_type is not None and "error" not in self.attributes:
            self.attributes["error"] = exc_type.__name__
        self.end()

    # --------------------------------------------------------------- export
    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start_seconds": self.start_seconds,
            "duration_seconds": self.duration_seconds,
            "attributes": dict(self.attributes),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Span({self.name!r}, id={self.span_id}, parent={self.parent_id})"


class _NullSpan:
    """Shared no-op span returned whenever tracing must not record."""

    __slots__ = ()

    enabled = False
    recording = False
    name = ""
    trace_id = ""
    span_id = ""
    parent_id = None
    start_seconds = 0.0
    end_seconds = 0.0
    finished = True
    duration_seconds = 0.0
    is_root = False

    @property
    def attributes(self) -> dict[str, Any]:
        return {}

    def set_attribute(self, key: str, value: Any) -> "_NullSpan":
        return self

    def set_attributes(self, **attributes: Any) -> "_NullSpan":
        return self

    def end(self) -> None:
        return None

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        return None

    def to_dict(self) -> dict[str, Any]:
        return {}

    def __bool__(self) -> bool:
        return False


NULL_SPAN = _NullSpan()


class _Attached:
    """Context manager installing a span as the current one (thread hop)."""

    __slots__ = ("_span", "_token")

    def __init__(self, span: Span):
        self._span = span
        self._token = None

    def __enter__(self) -> Span:
        self._token = _CURRENT.set(self._span)
        return self._span

    def __exit__(self, *exc_info: Any) -> None:
        if self._token is not None:
            _CURRENT.reset(self._token)
            self._token = None


class _NullAttached:
    __slots__ = ()

    def __enter__(self) -> _NullSpan:
        return NULL_SPAN

    def __exit__(self, *exc_info: Any) -> None:
        return None


_NULL_ATTACHED = _NullAttached()


class Tracer:
    """Creates spans, assembles finished traces, feeds stage histograms.

    A disabled tracer (the process-global default) hands out
    :data:`NULL_SPAN` for everything.  An enabled tracer keeps the spans
    of each live trace in a bounded per-trace buffer; when the root span
    finishes, the whole trace goes to the :class:`TraceStore` and, if
    configured, the JSON-lines writer.
    """

    def __init__(
        self,
        *,
        enabled: bool = False,
        store: "TraceStore | None" = None,
        writer: Any = None,
        metrics: "MetricsRegistry | None" = None,
        sampler: "Sampler | None" = None,
        max_spans_per_trace: int = 512,
        clock: Callable[[], float] = time.perf_counter,
    ):
        if max_spans_per_trace < 1:
            raise ValueError("max_spans_per_trace must be at least 1")
        # Local imports keep this module import-light: instrumented
        # low-level modules (htap, router, knowledge) import
        # repro.obs.tracing at load time, and an eager import of
        # repro.service.metrics here would drag in repro.bench (whose
        # package __init__ imports the harness and, transitively, those
        # same low-level modules) while they are still initializing.
        from repro.obs.store import TraceStore
        from repro.service.metrics import MetricsRegistry

        self._enabled = enabled
        self.store = store if store is not None else TraceStore()
        #: Anything with ``write(trace)`` — normally a TraceLogWriter.
        self.writer = writer
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        #: ``None`` means "record every trace" (the pre-sampling behaviour).
        self.sampler = sampler
        self.max_spans_per_trace = max_spans_per_trace
        self._clock = clock
        self._lock = threading.Lock()
        self._live: dict[str, list[Span]] = {}

    # ----------------------------------------------------------- lifecycle
    @property
    def enabled(self) -> bool:
        return self._enabled

    def enable(self) -> None:
        self._enabled = True

    def disable(self) -> None:
        self._enabled = False

    # -------------------------------------------------------------- spans
    def span(self, name: str, *, parent: "Span | None" = None, root: bool = False, **attributes: Any):
        """A span to use as a context manager.

        Without ``root=True`` this is *child-only*: if there is no parent
        (explicit or ambient), nothing is recorded — instrumented library
        code cannot accidentally open a new trace.
        """
        return self.start_span(name, parent=parent, root=root, **attributes)

    def start_span(
        self,
        name: str,
        *,
        parent: "Span | None" = None,
        root: bool = False,
        **attributes: Any,
    ):
        """Start a span; callers must :meth:`Span.end` it (or use ``with``)."""
        if not self._enabled:
            return NULL_SPAN
        if root:
            parent_span: Span | None = None
        else:
            parent_span = parent if parent is not None else _CURRENT.get()
            if parent_span is not None and not parent_span.enabled:
                parent_span = None
            if parent_span is None:
                return NULL_SPAN
            # Children of a head-dropped (undecided) trace are suppressed:
            # the trace either dies at root-finish or is tail-kept as a
            # partial (root-only) trace, so recording them would be waste.
            if not parent_span.recording:
                return NULL_SPAN
        now = self._clock()
        recording = True
        if parent_span is None:
            trace_id = f"t-{next(_TRACE_IDS):08d}"
            parent_id = None
            if self.sampler is not None:
                # Head decision, once per trace, on the request id when the
                # caller supplied one (deterministic across processes) or
                # the trace id otherwise.
                key = attributes.get("request_id")
                recording = self.sampler.sample_head(str(key) if key is not None else trace_id)
            if recording:
                with self._lock:
                    self._live[trace_id] = []
        else:
            trace_id = parent_span.trace_id
            parent_id = parent_span.span_id
        return Span(
            self,
            name,
            trace_id,
            f"s-{next(_SPAN_IDS):08d}",
            parent_id,
            now,
            dict(attributes),
            recording,
        )

    def record_span(
        self,
        name: str,
        *,
        parent: "Span | None",
        start_seconds: float,
        end_seconds: float,
        **attributes: Any,
    ):
        """Record an already-timed span (used by the micro-batch flush,
        where the work ran on the scheduler thread against a parent that
        was captured on the submitting thread)."""
        if not self._enabled or parent is None or not parent.enabled or not parent.recording:
            return NULL_SPAN
        span = Span(
            self,
            name,
            parent.trace_id,
            f"s-{next(_SPAN_IDS):08d}",
            parent.span_id,
            start_seconds,
            dict(attributes),
        )
        self._finish(span, end_seconds=end_seconds)
        return span

    # -------------------------------------------------------- propagation
    def current_span(self):
        """The ambient span for this execution context (or the null span)."""
        span = _CURRENT.get()
        return span if span is not None else NULL_SPAN

    def attach(self, span: "Span | None"):
        """Install ``span`` as the ambient parent on *this* thread.

        The serving worker pool uses this to re-parent everything it does
        under the root span that was opened on the submitting thread.
        """
        if span is None or not span.enabled:
            return _NULL_ATTACHED
        return _Attached(span)

    # ----------------------------------------------------------- internals
    def _finish(self, span: Span, *, end_seconds: float | None = None) -> None:
        if span.end_seconds is not None:  # idempotent
            return
        span.end_seconds = self._clock() if end_seconds is None else end_seconds
        self.metrics.histogram(f"stage.{span.name}").record(span.duration_seconds)
        if span.parent_id is None and not span.recording:
            self._finish_undecided_root(span)
            return
        completed: list[Span] | None = None
        with self._lock:
            buffer = self._live.get(span.trace_id)
            if buffer is not None:
                if len(buffer) < self.max_spans_per_trace:
                    buffer.append(span)
                else:
                    self.metrics.counter("tracer.spans_dropped").increment()
                if span.parent_id is None:
                    completed = self._live.pop(span.trace_id)
        if completed is not None:
            from repro.obs.store import Trace

            if self.sampler is not None:
                span.attributes.setdefault("sampled", "head")
                self.sampler.record_kept("head")
            trace = Trace(trace_id=span.trace_id, root=span, spans=completed)
            self.metrics.counter("tracer.traces").increment()
            self.store.add(trace)
            if self.writer is not None:
                self.writer.write(trace)

    def _finish_undecided_root(self, span: Span) -> None:
        """Tail decision for a head-dropped trace, at root-finish.

        The undecided trace was buffered as just its root span; the tail
        rules may still retain it (slow / rejected / error) as a partial
        trace, otherwise the whole trace vanishes and only the sampler's
        ``dropped`` counter remembers it.
        """
        sampler = self.sampler
        reason = sampler.tail_keep_reason(span) if sampler is not None else None
        if reason is None:
            if sampler is not None:
                sampler.record_dropped()
            return
        span.attributes.setdefault("sampled", f"tail_{reason}")
        span.attributes.setdefault("sampled_partial", True)
        from repro.obs.store import Trace

        trace = Trace(trace_id=span.trace_id, root=span, spans=[span])
        self.metrics.counter("tracer.traces").increment()
        sampler.record_kept(reason)
        self.store.add(trace)
        if self.writer is not None:
            self.writer.write(trace)

    # --------------------------------------------------------------- export
    def stage_snapshot(self) -> dict[str, object]:
        """Per-stage histograms, tracer counters, retention and sampling stats.

        Everything a scraper needs from the tracing side in one dict:
        the ``stage.*`` histograms, the ``tracer.*`` counters (always
        present, even at zero, so dashboards can rely on them), the
        :class:`TraceStore` retention stats as ``store.*`` (sizes are
        floats so they render as gauges, not counters), and the sampler's
        kept/dropped accounting under ``sampler.*``.
        """
        payload = self.metrics.snapshot()
        payload.setdefault("tracer.traces", 0)
        payload.setdefault("tracer.spans_dropped", 0)
        stats = self.store.stats()
        payload["store"] = {
            "traces_seen": stats["added"],
            "traces_retained": float(stats["retained"]),
            "slow_heap_size": float(stats["slow_retained"]),
            "recent_ring_size": float(stats["recent_retained"]),
            "slow_heap_capacity": float(stats["max_slow"]),
            "recent_ring_capacity": float(stats["max_recent"]),
        }
        if self.sampler is not None:
            payload["sampler"] = self.sampler.snapshot()
        return payload


# ---------------------------------------------------------------- process-global
# Constructed lazily on first use, not at import time: Tracer.__init__
# imports repro.service.metrics, and building one while a low-level
# instrumented module is still mid-import would re-enter that module
# through the repro.bench package __init__.
_GLOBAL_TRACER: Tracer | None = None
_GLOBAL_LOCK = threading.Lock()


def get_tracer() -> Tracer:
    """The process-global tracer every instrumentation point reads."""
    global _GLOBAL_TRACER
    tracer = _GLOBAL_TRACER
    if tracer is None:
        with _GLOBAL_LOCK:
            tracer = _GLOBAL_TRACER
            if tracer is None:
                tracer = _GLOBAL_TRACER = Tracer(enabled=False)
    return tracer


def set_tracer(tracer: Tracer) -> Tracer:
    """Install ``tracer`` as the process-global one; returns the previous."""
    global _GLOBAL_TRACER
    with _GLOBAL_LOCK:
        previous = _GLOBAL_TRACER
        if previous is None:
            previous = Tracer(enabled=False)
        _GLOBAL_TRACER = tracer
    return previous


class _TracingSession:
    """Context manager from :func:`traced`: installs, then restores."""

    def __init__(self, tracer: Tracer):
        self.tracer = tracer
        self._previous: Tracer | None = None

    def __enter__(self) -> Tracer:
        self._previous = set_tracer(self.tracer)
        return self.tracer

    def __exit__(self, *exc_info: Any) -> None:
        if self._previous is not None:
            set_tracer(self._previous)
            self._previous = None


def traced(tracer: Tracer | None = None, **tracer_kwargs: Any) -> _TracingSession:
    """Temporarily install an **enabled** tracer as the process-global one.

    ``with traced() as tracer: ...`` is the one-liner the examples, the
    ``stage_breakdown`` bench suite, and the tests use; keyword arguments
    are forwarded to :class:`Tracer` when no instance is given.
    """
    if tracer is None:
        tracer = Tracer(enabled=True, **tracer_kwargs)
    return _TracingSession(tracer)
