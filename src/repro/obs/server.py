"""AdminServer — stdlib-asyncio HTTP endpoints for live observability.

A small embeddable admin plane with zero dependencies beyond the standard
library.  It serves:

=====================  ========================================================
``GET /``              endpoint index (JSON)
``GET /metrics``       Prometheus text 0.0.4 exposition of every registered
                       snapshot provider, plus SLO gauges
``GET /healthz``       liveness — typed :class:`~repro.obs.health.HealthReport`
                       JSON, 200/503
``GET /readyz``        readiness — same shape, stricter checks
``GET /traces``        retained-trace summaries + store stats (``?limit=N``)
``GET /traces/<id>``   one full trace as its span-tree JSON
``GET /slo``           objectives, windowed SLI values, burn rates (JSON)
=====================  ========================================================

The server owns a daemon thread running its own event loop, so it embeds
cleanly in the thread-based serving stack: ``start()`` blocks until the
socket is bound (``port=0`` picks an ephemeral port, exposed as
``server.port``), ``stop()`` tears the loop down.  Handlers are
deliberately synchronous inside the loop — every provider is a quick
snapshot call — and each connection is one request/response
(``Connection: close``), which is all a scraper needs.

It is wired up for you by ``ExplanationService`` when
``ServiceConfig(admin_port=...)`` is set, or standalone via
``repro-trace serve``.
"""

from __future__ import annotations

import asyncio
import json
import threading
from typing import TYPE_CHECKING, Any, Callable, Mapping, Sequence
from urllib.parse import parse_qs, urlsplit

from repro.obs.promtext import merged_exposition

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs.health import HealthReport
    from repro.obs.slo import SLOTracker
    from repro.obs.store import Trace, TraceStore

#: Content type of the Prometheus text exposition format 0.0.4.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"
JSON_CONTENT_TYPE = "application/json; charset=utf-8"

_REASONS = {
    200: "OK",
    404: "Not Found",
    405: "Method Not Allowed",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


def _trace_summary(trace: "Trace") -> dict[str, Any]:
    attributes = trace.root.attributes
    return {
        "trace_id": trace.trace_id,
        "name": trace.name,
        "duration_ms": round(trace.duration_seconds * 1000.0, 3),
        "span_count": len(trace.spans),
        "status": attributes.get("status"),
        "rejected_reason": attributes.get("rejected_reason"),
        "sampled": attributes.get("sampled"),
        "partial": bool(attributes.get("sampled_partial", False)),
    }


class AdminServer:
    """Embeddable asyncio HTTP server for the observability endpoints."""

    def __init__(
        self,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        snapshot_providers: Sequence[Callable[[], Mapping[str, Any]]] = (),
        health: "Callable[[], HealthReport] | None" = None,
        ready: "Callable[[], HealthReport] | None" = None,
        store_provider: "Callable[[], TraceStore | None] | None" = None,
        slo: "SLOTracker | None" = None,
        namespace: str = "repro",
    ):
        self.host = host
        #: Requested port; replaced by the bound port after :meth:`start`.
        self.port = port
        self.snapshot_providers = tuple(snapshot_providers)
        self.health = health
        self.ready = ready
        self.store_provider = store_provider
        self.slo = slo
        self.namespace = namespace
        self._loop: asyncio.AbstractEventLoop | None = None
        self._server: asyncio.base_events.Server | None = None
        self._thread: threading.Thread | None = None
        self._started = threading.Event()
        self._startup_error: BaseException | None = None

    # -------------------------------------------------------------- lifecycle
    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def start(self, timeout: float = 5.0) -> "AdminServer":
        """Bind the socket and serve from a daemon thread; returns self."""
        if self.running:
            raise RuntimeError("admin server is already running")
        self._started.clear()
        self._startup_error = None
        self._thread = threading.Thread(
            target=self._run_loop, name="obs-admin-http", daemon=True
        )
        self._thread.start()
        if not self._started.wait(timeout):
            raise RuntimeError("admin server did not start in time")
        if self._startup_error is not None:
            error = self._startup_error
            self._thread.join(timeout)
            self._thread = None
            raise RuntimeError(f"admin server failed to bind {self.host}:{self.port}") from error
        return self

    def stop(self, timeout: float = 5.0) -> None:
        """Stop serving and join the loop thread (idempotent)."""
        loop, thread = self._loop, self._thread
        if loop is not None and thread is not None and thread.is_alive():
            loop.call_soon_threadsafe(loop.stop)
            thread.join(timeout)
        self._loop = None
        self._server = None
        self._thread = None

    def __enter__(self) -> "AdminServer":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()

    def _run_loop(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        try:
            server = loop.run_until_complete(
                asyncio.start_server(self._handle, self.host, self.port)
            )
        except BaseException as exc:  # bind failure (port in use, bad host)
            self._startup_error = exc
            self._started.set()
            loop.close()
            return
        self._loop = loop
        self._server = server
        self.port = server.sockets[0].getsockname()[1]
        self._started.set()
        try:
            loop.run_forever()
        finally:
            server.close()
            loop.run_until_complete(server.wait_closed())
            loop.close()

    # ------------------------------------------------------------------- HTTP
    async def _handle(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> None:
        try:
            request_line = await asyncio.wait_for(reader.readline(), timeout=10.0)
            parts = request_line.decode("latin-1").split()
            if len(parts) < 2:
                return
            method, target = parts[0], parts[1]
            # Drain headers; this server needs none of them.
            while True:
                line = await asyncio.wait_for(reader.readline(), timeout=10.0)
                if line in (b"\r\n", b"\n", b""):
                    break
            try:
                status, content_type, body = self._route(method, target)
            except Exception as exc:  # noqa: BLE001 - always answer the scraper
                status, content_type, body = (
                    500,
                    JSON_CONTENT_TYPE,
                    json.dumps({"error": f"{type(exc).__name__}: {exc}"}),
                )
            payload = body.encode("utf-8")
            reason = _REASONS.get(status, "Unknown")
            head = (
                f"HTTP/1.1 {status} {reason}\r\n"
                f"Content-Type: {content_type}\r\n"
                f"Content-Length: {len(payload)}\r\n"
                "Connection: close\r\n"
                "\r\n"
            )
            writer.write(head.encode("latin-1") + payload)
            await writer.drain()
        except (asyncio.TimeoutError, ConnectionError):
            pass
        finally:
            writer.close()

    # ---------------------------------------------------------------- routing
    def _route(self, method: str, target: str) -> tuple[int, str, str]:
        split = urlsplit(target)
        path = split.path.rstrip("/") or "/"
        query = parse_qs(split.query)
        if method != "GET":
            return 405, JSON_CONTENT_TYPE, json.dumps({"error": f"method {method} not allowed"})
        if path == "/":
            return 200, JSON_CONTENT_TYPE, json.dumps(
                {"endpoints": ["/metrics", "/healthz", "/readyz", "/traces", "/traces/<trace_id>", "/slo"]}
            )
        if path == "/metrics":
            return 200, PROMETHEUS_CONTENT_TYPE, self._metrics_text()
        if path == "/healthz":
            return self._health_response(self.health)
        if path == "/readyz":
            return self._health_response(self.ready or self.health)
        if path == "/traces":
            return self._traces_response(query)
        if path.startswith("/traces/"):
            return self._trace_response(path[len("/traces/"):])
        if path == "/slo":
            return self._slo_response()
        return 404, JSON_CONTENT_TYPE, json.dumps({"error": f"no such endpoint: {path}"})

    def _merged_snapshot(self) -> dict[str, Any]:
        merged: dict[str, Any] = {}
        for provider in self.snapshot_providers:
            merged.update(provider())
        return merged

    def _metrics_text(self) -> str:
        snapshots: list[Mapping[str, Any]] = [self._merged_snapshot()]
        if self.slo is not None:
            # Scrape-driven sampling: every /metrics hit is also an SLO
            # observation, so burn rates track the scrape cadence.
            snapshots.append(self.slo.snapshot(snapshots[0]))
        return merged_exposition(*snapshots, namespace=self.namespace)

    def _health_response(
        self, provider: "Callable[[], HealthReport] | None"
    ) -> tuple[int, str, str]:
        if provider is None:
            return 200, JSON_CONTENT_TYPE, json.dumps({"ok": True, "checks": []})
        report = provider()
        return (
            200 if report.ok else 503,
            JSON_CONTENT_TYPE,
            json.dumps(report.to_dict()),
        )

    def _store(self) -> "TraceStore | None":
        return self.store_provider() if self.store_provider is not None else None

    def _traces_response(self, query: Mapping[str, list[str]]) -> tuple[int, str, str]:
        store = self._store()
        if store is None:
            return 404, JSON_CONTENT_TYPE, json.dumps({"error": "no trace store attached"})
        try:
            limit = max(1, int(query.get("limit", ["50"])[0]))
        except ValueError:
            limit = 50
        body = {
            "stats": store.stats(),
            "slowest": [_trace_summary(trace) for trace in store.slowest(limit)],
            "recent": [_trace_summary(trace) for trace in store.recent(limit)],
        }
        return 200, JSON_CONTENT_TYPE, json.dumps(body)

    def _trace_response(self, trace_id: str) -> tuple[int, str, str]:
        store = self._store()
        if store is None:
            return 404, JSON_CONTENT_TYPE, json.dumps({"error": "no trace store attached"})
        trace = store.get(trace_id)
        if trace is None:
            return 404, JSON_CONTENT_TYPE, json.dumps({"error": f"trace {trace_id} not retained"})
        return 200, JSON_CONTENT_TYPE, json.dumps(trace.to_dict(), default=str)

    def _slo_response(self) -> tuple[int, str, str]:
        if self.slo is None:
            return 404, JSON_CONTENT_TYPE, json.dumps({"error": "no SLO tracker attached"})
        evaluation = self.slo.evaluate(self._merged_snapshot())
        return 200, JSON_CONTENT_TYPE, json.dumps(evaluation, default=str)
