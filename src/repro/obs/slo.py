"""SLO objectives and multi-window burn-rate tracking.

Declarative service-level objectives evaluated against the plain-dict
snapshots the serving layer already exports
(:meth:`repro.service.server.ExplanationService.metrics_snapshot` merged
with :meth:`repro.obs.tracing.Tracer.stage_snapshot`):

* :class:`LatencyObjective` — a quantile of a latency histogram must stay
  at or under a threshold (e.g. p95 of ``stage.service.explain`` ≤ 500 ms);
* :class:`ErrorRateObjective` — the bad fraction of traffic (failed /
  shed / deadline-exceeded over submitted) must stay at or under a target
  budget.

:class:`SLOTracker` is scrape-driven: each :meth:`~SLOTracker.observe`
appends a timestamped sample extracted from a snapshot, and
:meth:`~SLOTracker.evaluate` computes, per objective and per sliding
window, the windowed SLI value and its **burn rate** — how fast the error
budget is being consumed, where 1.0 means "exactly on budget" and larger
means faster.  Multi-window evaluation is the standard paging pattern: a
short window catches a sharp regression quickly, a long window catches a
slow leak, and alerting on both avoids paging on blips.

Counter-shaped SLIs (error rates) are computed from windowed *deltas* of
the cumulative counters, so a long-running process does not drag history
into the current window.  Latency quantiles come from the histogram's
ring window, which is already recent-biased; within a window the worst
observed quantile is used (pessimistic, the right bias for an SLO).

:meth:`~SLOTracker.snapshot` renders the evaluation as float gauges under
the ``slo`` key, which the Prometheus exposition turns into
``repro_slo_*`` series.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Mapping, Union


@dataclass(frozen=True)
class LatencyObjective:
    """A latency quantile of one histogram must stay ≤ a threshold."""

    name: str
    #: Snapshot key of a histogram summary (e.g. ``stage.service.explain``).
    metric: str
    threshold_seconds: float
    quantile: str = "p95"

    def __post_init__(self) -> None:
        if self.threshold_seconds <= 0:
            raise ValueError("threshold_seconds must be positive")


@dataclass(frozen=True)
class ErrorRateObjective:
    """The bad fraction of traffic must stay ≤ a target budget."""

    name: str
    #: Counter keys summed into the traffic denominator.
    total: tuple[str, ...]
    #: Counter keys summed into the bad-event numerator.
    bad: tuple[str, ...]
    #: Maximum tolerated bad fraction (the error budget), e.g. 0.01.
    target: float

    def __post_init__(self) -> None:
        if not 0.0 < self.target <= 1.0:
            raise ValueError("target must be in (0, 1]")


Objective = Union[LatencyObjective, ErrorRateObjective]


def default_service_objectives() -> tuple[Objective, ...]:
    """The objectives :class:`ExplanationService` tracks out of the box."""
    return (
        LatencyObjective(
            name="request_latency",
            metric="stage.service.explain",
            threshold_seconds=0.5,
            quantile="p95",
        ),
        ErrorRateObjective(
            name="availability",
            total=("requests.submitted",),
            bad=(
                "requests.failed",
                "requests.shed",
                "requests.deadline_exceeded",
                "requests.rejected_closed",
            ),
            target=0.01,
        ),
    )


def _counter_sum(snapshot: Mapping[str, Any], keys: tuple[str, ...]) -> float:
    total = 0.0
    for key in keys:
        value = snapshot.get(key, 0)
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            continue
        total += float(value)
    return total


def _quantile_value(snapshot: Mapping[str, Any], metric: str, quantile: str) -> float | None:
    summary = snapshot.get(metric)
    if isinstance(summary, Mapping) and quantile in summary:
        return float(summary[quantile])
    return None


def _window_label(window_seconds: float) -> str:
    return f"{int(window_seconds)}s"


class SLOTracker:
    """Sliding-window SLO evaluation over a stream of metrics snapshots."""

    def __init__(
        self,
        objectives: tuple[Objective, ...] | None = None,
        *,
        windows: tuple[float, ...] = (60.0, 300.0, 1800.0),
        max_samples: int = 4096,
        clock: Callable[[], float] = time.monotonic,
    ):
        if not windows or any(window <= 0 for window in windows):
            raise ValueError("windows must be non-empty positive durations")
        self.objectives = objectives if objectives is not None else default_service_objectives()
        self.windows = tuple(sorted(windows))
        self._clock = clock
        self._lock = threading.Lock()
        self._samples: "deque[dict[str, Any]]" = deque(maxlen=max_samples)

    # ------------------------------------------------------------------ write
    def observe(self, snapshot: Mapping[str, Any]) -> None:
        """Extract and retain this instant's SLI inputs from a snapshot."""
        now = self._clock()
        sample: dict[str, Any] = {"t": now}
        for objective in self.objectives:
            if isinstance(objective, ErrorRateObjective):
                sample[f"total.{objective.name}"] = _counter_sum(snapshot, objective.total)
                sample[f"bad.{objective.name}"] = _counter_sum(snapshot, objective.bad)
            else:
                sample[f"lat.{objective.name}"] = _quantile_value(
                    snapshot, objective.metric, objective.quantile
                )
        horizon = now - 2 * self.windows[-1]
        with self._lock:
            self._samples.append(sample)
            while self._samples and self._samples[0]["t"] < horizon:
                self._samples.popleft()

    # ------------------------------------------------------------------- read
    def evaluate(self, snapshot: Mapping[str, Any] | None = None) -> dict[str, Any]:
        """Per-objective, per-window SLI values and burn rates.

        Passing a snapshot observes it first (the scrape-driven pattern:
        every ``/slo`` request is also a sample).
        """
        if snapshot is not None:
            self.observe(snapshot)
        with self._lock:
            samples = list(self._samples)
        now = self._clock()
        objectives: list[dict[str, Any]] = []
        worst_burn = 0.0
        for objective in self.objectives:
            if isinstance(objective, ErrorRateObjective):
                entry = self._evaluate_error_rate(objective, samples, now)
            else:
                entry = self._evaluate_latency(objective, samples, now)
            for window in entry["windows"].values():
                worst_burn = max(worst_burn, window["burn_rate"])
            objectives.append(entry)
        return {
            "samples": len(samples),
            "windows_seconds": list(self.windows),
            "worst_burn_rate": worst_burn,
            "objectives": objectives,
        }

    def _window_samples(
        self, samples: list[dict[str, Any]], now: float, window: float
    ) -> list[dict[str, Any]]:
        cutoff = now - window
        return [sample for sample in samples if sample["t"] >= cutoff]

    def _evaluate_error_rate(
        self, objective: ErrorRateObjective, samples: list[dict[str, Any]], now: float
    ) -> dict[str, Any]:
        total_key, bad_key = f"total.{objective.name}", f"bad.{objective.name}"
        latest = samples[-1] if samples else None
        cumulative_total = latest[total_key] if latest else 0.0
        cumulative_bad = latest[bad_key] if latest else 0.0
        value = (cumulative_bad / cumulative_total) if cumulative_total > 0 else 0.0
        windows: dict[str, dict[str, float]] = {}
        for window in self.windows:
            in_window = self._window_samples(samples, now, window)
            if len(in_window) >= 2:
                delta_total = in_window[-1][total_key] - in_window[0][total_key]
                delta_bad = in_window[-1][bad_key] - in_window[0][bad_key]
                rate = (delta_bad / delta_total) if delta_total > 0 else 0.0
            else:
                rate = value  # too few samples for a delta; fall back to cumulative
            windows[_window_label(window)] = {
                "value": rate,
                "burn_rate": rate / objective.target,
            }
        return {
            "name": objective.name,
            "kind": "error_rate",
            "target": objective.target,
            "value": value,
            "met": value <= objective.target,
            "windows": windows,
        }

    def _evaluate_latency(
        self, objective: LatencyObjective, samples: list[dict[str, Any]], now: float
    ) -> dict[str, Any]:
        key = f"lat.{objective.name}"
        observed = [sample[key] for sample in samples if sample.get(key) is not None]
        value = observed[-1] if observed else 0.0
        windows: dict[str, dict[str, float]] = {}
        for window in self.windows:
            in_window = [
                sample[key]
                for sample in self._window_samples(samples, now, window)
                if sample.get(key) is not None
            ]
            worst = max(in_window) if in_window else value
            windows[_window_label(window)] = {
                "value": worst,
                "burn_rate": worst / objective.threshold_seconds,
            }
        return {
            "name": objective.name,
            "kind": "latency",
            "target": objective.threshold_seconds,
            "quantile": objective.quantile,
            "value": value,
            "met": value <= objective.threshold_seconds,
            "windows": windows,
        }

    # ------------------------------------------------------------- exposition
    def snapshot(self, snapshot: Mapping[str, Any] | None = None) -> dict[str, Any]:
        """The evaluation as float gauges for the Prometheus exposition.

        Everything is a float on purpose — :mod:`repro.obs.promtext`
        renders floats as gauges, and every ``slo`` value (including the
        0/1 ``met`` flag) is a level, not a monotone count.
        """
        evaluation = self.evaluate(snapshot)
        gauges: dict[str, Any] = {"worst_burn_rate": float(evaluation["worst_burn_rate"])}
        for entry in evaluation["objectives"]:
            per_objective: dict[str, float] = {
                "value": float(entry["value"]),
                "target": float(entry["target"]),
                "met": 1.0 if entry["met"] else 0.0,
            }
            for label, window in entry["windows"].items():
                per_objective[f"burn_rate_{label}"] = float(window["burn_rate"])
            gauges[entry["name"]] = per_objective
        return {"slo": gauges}
