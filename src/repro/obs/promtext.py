"""Prometheus-style text exposition of metrics snapshots.

Renders the plain-dict contract of
:meth:`repro.service.metrics.MetricsRegistry.snapshot` (and the service's
richer :meth:`~repro.service.server.ExplanationService.metrics_snapshot`,
and the tracer's per-stage histograms) into the Prometheus text format
version 0.0.4 — the format every scraper, ``curl`` invocation, and
``promtool check metrics`` understands:

* integer scalars become ``counter`` samples (every scalar the registry
  exports is a monotonically increasing count);
* float scalars become ``gauge`` samples;
* histogram summaries (dicts carrying ``count`` and ``p50``) become
  ``summary`` families — ``{quantile="0.5"}`` samples plus ``_count`` and
  ``_sum`` — with ``min``/``max``/``mean`` exported as sibling gauges;
* nested dicts flatten into underscore-joined metric names
  (``cache.explanations.hit_rate`` → ``repro_cache_explanations_hit_rate``).

There is no HTTP server here on purpose: the exposition is a pure
function of a snapshot, so it can be dumped to a file, served by any web
layer, or asserted on in tests.
"""

from __future__ import annotations

import re
from typing import Any, Mapping

#: Quantile-label mapping for the summary keys the registry exports.
_QUANTILE_KEYS = (("p50", "0.5"), ("p95", "0.95"), ("p99", "0.99"))

#: Summary keys re-exported as sibling gauges rather than quantiles.
_SIDE_GAUGES = ("min", "max", "mean")

_INVALID_CHARS = re.compile(r"[^a-zA-Z0-9_:]")
_LEADING_DIGIT = re.compile(r"^[0-9]")

#: Grammar of one exposition line, per the text format 0.0.4 spec —
#: either a ``# TYPE`` comment or a sample with optional labels and a
#: float/int/±Inf/NaN value.  Exported so conformance tests (and any
#: embedding web layer) can validate every emitted line.
METRIC_LINE = re.compile(
    r"^(?:"
    r"# TYPE [a-zA-Z_:][a-zA-Z0-9_:]* (?:counter|gauge|summary|histogram|untyped)"
    r"|"
    r'[a-zA-Z_:][a-zA-Z0-9_:]*(?:\{[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\\n]|\\\\|\\"|\\n)*"'
    r'(?:,[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\\n]|\\\\|\\"|\\n)*")*\})?'
    r" (?:[+-]?(?:[0-9]*\.?[0-9]+(?:[eE][+-]?[0-9]+)?|Inf)|NaN)"
    r")$"
)


def metric_name(*parts: str, namespace: str = "repro") -> str:
    """Join snapshot path parts into a valid Prometheus metric name."""
    joined = "_".join(part for part in (namespace, *parts) if part)
    sanitized = _INVALID_CHARS.sub("_", joined.replace(".", "_"))
    if _LEADING_DIGIT.match(sanitized):
        sanitized = "_" + sanitized
    return sanitized or "_"


def escape_label_value(value: Any) -> str:
    """Escape a label value per the text format 0.0.4 spec.

    Backslash, double-quote, and newline are the three characters the
    spec requires escaping inside a quoted label value; everything else
    passes through verbatim.
    """
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def render_sample(name: str, labels: "Mapping[str, Any] | None", value: float) -> str:
    """One sample line: ``name{label="escaped value",...} value``."""
    if labels:
        rendered = ",".join(
            f'{_INVALID_CHARS.sub("_", str(key))}="{escape_label_value(label_value)}"'
            for key, label_value in labels.items()
        )
        return f"{name}{{{rendered}}} {_format_value(value)}"
    return f"{name} {_format_value(value)}"


def _format_value(value: float) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


def _is_summary(value: Mapping[str, Any]) -> bool:
    return "count" in value and "p50" in value


def _render_summary(name: str, summary: Mapping[str, Any], lines: list[str]) -> None:
    lines.append(f"# TYPE {name} summary")
    for key, quantile in _QUANTILE_KEYS:
        if key in summary:
            lines.append(render_sample(name, {"quantile": quantile}, summary[key]))
    lines.append(f"{name}_count {_format_value(summary.get('count', 0))}")
    if "sum" in summary:
        lines.append(f"{name}_sum {_format_value(summary['sum'])}")
    for key in _SIDE_GAUGES:
        if key in summary:
            side = f"{name}_{key}"
            lines.append(f"# TYPE {side} gauge")
            lines.append(f"{side} {_format_value(summary[key])}")


def _render(prefix: tuple[str, ...], value: Any, namespace: str, lines: list[str]) -> None:
    if isinstance(value, Mapping):
        if _is_summary(value):
            _render_summary(metric_name(*prefix, namespace=namespace), value, lines)
            return
        for key in sorted(value):
            _render(prefix + (str(key),), value[key], namespace, lines)
        return
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        return  # non-numeric leaves (labels, strings) are not exposable
    name = metric_name(*prefix, namespace=namespace)
    kind = "gauge" if isinstance(value, float) else "counter"
    lines.append(f"# TYPE {name} {kind}")
    lines.append(f"{name} {_format_value(value)}")


def render_prometheus(snapshot: Mapping[str, Any], *, namespace: str = "repro") -> str:
    """The Prometheus text exposition of one metrics snapshot."""
    lines: list[str] = []
    _render((), snapshot, namespace, lines)
    return "\n".join(lines) + "\n"


def merged_exposition(*snapshots: Mapping[str, Any], namespace: str = "repro") -> str:
    """Render several snapshots (service metrics + tracer stages) as one page.

    Later snapshots win on key collisions, mirroring ``dict.update``.
    """
    merged: dict[str, Any] = {}
    for snapshot in snapshots:
        merged.update(snapshot)
    return render_prometheus(merged, namespace=namespace)
