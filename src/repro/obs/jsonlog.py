"""Structured JSON-lines trace log.

One JSON object per finished trace, appended to a file (or any file-like
object), flushed per write so a crash loses at most the in-flight trace.
Attribute values that are not JSON-native are stringified rather than
dropped — a trace log that throws on an enum attribute is worse than one
with ``"EngineKind.TP"`` in it.

Reading back is :func:`read_traces`, which tolerates a truncated final
line (the crash case) and is what ``repro-trace show``/``breakdown``
consume.
"""

from __future__ import annotations

import json
import threading
from pathlib import Path
from typing import IO, TYPE_CHECKING, Any, Iterator

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs.store import Trace


class TraceLogWriter:
    """Append-only JSON-lines sink for finished traces."""

    def __init__(self, target: str | Path | IO[str]):
        self._lock = threading.Lock()
        if isinstance(target, (str, Path)):
            self._path: Path | None = Path(target)
            self._stream: IO[str] | None = None
        else:
            self._path = None
            self._stream = target

    def _handle(self) -> IO[str]:
        if self._stream is None:
            assert self._path is not None
            self._path.parent.mkdir(parents=True, exist_ok=True)
            self._stream = open(self._path, "a", encoding="utf-8")
        return self._stream

    def write(self, trace: "Trace") -> None:
        line = json.dumps(trace.to_dict(), default=str, separators=(",", ":"))
        with self._lock:
            handle = self._handle()
            handle.write(line + "\n")
            handle.flush()

    def close(self) -> None:
        with self._lock:
            if self._stream is not None and self._path is not None:
                self._stream.close()
                self._stream = None

    def __enter__(self) -> "TraceLogWriter":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


def read_traces(path: str | Path) -> Iterator[dict[str, Any]]:
    """Yield trace dicts from a JSON-lines log, skipping a torn last line."""
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                payload = json.loads(line)
            except json.JSONDecodeError:
                continue  # torn write at crash/kill time
            if isinstance(payload, dict) and "spans" in payload:
                yield payload
