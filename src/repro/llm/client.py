"""LLM client interface.

Any language model — a hosted API (Doubao, ChatGPT, Claude, Llama behind a
gateway) or the offline :class:`~repro.llm.simulated.SimulatedLLM` — is used
through the same tiny interface: build an :class:`LLMRequest`, call
:meth:`LLMClient.generate`, get an :class:`LLMResponse` with the text and the
thinking/generation timings the latency benchmark needs.

``LLMRequest.attachments`` carries the *structured* form of the prompt
(retrieved knowledge entries and the question's plan pair).  Hosted clients
ignore it — they only see ``prompt`` — but the offline simulator consumes it
instead of re-parsing its own prompt text; this is part of the documented
LLM substitution (see DESIGN.md).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Any

from repro.obs.tracing import get_tracer

#: Sentinel text returned when the model decides the retrieved knowledge does
#: not contain the facts needed to answer (paper: "return None").
NONE_ANSWER = "None"


@dataclass
class LLMRequest:
    """A single generation request."""

    prompt: str
    #: Structured view of the prompt for offline simulation (see module docstring).
    attachments: dict[str, Any] = field(default_factory=dict)
    #: Soft cap on the answer length, in words (hosted models map it to tokens).
    max_words: int = 220
    #: Sampling temperature; the simulator maps it onto its stochastic choices.
    temperature: float = 0.2


@dataclass
class LLMResponse:
    """A generation result with latency accounting."""

    text: str
    thinking_seconds: float
    generation_seconds: float
    model_name: str
    #: Structured claims made by the answer (factors cited, winner claimed).
    #: Populated by the simulator so the evaluation panel can grade without
    #: natural-language parsing; empty for hosted models.
    claims: dict[str, Any] = field(default_factory=dict)

    @property
    def total_seconds(self) -> float:
        return self.thinking_seconds + self.generation_seconds

    @property
    def is_none_answer(self) -> bool:
        return self.text.strip().lower() == NONE_ANSWER.lower()


class LLMClient(abc.ABC):
    """Minimal interface every language-model backend implements."""

    name: str = "llm"

    @abc.abstractmethod
    def generate(self, request: LLMRequest) -> LLMResponse:
        """Produce a response for ``request``."""

    def generate_traced(self, request: LLMRequest) -> LLMResponse:
        """:meth:`generate` inside an ``llm.generate`` span.

        The span is a no-op unless a request trace is open, so backends
        stay free to call plain :meth:`generate` from anywhere.
        """
        with get_tracer().span("llm.generate", model=self.name) as span:
            response = self.generate(request)
            span.set_attributes(
                model=response.model_name,
                none_answer=response.is_none_answer,
            )
            return response

    def generate_text(self, prompt: str) -> str:
        """Convenience wrapper returning only the text."""
        return self.generate(LLMRequest(prompt=prompt)).text
