"""LLM substrate: client interface, prompt engineering, and the offline simulator.

The paper uses pre-trained public LLMs (Doubao, ChatGPT-4.0) behind a simple
"send prompt, receive explanation" interface.  This subpackage defines that
interface (:class:`~repro.llm.client.LLMClient`), the structured prompts of
the paper's Table I (:mod:`repro.llm.prompts`), and an offline
:class:`~repro.llm.simulated.SimulatedLLM` that reproduces the behavioural
properties the paper attributes to grounded vs un-grounded LLMs — including
the characteristic failure modes of the un-grounded baseline.
"""

from repro.llm.client import LLMClient, LLMRequest, LLMResponse
from repro.llm.prompts import (
    PromptBuilder,
    PromptPayload,
    KnowledgeAttachment,
    QuestionAttachment,
)
from repro.llm.simulated import SimulatedLLM

__all__ = [
    "LLMClient",
    "LLMRequest",
    "LLMResponse",
    "PromptBuilder",
    "PromptPayload",
    "KnowledgeAttachment",
    "QuestionAttachment",
    "SimulatedLLM",
]
