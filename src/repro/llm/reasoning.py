"""Structural plan-pair reasoning used by the simulated LLM.

A language model asked to explain a TP/AP performance difference reasons
over what it can see: the SQL text, the two plan trees, and (when provided)
retrieved historical knowledge.  This module implements the *structural*
part of that reasoning — extracting signals from the plan pair, deciding
whether a candidate explanation factor is consistent with those signals, and
producing a best-effort hypothesis when no grounded knowledge applies.

The same signals are used two ways:

* the grounded path checks each retrieved expert explanation's factors
  against the question's signals before adopting them (so irrelevant
  retrievals are rejected rather than parroted);
* the un-grounded path (no-RAG ablation, DBG-PT baseline) has only these
  signals plus its characteristic biases.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.htap.engines.base import EngineKind
from repro.htap.plan.nodes import NodeType
from repro.htap.plan.properties import PlanProperties, analyze_plan
from repro.htap.plan.serialize import plan_from_dict
from repro.workloads.labeling import ExplanationFactor

#: SQL functions that, applied to a column, defeat a B+-tree index on it.
_INDEX_DEFEATING_FUNCTIONS = ("substring(", "upper(", "lower(", "abs(", "cast(")

#: Scanned-row threshold separating "small" from "large" queries in the
#: structural signals (mirrors the labeler's threshold).
_SMALL_ROWS = 100_000


@dataclass
class StructuralSignals:
    """What the plan pair and SQL text reveal without historical knowledge."""

    tp_properties: PlanProperties
    ap_properties: PlanProperties
    tp_uses_nested_loop: bool
    tp_uses_index: bool
    tp_index_ordered: bool
    ap_uses_hash_join: bool
    has_aggregation: bool
    has_top_n: bool
    offset_rows: int
    limit_rows: int | None
    sql_wraps_column_in_function: bool
    tp_scanned_rows: float
    ap_scanned_rows: float
    tp_total_cost: float
    ap_total_cost: float

    @property
    def is_small_query(self) -> bool:
        return self.tp_scanned_rows <= _SMALL_ROWS

    @property
    def is_large_scan(self) -> bool:
        return self.tp_scanned_rows > 10 * _SMALL_ROWS


def extract_signals(sql: str, tp_plan_dict: dict[str, Any], ap_plan_dict: dict[str, Any]) -> StructuralSignals:
    """Compute :class:`StructuralSignals` from the QUESTION attachment."""
    tp_plan = plan_from_dict(tp_plan_dict)
    ap_plan = plan_from_dict(ap_plan_dict)
    tp_properties = analyze_plan(tp_plan)
    ap_properties = analyze_plan(ap_plan)

    offset_rows = 0
    limit_rows: int | None = None
    for plan in (tp_plan, ap_plan):
        for node in plan.walk():
            if node.node_type in (NodeType.TOP_N_SORT, NodeType.LIMIT):
                if "Offset" in node.extra:
                    offset_rows = max(offset_rows, int(float(node.extra["Offset"])))
                if "Limit" in node.extra:
                    limit_rows = int(float(node.extra["Limit"]))
                if node.node_type == NodeType.LIMIT and node.predicate:
                    # "LIMIT 10 OFFSET 1000" formatted predicates
                    parts = node.predicate.replace("LIMIT", "").replace("OFFSET", "").split()
                    if parts and limit_rows is None:
                        limit_rows = int(parts[0])
                    if len(parts) > 1:
                        offset_rows = max(offset_rows, int(parts[1]))

    lowered_sql = sql.lower()
    wraps_function = any(function in lowered_sql for function in _INDEX_DEFEATING_FUNCTIONS)
    tp_index_ordered = any(node.extra.get("Ordered") for node in tp_plan.walk())

    return StructuralSignals(
        tp_properties=tp_properties,
        ap_properties=ap_properties,
        tp_uses_nested_loop=tp_properties.uses_nested_loop,
        tp_uses_index=tp_properties.uses_index,
        tp_index_ordered=tp_index_ordered,
        ap_uses_hash_join=ap_properties.uses_hash_join,
        has_aggregation=bool(tp_properties.aggregate_methods or ap_properties.aggregate_methods),
        has_top_n=tp_properties.has_top_n or ap_properties.has_top_n or tp_properties.has_limit,
        offset_rows=offset_rows,
        limit_rows=limit_rows,
        sql_wraps_column_in_function=wraps_function,
        tp_scanned_rows=tp_properties.total_scanned_rows,
        ap_scanned_rows=ap_properties.total_scanned_rows,
        tp_total_cost=tp_properties.estimated_output_rows,  # placeholder, replaced below
        ap_total_cost=ap_properties.estimated_output_rows,
    )


def extract_signals_with_costs(
    sql: str, tp_plan_dict: dict[str, Any], ap_plan_dict: dict[str, Any]
) -> StructuralSignals:
    """Like :func:`extract_signals` but also records the root cost estimates.

    Kept separate so the cost figures are only available to reasoning paths
    that are *allowed* to look at them (the cost-comparison bias of the
    un-grounded baseline).
    """
    signals = extract_signals(sql, tp_plan_dict, ap_plan_dict)
    signals.tp_total_cost = float(tp_plan_dict.get("Total Cost", 0.0))
    signals.ap_total_cost = float(ap_plan_dict.get("Total Cost", 0.0))
    return signals


def factor_applies(factor_value: str, signals: StructuralSignals) -> bool:
    """Is ``factor_value`` structurally consistent with the question's plans?

    Used by the grounded path to decide whether a retrieved expert
    explanation transfers to the new query.
    """
    try:
        factor = ExplanationFactor(factor_value)
    except ValueError:
        return False
    if factor is ExplanationFactor.HASH_JOIN_VS_NESTED_LOOP:
        return signals.tp_uses_nested_loop and signals.ap_uses_hash_join
    if factor is ExplanationFactor.NO_USABLE_INDEX:
        return not signals.tp_uses_index
    if factor is ExplanationFactor.INDEX_DEFEATED_BY_FUNCTION:
        return signals.sql_wraps_column_in_function
    if factor is ExplanationFactor.COLUMNAR_PARALLEL_SCAN:
        return signals.is_large_scan and not signals.tp_uses_index
    if factor is ExplanationFactor.AGGREGATION_EFFICIENCY:
        return signals.has_aggregation and signals.is_large_scan
    if factor is ExplanationFactor.FULL_SORT_REQUIRED:
        return signals.has_top_n and not signals.tp_index_ordered
    if factor is ExplanationFactor.LARGE_OFFSET_PENALTY:
        return signals.offset_rows >= 1_000
    if factor is ExplanationFactor.SELECTIVE_INDEX_ACCESS:
        return signals.tp_uses_index and signals.is_small_query
    if factor is ExplanationFactor.INDEX_PROVIDES_ORDER:
        return signals.tp_index_ordered and signals.has_top_n
    if factor is ExplanationFactor.SMALL_QUERY_OVERHEAD:
        return signals.is_small_query or signals.tp_uses_index
    if factor is ExplanationFactor.SMALL_DATA_VOLUME:
        return signals.is_small_query
    return False


def hypothesize_factors(signals: StructuralSignals, winner: EngineKind) -> list[str]:
    """Best-effort factor hypothesis from structure alone (no retrieval).

    Returns factor values ordered by how strongly the signals support them,
    restricted to factors that argue for ``winner``.
    """
    candidates: list[tuple[float, ExplanationFactor]] = []
    if winner is EngineKind.AP:
        if signals.tp_uses_nested_loop and signals.ap_uses_hash_join:
            candidates.append((0.9, ExplanationFactor.HASH_JOIN_VS_NESTED_LOOP))
            if not signals.tp_uses_index:
                candidates.append((0.7, ExplanationFactor.NO_USABLE_INDEX))
        if signals.sql_wraps_column_in_function:
            candidates.append((0.6, ExplanationFactor.INDEX_DEFEATED_BY_FUNCTION))
        if signals.has_top_n and not signals.tp_index_ordered:
            candidates.append((0.75, ExplanationFactor.FULL_SORT_REQUIRED))
        if signals.offset_rows >= 1_000:
            candidates.append((0.5, ExplanationFactor.LARGE_OFFSET_PENALTY))
        if signals.has_aggregation and signals.is_large_scan:
            candidates.append((0.65, ExplanationFactor.AGGREGATION_EFFICIENCY))
        if signals.is_large_scan and not signals.tp_uses_index:
            candidates.append((0.55, ExplanationFactor.COLUMNAR_PARALLEL_SCAN))
    else:
        if signals.tp_index_ordered and signals.has_top_n:
            candidates.append((0.9, ExplanationFactor.INDEX_PROVIDES_ORDER))
        if signals.tp_uses_index and signals.is_small_query:
            candidates.append((0.85, ExplanationFactor.SELECTIVE_INDEX_ACCESS))
        if signals.is_small_query:
            candidates.append((0.6, ExplanationFactor.SMALL_QUERY_OVERHEAD))
            candidates.append((0.4, ExplanationFactor.SMALL_DATA_VOLUME))
        if signals.tp_uses_index:
            candidates.append((0.5, ExplanationFactor.SMALL_QUERY_OVERHEAD))
    candidates.sort(key=lambda item: item[0], reverse=True)
    ordered: list[str] = []
    for _score, factor in candidates:
        if factor.value not in ordered:
            ordered.append(factor.value)
    return ordered
