"""SimulatedLLM — the offline stand-in for Doubao / ChatGPT-4.0.

The paper's experiments need a language model that (a) produces fluent
explanations from a structured prompt, (b) becomes markedly more accurate
when grounded with retrieved expert knowledge, and (c) exhibits the
characteristic failure modes of un-grounded LLM reasoning over query plans
(Section VI-D): comparing incomparable cost estimates, misreading index
usage under functions, over-emphasising storage format, and ignoring the
magnitude of LIMIT/OFFSET values.

This class reproduces those behaviours deterministically (seeded per query)
behind the standard :class:`~repro.llm.client.LLMClient` interface, so the
explainer pipeline, the baselines, and the benchmarks are agnostic to
whether a hosted model or the simulator is plugged in.  Latencies are
*modelled*, not slept: the response carries realistic thinking (< 2 s) and
generation (≈ 10 s) times without slowing the experiments down.
"""

from __future__ import annotations

import hashlib
import random

from repro.htap.engines.base import EngineKind
from repro.llm.client import NONE_ANSWER, LLMClient, LLMRequest, LLMResponse
from repro.llm.prompts import KnowledgeAttachment, QuestionAttachment
from repro.llm.reasoning import (
    StructuralSignals,
    extract_signals_with_costs,
    factor_applies,
    hypothesize_factors,
)
from repro.workloads.labeling import ExplanationFactor

#: Verbose explanation sentences per factor, in the style of the paper's
#: Table III "our approach" output.
_FACTOR_SENTENCES = {
    ExplanationFactor.HASH_JOIN_VS_NESTED_LOOP: (
        "{winner} is faster largely due to its use of hash joins, which are highly efficient for "
        "joining large inputs, while {loser} falls back to nested loop joins that repeatedly probe "
        "the inner relation."
    ),
    ExplanationFactor.NO_USABLE_INDEX: (
        "Because no usable index is available for the filter or join columns, {loser} has to read "
        "the tables row by row instead of narrowing the work with index lookups."
    ),
    ExplanationFactor.INDEX_DEFEATED_BY_FUNCTION: (
        "Note that applying a function such as SUBSTRING directly to an indexed column prevents "
        "the index from being used, so the predicate cannot benefit from it."
    ),
    ExplanationFactor.COLUMNAR_PARALLEL_SCAN: (
        "{winner}'s column-oriented storage lets it scan only the referenced columns in parallel "
        "and apply filters before joining, which is particularly effective for large tables."
    ),
    ExplanationFactor.AGGREGATION_EFFICIENCY: (
        "{winner}'s vectorised hash aggregation also processes the aggregate over millions of rows "
        "far more efficiently than {loser}'s row-at-a-time group aggregate."
    ),
    ExplanationFactor.FULL_SORT_REQUIRED: (
        "Since the ordering column has no index, the top rows can only be produced after processing "
        "the entire input, which {winner} does with a parallel top-N sort while {loser} must sort "
        "on a single node."
    ),
    ExplanationFactor.LARGE_OFFSET_PENALTY: (
        "The large OFFSET additionally forces many rows to be produced and discarded before the "
        "limit, which is much more costly for {loser}'s row-at-a-time execution."
    ),
    ExplanationFactor.SELECTIVE_INDEX_ACCESS: (
        "{winner} answers the query with a handful of selective B+-tree index lookups, touching only "
        "a tiny fraction of the table, while {loser} must scan far more data to find the same rows."
    ),
    ExplanationFactor.INDEX_PROVIDES_ORDER: (
        "{winner} can read rows directly in the requested order from an index and stop after the "
        "first matching rows, whereas {loser} has to materialise and sort the input before applying "
        "the limit."
    ),
    ExplanationFactor.SMALL_QUERY_OVERHEAD: (
        "The query touches very little data, so {loser}'s fixed scheduling and fragment start-up "
        "overhead dominates its runtime while {winner} finishes almost immediately."
    ),
    ExplanationFactor.SMALL_DATA_VOLUME: (
        "The referenced tables are tiny, so {winner}'s simple row access completes before {loser}'s "
        "distributed execution gets going."
    ),
}

_STORAGE_SENTENCE = (
    "{winner} benefits from column-oriented storage that reads only the required columns, whereas "
    "{loser} uses row-oriented storage and retrieves entire rows."
)
_COST_SENTENCE = (
    "The {winner} plan also shows a lower optimizer cost estimate than the {loser} plan, which "
    "suggests it is the cheaper plan."
)
_INDEX_MISREAD_SENTENCE = (
    "Both engines likely benefit from the index on the filtered column, but {winner} can combine it "
    "with its storage layout more effectively."
)


class SimulatedLLM(LLMClient):
    """Deterministic, offline plan-explanation language model.

    Parameters
    ----------
    seed:
        Global seed; each request derives a per-query generator from it, so
        experiments are reproducible yet queries behave independently.
    model_name:
        Reported model name (defaults to ``simulated-doubao``; the paper found
        minimal accuracy differences between Doubao and ChatGPT-4.0).
    grounded_slip_rate:
        Probability that a grounded answer drifts into an imprecise variant
        (extra weak factor, or missing the primary factor) — models the
        paper's "9 % less precise than expert interpretations".
    single_source_slip_rate / single_source_none_rate / corroborated_none_rate:
        Confidence model for grounding: with only one applicable retrieved
        reference the model slips or abstains (answers ``None``) more often
        than when several retrieved references corroborate each other.  This
        reproduces the paper's retrieval-K sweep, where K=1 drops accuracy to
        ~85 % and raises the None rate to ~8 % while K=2..5 stay at 89–91 %.
    fallback_none_rate:
        Probability of answering ``None`` when no retrieved knowledge applies.
    cost_bias_rate:
        Probability that the un-grounded path leans on cost comparison even
        when the prompt forbids it (the DBG-PT failure mode).
    index_misread_rate:
        Probability that the un-grounded path claims index benefits for a
        function-wrapped predicate.
    storage_overemphasis_rate:
        Probability that the un-grounded path leads with column-storage as the
        main factor regardless of the true dominant cause.
    """

    def __init__(
        self,
        seed: int = 7,
        model_name: str = "simulated-doubao",
        *,
        grounded_slip_rate: float = 0.03,
        single_source_slip_rate: float = 0.06,
        single_source_none_rate: float = 0.07,
        corroborated_none_rate: float = 0.03,
        fallback_none_rate: float = 0.45,
        fallback_accuracy: float = 0.55,
        cost_bias_rate: float = 0.35,
        index_misread_rate: float = 0.6,
        storage_overemphasis_rate: float = 0.7,
        thinking_seconds_range: tuple[float, float] = (0.8, 2.0),
        generation_words_per_second: float = 9.0,
    ):
        self.seed = seed
        self.name = model_name
        self.grounded_slip_rate = grounded_slip_rate
        self.single_source_slip_rate = single_source_slip_rate
        self.single_source_none_rate = single_source_none_rate
        self.corroborated_none_rate = corroborated_none_rate
        self.fallback_none_rate = fallback_none_rate
        self.fallback_accuracy = fallback_accuracy
        self.cost_bias_rate = cost_bias_rate
        self.index_misread_rate = index_misread_rate
        self.storage_overemphasis_rate = storage_overemphasis_rate
        self.thinking_seconds_range = thinking_seconds_range
        self.generation_words_per_second = generation_words_per_second

    # ------------------------------------------------------------------ public
    def generate(self, request: LLMRequest) -> LLMResponse:
        question: QuestionAttachment | None = request.attachments.get("question")
        knowledge: list[KnowledgeAttachment] = list(request.attachments.get("knowledge", []))
        forbid_cost = bool(request.attachments.get("forbid_cost_comparison", True))
        rng = self._rng_for(question.sql if question else request.prompt)

        if question is None:
            text = (
                "I need the execution plans from both the TP and AP engines to assess which engine "
                "is likely to perform better for this query."
            )
            return self._response(text, rng, knowledge_count=0, claims={"is_none": False})

        signals = extract_signals_with_costs(question.sql, question.tp_plan, question.ap_plan)
        if knowledge:
            text, claims = self._grounded_answer(question, knowledge, signals, rng, request.temperature)
        else:
            text, claims = self._ungrounded_answer(question, signals, rng, forbid_cost)
        return self._response(text, rng, knowledge_count=len(knowledge), claims=claims)

    # ---------------------------------------------------------------- grounded
    def _grounded_answer(
        self,
        question: QuestionAttachment,
        knowledge: list[KnowledgeAttachment],
        signals: StructuralSignals,
        rng: random.Random,
        temperature: float,
    ) -> tuple[str, dict]:
        winner = question.faster_engine or self._infer_winner(signals, rng, allow_cost=False)
        applicable: list[tuple[KnowledgeAttachment, list[str]]] = []
        for attachment in sorted(knowledge, key=lambda item: -item.similarity):
            if attachment.faster_engine is not winner:
                continue
            matching = [factor for factor in attachment.factors if factor_applies(factor, signals)]
            if matching:
                applicable.append((attachment, matching))

        if not applicable:
            # The retrieved knowledge does not cover this case.
            if rng.random() < self.fallback_none_rate:
                return NONE_ANSWER, {
                    "is_none": True,
                    "winner": None,
                    "factors": [],
                    "grounded": True,
                    "used_cost_comparison": False,
                    "adopted_entries": 0,
                }
            factors = hypothesize_factors(signals, winner)
            if not factors:
                return NONE_ANSWER, {
                    "is_none": True,
                    "winner": None,
                    "factors": [],
                    "grounded": True,
                    "used_cost_comparison": False,
                    "adopted_entries": 0,
                }
            if rng.random() > self.fallback_accuracy and len(factors) > 1:
                # A structurally plausible but non-dominant factor leads.
                factors = factors[1:] + factors[:1]
            cited = factors[:2]
            text = self._compose(winner, cited, signals, grounded=False)
            return text, {
                "is_none": False,
                "winner": winner.value,
                "factors": cited,
                "grounded": True,
                "used_cost_comparison": False,
                "adopted_entries": 0,
            }

        # Confidence model: a single applicable reference gives weaker
        # grounding than several corroborating ones (drives the K sweep).
        single_source = len(applicable) == 1
        none_rate = self.single_source_none_rate if single_source else self.corroborated_none_rate
        if rng.random() < none_rate:
            return NONE_ANSWER, {
                "is_none": True,
                "winner": None,
                "factors": [],
                "grounded": True,
                "used_cost_comparison": False,
                "adopted_entries": len(applicable),
            }

        cited: list[str] = []
        for _attachment, matching in applicable:
            for factor in matching:
                if factor not in cited:
                    cited.append(factor)
        cited = cited[:3]

        slip_rate = self.single_source_slip_rate if single_source else self.grounded_slip_rate
        slip = rng.random() < slip_rate * (1.0 + temperature)
        if slip and len(cited) > 1:
            # Imprecise variant: lead with a secondary factor.
            cited = cited[1:] + cited[:1]
        elif slip:
            # Imprecise variant: swap the grounded factor for a structurally
            # plausible but weaker one.
            extras = [factor for factor in hypothesize_factors(signals, winner) if factor not in cited]
            if extras:
                cited = [extras[-1], *cited]

        text = self._compose(winner, cited, signals, grounded=True)
        return text, {
            "is_none": False,
            "winner": winner.value,
            "factors": cited,
            "grounded": True,
            "used_cost_comparison": False,
            "adopted_entries": len(applicable),
        }

    # -------------------------------------------------------------- ungrounded
    def _ungrounded_answer(
        self,
        question: QuestionAttachment,
        signals: StructuralSignals,
        rng: random.Random,
        forbid_cost: bool,
    ) -> tuple[str, dict]:
        used_cost = False
        if question.faster_engine is not None:
            winner = question.faster_engine
        else:
            cost_bias = self.cost_bias_rate if forbid_cost else 0.9
            if rng.random() < cost_bias:
                used_cost = True
                winner = (
                    EngineKind.TP if signals.tp_total_cost <= signals.ap_total_cost else EngineKind.AP
                )
            else:
                winner = self._infer_winner(signals, rng, allow_cost=False)

        factors = hypothesize_factors(signals, winner)
        extra_sentences: list[str] = []
        # Storage over-emphasis: lead with columnar storage regardless of the
        # actual dominant factor.
        if winner is EngineKind.AP and rng.random() < self.storage_overemphasis_rate:
            storage = ExplanationFactor.COLUMNAR_PARALLEL_SCAN.value
            factors = [storage] + [factor for factor in factors if factor != storage]
        # Index misread: claim index benefits when the function-wrapped
        # predicate actually defeats the index.
        index_misread = signals.sql_wraps_column_in_function and rng.random() < self.index_misread_rate
        if index_misread:
            factors = [
                factor
                for factor in factors
                if factor != ExplanationFactor.INDEX_DEFEATED_BY_FUNCTION.value
            ]
            extra_sentences.append(_INDEX_MISREAD_SENTENCE)
        # Offset blindness: drop the OFFSET factor (cannot judge relative size).
        factors = [factor for factor in factors if factor != ExplanationFactor.LARGE_OFFSET_PENALTY.value]
        cited = factors[:2]

        text = self._compose(winner, cited, signals, grounded=False, extra_sentences=extra_sentences)
        if used_cost:
            loser = winner.other()
            text += " " + _COST_SENTENCE.format(winner=winner.value, loser=loser.value)
        return text, {
            "is_none": False,
            "winner": winner.value,
            "factors": cited,
            "grounded": False,
            "used_cost_comparison": used_cost,
            "index_misread": index_misread,
            "adopted_entries": 0,
        }

    # ----------------------------------------------------------------- helpers
    def _infer_winner(self, signals: StructuralSignals, rng: random.Random, *, allow_cost: bool) -> EngineKind:
        if allow_cost:
            return EngineKind.TP if signals.tp_total_cost <= signals.ap_total_cost else EngineKind.AP
        if signals.tp_uses_index and signals.is_small_query:
            return EngineKind.TP
        if signals.tp_index_ordered and signals.has_top_n:
            return EngineKind.TP
        if signals.is_large_scan or signals.has_aggregation:
            return EngineKind.AP
        return EngineKind.AP if rng.random() < 0.6 else EngineKind.TP

    def _compose(
        self,
        winner: EngineKind,
        factor_values: list[str],
        signals: StructuralSignals,
        *,
        grounded: bool,
        extra_sentences: list[str] | None = None,
    ) -> str:
        loser = winner.other()
        sentences: list[str] = []
        for value in factor_values:
            try:
                factor = ExplanationFactor(value)
            except ValueError:
                continue
            sentences.append(_FACTOR_SENTENCES[factor].format(winner=winner.value, loser=loser.value))
        if winner is EngineKind.AP and ExplanationFactor.COLUMNAR_PARALLEL_SCAN.value not in factor_values:
            sentences.append(_STORAGE_SENTENCE.format(winner=winner.value, loser=loser.value))
        if extra_sentences:
            sentences.extend(extra_sentences)
        closing = (
            f"Overall, these factors give the {winner.value} engine a significant advantage for this "
            "specific query."
        )
        if grounded:
            closing = (
                f"Consistent with similar historical queries, {closing[0].lower()}{closing[1:]}"
            )
        sentences.append(closing)
        return " ".join(sentences)

    def _rng_for(self, key: str) -> random.Random:
        # A stable content hash keeps per-query behaviour deterministic across
        # processes (Python's built-in str hash is salted per interpreter run).
        digest = hashlib.md5(key.encode("utf-8")).digest()
        return random.Random(int.from_bytes(digest[:8], "little") ^ self.seed)

    def _response(
        self, text: str, rng: random.Random, *, knowledge_count: int, claims: dict
    ) -> LLMResponse:
        low, high = self.thinking_seconds_range
        thinking = min(high, low + 0.25 * knowledge_count + rng.uniform(0.0, 0.3))
        words = max(1, len(text.split()))
        generation = words / self.generation_words_per_second + rng.uniform(0.0, 0.8)
        return LLMResponse(
            text=text,
            thinking_seconds=thinking,
            generation_seconds=generation,
            model_name=self.name,
            claims=claims,
        )
