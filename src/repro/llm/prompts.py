"""Prompt engineering (paper Section V, Table I).

The prompt sent to the LLM has three fixed parts — background information,
task description, additional user context — followed by the retrieved
KNOWLEDGE blocks and the QUESTION block.  The wording of the three fixed
parts follows the paper's Table I closely, including the instruction that
cost estimates from the two engines must not be compared.

:class:`PromptBuilder` assembles both the flat prompt text (what a hosted
LLM would receive) and the structured :class:`PromptPayload` (what the
offline simulator consumes).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any

from repro.htap.engines.base import EngineKind
from repro.knowledge.entry import KnowledgeEntry

BACKGROUND_TEMPLATE = (
    "Background information: We are using RAG to assist database users in understanding query "
    "performance across different engines in our HTAP system - specifically, why one engine "
    "performs faster while the other is slower. Please ensure you are familiar with the TPC-H "
    "schema; our dataset follows the default schema and contains {data_size_gb:.0f}GB of data. "
    "Our HTAP system has two database engines, \"TP\" and \"AP\". The TP engine uses row-oriented "
    "storage, while the AP engine utilizes column-oriented storage. Note that the optimizers for "
    "TP and AP engines are distinct, leading to different execution plans. Therefore, you are not "
    "allowed to compare the cost estimates of the execution plans from TP and AP engines."
)

TASK_TEMPLATE = (
    "Task description: Here is your task: I will input you the execution plans for the query from "
    "both the TP and AP engines, please evaluate the likely performance of each engine without "
    "directly comparing the cost estimates. Focus on factors such as the join methods used, the "
    "storage formats (row-oriented vs. column-oriented), index utilization, and any potential "
    "implications of the execution plan characteristics on query performance. Your task is to "
    "explain which engine might perform better for this specific query and why, based on these "
    "factors. To assist you, we have a retriever that can find relevant historical plans from the "
    "knowledge base with precise performance explanations from our experts. The KNOWLEDGE and "
    "QUESTION you receive will be in the following format: KNOWLEDGE: historical query + "
    "historical plan pair (AP/TP's plan) + historical execution result (indicating whether TP or "
    "AP is faster) + historical expert explanation (why TP or AP is faster). QUESTION: new query + "
    "new plan pair + new execution result. You could use KNOWLEDGE to explain the following new "
    "pair of plans in QUESTION. If the KNOWLEDGE does not contain the facts to answer the QUESTION "
    "return None. Note, to make sure your answer is accurate, I may input you several retrieved "
    "old queries with their plans, results and explanations. Please understand all the information "
    "I provide to generate your explanation. Now, I am ready to send you the KNOWLEDGE and QUESTION."
)

DEFAULT_USER_CONTEXT = (
    "Additional user context: Beyond the default indexes on primary keys, no further secondary "
    "indexes exist unless stated otherwise."
)


@dataclass
class KnowledgeAttachment:
    """Structured form of one retrieved KNOWLEDGE block."""

    sql: str
    plan_details: dict[str, Any]
    faster_engine: EngineKind
    execution_result: str
    expert_explanation: str
    factors: tuple[str, ...]
    similarity: float

    @classmethod
    def from_entry(cls, entry: KnowledgeEntry, similarity: float) -> "KnowledgeAttachment":
        return cls(
            sql=entry.sql,
            plan_details=entry.plan_details,
            faster_engine=entry.faster_engine,
            execution_result=entry.execution_result_text,
            expert_explanation=entry.expert_explanation,
            factors=entry.factors,
            similarity=similarity,
        )


@dataclass
class QuestionAttachment:
    """Structured form of the QUESTION block."""

    sql: str
    tp_plan: dict[str, Any]
    ap_plan: dict[str, Any]
    execution_result: str | None
    faster_engine: EngineKind | None


@dataclass
class PromptPayload:
    """Full prompt: flat text plus its structured attachments."""

    text: str
    knowledge: list[KnowledgeAttachment] = field(default_factory=list)
    question: QuestionAttachment | None = None
    forbid_cost_comparison: bool = True
    user_context: str = DEFAULT_USER_CONTEXT

    def attachments(self) -> dict[str, Any]:
        """The dictionary placed on :class:`repro.llm.client.LLMRequest`."""
        return {
            "knowledge": self.knowledge,
            "question": self.question,
            "forbid_cost_comparison": self.forbid_cost_comparison,
            "user_context": self.user_context,
        }


class PromptBuilder:
    """Assembles Table-I-style prompts.

    Parameters
    ----------
    data_size_gb:
        Reported dataset size in the background section (100 GB in the paper).
    include_background / include_task:
        Allow ablations that strip parts of the prompt.
    """

    def __init__(
        self,
        *,
        data_size_gb: float = 100.0,
        include_background: bool = True,
        include_task: bool = True,
    ):
        self.data_size_gb = data_size_gb
        self.include_background = include_background
        self.include_task = include_task

    # --------------------------------------------------------------- sections
    def background_section(self) -> str:
        return BACKGROUND_TEMPLATE.format(data_size_gb=self.data_size_gb)

    def task_section(self) -> str:
        return TASK_TEMPLATE

    @staticmethod
    def user_context_section(notes: str | None) -> str:
        if notes:
            return f"Additional user context: {notes}"
        return DEFAULT_USER_CONTEXT

    @staticmethod
    def knowledge_section(attachments: list[KnowledgeAttachment]) -> str:
        blocks: list[str] = []
        for index, attachment in enumerate(attachments, start=1):
            blocks.append(
                f"KNOWLEDGE {index}:\n"
                f"Historical query: {attachment.sql}\n"
                f"Historical plan pair: {json.dumps(attachment.plan_details)}\n"
                f"Historical execution result: {attachment.execution_result}\n"
                f"Historical expert explanation: {attachment.expert_explanation}"
            )
        if not blocks:
            return "KNOWLEDGE: (no relevant historical queries were retrieved)"
        return "\n\n".join(blocks)

    @staticmethod
    def question_section(question: QuestionAttachment) -> str:
        result_line = (
            f"New execution result: {question.execution_result}"
            if question.execution_result
            else "New execution result: (not provided)"
        )
        return (
            "QUESTION:\n"
            f"New query: {question.sql}\n"
            f"New TP plan: {json.dumps(question.tp_plan)}\n"
            f"New AP plan: {json.dumps(question.ap_plan)}\n"
            f"{result_line}"
        )

    # --------------------------------------------------------------- assembly
    def build(
        self,
        question: QuestionAttachment,
        knowledge: list[KnowledgeAttachment] | None = None,
        *,
        user_notes: str | None = None,
        forbid_cost_comparison: bool = True,
    ) -> PromptPayload:
        """Assemble the full prompt for one explanation request."""
        knowledge = knowledge or []
        sections: list[str] = []
        if self.include_background:
            sections.append(self.background_section())
        if self.include_task:
            sections.append(self.task_section())
        user_context = self.user_context_section(user_notes)
        sections.append(user_context)
        sections.append(self.knowledge_section(knowledge))
        sections.append(self.question_section(question))
        if not forbid_cost_comparison:
            # The ablation that drops the "do not compare costs" guard simply
            # removes the sentence from the background section.
            sections = [
                section.replace(
                    " Therefore, you are not allowed to compare the cost estimates of the "
                    "execution plans from TP and AP engines.",
                    "",
                )
                for section in sections
            ]
        text = "\n\n".join(sections)
        return PromptPayload(
            text=text,
            knowledge=list(knowledge),
            question=question,
            forbid_cost_comparison=forbid_cost_comparison,
            user_context=user_context,
        )

    def table_i_rows(self) -> dict[str, str]:
        """The three fixed prompt parts, as listed in the paper's Table I."""
        return {
            "Background information": self.background_section(),
            "Task description": self.task_section(),
            "Additional user context": (
                "Beyond the default indexes on primary and foreign keys, an additional index has "
                "been created on the c_phone column in the customer table."
            ),
        }
