"""Plain-text table formatting for benchmark output.

The benchmarks print the same rows/series the paper reports; these helpers
keep that output aligned and readable in pytest's captured output and in the
bench log files.
"""

from __future__ import annotations

from typing import Any, Iterable


def format_percent(value: float, digits: int = 1) -> str:
    """Format a fraction as a percentage string (0.905 -> '90.5%')."""
    return f"{value * 100.0:.{digits}f}%"


def _cell(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def format_table(rows: Iterable[dict[str, Any]], *, title: str | None = None) -> str:
    """Render a list of dictionaries as an aligned text table.

    Column order follows the keys of the first row; missing values render as
    empty cells.  Returns a string (callers decide whether to print it).
    """
    rows = list(rows)
    if not rows:
        return (title + "\n" if title else "") + "(no rows)"
    columns = list(rows[0].keys())
    for row in rows[1:]:
        for key in row:
            if key not in columns:
                columns.append(key)
    widths = {column: len(str(column)) for column in columns}
    rendered_rows: list[list[str]] = []
    for row in rows:
        rendered = [_cell(row.get(column, "")) for column in columns]
        rendered_rows.append(rendered)
        for column, cell in zip(columns, rendered):
            widths[column] = max(widths[column], len(cell))
    lines: list[str] = []
    if title:
        lines.append(title)
    header = " | ".join(str(column).ljust(widths[column]) for column in columns)
    lines.append(header)
    lines.append("-+-".join("-" * widths[column] for column in columns))
    for rendered in rendered_rows:
        lines.append(" | ".join(cell.ljust(widths[column]) for column, cell in zip(columns, rendered)))
    return "\n".join(lines)
