"""ExperimentHarness — one object that reproduces every table and figure.

Building the experimental setup (HTAP system, labeled workloads, trained
router, populated knowledge base, explainer) takes a few seconds; the
harness builds it once and exposes one method per experiment id from
DESIGN.md.  Benchmarks and examples share the cached default harness via
:func:`get_default_harness`.
"""

from __future__ import annotations

import statistics
import time
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Any

from repro.baselines.dbgpt import DBGPTExplainer
from repro.baselines.norag import NoRagExplainer
from repro.bench.stats import percentile
from repro.explainer.evaluation import AccuracyReport, ExpertPanel, Grade
from repro.explainer.pipeline import Explanation, RagExplainer, entries_from_labeled
from repro.explainer.timing import LatencyProfile
from repro.htap.plan.serialize import plan_to_dict
from repro.htap.system import HTAPSystem, QueryExecution
from repro.knowledge.curation import expire_stale_entries, select_representative_queries
from repro.knowledge.knowledge_base import KnowledgeBase
from repro.knowledge.vector_store import FlatVectorStore, HNSWVectorStore
from repro.llm.prompts import PromptBuilder
from repro.llm.simulated import SimulatedLLM
from repro.router.router import SmartRouter
from repro.study.participants import ParticipantPool
from repro.study.protocol import ParticipantStudy, StudyMaterials, StudyReport
from repro.workloads.datasets import WorkloadDataset, build_paper_dataset
from repro.workloads.experts import SimulatedExpert
from repro.workloads.generator import WorkloadGenerator
from repro.workloads.labeling import LabeledQuery, WorkloadLabeler

#: The paper's Example 1 query (Section VI-A), verbatim apart from whitespace.
EXAMPLE1_SQL = (
    "SELECT COUNT(*) FROM customer, nation, orders "
    "WHERE SUBSTRING(c_phone, 1, 2) IN ('20', '40', '22', '30', '39', '42', '21') "
    "AND c_mktsegment = 'machinery' "
    "AND n_name = 'egypt' AND o_orderstatus = 'p' "
    "AND o_custkey = c_custkey "
    "AND n_nationkey = c_nationkey;"
)


@dataclass(frozen=True)
class KBScalingRow:
    """One (store, size) point on the KB-scaling curve — properly typed.

    Previously this was a ``dict[str, float]`` with the store name smuggled
    in as a string behind a ``# type: ignore``; the exporter needs a shape
    it can split into numeric metrics and labels without guessing.
    """

    kb_size: int
    store: str
    search_ms: float

    def as_dict(self) -> dict[str, Any]:
        """Row form for table rendering (column order matches the figure)."""
        return {"kb_size": self.kb_size, "store": self.store, "search_ms": self.search_ms}


@dataclass
class Example1Result:
    """Everything the Example-1 benchmarks (Tables II and III) need."""

    sql: str
    execution: QueryExecution
    tp_plan_dict: dict[str, Any]
    ap_plan_dict: dict[str, Any]
    expert_explanation: str
    our_explanation: Explanation
    dbgpt_explanation_text: str
    dbgpt_claims: dict[str, Any]

    @property
    def tp_latency_seconds(self) -> float:
        return self.execution.tp_result.latency_seconds

    @property
    def ap_latency_seconds(self) -> float:
        return self.execution.ap_result.latency_seconds


@dataclass
class ExperimentHarness:
    """Shared experimental setup for all benchmarks."""

    scale_factor: float = 100.0
    knowledge_base_size: int = 20
    test_size: int = 200
    router_training_size: int = 240
    router_epochs: int = 30
    top_k: int = 2
    seed: int = 2024

    system: HTAPSystem = field(init=False)
    dataset: WorkloadDataset = field(init=False)
    router: SmartRouter = field(init=False)
    knowledge_base: KnowledgeBase = field(init=False)
    llm: SimulatedLLM = field(init=False)
    explainer: RagExplainer = field(init=False)
    panel: ExpertPanel = field(init=False)
    expert: SimulatedExpert = field(init=False)
    build_seconds: float = field(init=False, default=0.0)
    _example1_result: Example1Result | None = field(init=False, default=None, repr=False)

    def __post_init__(self) -> None:
        start = time.perf_counter()
        self.system = HTAPSystem(scale_factor=self.scale_factor)
        self.dataset = build_paper_dataset(
            self.system,
            knowledge_base_size=self.knowledge_base_size,
            test_size=self.test_size,
            router_training_size=self.router_training_size,
            seed=self.seed,
        )
        self.router = SmartRouter(self.system.catalog, seed=13)
        self.router.fit(self.dataset.router_training, epochs=self.router_epochs)
        self.expert = SimulatedExpert()
        self.knowledge_base = KnowledgeBase()
        self.knowledge_base.add_many(
            entries_from_labeled(self.dataset.knowledge_base, self.router, self.expert)
        )
        self.llm = SimulatedLLM(seed=7)
        self.explainer = RagExplainer(
            self.system, self.router, self.knowledge_base, self.llm, top_k=self.top_k
        )
        self.panel = ExpertPanel()
        self.build_seconds = time.perf_counter() - start

    # -------------------------------------------------------------- E1: paths
    def framework_paths(self) -> dict[str, Any]:
        """Smoke-run both Figure-1 paths: historical (black) and new (red)."""
        historical = self.dataset.knowledge_base[0]
        historical_entry = self.knowledge_base.get(historical.query_id)
        new_query = self.dataset.test[0]
        explanation = self.explainer.explain_execution(new_query.execution)
        return {
            "knowledge_base_size": len(self.knowledge_base),
            "historical_entry_id": historical_entry.entry_id,
            "historical_has_expert_explanation": bool(historical_entry.expert_explanation),
            "new_query_retrieved": len(explanation.retrieved),
            "new_query_answered": not explanation.is_none_answer,
            "embedding_size": self.router.embedding_size,
        }

    # ------------------------------------------------------------ E2: prompts
    def prompt_assembly(self) -> dict[str, Any]:
        """Reproduce Table I and measure the assembled prompt for Example 1."""
        builder = PromptBuilder(data_size_gb=100.0)
        example = self.example1()
        prompt = example.our_explanation.prompt
        return {
            "table_i": builder.table_i_rows(),
            "prompt_chars": len(prompt.text),
            "knowledge_blocks": len(prompt.knowledge),
            "contains_cost_guard": "not allowed to compare the cost estimates" in prompt.text,
            "contains_question": "QUESTION:" in prompt.text,
        }

    # ------------------------------------------------ E3/E4: Example 1 outputs
    def _example1_cached(self) -> Example1Result:
        if getattr(self, "_example1_result", None) is not None:
            return self._example1_result
        labeler = WorkloadLabeler(self.system)
        generator = WorkloadGenerator(seed=0)
        workload_query = generator.generate_one()
        # Replace the generated SQL with the paper's exact Example 1 query.
        workload_query = type(workload_query)(
            query_id="example-1",
            sql=EXAMPLE1_SQL,
            pattern=workload_query.pattern,
            params={"source": "paper example 1"},
        )
        labeled = labeler.label(workload_query)
        execution = labeled.execution
        our = self.explainer.explain_execution(execution)
        dbgpt = DBGPTExplainer(self.system, self.llm).explain_execution(execution)
        self._example1_result = Example1Result(
            sql=EXAMPLE1_SQL,
            execution=execution,
            tp_plan_dict=plan_to_dict(execution.plan_pair.tp_plan),
            ap_plan_dict=plan_to_dict(execution.plan_pair.ap_plan),
            expert_explanation=self.expert.explain(labeled),
            our_explanation=our,
            dbgpt_explanation_text=dbgpt.text,
            dbgpt_claims=dbgpt.claims,
        )
        return self._example1_result

    def example1(self) -> Example1Result:
        return self._example1_cached()

    # --------------------------------------------------------- E5/E6: accuracy
    def accuracy_experiment(self, top_k: int | None = None) -> AccuracyReport:
        """Grade the full test set at the given retrieval depth (default: 2)."""
        k = self.top_k if top_k is None else top_k
        explainer = RagExplainer(self.system, self.router, self.knowledge_base, self.llm, top_k=k)
        explanations = [explainer.explain_execution(labeled.execution) for labeled in self.dataset.test]
        return self.panel.evaluate(self.dataset.test, explanations)

    def topk_sweep(self, ks: tuple[int, ...] = (1, 2, 3, 4, 5)) -> dict[int, AccuracyReport]:
        return {k: self.accuracy_experiment(top_k=k) for k in ks}

    # ------------------------------------------------------------- E7: latency
    def latency_breakdown(self, sample_size: int = 40) -> dict[str, Any]:
        """Average end-to-end latency components over a test-set sample."""
        sample = self.dataset.test[:sample_size]
        profiles: list[LatencyProfile] = []
        for labeled in sample:
            explanation = self.explainer.explain_execution(labeled.execution)
            profiles.append(explanation.latency)
        average = LatencyProfile.average(profiles)
        return {
            "samples": len(profiles),
            "encode_ms": average.encode_seconds * 1000.0,
            "search_ms": average.search_seconds * 1000.0,
            "llm_thinking_s": average.llm_thinking_seconds,
            "llm_generation_s": average.llm_generation_seconds,
            "total_s": average.total_seconds,
        }

    # --------------------------------------------------------------- E8: study
    def participant_study(self, participants: int = 24, seed: int = 99) -> StudyReport:
        example = self.example1()
        materials = StudyMaterials.from_dicts(
            sql=example.sql,
            tp_plan=example.tp_plan_dict,
            ap_plan=example.ap_plan_dict,
            explanation_text=example.our_explanation.text,
        )
        study = ParticipantStudy(materials, pool=ParticipantPool(size=participants), seed=seed)
        return study.run()

    # -------------------------------------------------------- E9: DBG-PT study
    def dbgpt_comparison(self, sample_size: int = 100) -> dict[str, dict[str, float]]:
        """Compare our pipeline against DBG-PT and the no-RAG ablation.

        Returns per-method rates: fully accurate (panel grade), correct
        winner, cost-comparison reliance, index misreads, and storage-led
        explanations.
        """
        sample = self.dataset.test[:sample_size]
        dbgpt = DBGPTExplainer(self.system, self.llm)
        norag = NoRagExplainer(self.system, self.llm)
        results: dict[str, dict[str, float]] = {}

        ours_explanations = [self.explainer.explain_execution(labeled.execution) for labeled in sample]
        ours_report = self.panel.evaluate(sample, ours_explanations)
        results["ours"] = self._comparison_row(sample, ours_explanations, ours_report)

        for name, baseline in (("dbgpt", dbgpt), ("norag", norag)):
            explanations: list[Explanation] = []
            for labeled in sample:
                answer = baseline.explain_execution(labeled.execution)
                explanations.append(self._baseline_as_explanation(labeled, answer))
            report = self.panel.evaluate(sample, explanations)
            results[name] = self._comparison_row(sample, explanations, report)
        return results

    def _baseline_as_explanation(self, labeled: LabeledQuery, answer) -> Explanation:
        """Wrap a baseline answer in the Explanation shape the panel grades."""
        prompt = PromptBuilder().build(
            question=answer_question_stub(labeled),
            knowledge=[],
        )
        return Explanation(
            sql=labeled.sql,
            text=answer.text,
            faster_engine=answer.claimed_winner,
            retrieved=[],
            prompt=prompt,
            response=_fake_response(answer),
            latency=answer.latency,
            embedding=self.router.embed_pair(labeled.execution.plan_pair),
            claims=dict(answer.claims),
        )

    @staticmethod
    def _comparison_row(
        sample: list[LabeledQuery],
        explanations: list[Explanation],
        report: AccuracyReport,
    ) -> dict[str, float]:
        total = len(sample)
        winner_correct = 0
        cost_comparison = 0
        index_misread = 0
        storage_led = 0
        for labeled, explanation in zip(sample, explanations):
            claims = explanation.claims
            if claims.get("winner") == labeled.faster_engine.value:
                winner_correct += 1
            if claims.get("used_cost_comparison"):
                cost_comparison += 1
            if claims.get("index_misread"):
                index_misread += 1
            factors = claims.get("factors") or []
            if factors and factors[0] == "columnar_parallel_scan" and (
                labeled.ground_truth.primary_factor.value != "columnar_parallel_scan"
            ):
                storage_led += 1
        return {
            "accurate": report.accurate_rate,
            "imprecise": report.imprecise_rate,
            "none": report.none_rate,
            "wrong": report.wrong_rate,
            "winner_correct": winner_correct / total,
            "cost_comparison": cost_comparison / total,
            "index_misread": index_misread / total,
            "storage_overemphasis": storage_led / total,
        }

    # -------------------------------------------------------------- E10: router
    def router_benchmark(self, sample_size: int = 50) -> dict[str, float]:
        sample = self.dataset.test[:sample_size]
        accuracy = self.router.accuracy(sample)
        timings = []
        for labeled in sample:
            decision = self.router.route(labeled.execution.plan_pair)
            timings.append(decision.inference_seconds)
        return {
            "routing_accuracy": accuracy,
            "model_size_bytes": float(self.router.model_size_bytes()),
            "parameter_count": float(self.router.parameter_count()),
            "mean_inference_ms": statistics.mean(timings) * 1000.0,
            # Shared nearest-rank convention (repro.bench.stats) so this p95
            # agrees with the serving histograms and the BENCH_*.json export.
            "p95_inference_ms": percentile(timings, 0.95) * 1000.0,
        }

    # --------------------------------------------------------- E11: KB scaling
    def kb_scaling(self, sizes: tuple[int, ...] = (20, 200, 1000, 5000), k: int = 2) -> list[KBScalingRow]:
        """Search latency as the knowledge base grows, flat vs HNSW."""
        rng_entries = entries_from_labeled(self.dataset.knowledge_base, self.router, self.expert)
        base_vectors = [entry.embedding for entry in rng_entries]
        import numpy as np

        rows: list[KBScalingRow] = []
        rng = np.random.default_rng(3)
        query_vectors = [
            self.router.embed_pair(labeled.execution.plan_pair) for labeled in self.dataset.test[:20]
        ]
        for size in sizes:
            vectors = []
            while len(vectors) < size:
                base = base_vectors[len(vectors) % len(base_vectors)]
                vectors.append(base + rng.normal(0.0, 0.05, size=base.shape))
            for store_name, store in (
                ("flat", FlatVectorStore()),
                ("hnsw", HNSWVectorStore()),
            ):
                for index, vector in enumerate(vectors):
                    store.add(f"e{index}", vector)
                start = time.perf_counter()
                for query in query_vectors:
                    store.search(query, k)
                elapsed = (time.perf_counter() - start) / len(query_vectors)
                rows.append(KBScalingRow(kb_size=size, store=store_name, search_ms=elapsed * 1000.0))
        return rows

    # -------------------------------------------------------- E12: KB curation
    def curation_experiment(self, candidate_pool: int = 120, budget: int = 20) -> dict[str, float]:
        """Representative selection vs random selection, plus stale expiry."""
        labeler = WorkloadLabeler(self.system)
        generator = WorkloadGenerator(seed=555)
        candidates = labeler.label_many(generator.generate(candidate_pool))
        entries = entries_from_labeled(candidates, self.router, self.expert)

        representative = select_representative_queries(entries, budget)
        random_pick = entries[:budget]

        def coverage(selection) -> float:
            selected_factors = {factor for entry in selection for factor in entry.factors}
            all_factors = {factor for entry in entries for factor in entry.factors}
            return len(selected_factors) / max(1, len(all_factors))

        kb = KnowledgeBase()
        kb.add_many(entries)
        removed = expire_stale_entries(kb, max_entries=budget)
        return {
            "candidate_pool": float(candidate_pool),
            "budget": float(budget),
            "representative_factor_coverage": coverage(representative),
            "random_factor_coverage": coverage(random_pick),
            "expired_entries": float(len(removed)),
            "kb_size_after_expiry": float(len(kb)),
        }

    # ----------------------------------------------------------------- helpers
    def grade_counts(self, report: AccuracyReport) -> dict[str, int]:
        return {grade.value: report.count(grade) for grade in Grade}


def answer_question_stub(labeled: LabeledQuery):
    """Question attachment for wrapping baseline answers (grading only)."""
    from repro.llm.prompts import QuestionAttachment

    execution = labeled.execution
    return QuestionAttachment(
        sql=labeled.sql,
        tp_plan=plan_to_dict(execution.plan_pair.tp_plan),
        ap_plan=plan_to_dict(execution.plan_pair.ap_plan),
        execution_result=None,
        faster_engine=None,
    )


def _fake_response(answer):
    from repro.llm.client import LLMResponse

    return LLMResponse(
        text=answer.text,
        thinking_seconds=answer.latency.llm_thinking_seconds,
        generation_seconds=answer.latency.llm_generation_seconds,
        model_name="baseline",
        claims=dict(answer.claims),
    )


@lru_cache(maxsize=1)
def get_default_harness() -> ExperimentHarness:
    """The shared harness used by benchmarks and examples (built once)."""
    return ExperimentHarness()
