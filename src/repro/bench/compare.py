"""Diff a fresh bench run against the committed ``BENCH_*.json`` baselines.

This is the CI regression gate: ``repro-bench compare`` loads the baseline
files at the repo root and the just-written files from the run directory,
applies per-metric tolerances, and exits nonzero when any gated metric
regressed (exit 1) or a baseline/schema problem makes the diff impossible
(exit 2).

Tolerances are *directional* and deliberately asymmetric:

* timing metrics gate only on getting **slower**, with a generous relative
  margin (CI runners vary a lot; the gate exists to catch order-of-
  magnitude regressions — a lost cache, a broken batcher — not 20% noise);
* throughput / accuracy / hit-rate metrics gate only on getting **worse
  downward**, with tighter margins because they are workload-deterministic;
* error-shaped counters gate exactly: any increase over baseline fails;
* everything else is informational — reported, never gating.

Gating compares the **p50** of each metric summary (robust to one noisy
run); the full summaries stay in the JSON for human inspection.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from fnmatch import fnmatch
from pathlib import Path
from typing import Any, Iterable

from repro.bench.export import BenchSchemaError, bench_filename, load_bench

#: Exit codes for the ``compare`` subcommand.
EXIT_OK = 0
EXIT_REGRESSION = 1
EXIT_ERROR = 2


class Direction(Enum):
    LOWER_IS_BETTER = "lower"
    HIGHER_IS_BETTER = "higher"
    INFORMATIONAL = "info"


@dataclass(frozen=True)
class Tolerance:
    """Allowed slack before a directional change counts as a regression.

    The allowed slack is ``max(rel * |baseline|, abs)`` of whichever bounds
    are set; with neither set the metric is informational.
    """

    direction: Direction
    rel: float | None = None
    abs: float | None = None

    def slack(self, baseline: float) -> float:
        candidates = [0.0]
        if self.rel is not None:
            candidates.append(self.rel * abs(baseline))
        if self.abs is not None:
            candidates.append(self.abs)
        return max(candidates)

    def is_regression(self, baseline: float, current: float, scale: float = 1.0) -> bool:
        if self.direction is Direction.INFORMATIONAL:
            return False
        slack = self.slack(baseline) * scale
        if self.direction is Direction.LOWER_IS_BETTER:
            return current > baseline + slack
        return current < baseline - slack


#: First-match-wins (pattern, tolerance) pairs matched against the metric
#: path (e.g. ``metrics.inference_seconds``, ``counters.errors``).
DEFAULT_TOLERANCES: tuple[tuple[str, Tolerance], ...] = (
    ("counters.*error*", Tolerance(Direction.LOWER_IS_BETTER, abs=0.0)),
    ("counters.*failed*", Tolerance(Direction.LOWER_IS_BETTER, abs=0.0)),
    ("counters.*shed*", Tolerance(Direction.LOWER_IS_BETTER, abs=0.0)),
    ("counters.*deadline*", Tolerance(Direction.LOWER_IS_BETTER, abs=0.0)),
    ("*accuracy*", Tolerance(Direction.HIGHER_IS_BETTER, abs=0.10)),
    ("*hit_rate*", Tolerance(Direction.HIGHER_IS_BETTER, abs=0.15)),
    # Lock-contention speedups (sharded_kb).  The p95 tail is where the
    # single writer lock hurts, and it is stable run-to-run (8-20x); gate
    # it with enough slack that the floor sits at the ~2x acceptance bar.
    # The p50 scalar depends on whether the writer happened to collide
    # with most of the timed retrievals — pure scheduler luck on a loaded
    # CI runner (observed medians 2x-18x) — so it is reported, not gated.
    ("metrics.p50_speedup", Tolerance(Direction.INFORMATIONAL)),
    ("metrics.p95_speedup", Tolerance(Direction.HIGHER_IS_BETTER, rel=0.85)),
    ("*speedup*", Tolerance(Direction.HIGHER_IS_BETTER, rel=0.75)),
    ("*ops_per_second*", Tolerance(Direction.HIGHER_IS_BETTER, rel=0.80)),
    ("*qps*", Tolerance(Direction.HIGHER_IS_BETTER, rel=0.80)),
    ("*batch_size*", Tolerance(Direction.INFORMATIONAL)),
    # Observability-tax ratios sit near 1.0 but are measured over tens of
    # microseconds of warm-path latency, so they wobble hard with runner
    # load; gate only the order-of-magnitude blowups where tracing
    # suddenly dominates the warm path.
    ("*overhead_ratio*", Tolerance(Direction.LOWER_IS_BETTER, rel=1.0, abs=2.0)),
    ("*model_size*", Tolerance(Direction.LOWER_IS_BETTER, rel=0.25)),
    ("*parameter*", Tolerance(Direction.LOWER_IS_BETTER, rel=0.25)),
    ("duration_seconds", Tolerance(Direction.LOWER_IS_BETTER, rel=4.0)),
    ("*seconds*", Tolerance(Direction.LOWER_IS_BETTER, rel=4.0)),
    ("*_ms*", Tolerance(Direction.LOWER_IS_BETTER, rel=4.0)),
    ("*latency*", Tolerance(Direction.LOWER_IS_BETTER, rel=4.0)),
)

_INFORMATIONAL = Tolerance(Direction.INFORMATIONAL)


def tolerance_for(path: str, tolerances: Iterable[tuple[str, Tolerance]] = DEFAULT_TOLERANCES) -> Tolerance:
    for pattern, tolerance in tolerances:
        if fnmatch(path, pattern):
            return tolerance
    return _INFORMATIONAL


class Verdict(Enum):
    PASS = "pass"
    REGRESSION = "regression"
    INFO = "info"
    MISSING_BASELINE = "missing-baseline"
    MISSING_IN_CURRENT = "missing-in-current"
    NEW_METRIC = "new-metric"
    ERROR = "error"


@dataclass
class MetricVerdict:
    suite: str
    metric: str
    verdict: Verdict
    baseline: float | None = None
    current: float | None = None
    allowed_slack: float | None = None
    note: str = ""

    def as_row(self) -> dict[str, Any]:
        return {
            "suite": self.suite,
            "metric": self.metric,
            "baseline": "-" if self.baseline is None else round(self.baseline, 6),
            "current": "-" if self.current is None else round(self.current, 6),
            "verdict": self.verdict.value,
            "note": self.note,
        }


@dataclass
class ComparisonReport:
    verdicts: list[MetricVerdict]

    @property
    def regressions(self) -> list[MetricVerdict]:
        return [v for v in self.verdicts if v.verdict is Verdict.REGRESSION]

    @property
    def errors(self) -> list[MetricVerdict]:
        return [
            v
            for v in self.verdicts
            if v.verdict in (Verdict.MISSING_BASELINE, Verdict.MISSING_IN_CURRENT, Verdict.ERROR)
        ]

    @property
    def exit_code(self) -> int:
        if self.errors:
            return EXIT_ERROR
        if self.regressions:
            return EXIT_REGRESSION
        return EXIT_OK


def _gatable_values(payload: dict[str, Any]) -> dict[str, float]:
    """Flatten a payload into ``path -> gate value`` (p50 for summaries)."""
    values: dict[str, float] = {"duration_seconds": float(payload["duration_seconds"]["p50"])}
    for name, summary in payload["metrics"].items():
        values[f"metrics.{name}"] = float(summary["p50"])
    for name, value in payload["counters"].items():
        values[f"counters.{name}"] = float(value)
    values["throughput.ops_per_second"] = float(payload["throughput"]["ops_per_second"])
    return values


def compare_payloads(
    current: dict[str, Any],
    baseline: dict[str, Any],
    *,
    tolerances: Iterable[tuple[str, Tolerance]] = DEFAULT_TOLERANCES,
    scale: float = 1.0,
) -> list[MetricVerdict]:
    """Per-metric verdicts for one suite; gates on the p50 of each summary."""
    suite = str(current.get("suite", "?"))
    tolerances = tuple(tolerances)
    if baseline.get("profile") != current.get("profile"):
        return [
            MetricVerdict(
                suite,
                "profile",
                Verdict.ERROR,
                note=(
                    f"profile mismatch: baseline {baseline.get('profile')!r} "
                    f"vs current {current.get('profile')!r}"
                ),
            )
        ]
    verdicts: list[MetricVerdict] = []
    baseline_values = _gatable_values(baseline)
    current_values = _gatable_values(current)
    for path, baseline_value in baseline_values.items():
        if path not in current_values:
            verdicts.append(
                MetricVerdict(
                    suite,
                    path,
                    Verdict.MISSING_IN_CURRENT,
                    baseline=baseline_value,
                    note="metric present in baseline but absent from this run",
                )
            )
            continue
        current_value = current_values[path]
        tolerance = tolerance_for(path, tolerances)
        if tolerance.direction is Direction.INFORMATIONAL:
            verdicts.append(
                MetricVerdict(suite, path, Verdict.INFO, baseline=baseline_value, current=current_value)
            )
            continue
        slack = tolerance.slack(baseline_value) * scale
        if tolerance.is_regression(baseline_value, current_value, scale):
            worse = "slower" if tolerance.direction is Direction.LOWER_IS_BETTER else "lower"
            verdicts.append(
                MetricVerdict(
                    suite,
                    path,
                    Verdict.REGRESSION,
                    baseline=baseline_value,
                    current=current_value,
                    allowed_slack=slack,
                    note=f"{worse} than baseline beyond allowed slack {slack:.6g}",
                )
            )
        else:
            verdicts.append(
                MetricVerdict(
                    suite,
                    path,
                    Verdict.PASS,
                    baseline=baseline_value,
                    current=current_value,
                    allowed_slack=slack,
                )
            )
    for path, current_value in current_values.items():
        if path not in baseline_values:
            verdicts.append(
                MetricVerdict(
                    suite,
                    path,
                    Verdict.NEW_METRIC,
                    current=current_value,
                    note="not in baseline; commit a refreshed baseline to start gating it",
                )
            )
    return verdicts


def compare_directories(
    current_dir: str | Path,
    baseline_dir: str | Path,
    suites: Iterable[str],
    *,
    tolerances: Iterable[tuple[str, Tolerance]] = DEFAULT_TOLERANCES,
    scale: float = 1.0,
) -> ComparisonReport:
    """Compare every suite's ``BENCH_*.json`` between two directories."""
    verdicts: list[MetricVerdict] = []
    for suite in suites:
        baseline_path = Path(baseline_dir) / bench_filename(suite)
        current_path = Path(current_dir) / bench_filename(suite)
        if not baseline_path.exists():
            verdicts.append(
                MetricVerdict(
                    suite,
                    "-",
                    Verdict.MISSING_BASELINE,
                    note=f"no committed baseline at {baseline_path}",
                )
            )
            continue
        if not current_path.exists():
            verdicts.append(
                MetricVerdict(
                    suite,
                    "-",
                    Verdict.MISSING_IN_CURRENT,
                    note=f"run did not produce {current_path}",
                )
            )
            continue
        try:
            baseline = load_bench(baseline_path)
            current = load_bench(current_path)
        except BenchSchemaError as exc:
            verdicts.append(MetricVerdict(suite, "-", Verdict.ERROR, note=str(exc)))
            continue
        verdicts.extend(compare_payloads(current, baseline, tolerances=tolerances, scale=scale))
    return ComparisonReport(verdicts)
