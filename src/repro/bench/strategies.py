"""Concrete :class:`~repro.bench.runner.ExperimentStrategy` suites.

Each strategy wraps an existing experiment — the harness methods the
pytest benchmarks already exercise, plus the serving layer — and reshapes
its observations into the runner's metric model so ``repro-bench run`` can
export one ``BENCH_<suite>.json`` per suite:

* ``latency`` — per-stage explanation latency over a test-set sample
  (encode / search / LLM thinking / LLM generation / total);
* ``router`` — tree-CNN routing accuracy, inference latency series, and
  model footprint;
* ``kb_scaling`` — flat vs HNSW search latency across KB sizes (the
  scenario axis from the TPC-H exemplar: one workload shape per store ×
  size point);
* ``service_throughput`` — cold/concurrent/warm phases against a live
  :class:`~repro.service.server.ExplanationService`, with cache hit rates
  and batching stats pulled from :mod:`repro.service.metrics` snapshots;
* ``stage_breakdown`` — per-stage latency (parse / optimize / execute /
  encode / retrieve / generate) of cold served requests, measured from
  the tracing subsystem's span trees (:mod:`repro.obs.tracing`) rather
  than ad-hoc timers, so the committed baseline also regression-tests
  the instrumentation itself;
* ``cold_path`` — the vectorized encode/retrieve hot path in isolation:
  uncached end-to-end request latency plus the encode and retrieve stage
  series, with the featurize/forward split and the kernel-batch counters
  pulled from span attributes;
* ``obs_overhead`` — the observability tax on the warm serve path:
  per-request latency with tracing off, fully traced, and 1%
  head-sampled, plus ``overhead_ratio.*`` scalars gating that the
  instrumentation stays cheap and sampling keeps it near-free;
* ``sharded_kb`` — scatter-gather retrieval under a concurrent writer:
  single-shard vs N-shard retrieval latency series with ``p50_speedup`` /
  ``p95_speedup`` scalars, plus a flat-store equivalence check
  (``topk_mismatch_errors``) proving sharded top-k returns the same ids
  as the plain :class:`~repro.knowledge.knowledge_base.KnowledgeBase`.

This module imports :mod:`repro.service` and is therefore *not* re-exported
from ``repro.bench.__init__`` — the serving layer itself depends on
:mod:`repro.bench.stats`, and keeping strategies out of the package
``__init__`` keeps that dependency acyclic.
"""

from __future__ import annotations

import dataclasses
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import asdict
from typing import Any

import numpy as np

from repro.bench.harness import ExperimentHarness
from repro.bench.runner import (
    ExperimentConfig,
    ExperimentContext,
    ExperimentStrategy,
    RunResult,
)
from repro.service.server import ExplanationService

#: Harness scales the CLI can build.  ``quick`` mirrors the reduced harness
#: the unit tests use (same code paths, ~seconds to build) and is what CI
#: and the committed baselines run; ``paper`` is the full experimental
#: scale of the pytest benchmark suite.
PROFILES: dict[str, dict[str, Any]] = {
    "quick": {
        "knowledge_base_size": 12,
        "test_size": 40,
        "router_training_size": 60,
        "router_epochs": 8,
    },
    "paper": {},
}


def build_harness(profile: str) -> ExperimentHarness:
    try:
        overrides = PROFILES[profile]
    except KeyError:
        raise ValueError(f"unknown profile {profile!r}; choose from {sorted(PROFILES)}") from None
    return ExperimentHarness(**overrides)


def harness_config(harness: ExperimentHarness) -> dict[str, Any]:
    """The init parameters that define an experimental setup (for export)."""
    return {
        "scale_factor": harness.scale_factor,
        "knowledge_base_size": harness.knowledge_base_size,
        "test_size": harness.test_size,
        "router_training_size": harness.router_training_size,
        "router_epochs": harness.router_epochs,
        "top_k": harness.top_k,
        "seed": harness.seed,
    }


class LatencyBreakdownStrategy(ExperimentStrategy):
    """E7 as a suite: per-stage latency series over a test-set sample."""

    name = "latency"

    def __init__(self, sample_size: int = 24):
        self.sample_size = sample_size

    def default_config(self) -> ExperimentConfig:
        return ExperimentConfig(runs=3, warmup_runs=1)

    def setup(self, context: ExperimentContext) -> None:
        sample = context.harness.dataset.test[: self.sample_size]
        if not sample:
            raise ValueError("test set is empty; cannot measure latency")
        context.state["sample"] = sample

    def execute(self, context: ExperimentContext) -> RunResult:
        harness = context.harness
        profiles = [
            harness.explainer.explain_execution(labeled.execution).latency
            for labeled in context.state["sample"]
        ]
        return RunResult(
            metrics={
                "encode_seconds": [profile.encode_seconds for profile in profiles],
                "search_seconds": [profile.search_seconds for profile in profiles],
                "llm_thinking_seconds": [profile.llm_thinking_seconds for profile in profiles],
                "llm_generation_seconds": [profile.llm_generation_seconds for profile in profiles],
                "total_seconds": [profile.total_seconds for profile in profiles],
            },
            counters={"explanations": len(profiles)},
            operations=len(profiles),
        )


class RouterInferenceStrategy(ExperimentStrategy):
    """E10 as a suite: routing accuracy plus an inference-latency series."""

    name = "router"

    def __init__(self, sample_size: int = 40):
        self.sample_size = sample_size

    def default_config(self) -> ExperimentConfig:
        return ExperimentConfig(runs=3, warmup_runs=1)

    def setup(self, context: ExperimentContext) -> None:
        sample = context.harness.dataset.test[: self.sample_size]
        if not sample:
            raise ValueError("test set is empty; cannot benchmark the router")
        context.state["sample"] = sample

    def execute(self, context: ExperimentContext) -> RunResult:
        harness = context.harness
        sample = context.state["sample"]
        timings = [
            harness.router.route(labeled.execution.plan_pair).inference_seconds
            for labeled in sample
        ]
        return RunResult(
            metrics={
                "inference_seconds": timings,
                "routing_accuracy": harness.router.accuracy(sample),
                "model_size_bytes": float(harness.router.model_size_bytes()),
                "parameter_count": float(harness.router.parameter_count()),
            },
            counters={"routed": len(sample)},
            operations=len(sample),
        )


class KBScalingStrategy(ExperimentStrategy):
    """E11 as a suite: flat vs HNSW search latency per KB-size point."""

    name = "kb_scaling"

    def __init__(self, sizes: tuple[int, ...] = (20, 200, 1000), k: int = 2, queries_per_point: int = 20):
        self.sizes = sizes
        self.k = k
        # kb_scaling() averages over (up to) 20 test-set query vectors.
        self.queries_per_point = queries_per_point

    def default_config(self) -> ExperimentConfig:
        return ExperimentConfig(runs=2, warmup_runs=1)

    def execute(self, context: ExperimentContext) -> RunResult:
        rows = context.harness.kb_scaling(sizes=self.sizes, k=self.k)
        metrics: dict[str, float] = {
            f"search_ms.{row.store}.n{row.kb_size}": row.search_ms for row in rows
        }
        return RunResult(
            metrics=metrics,
            counters={"store_size_points": len(rows)},
            operations=len(rows) * self.queries_per_point,
        )


class ServiceThroughputStrategy(ExperimentStrategy):
    """The serving layer under load: cold, concurrent, then warm phases.

    Each run drives a *fresh* :class:`ExplanationService` so warm-cache
    numbers measure this run's cache, not a previous run's.  Cache hit
    rates and batching stats come from the service's own metrics snapshot.
    """

    name = "service_throughput"

    def __init__(
        self,
        concurrency: int = 16,
        distinct_queries: int = 12,
        total_requests: int = 48,
        max_workers: int = 8,
    ):
        self.concurrency = concurrency
        self.distinct_queries = distinct_queries
        self.total_requests = total_requests
        self.max_workers = max_workers

    def default_config(self) -> ExperimentConfig:
        # Two pooled runs plus a warmup: a single unwarmed sample made the
        # compare gate pure noise (every p50 was one measurement of a cold
        # process), which is exactly what the runner's pooling exists to fix.
        return ExperimentConfig(runs=2, warmup_runs=1)

    def setup(self, context: ExperimentContext) -> None:
        sqls = [labeled.sql for labeled in context.harness.dataset.test[: self.distinct_queries]]
        if len(sqls) < 2:
            raise ValueError("need at least two distinct test queries")
        context.state["sqls"] = sqls

    def execute(self, context: ExperimentContext) -> RunResult:
        harness = context.harness
        sqls: list[str] = context.state["sqls"]
        service = ExplanationService(
            harness.system,
            harness.router,
            harness.knowledge_base,
            harness.llm,
            top_k=harness.top_k,
            max_workers=self.max_workers,
            max_in_flight=self.total_requests + self.concurrency,
        )
        try:
            # Phase A — cold, sequential, over *half* the distinct queries:
            # the other half arrives cold during the concurrent phase so the
            # micro-batcher actually gets concurrent encodes to coalesce.
            cold_seconds: list[float] = []
            for sql in sqls[: max(1, len(sqls) // 2)]:
                start = time.perf_counter()
                result = service.explain(sql)
                cold_seconds.append(time.perf_counter() - start)
                if not result.ok:
                    raise RuntimeError(f"cold request failed: {result.error}")

            # Phase B — concurrent repeating workload, half warm, half cold.
            workload = [sqls[i % len(sqls)] for i in range(self.total_requests)]
            concurrent_start = time.perf_counter()
            with ThreadPoolExecutor(max_workers=self.concurrency) as pool:
                results = list(pool.map(service.explain, workload))
            concurrent_seconds = time.perf_counter() - concurrent_start
            errors = sum(not result.ok for result in results)
            cache_hits = sum(result.cache_hit for result in results)

            # Phase C — warm, sequential.
            warm_seconds: list[float] = []
            for sql in sqls:
                start = time.perf_counter()
                result = service.explain(sql)
                warm_seconds.append(time.perf_counter() - start)
                if not (result.ok and result.cache_hit):
                    raise RuntimeError("warm request missed the explanation cache")

            snapshot = service.metrics_snapshot()
            cache_stats = snapshot["cache"]["explanations"]
            mean_cold = sum(cold_seconds) / len(cold_seconds)
            mean_warm = sum(warm_seconds) / len(warm_seconds)
            operations = len(cold_seconds) + len(warm_seconds) + len(results)
            return RunResult(
                metrics={
                    "cold_seconds": cold_seconds,
                    "warm_seconds": warm_seconds,
                    "concurrent_qps": len(results) / concurrent_seconds,
                    "warm_speedup": mean_cold / mean_warm if mean_warm > 0 else 0.0,
                    "explanation_hit_rate": cache_stats["hit_rate"],
                    "mean_batch_size": snapshot["batching"]["mean_batch_size"],
                },
                counters={
                    "requests": operations,
                    "concurrent_requests": len(results),
                    "errors": errors,
                    "cache_hits": cache_hits,
                    "shed": snapshot.get("requests.shed", 0),
                },
                operations=operations,
            )
        finally:
            service.shutdown()


class StageBreakdownStrategy(ExperimentStrategy):
    """Per-stage latency of cold served requests, read from span trees.

    Each run installs a fresh enabled :class:`~repro.obs.tracing.Tracer`
    and drives a fresh :class:`ExplanationService` (fresh caches, so every
    request walks the full cold path), then pools every span duration by
    stage name.  The exported ``stage_seconds.<stage>`` series therefore
    double as a regression gate on the instrumentation: a stage that stops
    emitting spans fails the run outright.
    """

    name = "stage_breakdown"

    #: The six serve-path stages every cold request must traverse.
    STAGES: tuple[str, ...] = (
        "htap.parse",
        "htap.optimize",
        "htap.execute",
        "pipeline.encode",
        "pipeline.retrieve",
        "pipeline.generate",
    )

    def __init__(self, requests: int = 12, max_workers: int = 4):
        self.requests = requests
        self.max_workers = max_workers

    def default_config(self) -> ExperimentConfig:
        return ExperimentConfig(runs=2, warmup_runs=1)

    def setup(self, context: ExperimentContext) -> None:
        sqls = [labeled.sql for labeled in context.harness.dataset.test[: self.requests]]
        if not sqls:
            raise ValueError("test set is empty; cannot trace served requests")
        context.state["sqls"] = sqls

    def execute(self, context: ExperimentContext) -> RunResult:
        from repro.obs.store import TraceStore, stage_durations
        from repro.obs.tracing import traced

        harness = context.harness
        sqls: list[str] = context.state["sqls"]
        store = TraceStore(max_slow=4, max_recent=len(sqls) + 4)
        with traced(store=store):
            service = ExplanationService(
                harness.system,
                harness.router,
                harness.knowledge_base,
                harness.llm,
                top_k=harness.top_k,
                max_workers=self.max_workers,
            )
            try:
                request_seconds: list[float] = []
                for sql in sqls:
                    start = time.perf_counter()
                    result = service.explain(sql)
                    request_seconds.append(time.perf_counter() - start)
                    if not result.ok:
                        raise RuntimeError(f"traced request failed: {result.error}")
            finally:
                service.shutdown()
        traces = store.traces()
        pooled = stage_durations(traces)
        missing = [stage for stage in self.STAGES if not pooled.get(stage)]
        if missing:
            raise RuntimeError(f"stages missing from traces: {', '.join(missing)}")
        metrics: dict[str, Any] = {"request_seconds": request_seconds}
        for stage in self.STAGES:
            metrics[f"stage_seconds.{stage}"] = pooled[stage]
        return RunResult(
            metrics=metrics,
            counters={
                "traced_requests": len(traces),
                "spans": sum(len(trace.spans) for trace in traces),
            },
            operations=len(sqls),
        )


class ColdPathStrategy(ExperimentStrategy):
    """The uncached encode/retrieve hot path, isolated and span-verified.

    Every request in every run is cold: each run drives a fresh
    :class:`ExplanationService` (fresh caches) over distinct SQL, so the
    ``uncached_seconds`` series measures the full parse → optimize →
    execute → encode → retrieve → generate path with no cache shortcuts.
    The encode and retrieve stage series come from the span trees, and the
    ``router.embed_batch`` / ``kb.search`` span attributes supply the
    featurize/forward split and the batched-kernel accounting — so the
    committed baseline gates both the speed of the vectorized kernels and
    the instrumentation that proves they ran.
    """

    name = "cold_path"

    #: The hot-path stages this suite gates; missing spans fail the run.
    STAGES: tuple[str, ...] = ("pipeline.encode", "pipeline.retrieve")

    def __init__(self, requests: int = 16, max_workers: int = 4):
        self.requests = requests
        self.max_workers = max_workers

    def default_config(self) -> ExperimentConfig:
        return ExperimentConfig(runs=2, warmup_runs=1)

    def setup(self, context: ExperimentContext) -> None:
        sqls = [labeled.sql for labeled in context.harness.dataset.test[: self.requests]]
        if not sqls:
            raise ValueError("test set is empty; cannot measure the cold path")
        context.state["sqls"] = sqls

    def execute(self, context: ExperimentContext) -> RunResult:
        from repro.obs.store import TraceStore, stage_durations
        from repro.obs.tracing import traced

        harness = context.harness
        sqls: list[str] = context.state["sqls"]
        store = TraceStore(max_slow=4, max_recent=len(sqls) + 4)
        with traced(store=store):
            service = ExplanationService(
                harness.system,
                harness.router,
                harness.knowledge_base,
                harness.llm,
                top_k=harness.top_k,
                max_workers=self.max_workers,
            )
            try:
                uncached_seconds: list[float] = []
                for sql in sqls:
                    start = time.perf_counter()
                    result = service.explain(sql)
                    uncached_seconds.append(time.perf_counter() - start)
                    if not result.ok:
                        raise RuntimeError(f"cold request failed: {result.error}")
                    if result.cache_hit or result.plan_cache_hit:
                        raise RuntimeError(f"request was not cold: {sql!r}")
            finally:
                service.shutdown()
        traces = store.traces()
        pooled = stage_durations(traces)
        missing = [stage for stage in self.STAGES if not pooled.get(stage)]
        if missing:
            raise RuntimeError(f"stages missing from traces: {', '.join(missing)}")
        featurize: list[float] = []
        forward: list[float] = []
        kernel_batches = 0
        vectors_scored = 0
        for trace in traces:
            for span in trace.find("router.embed_batch"):
                featurize.append(float(span.attributes.get("featurize_seconds", 0.0)))
                forward.append(float(span.attributes.get("forward_seconds", 0.0)))
            for span in trace.find("kb.search"):
                kernel_batches += int(span.attributes.get("kernel_batches", 0))
                vectors_scored += int(span.attributes.get("vectors_scored", 0))
        if not featurize:
            raise RuntimeError("no router.embed_batch spans carried featurization timings")
        metrics: dict[str, Any] = {
            "uncached_seconds": uncached_seconds,
            "featurize_seconds": featurize,
            "forward_seconds": forward,
        }
        for stage in self.STAGES:
            metrics[f"stage_seconds.{stage}"] = pooled[stage]
        return RunResult(
            metrics=metrics,
            counters={
                "traced_requests": len(traces),
                "kernel_batches": kernel_batches,
                "vectors_scored": vectors_scored,
            },
            operations=len(sqls),
        )


class ObsOverheadStrategy(ExperimentStrategy):
    """What tracing costs on the warm serve path — and what sampling saves.

    Three passes over the same warm workload, each against a fresh
    :class:`ExplanationService` primed so every measured request hits the
    explanation cache (the fast path, where fixed per-request overhead is
    proportionally largest):

    * ``off`` — tracing disabled (the default no-op tracer);
    * ``traced`` — every request fully traced at 100%;
    * ``sampled`` — 1% head sampling, so almost every trace is dropped at
      the root and children cost near-zero.

    The ``overhead_ratio.traced`` / ``overhead_ratio.sampled`` scalars are
    the p50 warm latency of each mode over the ``off`` mode; the committed
    baseline gates that full tracing stays cheap and that head sampling
    keeps the tax near 1.0×.  Sampler kept/dropped counters ride along so
    the baseline also proves the sampler actually dropped the traces it
    claims to.
    """

    name = "obs_overhead"

    MODES: tuple[str, ...] = ("off", "traced", "sampled")

    def __init__(
        self,
        distinct_queries: int = 8,
        warm_requests: int = 64,
        head_probability: float = 0.01,
        max_workers: int = 4,
    ):
        self.distinct_queries = distinct_queries
        self.warm_requests = warm_requests
        self.head_probability = head_probability
        self.max_workers = max_workers

    def default_config(self) -> ExperimentConfig:
        return ExperimentConfig(runs=2, warmup_runs=1)

    def setup(self, context: ExperimentContext) -> None:
        sqls = [labeled.sql for labeled in context.harness.dataset.test[: self.distinct_queries]]
        if not sqls:
            raise ValueError("test set is empty; cannot measure tracing overhead")
        context.state["sqls"] = sqls

    def _drive(self, context: ExperimentContext) -> list[float]:
        """Prime a fresh service cold, then time the warm workload."""
        harness = context.harness
        sqls: list[str] = context.state["sqls"]
        service = ExplanationService(
            harness.system,
            harness.router,
            harness.knowledge_base,
            harness.llm,
            top_k=harness.top_k,
            max_workers=self.max_workers,
        )
        try:
            for sql in sqls:
                result = service.explain(sql)
                if not result.ok:
                    raise RuntimeError(f"priming request failed: {result.error}")
            warm_seconds: list[float] = []
            for i in range(self.warm_requests):
                sql = sqls[i % len(sqls)]
                start = time.perf_counter()
                result = service.explain(sql)
                warm_seconds.append(time.perf_counter() - start)
                if not (result.ok and result.cache_hit):
                    raise RuntimeError("warm request missed the explanation cache")
            return warm_seconds
        finally:
            service.shutdown()

    def execute(self, context: ExperimentContext) -> RunResult:
        from statistics import median

        from repro.obs.sampling import Sampler
        from repro.obs.store import TraceStore
        from repro.obs.tracing import traced

        series: dict[str, list[float]] = {}
        series["off"] = self._drive(context)

        with traced(store=TraceStore(max_recent=self.warm_requests + 16)):
            series["traced"] = self._drive(context)

        sampler = Sampler(
            head_probability=self.head_probability,
            slow_threshold_seconds=None,
        )
        with traced(store=TraceStore(), sampler=sampler):
            series["sampled"] = self._drive(context)

        baseline = median(series["off"])
        if baseline <= 0:
            raise RuntimeError("warm baseline latency collapsed to zero")
        metrics: dict[str, Any] = {
            f"warm_seconds.{mode}": series[mode] for mode in self.MODES
        }
        metrics["overhead_ratio.traced"] = median(series["traced"]) / baseline
        metrics["overhead_ratio.sampled"] = median(series["sampled"]) / baseline
        operations = sum(len(values) for values in series.values())
        return RunResult(
            metrics=metrics,
            counters={
                "requests_per_mode": self.warm_requests,
                "sampler_kept": sampler.kept,
                "sampler_dropped": sampler.dropped,
            },
            operations=operations,
        )


class ShardedKBStrategy(ExperimentStrategy):
    """Scatter-gather retrieval vs the single shared lock, under writes.

    Two phases per run:

    * **Equivalence** (flat stores, no writer): the sharded KB must return
      the *same ordered top-k ids* as a plain :class:`KnowledgeBase` for
      every query — any difference increments ``topk_mismatch_errors``,
      which the compare gate holds at exactly zero.
    * **Contention** (HNSW stores): time the same retrieval workload
      against the plain single-lock :class:`KnowledgeBase` and an N-shard
      :class:`ShardedKnowledgeBase` while a writer thread bulk-ingests
      batches of entries (the expert feedback loop importing corrections).
      On the plain KB each ``add_many`` holds the one writer-preferring
      lock for the *entire batch* of expensive HNSW inserts, stalling every
      retrieval that arrives meanwhile; sharded, the batch write locks one
      shard per entry in short increments, so retrieval waits for at most
      an insert or two on the shard it collides with.  ``p50_speedup`` /
      ``p95_speedup`` (single-shard latency over sharded latency) are the
      gated scalars; the acceptance bar is p95 ≥ 2×.
    """

    name = "sharded_kb"

    def __init__(
        self,
        num_shards: int = 4,
        entry_pool: int = 480,
        queries: int = 24,
        timed_retrievals: int = 100,
        k: int = 5,
        writer_batch: int = 48,
        writer_pause_seconds: float = 0.001,
        max_extra_entries: int = 96,
    ):
        self.num_shards = num_shards
        self.entry_pool = entry_pool
        self.queries = queries
        self.timed_retrievals = timed_retrievals
        self.k = k
        self.writer_batch = writer_batch
        self.writer_pause_seconds = writer_pause_seconds
        self.max_extra_entries = max_extra_entries

    def default_config(self) -> ExperimentConfig:
        # Three runs: the p50 scalar is then a true median, insulating the
        # gate from one run where the writer happened to miss most of the
        # timed retrievals.
        return ExperimentConfig(runs=3, warmup_runs=1)

    def setup(self, context: ExperimentContext) -> None:
        base = context.harness.knowledge_base.entries()
        if not base:
            raise ValueError("harness knowledge base is empty")
        rng = np.random.default_rng(context.harness.seed)
        dim = base[0].embedding.shape[0]
        entries = []
        for i in range(self.entry_pool):
            source = base[i % len(base)]
            entries.append(
                dataclasses.replace(
                    source,
                    entry_id=f"shardbench-{i}",
                    embedding=source.embedding + rng.normal(0.0, 0.05, size=dim),
                )
            )
        context.state["entries"] = entries
        context.state["queries"] = [
            base[i % len(base)].embedding + rng.normal(0.0, 0.1, size=dim)
            for i in range(self.queries)
        ]
        # A dedicated pool the writer thread inserts from (unique ids per
        # phase so single-shard and sharded phases see identical writes).
        context.state["writer_rng_seed"] = int(rng.integers(0, 2**31))

    # ----------------------------------------------------------- equivalence
    def _check_equivalence(self, context: ExperimentContext) -> int:
        from repro.knowledge.knowledge_base import KnowledgeBase
        from repro.knowledge.sharding import ShardedKnowledgeBase

        entries = context.state["entries"]
        plain = KnowledgeBase()
        plain.add_many(entries)
        sharded = ShardedKnowledgeBase(self.num_shards)
        sharded.add_many(entries)
        mismatches = 0
        try:
            for query in context.state["queries"]:
                expected = [hit.entry.entry_id for hit in plain.retrieve(query, k=self.k).hits]
                got = [hit.entry.entry_id for hit in sharded.retrieve(query, k=self.k).hits]
                if expected != got:
                    mismatches += 1
        finally:
            sharded.close()
        return mismatches

    # ------------------------------------------------------------ contention
    def _timed_phase(self, context: ExperimentContext, shards: int, phase: str) -> tuple[list[float], int]:
        """Retrieval latencies under a bulk-ingesting writer thread.

        ``shards == 1`` drives the plain single-lock
        :class:`~repro.knowledge.knowledge_base.KnowledgeBase` — the exact
        baseline the sharded layer replaces; otherwise an N-shard
        :class:`~repro.knowledge.sharding.ShardedKnowledgeBase`.  Both see
        the identical write workload: batches of HNSW inserts (the
        expensive path) with the oldest extras removed to bound growth and
        keep the tombstone/ef-inflation path exercised under load.
        """
        from repro.knowledge.knowledge_base import KnowledgeBase
        from repro.knowledge.sharding import ShardedKnowledgeBase
        from repro.knowledge.vector_store import HNSWVectorStore

        entries = context.state["entries"]
        queries = context.state["queries"]
        factory = lambda: HNSWVectorStore(M=8, ef_construction=48, ef_search=24)  # noqa: E731
        if shards == 1:
            kb: Any = KnowledgeBase(vector_store=factory())
        else:
            kb = ShardedKnowledgeBase(shards, store_factory=factory)
        kb.add_many(entries)
        rng = np.random.default_rng(context.state["writer_rng_seed"])
        dim = entries[0].embedding.shape[0]
        stop = threading.Event()
        writes = 0

        def writer() -> None:
            nonlocal writes
            live: list[str] = []
            serial = 0
            while not stop.is_set():
                batch = []
                for _ in range(self.writer_batch):
                    source = entries[serial % len(entries)]
                    batch.append(
                        dataclasses.replace(
                            source,
                            entry_id=f"writer-{phase}-{serial}",
                            embedding=source.embedding + rng.normal(0.0, 0.05, size=dim),
                        )
                    )
                    serial += 1
                kb.add_many(batch)
                live.extend(entry.entry_id for entry in batch)
                writes += len(batch)
                while len(live) > self.max_extra_entries:
                    kb.remove(live.pop(0))
                    writes += 1
                if self.writer_pause_seconds:
                    time.sleep(self.writer_pause_seconds)

        # Warm the retrieval path (and the sharded fan-out pool) before the
        # writer starts, so thread spin-up never lands in the timed series.
        for _ in range(3):
            kb.retrieve(queries[0], k=self.k)
        thread = threading.Thread(target=writer, name=f"kb-writer-{phase}", daemon=True)
        thread.start()
        latencies: list[float] = []
        try:
            for i in range(self.timed_retrievals):
                query = queries[i % len(queries)]
                start = time.perf_counter()
                kb.retrieve(query, k=self.k)
                latencies.append(time.perf_counter() - start)
        finally:
            stop.set()
            thread.join(timeout=10.0)
            if shards > 1:
                kb.close()
        return latencies, writes

    @staticmethod
    def _quantile(values: list[float], q: float) -> float:
        ordered = sorted(values)
        index = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
        return ordered[index]

    def execute(self, context: ExperimentContext) -> RunResult:
        mismatches = self._check_equivalence(context)
        single, single_writes = self._timed_phase(context, 1, "single")
        sharded, sharded_writes = self._timed_phase(context, self.num_shards, "sharded")
        single_p50 = self._quantile(single, 0.50)
        single_p95 = self._quantile(single, 0.95)
        sharded_p50 = self._quantile(sharded, 0.50)
        sharded_p95 = self._quantile(sharded, 0.95)
        return RunResult(
            metrics={
                "retrieve_seconds.single_shard": single,
                "retrieve_seconds.sharded": sharded,
                "p50_speedup": single_p50 / sharded_p50 if sharded_p50 > 0 else 0.0,
                "p95_speedup": single_p95 / sharded_p95 if sharded_p95 > 0 else 0.0,
            },
            counters={
                "topk_mismatch_errors": mismatches,
                "equivalence_queries": len(context.state["queries"]),
                "writer_ops_single_shard": single_writes,
                "writer_ops_sharded": sharded_writes,
            },
            operations=2 * self.timed_retrievals + len(context.state["queries"]),
        )


def build_suites(
    only: tuple[str, ...] | None = None,
) -> dict[str, ExperimentStrategy]:
    """The suite registry, optionally filtered to the requested names."""
    strategies: tuple[ExperimentStrategy, ...] = (
        LatencyBreakdownStrategy(),
        RouterInferenceStrategy(),
        KBScalingStrategy(),
        ServiceThroughputStrategy(),
        StageBreakdownStrategy(),
        ColdPathStrategy(),
        ObsOverheadStrategy(),
        ShardedKBStrategy(),
    )
    registry = {strategy.name: strategy for strategy in strategies}
    if only is None:
        return registry
    unknown = sorted(set(only) - set(registry))
    if unknown:
        raise ValueError(f"unknown suite(s): {', '.join(unknown)}; available: {sorted(registry)}")
    return {name: registry[name] for name in registry if name in only}


def config_overrides(runs: int | None, warmup_runs: int | None, base: ExperimentConfig) -> ExperimentConfig:
    """Apply CLI ``--runs`` / ``--warmups`` overrides onto a default config."""
    merged = asdict(base)
    if runs is not None:
        merged["runs"] = runs
    if warmup_runs is not None:
        merged["warmup_runs"] = warmup_runs
    return ExperimentConfig(**merged)
