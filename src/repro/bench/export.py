"""``BENCH_<suite>.json`` export — the machine-readable perf trajectory.

One file per suite, written at the repo root and committed, so every PR's
perf numbers are diffable and :mod:`repro.bench.compare` can gate CI on
them.  The schema is versioned and deliberately flat:

.. code-block:: json

    {
      "schema_version": 1,
      "suite": "router",
      "profile": "quick",
      "harness": {"scale_factor": 100.0, "...": "..."},
      "config": {"runs": 3, "warmup_runs": 1},
      "duration_seconds": {"count": 3, "mean": 0.1, "p50": 0.1, "...": 0.1},
      "metrics": {"inference_seconds": {"count": 120, "p50": 0.0004, "...": 0.1}},
      "counters": {"routed": 120},
      "throughput": {"operations": 120, "ops_per_second": 2900.0}
    }

Every ``metrics`` entry is the :func:`repro.bench.stats.summarize` shape
(count / mean / min / p50 / p95 / p99 / max), so percentile semantics are
identical across suites and across the serving-layer histograms.
"""

from __future__ import annotations

import json
from dataclasses import asdict
from pathlib import Path
from typing import Any

from repro.bench.runner import StrategyReport

#: Bump on any breaking change to the payload shape; ``compare`` refuses to
#: diff across versions.
SCHEMA_VERSION = 1

#: Keys every exported payload must carry, in the order they are written.
REQUIRED_KEYS = (
    "schema_version",
    "suite",
    "profile",
    "harness",
    "config",
    "duration_seconds",
    "metrics",
    "counters",
    "throughput",
)

#: Keys every per-metric summary must carry (the `summarize` shape).
SUMMARY_KEYS = ("count", "mean", "min", "p50", "p95", "p99", "max")


class BenchSchemaError(ValueError):
    """A payload does not conform to the ``BENCH_*.json`` schema."""


def bench_filename(suite: str) -> str:
    """``BENCH_<suite>.json`` — the committed artifact name for a suite."""
    return f"BENCH_{suite}.json"


def bench_path(directory: str | Path, suite: str) -> Path:
    return Path(directory) / bench_filename(suite)


def report_to_payload(
    report: StrategyReport,
    *,
    profile: str,
    harness_config: dict[str, Any],
) -> dict[str, Any]:
    """Convert a :class:`StrategyReport` into the versioned export shape."""
    return {
        "schema_version": SCHEMA_VERSION,
        "suite": report.name,
        "profile": profile,
        "harness": dict(harness_config),
        "config": asdict(report.config),
        "duration_seconds": dict(report.duration_seconds),
        "metrics": {name: dict(summary) for name, summary in report.metrics.items()},
        "counters": dict(report.counters),
        "throughput": report.throughput,
    }


def validate_payload(payload: dict[str, Any]) -> None:
    """Raise :class:`BenchSchemaError` if ``payload`` is not schema v1."""
    if not isinstance(payload, dict):
        raise BenchSchemaError("payload must be a JSON object")
    missing = [key for key in REQUIRED_KEYS if key not in payload]
    if missing:
        raise BenchSchemaError(f"payload is missing keys: {', '.join(missing)}")
    version = payload["schema_version"]
    if version != SCHEMA_VERSION:
        raise BenchSchemaError(
            f"unsupported schema_version {version!r} (this build reads {SCHEMA_VERSION})"
        )
    if not isinstance(payload["metrics"], dict):
        raise BenchSchemaError("'metrics' must be an object")
    for name, summary in payload["metrics"].items():
        if not isinstance(summary, dict):
            raise BenchSchemaError(f"metric {name!r} must be a summary object")
        absent = [key for key in SUMMARY_KEYS if key not in summary]
        if absent:
            raise BenchSchemaError(f"metric {name!r} is missing {', '.join(absent)}")
    if not isinstance(payload["counters"], dict):
        raise BenchSchemaError("'counters' must be an object")
    throughput = payload["throughput"]
    if not isinstance(throughput, dict) or "ops_per_second" not in throughput:
        raise BenchSchemaError("'throughput' must be an object with 'ops_per_second'")


def write_bench(
    report: StrategyReport,
    directory: str | Path,
    *,
    profile: str,
    harness_config: dict[str, Any],
) -> Path:
    """Write ``BENCH_<suite>.json`` for ``report`` and return its path."""
    payload = report_to_payload(report, profile=profile, harness_config=harness_config)
    validate_payload(payload)
    path = bench_path(directory, report.name)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2, sort_keys=False) + "\n")
    return path


def load_bench(path: str | Path) -> dict[str, Any]:
    """Read and validate one ``BENCH_*.json`` file."""
    try:
        payload = json.loads(Path(path).read_text())
    except json.JSONDecodeError as exc:
        raise BenchSchemaError(f"{path}: not valid JSON ({exc})") from exc
    validate_payload(payload)
    return payload
