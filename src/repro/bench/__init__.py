"""Experiment harness, strategy runner, and reporting for the bench suite.

Layering note: :mod:`repro.bench.strategies` and :mod:`repro.bench.cli`
import :mod:`repro.service`, while the serving layer's metrics import
:mod:`repro.bench.stats`; those two modules are therefore deliberately not
re-exported here — import them directly (``from repro.bench.strategies
import build_suites``) so the dependency graph stays acyclic.
"""

from repro.bench.stats import percentile, percentile_index, summarize
from repro.bench.reporting import format_table, format_percent
from repro.bench.harness import (
    ExperimentHarness,
    KBScalingRow,
    get_default_harness,
    EXAMPLE1_SQL,
)
from repro.bench.runner import (
    ExperimentConfig,
    ExperimentContext,
    ExperimentStrategy,
    RunResult,
    StrategyReport,
    StrategyRunner,
)
from repro.bench.export import (
    SCHEMA_VERSION,
    BenchSchemaError,
    bench_filename,
    bench_path,
    load_bench,
    report_to_payload,
    validate_payload,
    write_bench,
)
from repro.bench.compare import (
    ComparisonReport,
    Direction,
    MetricVerdict,
    Tolerance,
    Verdict,
    compare_directories,
    compare_payloads,
    tolerance_for,
)

__all__ = [
    "percentile",
    "percentile_index",
    "summarize",
    "format_table",
    "format_percent",
    "ExperimentHarness",
    "KBScalingRow",
    "get_default_harness",
    "EXAMPLE1_SQL",
    "ExperimentConfig",
    "ExperimentContext",
    "ExperimentStrategy",
    "RunResult",
    "StrategyReport",
    "StrategyRunner",
    "SCHEMA_VERSION",
    "BenchSchemaError",
    "bench_filename",
    "bench_path",
    "load_bench",
    "report_to_payload",
    "validate_payload",
    "write_bench",
    "ComparisonReport",
    "Direction",
    "MetricVerdict",
    "Tolerance",
    "Verdict",
    "compare_directories",
    "compare_payloads",
    "tolerance_for",
]
