"""Experiment harness and reporting helpers shared by the benchmark suite."""

from repro.bench.reporting import format_table, format_percent
from repro.bench.harness import ExperimentHarness, get_default_harness, EXAMPLE1_SQL

__all__ = [
    "format_table",
    "format_percent",
    "ExperimentHarness",
    "get_default_harness",
    "EXAMPLE1_SQL",
]
