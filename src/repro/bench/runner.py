"""Strategy-pattern experiment runner (the machine-readable bench layer).

The :class:`~repro.bench.harness.ExperimentHarness` knows how to *compute*
every experiment; this module standardises how experiments are *run and
measured* so their results can be exported to ``BENCH_*.json`` and diffed
across PRs:

* :class:`ExperimentStrategy` — the lifecycle contract: ``setup`` once,
  ``execute`` per run (warm-up runs first, excluded from statistics),
  ``teardown`` exactly once even when a run fails;
* :class:`RunResult` — what one run reports: wall-clock duration, named
  metric observations (scalars or per-sample series), counters, and an
  operation count for throughput;
* :class:`StrategyRunner` — drives the lifecycle and pools the measured
  runs into one :class:`StrategyReport` of per-metric summaries
  (p50/p95/p99 via :mod:`repro.bench.stats`), summed counters, and
  aggregate throughput.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Mapping, Sequence

from repro.bench.stats import summarize

if TYPE_CHECKING:  # pragma: no cover
    from repro.bench.harness import ExperimentHarness


@dataclass
class ExperimentConfig:
    """How many times a strategy executes and how many runs are warm-up."""

    runs: int = 3
    warmup_runs: int = 1

    def __post_init__(self) -> None:
        if self.runs < 1:
            raise ValueError("runs must be at least 1")
        if self.warmup_runs < 0:
            raise ValueError("warmup_runs must be >= 0")


@dataclass
class ExperimentContext:
    """Shared state handed to every lifecycle call.

    ``harness`` is the shared experimental setup; ``state`` is a scratch
    dict a strategy may use to pass artifacts from ``setup`` to ``execute``
    to ``teardown`` (prepared workloads, a running service, ...).
    """

    harness: "ExperimentHarness"
    state: dict[str, Any] = field(default_factory=dict)


@dataclass
class RunResult:
    """What a single :meth:`ExperimentStrategy.execute` call observed.

    ``metrics`` maps a metric name to either one scalar observation or a
    list of per-sample observations; the runner pools observations across
    measured runs, so both shapes end up as the same per-metric summary.
    ``counters`` are summed across measured runs.  ``operations`` is how
    many logical operations the run performed (queries explained, routes
    decided, ...) and feeds the aggregate throughput number.
    """

    metrics: Mapping[str, float | Sequence[float]] = field(default_factory=dict)
    counters: Mapping[str, float] = field(default_factory=dict)
    operations: int = 0


class ExperimentStrategy:
    """Base class for runnable experiments (the strategy interface).

    Subclasses set :attr:`name` (the ``BENCH_<name>.json`` suite name) and
    override :meth:`execute`; ``setup``/``teardown`` default to no-ops and
    :meth:`default_config` supplies the run counts used when the caller
    does not override them.
    """

    #: Suite name; becomes the ``BENCH_<name>.json`` file stem.
    name: str = "experiment"

    def default_config(self) -> ExperimentConfig:
        return ExperimentConfig()

    def setup(self, context: ExperimentContext) -> None:
        """One-time preparation before any run (including warm-ups)."""

    def execute(self, context: ExperimentContext) -> RunResult:
        """One measured (or warm-up) run; must return a :class:`RunResult`."""
        raise NotImplementedError

    def teardown(self, context: ExperimentContext) -> None:
        """One-time cleanup; runs even when setup/execute raised."""


@dataclass
class StrategyReport:
    """Pooled result of all measured runs of one strategy."""

    name: str
    config: ExperimentConfig
    metrics: dict[str, dict[str, float]]
    counters: dict[str, float]
    duration_seconds: dict[str, float]
    operations: int
    ops_per_second: float

    @property
    def throughput(self) -> dict[str, float]:
        return {
            "operations": float(self.operations),
            "ops_per_second": self.ops_per_second,
        }


class StrategyRunner:
    """Runs strategies through the full lifecycle and summarises the runs."""

    def __init__(self, harness: "ExperimentHarness"):
        self.harness = harness

    def run(self, strategy: ExperimentStrategy, config: ExperimentConfig | None = None) -> StrategyReport:
        config = strategy.default_config() if config is None else config
        context = ExperimentContext(harness=self.harness)
        measured: list[tuple[RunResult, float]] = []
        # Teardown must run exactly once no matter where a failure lands —
        # a strategy may hold real resources (a live ExplanationService).
        try:
            strategy.setup(context)
            for run_index in range(config.warmup_runs + config.runs):
                start = time.perf_counter()
                result = strategy.execute(context)
                elapsed = time.perf_counter() - start
                if run_index >= config.warmup_runs:
                    measured.append((result, elapsed))
        finally:
            strategy.teardown(context)
        return self._summarise(strategy.name, config, measured)

    @staticmethod
    def _summarise(
        name: str,
        config: ExperimentConfig,
        measured: list[tuple[RunResult, float]],
    ) -> StrategyReport:
        pooled: dict[str, list[float]] = {}
        counters: dict[str, float] = {}
        durations: list[float] = []
        operations = 0
        for result, elapsed in measured:
            durations.append(elapsed)
            operations += result.operations
            for metric, value in result.metrics.items():
                samples = pooled.setdefault(metric, [])
                if isinstance(value, (int, float)):
                    samples.append(float(value))
                else:
                    samples.extend(float(sample) for sample in value)
            for counter, value in result.counters.items():
                counters[counter] = counters.get(counter, 0.0) + float(value)
        total_seconds = sum(durations)
        return StrategyReport(
            name=name,
            config=config,
            metrics={metric: summarize(samples) for metric, samples in sorted(pooled.items())},
            counters=dict(sorted(counters.items())),
            duration_seconds=summarize(durations),
            operations=operations,
            ops_per_second=(operations / total_seconds) if total_seconds > 0 else 0.0,
        )
