"""Shared percentile and summary math for every reported latency number.

One convention, used everywhere a percentile is reported — the serving-layer
histograms (:mod:`repro.service.metrics`), the harness experiments
(:meth:`~repro.bench.harness.ExperimentHarness.router_benchmark`), and the
``BENCH_*.json`` exporter (:mod:`repro.bench.export`) — so a p95 in one
report can be compared against a p95 in another without wondering which
interpolation each used.

The convention is *nearest-rank*: for ``n`` sorted samples the quantile
``f`` maps to index ``round(f * n) - 1`` clamped into ``[0, n - 1]``.  No
interpolation, so every reported value is a sample that actually occurred.
"""

from __future__ import annotations

from typing import Iterable, Sequence

#: The quantiles every summary exports, in export order.
SUMMARY_QUANTILES: tuple[tuple[str, float], ...] = (
    ("p50", 0.50),
    ("p95", 0.95),
    ("p99", 0.99),
)


def percentile_index(size: int, fraction: float) -> int:
    """Nearest-rank index for quantile ``fraction`` over ``size`` samples."""
    if size < 1:
        raise ValueError("size must be at least 1")
    if not 0.0 < fraction <= 1.0:
        raise ValueError("fraction must be in (0, 1]")
    return max(0, min(size - 1, int(round(fraction * size)) - 1))


def percentile(samples: Sequence[float], fraction: float, *, presorted: bool = False) -> float:
    """Nearest-rank percentile of ``samples`` (0 < fraction <= 1).

    Returns 0.0 for an empty sequence so callers reporting on idle
    histograms do not need a special case.
    """
    if not 0.0 < fraction <= 1.0:
        raise ValueError("fraction must be in (0, 1]")
    ordered = list(samples) if presorted else sorted(samples)
    if not ordered:
        return 0.0
    return ordered[percentile_index(len(ordered), fraction)]


def summarize(samples: Iterable[float]) -> dict[str, float]:
    """Count, sum, mean, min/max, and the standard quantiles of ``samples``.

    This is the per-metric shape embedded in ``BENCH_*.json`` and returned
    by :meth:`repro.service.metrics.LatencyHistogram.summary`.  ``sum`` is
    exported so scrapers (the Prometheus exposition in
    :mod:`repro.obs.promtext`) can derive rates from consecutive
    ``sum``/``count`` pairs.
    """
    ordered = sorted(samples)
    if not ordered:
        return {
            "count": 0,
            "sum": 0.0,
            "mean": 0.0,
            "min": 0.0,
            "p50": 0.0,
            "p95": 0.0,
            "p99": 0.0,
            "max": 0.0,
        }
    size = len(ordered)
    total = sum(ordered)
    summary: dict[str, float] = {
        "count": size,
        "sum": total,
        "mean": total / size,
        "min": ordered[0],
    }
    for name, fraction in SUMMARY_QUANTILES:
        summary[name] = ordered[percentile_index(size, fraction)]
    summary["max"] = ordered[-1]
    return summary
