"""``repro-bench`` — run the bench suites and gate on the committed baselines.

Two subcommands:

``repro-bench run``
    Build the experiment harness once, run every (or the selected) suite
    through :class:`~repro.bench.runner.StrategyRunner`, and write one
    ``BENCH_<suite>.json`` per suite into ``--out-dir``.

``repro-bench compare``
    Diff the freshly written files in ``--current-dir`` against the
    committed baselines in ``--baseline-dir`` with the per-metric
    tolerances from :mod:`repro.bench.compare`.  Exit 0 when every gated
    metric holds, 1 on regression, 2 when a baseline is missing or a file
    does not parse — this is what the CI benchmark job gates on.

Runs without installation too: ``PYTHONPATH=src python -m repro.bench.cli``.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Sequence

from repro.bench.compare import DEFAULT_TOLERANCES, compare_directories
from repro.bench.export import write_bench
from repro.bench.reporting import format_table
from repro.bench.runner import StrategyRunner
from repro.bench.strategies import (
    PROFILES,
    build_harness,
    build_suites,
    config_overrides,
    harness_config,
)

DEFAULT_SUITES = tuple(build_suites().keys())


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-bench",
        description="Machine-readable benchmark runner and regression gate.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    run = commands.add_parser("run", help="run suites and write BENCH_<suite>.json files")
    run.add_argument(
        "--suite",
        action="append",
        dest="suites",
        choices=DEFAULT_SUITES,
        help="suite to run (repeatable; default: all)",
    )
    run.add_argument(
        "--profile",
        choices=sorted(PROFILES),
        default="quick",
        help="harness scale: 'quick' (CI / committed baselines) or 'paper'",
    )
    run.add_argument("--out-dir", default=".", help="where BENCH_*.json files are written")
    run.add_argument("--runs", type=int, default=None, help="override measured runs per suite")
    run.add_argument("--warmups", type=int, default=None, help="override warm-up runs per suite")

    compare = commands.add_parser(
        "compare", help="diff a run against committed baselines; nonzero exit on regression"
    )
    compare.add_argument(
        "--suite",
        action="append",
        dest="suites",
        choices=DEFAULT_SUITES,
        help="suite to compare (repeatable; default: all)",
    )
    compare.add_argument("--baseline-dir", default=".", help="directory with committed BENCH_*.json")
    compare.add_argument("--current-dir", default=".", help="directory with the fresh run's BENCH_*.json")
    compare.add_argument(
        "--tolerance-scale",
        type=float,
        default=1.0,
        help="multiply every tolerance (e.g. 2.0 doubles the allowed slack)",
    )
    return parser


def _run(args: argparse.Namespace) -> int:
    suites = build_suites(tuple(args.suites) if args.suites else None)
    print(f"building harness (profile={args.profile}) ...", flush=True)
    build_start = time.perf_counter()
    harness = build_harness(args.profile)
    print(f"harness ready in {time.perf_counter() - build_start:.1f}s", flush=True)
    runner = StrategyRunner(harness)
    setup = harness_config(harness)
    summary_rows = []
    for name, strategy in suites.items():
        config = config_overrides(args.runs, args.warmups, strategy.default_config())
        print(
            f"running suite '{name}' ({config.runs} runs, {config.warmup_runs} warm-ups) ...",
            flush=True,
        )
        report = runner.run(strategy, config)
        path = write_bench(report, args.out_dir, profile=args.profile, harness_config=setup)
        summary_rows.append(
            {
                "suite": name,
                "file": str(path),
                "metrics": len(report.metrics),
                "ops/s": round(report.ops_per_second, 1),
                "p50 run (s)": round(report.duration_seconds["p50"], 3),
            }
        )
    print()
    print(format_table(summary_rows, title="repro-bench run"))
    return 0


def _compare(args: argparse.Namespace) -> int:
    suites = tuple(args.suites) if args.suites else DEFAULT_SUITES
    report = compare_directories(
        args.current_dir,
        args.baseline_dir,
        suites,
        tolerances=DEFAULT_TOLERANCES,
        scale=args.tolerance_scale,
    )
    print(format_table([verdict.as_row() for verdict in report.verdicts], title="repro-bench compare"))
    print()
    if report.errors:
        print(f"FAIL: {len(report.errors)} baseline/schema problem(s)")
    if report.regressions:
        print(f"FAIL: {len(report.regressions)} metric regression(s)")
    if report.exit_code == 0:
        gated = sum(1 for verdict in report.verdicts if verdict.verdict.value == "pass")
        print(f"OK: {gated} gated metrics within tolerance")
    return report.exit_code


def main(argv: Sequence[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "run":
        return _run(args)
    return _compare(args)


if __name__ == "__main__":
    sys.exit(main())
