"""repro — reproduction of "Query Performance Explanation through LLMs for HTAP Systems".

The package is organised around the paper's architecture (Figure 1):

* :mod:`repro.htap` — the HTAP system with TP and AP engines (substrate),
* :mod:`repro.router` — the tree-CNN smart router / plan-pair encoder,
* :mod:`repro.knowledge` — the RAG knowledge base and vector stores,
* :mod:`repro.llm` — the LLM client interface, prompts, and offline simulator,
* :mod:`repro.explainer` — the RAG explanation pipeline (the core contribution),
* :mod:`repro.baselines` — DBG-PT-style and no-RAG baselines,
* :mod:`repro.workloads` — synthetic TPC-H workload generation and labeling,
* :mod:`repro.study` — the simulated participant study,
* :mod:`repro.bench` — experiment harness shared by the benchmark suite,
* :mod:`repro.service` — the concurrent explanation-serving subsystem
  (multi-level caching, micro-batched router inference, admission control).
"""

__version__ = "1.0.0"

from repro.htap import EngineKind, HTAPSystem

__all__ = ["EngineKind", "HTAPSystem", "__version__"]
