"""Execution labeling: ground-truth causal factors behind each engine's win.

The paper's accuracy metric ("91 % of LLM explanations were accurate and
informative") is defined by human experts who know *why* one engine beat the
other.  In this reproduction the workload labeler plays the role of that
oracle: it runs a query on both simulated engines, inspects the plans and the
latency breakdowns, and records the dominant causal factors.  The simulated
experts (:mod:`repro.workloads.experts`) turn factors into curated prose, and
the evaluation panel (:mod:`repro.explainer.evaluation`) grades generated
explanations against the same factors.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.htap.engines.base import EngineKind
from repro.htap.plan.properties import PlanProperties, analyze_plan
from repro.htap.system import HTAPSystem, QueryExecution
from repro.workloads.generator import WorkloadQuery


class ExplanationFactor(enum.Enum):
    """Causal factors that can explain a TP-vs-AP performance difference.

    The taxonomy covers the factors the paper's prompt asks the LLM to focus
    on — join methods, storage formats, index utilisation, plan
    characteristics — plus the overhead factors that make TP win.
    """

    # AP-favourable factors
    HASH_JOIN_VS_NESTED_LOOP = "hash_join_vs_nested_loop"
    NO_USABLE_INDEX = "no_usable_index"
    INDEX_DEFEATED_BY_FUNCTION = "index_defeated_by_function"
    COLUMNAR_PARALLEL_SCAN = "columnar_parallel_scan"
    AGGREGATION_EFFICIENCY = "aggregation_efficiency"
    FULL_SORT_REQUIRED = "full_sort_required"
    LARGE_OFFSET_PENALTY = "large_offset_penalty"

    # TP-favourable factors
    SELECTIVE_INDEX_ACCESS = "selective_index_access"
    INDEX_PROVIDES_ORDER = "index_provides_order"
    SMALL_QUERY_OVERHEAD = "small_query_overhead"
    SMALL_DATA_VOLUME = "small_data_volume"

    @property
    def favours(self) -> EngineKind:
        """Which engine this factor argues for."""
        if self in _TP_FACTORS:
            return EngineKind.TP
        return EngineKind.AP

    @property
    def short_description(self) -> str:
        return _FACTOR_DESCRIPTIONS[self]


_TP_FACTORS = frozenset(
    {
        ExplanationFactor.SELECTIVE_INDEX_ACCESS,
        ExplanationFactor.INDEX_PROVIDES_ORDER,
        ExplanationFactor.SMALL_QUERY_OVERHEAD,
        ExplanationFactor.SMALL_DATA_VOLUME,
    }
)

_FACTOR_DESCRIPTIONS = {
    ExplanationFactor.HASH_JOIN_VS_NESTED_LOOP: (
        "the AP engine joins with hash joins while the TP engine falls back to nested-loop joins"
    ),
    ExplanationFactor.NO_USABLE_INDEX: (
        "no index is available (or usable) for the TP engine's filters or join columns"
    ),
    ExplanationFactor.INDEX_DEFEATED_BY_FUNCTION: (
        "a function applied to the indexed column prevents the TP engine from using the index"
    ),
    ExplanationFactor.COLUMNAR_PARALLEL_SCAN: (
        "the AP engine scans only the referenced columns in parallel, while the TP engine reads "
        "entire rows on a single node"
    ),
    ExplanationFactor.AGGREGATION_EFFICIENCY: (
        "the AP engine aggregates large inputs with vectorised hash aggregation"
    ),
    ExplanationFactor.FULL_SORT_REQUIRED: (
        "the ordering column has no index, so producing the top rows requires processing the "
        "whole input before the limit applies"
    ),
    ExplanationFactor.LARGE_OFFSET_PENALTY: (
        "a large OFFSET forces many rows to be produced and discarded before the limit"
    ),
    ExplanationFactor.SELECTIVE_INDEX_ACCESS: (
        "the TP engine answers the query with a few selective B+-tree index lookups"
    ),
    ExplanationFactor.INDEX_PROVIDES_ORDER: (
        "a TP index already provides the requested order, so the scan stops after the first rows"
    ),
    ExplanationFactor.SMALL_QUERY_OVERHEAD: (
        "the AP engine's fixed scheduling/start-up overhead dominates this small query"
    ),
    ExplanationFactor.SMALL_DATA_VOLUME: (
        "the touched tables are so small that the row engine finishes before the AP engine starts up"
    ),
}


@dataclass
class GroundTruth:
    """Ground-truth label for one query: winner plus causal factors."""

    faster_engine: EngineKind
    speedup: float
    primary_factor: ExplanationFactor
    secondary_factors: list[ExplanationFactor] = field(default_factory=list)
    tp_dominant_component: str = ""
    ap_dominant_component: str = ""

    @property
    def all_factors(self) -> list[ExplanationFactor]:
        return [self.primary_factor, *self.secondary_factors]

    def factor_values(self) -> set[str]:
        return {factor.value for factor in self.all_factors}


@dataclass
class LabeledQuery:
    """A workload query together with its execution record and ground truth."""

    workload_query: WorkloadQuery
    execution: QueryExecution
    ground_truth: GroundTruth
    tp_properties: PlanProperties
    ap_properties: PlanProperties

    @property
    def query_id(self) -> str:
        return self.workload_query.query_id

    @property
    def sql(self) -> str:
        return self.workload_query.sql

    @property
    def faster_engine(self) -> EngineKind:
        return self.ground_truth.faster_engine


#: Queries whose combined scan volume is below this many rows count as "small".
SMALL_DATA_ROW_THRESHOLD = 100_000
#: Speedups below this are treated as ties for secondary-factor purposes.
MINOR_SPEEDUP = 1.2


class WorkloadLabeler:
    """Runs queries on both engines and derives ground-truth factors."""

    def __init__(self, system: HTAPSystem):
        self.system = system

    # ------------------------------------------------------------------ public
    def label(self, workload_query: WorkloadQuery) -> LabeledQuery:
        """Execute and label a single workload query."""
        execution = self.system.run_both(workload_query.sql)
        tp_properties = analyze_plan(execution.plan_pair.tp_plan)
        ap_properties = analyze_plan(execution.plan_pair.ap_plan)
        ground_truth = self._derive_ground_truth(workload_query, execution, tp_properties, ap_properties)
        return LabeledQuery(
            workload_query=workload_query,
            execution=execution,
            ground_truth=ground_truth,
            tp_properties=tp_properties,
            ap_properties=ap_properties,
        )

    def label_many(self, workload_queries: list[WorkloadQuery]) -> list[LabeledQuery]:
        return [self.label(workload_query) for workload_query in workload_queries]

    # --------------------------------------------------------------- internals
    def _derive_ground_truth(
        self,
        workload_query: WorkloadQuery,
        execution: QueryExecution,
        tp_properties: PlanProperties,
        ap_properties: PlanProperties,
    ) -> GroundTruth:
        winner = execution.faster_engine
        if winner is EngineKind.AP:
            factors = self._ap_win_factors(workload_query, execution, tp_properties, ap_properties)
        else:
            factors = self._tp_win_factors(workload_query, execution, tp_properties, ap_properties)
        if not factors:
            # Fallbacks: attribute to the broadest architectural difference.
            if winner is EngineKind.AP:
                factors = [ExplanationFactor.COLUMNAR_PARALLEL_SCAN]
            else:
                factors = [ExplanationFactor.SMALL_QUERY_OVERHEAD]
        return GroundTruth(
            faster_engine=winner,
            speedup=execution.speedup,
            primary_factor=factors[0],
            secondary_factors=factors[1:],
            tp_dominant_component=execution.tp_result.breakdown.dominant_component(),
            ap_dominant_component=execution.ap_result.breakdown.dominant_component(),
        )

    def _index_defeated_by_function(self, workload_query: WorkloadQuery) -> bool:
        """True when a filter wraps an indexed column in a function call."""
        analysis = self.system.analyze(workload_query.sql)
        for info in analysis.access.values():
            for estimate in info.filter_estimates:
                if estimate.index_eligible or estimate.column is None:
                    continue
                if self.system.catalog.index_on_column(info.table, estimate.column) is not None:
                    return True
        return False

    def _ap_win_factors(
        self,
        workload_query: WorkloadQuery,
        execution: QueryExecution,
        tp_properties: PlanProperties,
        ap_properties: PlanProperties,
    ) -> list[ExplanationFactor]:
        factors: list[ExplanationFactor] = []
        tp_dominant = execution.tp_result.breakdown.dominant_component()
        # Join-strategy factor: the TP plan nested-loops while AP hash-joins.
        if tp_properties.uses_nested_loop and ap_properties.uses_hash_join:
            factors.append(ExplanationFactor.HASH_JOIN_VS_NESTED_LOOP)
            if not tp_properties.uses_index:
                factors.append(ExplanationFactor.NO_USABLE_INDEX)
        if self._index_defeated_by_function(workload_query):
            factors.append(ExplanationFactor.INDEX_DEFEATED_BY_FUNCTION)
        if tp_dominant == "sort":
            if (execution.query.offset or 0) >= 1_000:
                factors.append(ExplanationFactor.LARGE_OFFSET_PENALTY)
            factors.append(ExplanationFactor.FULL_SORT_REQUIRED)
        if tp_dominant == "aggregate" or (
            execution.query.has_aggregation and tp_properties.total_scanned_rows > SMALL_DATA_ROW_THRESHOLD
        ):
            factors.append(ExplanationFactor.AGGREGATION_EFFICIENCY)
        if tp_dominant in ("scan", "filter") and not tp_properties.uses_index:
            factors.append(ExplanationFactor.COLUMNAR_PARALLEL_SCAN)
            if not factors[:-1] and not tp_properties.uses_index:
                factors.append(ExplanationFactor.NO_USABLE_INDEX)
        # Deduplicate while preserving order.
        seen: set[ExplanationFactor] = set()
        ordered = [factor for factor in factors if not (factor in seen or seen.add(factor))]
        return ordered

    def _tp_win_factors(
        self,
        workload_query: WorkloadQuery,
        execution: QueryExecution,
        tp_properties: PlanProperties,
        ap_properties: PlanProperties,
    ) -> list[ExplanationFactor]:
        factors: list[ExplanationFactor] = []
        ap_dominant = execution.ap_result.breakdown.dominant_component()
        ordered_index = any(
            node.extra.get("Ordered") for node in execution.plan_pair.tp_plan.walk()
        )
        if ordered_index and execution.query.is_top_n:
            factors.append(ExplanationFactor.INDEX_PROVIDES_ORDER)
        if tp_properties.uses_index and tp_properties.total_scanned_rows <= SMALL_DATA_ROW_THRESHOLD:
            factors.append(ExplanationFactor.SELECTIVE_INDEX_ACCESS)
        if ap_dominant == "startup":
            factors.append(ExplanationFactor.SMALL_QUERY_OVERHEAD)
        if tp_properties.total_scanned_rows <= SMALL_DATA_ROW_THRESHOLD and not tp_properties.uses_index:
            factors.append(ExplanationFactor.SMALL_DATA_VOLUME)
        seen: set[ExplanationFactor] = set()
        ordered = [factor for factor in factors if not (factor in seen or seen.add(factor))]
        return ordered
