"""Simulated database experts.

In the paper, ByteDance database experts write a short explanation for every
query stored in the knowledge base ("AP is faster than TP because TP has to
use nested loop join with no index available.  AP uses hash join, which is
more efficient.") and later grade LLM-generated explanations.  This module
provides the curation half: it converts the ground-truth factors recorded by
the workload labeler into concise, expert-style prose.

The style deliberately mirrors the paper's Table III expert explanation:
one or two sentences naming the dominant factor, optionally a supporting
detail, without the verbosity of the LLM output.
"""

from __future__ import annotations

from repro.htap.engines.base import EngineKind
from repro.workloads.labeling import ExplanationFactor, LabeledQuery

_PRIMARY_SENTENCES = {
    ExplanationFactor.HASH_JOIN_VS_NESTED_LOOP: (
        "{winner} is faster than {loser} because {loser} has to use nested loop join with no "
        "index available. {winner} uses hash join, which is more efficient."
    ),
    ExplanationFactor.NO_USABLE_INDEX: (
        "{winner} is faster because {loser} has no usable index for this query and must scan "
        "the table row by row."
    ),
    ExplanationFactor.INDEX_DEFEATED_BY_FUNCTION: (
        "{winner} is faster because the function applied to the indexed column prevents {loser} "
        "from using its index, forcing a full scan."
    ),
    ExplanationFactor.COLUMNAR_PARALLEL_SCAN: (
        "{winner} is faster because it scans only the referenced columns in parallel, while "
        "{loser} reads entire rows on a single node."
    ),
    ExplanationFactor.AGGREGATION_EFFICIENCY: (
        "{winner} is faster because its vectorised hash aggregation handles the large input far "
        "better than {loser}'s row-at-a-time group aggregate."
    ),
    ExplanationFactor.FULL_SORT_REQUIRED: (
        "{winner} is faster because the ordering column has no index, so the top-N result "
        "requires processing the whole input; {winner} does this with a parallel top-N sort."
    ),
    ExplanationFactor.LARGE_OFFSET_PENALTY: (
        "{winner} is faster because the large OFFSET forces many rows to be produced and "
        "discarded, which {loser} does one row at a time."
    ),
    ExplanationFactor.SELECTIVE_INDEX_ACCESS: (
        "{winner} is faster because the predicate is highly selective and a B+-tree index "
        "answers it with a handful of lookups, while {loser} must scan the whole table."
    ),
    ExplanationFactor.INDEX_PROVIDES_ORDER: (
        "{winner} is faster because an index already provides the requested order, so the scan "
        "stops after the first rows; {loser} must read and sort the entire input."
    ),
    ExplanationFactor.SMALL_QUERY_OVERHEAD: (
        "{winner} is faster because the query touches little data and {loser}'s fixed query "
        "start-up and scheduling overhead dominates its runtime."
    ),
    ExplanationFactor.SMALL_DATA_VOLUME: (
        "{winner} is faster because the referenced tables are tiny; the row engine finishes "
        "before {loser}'s distributed execution even starts."
    ),
}

_SECONDARY_SENTENCES = {
    ExplanationFactor.HASH_JOIN_VS_NESTED_LOOP: "The hash join avoids repeated passes over the inner table.",
    ExplanationFactor.NO_USABLE_INDEX: "None of the filter or join columns has a usable index.",
    ExplanationFactor.INDEX_DEFEATED_BY_FUNCTION: (
        "Applying a function such as SUBSTRING to an indexed column disables index use."
    ),
    ExplanationFactor.COLUMNAR_PARALLEL_SCAN: (
        "Column-oriented storage reads only the needed columns and parallelises the scan."
    ),
    ExplanationFactor.AGGREGATION_EFFICIENCY: "Aggregation over millions of rows favours the vectorised engine.",
    ExplanationFactor.FULL_SORT_REQUIRED: "Without an index on the ordering column the limit cannot stop the scan early.",
    ExplanationFactor.LARGE_OFFSET_PENALTY: "The OFFSET is large relative to the LIMIT, so most produced rows are discarded.",
    ExplanationFactor.SELECTIVE_INDEX_ACCESS: "Only a few rows match, so index lookups touch a tiny fraction of the table.",
    ExplanationFactor.INDEX_PROVIDES_ORDER: "Reading in index order turns the top-N into a short prefix scan.",
    ExplanationFactor.SMALL_QUERY_OVERHEAD: "The analytical engine pays a fixed scheduling cost regardless of data size.",
    ExplanationFactor.SMALL_DATA_VOLUME: "Both tables fit in a handful of pages.",
}


class SimulatedExpert:
    """Generates expert-curated explanations from ground-truth factors.

    Parameters
    ----------
    name:
        Identifier of the expert (the paper uses three experts; names let the
        evaluation panel attribute corrections).
    include_secondary:
        Whether to append one supporting sentence for the first secondary
        factor, mimicking experts who add a short clarification.
    """

    def __init__(self, name: str = "expert-1", include_secondary: bool = True):
        self.name = name
        self.include_secondary = include_secondary

    def explain(self, labeled: LabeledQuery) -> str:
        """Produce the curated explanation for a labeled query."""
        ground_truth = labeled.ground_truth
        winner = ground_truth.faster_engine.value
        loser = ground_truth.faster_engine.other().value
        sentences = [
            _PRIMARY_SENTENCES[ground_truth.primary_factor].format(winner=winner, loser=loser)
        ]
        if self.include_secondary and ground_truth.secondary_factors:
            sentences.append(_SECONDARY_SENTENCES[ground_truth.secondary_factors[0]])
        return " ".join(sentences)

    def execution_verdict(self, labeled: LabeledQuery) -> str:
        """Short execution-result note stored alongside the explanation."""
        execution = labeled.execution
        return (
            f"{execution.faster_engine.value} faster "
            f"(TP {execution.tp_result.latency_seconds:.3f}s, "
            f"AP {execution.ap_result.latency_seconds:.3f}s)"
        )


def factor_is_consistent(factor: ExplanationFactor, winner: EngineKind) -> bool:
    """Whether citing ``factor`` is coherent with ``winner`` being faster.

    Used by the evaluation panel: an explanation that names a TP-favourable
    factor to justify an AP win (or vice versa) is a fundamental error.
    """
    return factor.favours is winner
