"""Dataset assembly: router training set, knowledge-base set, and test set.

The paper's experimental setup (Sections IV and VI):

* the smart router is trained on a large set of plan pairs;
* **20 representative queries** — drawn from the router's training set so the
  encodings attend to performance distinctions — are annotated by experts and
  stored in the knowledge base;
* **200 additional synthetic queries** form the test set.

:func:`build_paper_dataset` reproduces that split deterministically from a
seed.  The knowledge-base queries are chosen with a balanced sweep over the
pattern families so the small KB still covers the whole factor space, which
is the paper's stated hypothesis for why 20 entries suffice.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.htap.system import HTAPSystem
from repro.workloads.generator import WorkloadGenerator
from repro.workloads.labeling import LabeledQuery, WorkloadLabeler


@dataclass
class WorkloadDataset:
    """The three query sets used throughout the experiments."""

    router_training: list[LabeledQuery] = field(default_factory=list)
    knowledge_base: list[LabeledQuery] = field(default_factory=list)
    test: list[LabeledQuery] = field(default_factory=list)

    def summary(self) -> dict[str, int]:
        return {
            "router_training": len(self.router_training),
            "knowledge_base": len(self.knowledge_base),
            "test": len(self.test),
        }

    def all_labeled(self) -> list[LabeledQuery]:
        return [*self.router_training, *self.knowledge_base, *self.test]


def build_paper_dataset(
    system: HTAPSystem,
    *,
    knowledge_base_size: int = 20,
    test_size: int = 200,
    router_training_size: int = 240,
    seed: int = 2024,
) -> WorkloadDataset:
    """Build the paper's experimental dataset on top of ``system``.

    The knowledge-base queries are generated with a balanced pattern sweep
    (coverage of the factor space); they are also included in the router
    training set, matching the paper's note that KB queries come from the
    router's training data.  The test set is sampled from the default
    production-like pattern mix.
    """
    if knowledge_base_size < 0 or test_size < 0 or router_training_size < 0:
        raise ValueError("dataset sizes must be non-negative")
    labeler = WorkloadLabeler(system)

    kb_generator = WorkloadGenerator(seed=seed)
    kb_queries = kb_generator.generate_balanced(knowledge_base_size)
    knowledge_base = labeler.label_many(kb_queries)

    train_generator = WorkloadGenerator(seed=seed + 1)
    extra_training = labeler.label_many(
        train_generator.generate(max(0, router_training_size - knowledge_base_size))
    )
    router_training = [*knowledge_base, *extra_training]

    test_generator = WorkloadGenerator(seed=seed + 2)
    test = labeler.label_many(test_generator.generate(test_size))

    return WorkloadDataset(
        router_training=router_training,
        knowledge_base=knowledge_base,
        test=test,
    )
