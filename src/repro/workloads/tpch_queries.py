"""TPC-H query templates used by the workload generator.

Each template is a function ``(rng) -> (sql, params)`` producing a concrete
SQL string plus the parameter dictionary that instantiated it.  Templates are
grouped into the two pattern families of the paper (join queries and top-N
queries) plus the auxiliary single-table patterns needed to cover the cases
where the TP engine wins (selective index access, small tables, point
lookups).

The constants below (market segments, nations, phone prefixes, order
statuses) follow the TPC-H specification's domains so the statistics module
produces sensible selectivities.
"""

from __future__ import annotations

import random

MARKET_SEGMENTS = ["automobile", "building", "furniture", "machinery", "household"]
NATIONS = [
    "algeria", "argentina", "brazil", "canada", "egypt", "ethiopia", "france",
    "germany", "india", "indonesia", "iran", "iraq", "japan", "jordan", "kenya",
    "morocco", "mozambique", "peru", "china", "romania", "saudi arabia",
    "vietnam", "russia", "united kingdom", "united states",
]
PHONE_PREFIXES = [str(prefix) for prefix in range(10, 35)]
ORDER_STATUSES = ["o", "f", "p"]
ORDER_PRIORITIES = ["1-urgent", "2-high", "3-medium", "4-not specified", "5-low"]
SHIP_MODES = ["reg air", "air", "rail", "ship", "truck", "mail", "fob"]
RETURN_FLAGS = ["r", "a", "n"]
SHIP_DATES = [f"199{year}-{month:02d}-01" for year in range(2, 9) for month in (3, 6, 9, 12)]


def _choose(rng: random.Random, values: list[str], count: int) -> list[str]:
    return rng.sample(values, min(count, len(values)))


# --------------------------------------------------------------------- joins
def join_3way_phone_prefix(rng: random.Random) -> tuple[str, dict]:
    """The Example-1 family: 3-way join with a function-wrapped IN predicate.

    The SUBSTRING over ``c_phone`` defeats any index on that column, and the
    join columns have no secondary index, so the TP engine is stuck with
    nested-loop joins over large inputs while the AP engine hash-joins.
    """
    prefixes = _choose(rng, PHONE_PREFIXES, rng.randint(3, 8))
    segment = rng.choice(MARKET_SEGMENTS)
    nation = rng.choice(NATIONS)
    status = rng.choice(ORDER_STATUSES)
    prefix_list = ", ".join(f"'{prefix}'" for prefix in prefixes)
    sql = (
        "SELECT COUNT(*) FROM customer, nation, orders "
        f"WHERE SUBSTRING(c_phone, 1, 2) IN ({prefix_list}) "
        f"AND c_mktsegment = '{segment}' "
        f"AND n_name = '{nation}' AND o_orderstatus = '{status}' "
        "AND o_custkey = c_custkey AND n_nationkey = c_nationkey;"
    )
    params = {
        "prefixes": prefixes,
        "segment": segment,
        "nation": nation,
        "status": status,
        "joined_tables": 3,
    }
    return sql, params


def join_2way_customer_orders(rng: random.Random) -> tuple[str, dict]:
    """Customer–orders join with a segment filter; large inputs, no usable index."""
    segment = rng.choice(MARKET_SEGMENTS)
    priority = rng.choice(ORDER_PRIORITIES)
    sql = (
        "SELECT COUNT(*), SUM(o_totalprice) FROM customer, orders "
        f"WHERE c_mktsegment = '{segment}' AND o_orderpriority = '{priority}' "
        "AND c_custkey = o_custkey;"
    )
    return sql, {"segment": segment, "priority": priority, "joined_tables": 2}


def join_2way_orders_lineitem(rng: random.Random) -> tuple[str, dict]:
    """Orders–lineitem join filtered by ship mode and date; the biggest tables."""
    ship_mode = rng.choice(SHIP_MODES)
    ship_date = rng.choice(SHIP_DATES)
    sql = (
        "SELECT COUNT(*), SUM(l_extendedprice) FROM orders, lineitem "
        f"WHERE l_shipmode = '{ship_mode}' AND l_shipdate <= '{ship_date}' "
        "AND l_orderkey = o_orderkey;"
    )
    return sql, {"ship_mode": ship_mode, "ship_date": ship_date, "joined_tables": 2}


def join_4way_supplier_chain(rng: random.Random) -> tuple[str, dict]:
    """Four-way join across the supplier side of the schema."""
    nation = rng.choice(NATIONS)
    ship_mode = rng.choice(SHIP_MODES)
    sql = (
        "SELECT COUNT(*) FROM supplier, nation, lineitem, orders "
        f"WHERE n_name = '{nation}' AND l_shipmode = '{ship_mode}' "
        "AND s_nationkey = n_nationkey AND l_suppkey = s_suppkey "
        "AND l_orderkey = o_orderkey;"
    )
    return sql, {"nation": nation, "ship_mode": ship_mode, "joined_tables": 4}


def join_2way_point_customer(rng: random.Random) -> tuple[str, dict]:
    """Join driven by a primary-key point predicate: very selective on TP."""
    custkey = rng.randint(1, 1_000_000)
    sql = (
        "SELECT c_name, COUNT(*) FROM customer, orders "
        f"WHERE c_custkey = {custkey} AND c_custkey = o_custkey "
        "GROUP BY c_name;"
    )
    return sql, {"custkey": custkey, "joined_tables": 2}


def join_2way_small_tables(rng: random.Random) -> tuple[str, dict]:
    """Join between two small dimension tables: the AP start-up cost dominates."""
    region = rng.choice(["africa", "america", "asia", "europe", "middle east"])
    sql = (
        "SELECT COUNT(*) FROM nation, region "
        f"WHERE r_name = '{region}' AND n_regionkey = r_regionkey;"
    )
    return sql, {"region": region, "joined_tables": 2}


def join_3way_part_supplier(rng: random.Random) -> tuple[str, dict]:
    """Part–partsupp–supplier join with a brand filter."""
    brand = f"brand#{rng.randint(1, 5)}{rng.randint(1, 5)}"
    size = rng.randint(1, 50)
    sql = (
        "SELECT COUNT(*), MIN(ps_supplycost) FROM part, partsupp, supplier "
        f"WHERE p_brand = '{brand}' AND p_size = {size} "
        "AND ps_partkey = p_partkey AND ps_suppkey = s_suppkey;"
    )
    return sql, {"brand": brand, "size": size, "joined_tables": 3}


# --------------------------------------------------------------------- top-N
def topn_orders_by_price(rng: random.Random) -> tuple[str, dict]:
    """Top-N over a non-indexed ordering column: requires a full scan + sort."""
    limit = rng.choice([5, 10, 50, 100])
    status = rng.choice(ORDER_STATUSES)
    sql = (
        "SELECT o_orderkey, o_totalprice FROM orders "
        f"WHERE o_orderstatus = '{status}' "
        f"ORDER BY o_totalprice DESC LIMIT {limit};"
    )
    return sql, {"limit": limit, "status": status, "order_column": "o_totalprice"}


def topn_orders_by_key(rng: random.Random) -> tuple[str, dict]:
    """Top-N ordered by the primary key: the TP index provides the order."""
    limit = rng.choice([5, 10, 20, 100])
    sql = (
        "SELECT o_orderkey, o_totalprice FROM orders "
        f"ORDER BY o_orderkey LIMIT {limit};"
    )
    return sql, {"limit": limit, "order_column": "o_orderkey"}


def topn_customer_by_balance(rng: random.Random) -> tuple[str, dict]:
    """Top-N customers by account balance (non-indexed ordering column)."""
    limit = rng.choice([10, 20, 100])
    segment = rng.choice(MARKET_SEGMENTS)
    sql = (
        "SELECT c_custkey, c_name, c_acctbal FROM customer "
        f"WHERE c_mktsegment = '{segment}' "
        f"ORDER BY c_acctbal DESC LIMIT {limit};"
    )
    return sql, {"limit": limit, "segment": segment, "order_column": "c_acctbal"}


def topn_with_offset(rng: random.Random) -> tuple[str, dict]:
    """Top-N with a large OFFSET — the 'relative value' case DBG-PT cannot judge."""
    limit = rng.choice([10, 20])
    offset = rng.choice([1_000, 10_000, 100_000])
    sql = (
        "SELECT l_orderkey, l_extendedprice FROM lineitem "
        f"ORDER BY l_extendedprice DESC LIMIT {limit} OFFSET {offset};"
    )
    return sql, {"limit": limit, "offset": offset, "order_column": "l_extendedprice"}


def topn_lineitem_by_key(rng: random.Random) -> tuple[str, dict]:
    """Top-N ordered by the lineitem primary key prefix."""
    limit = rng.choice([10, 50])
    sql = (
        "SELECT l_orderkey, l_quantity FROM lineitem "
        f"ORDER BY l_orderkey LIMIT {limit};"
    )
    return sql, {"limit": limit, "order_column": "l_orderkey"}


# -------------------------------------------------------- selective / lookup
def point_lookup_order(rng: random.Random) -> tuple[str, dict]:
    """Primary-key point lookup: the canonical TP-friendly query."""
    orderkey = rng.randint(1, 10_000_000)
    sql = f"SELECT o_totalprice, o_orderdate FROM orders WHERE o_orderkey = {orderkey};"
    return sql, {"orderkey": orderkey}


def range_scan_customer(rng: random.Random) -> tuple[str, dict]:
    """Narrow primary-key range scan on customer."""
    start = rng.randint(1, 5_000_000)
    width = rng.choice([50, 200, 1_000])
    sql = (
        "SELECT c_custkey, c_name, c_acctbal FROM customer "
        f"WHERE c_custkey BETWEEN {start} AND {start + width};"
    )
    return sql, {"start": start, "width": width}


def small_table_scan(rng: random.Random) -> tuple[str, dict]:
    """Tiny dimension-table query; AP's fixed start-up overhead dominates."""
    region_key = rng.randint(0, 4)
    sql = f"SELECT n_name FROM nation WHERE n_regionkey = {region_key};"
    return sql, {"region_key": region_key}


# --------------------------------------------------------------- aggregation
def aggregation_lineitem(rng: random.Random) -> tuple[str, dict]:
    """The TPC-H Q1-like pricing summary: large scan + group aggregation."""
    ship_date = rng.choice(SHIP_DATES)
    sql = (
        "SELECT l_returnflag, l_linestatus, COUNT(*), SUM(l_extendedprice), AVG(l_discount) "
        f"FROM lineitem WHERE l_shipdate <= '{ship_date}' "
        "GROUP BY l_returnflag, l_linestatus;"
    )
    return sql, {"ship_date": ship_date}


def aggregation_orders_by_priority(rng: random.Random) -> tuple[str, dict]:
    """Order counts grouped by priority (few groups, huge scan)."""
    status = rng.choice(ORDER_STATUSES)
    sql = (
        "SELECT o_orderpriority, COUNT(*) FROM orders "
        f"WHERE o_orderstatus = '{status}' GROUP BY o_orderpriority;"
    )
    return sql, {"status": status}
