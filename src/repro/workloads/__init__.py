"""Synthetic TPC-H workload generation, execution labeling, and expert curation.

Section IV of the paper builds its knowledge base from synthetic queries over
the TPC-H schema covering two pattern families — multi-way join queries and
top-N queries — varying the number of joined tables, table sizes, predicate
selectivity and index usage.  This subpackage generates those workloads,
executes them on both engines of the simulated HTAP system, derives the
ground-truth causal factors behind each performance gap, and produces
expert-curated explanations from the factors.
"""

from repro.workloads.generator import WorkloadGenerator, WorkloadQuery, QueryPattern
from repro.workloads.labeling import (
    ExplanationFactor,
    GroundTruth,
    LabeledQuery,
    WorkloadLabeler,
)
from repro.workloads.experts import SimulatedExpert
from repro.workloads.datasets import WorkloadDataset, build_paper_dataset

__all__ = [
    "WorkloadGenerator",
    "WorkloadQuery",
    "QueryPattern",
    "ExplanationFactor",
    "GroundTruth",
    "LabeledQuery",
    "WorkloadLabeler",
    "SimulatedExpert",
    "WorkloadDataset",
    "build_paper_dataset",
]
