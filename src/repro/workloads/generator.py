"""Synthetic workload generation (paper Section IV).

The generator instantiates the query templates in
:mod:`repro.workloads.tpch_queries` with seeded randomness, producing a mixed
workload of join queries and top-N queries (plus the selective/aggregation
patterns that give the TP engine its wins).  Pattern proportions can be
customised; the defaults roughly balance AP-favourable and TP-favourable
cases so the router has a non-trivial classification task and the knowledge
base needs entries for both outcomes.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass, field
from typing import Callable

from repro.workloads import tpch_queries


class QueryPattern(enum.Enum):
    """Workload pattern families (paper Section IV plus TP-friendly patterns)."""

    JOIN_PHONE_PREFIX = "join_phone_prefix"
    JOIN_CUSTOMER_ORDERS = "join_customer_orders"
    JOIN_ORDERS_LINEITEM = "join_orders_lineitem"
    JOIN_SUPPLIER_CHAIN = "join_supplier_chain"
    JOIN_POINT_CUSTOMER = "join_point_customer"
    JOIN_SMALL_TABLES = "join_small_tables"
    JOIN_PART_SUPPLIER = "join_part_supplier"
    TOPN_ORDERS_PRICE = "topn_orders_price"
    TOPN_ORDERS_KEY = "topn_orders_key"
    TOPN_CUSTOMER_BALANCE = "topn_customer_balance"
    TOPN_WITH_OFFSET = "topn_with_offset"
    TOPN_LINEITEM_KEY = "topn_lineitem_key"
    POINT_LOOKUP = "point_lookup"
    RANGE_SCAN = "range_scan"
    SMALL_TABLE = "small_table"
    AGG_LINEITEM = "agg_lineitem"
    AGG_ORDERS = "agg_orders"

    @property
    def family(self) -> str:
        """Coarse family: ``join``, ``topn``, ``selective`` or ``aggregation``."""
        name = self.value
        if name.startswith("join"):
            return "join"
        if name.startswith("topn"):
            return "topn"
        if name.startswith("agg"):
            return "aggregation"
        return "selective"


_TEMPLATE_FUNCTIONS: dict[QueryPattern, Callable[[random.Random], tuple[str, dict]]] = {
    QueryPattern.JOIN_PHONE_PREFIX: tpch_queries.join_3way_phone_prefix,
    QueryPattern.JOIN_CUSTOMER_ORDERS: tpch_queries.join_2way_customer_orders,
    QueryPattern.JOIN_ORDERS_LINEITEM: tpch_queries.join_2way_orders_lineitem,
    QueryPattern.JOIN_SUPPLIER_CHAIN: tpch_queries.join_4way_supplier_chain,
    QueryPattern.JOIN_POINT_CUSTOMER: tpch_queries.join_2way_point_customer,
    QueryPattern.JOIN_SMALL_TABLES: tpch_queries.join_2way_small_tables,
    QueryPattern.JOIN_PART_SUPPLIER: tpch_queries.join_3way_part_supplier,
    QueryPattern.TOPN_ORDERS_PRICE: tpch_queries.topn_orders_by_price,
    QueryPattern.TOPN_ORDERS_KEY: tpch_queries.topn_orders_by_key,
    QueryPattern.TOPN_CUSTOMER_BALANCE: tpch_queries.topn_customer_by_balance,
    QueryPattern.TOPN_WITH_OFFSET: tpch_queries.topn_with_offset,
    QueryPattern.TOPN_LINEITEM_KEY: tpch_queries.topn_lineitem_by_key,
    QueryPattern.POINT_LOOKUP: tpch_queries.point_lookup_order,
    QueryPattern.RANGE_SCAN: tpch_queries.range_scan_customer,
    QueryPattern.SMALL_TABLE: tpch_queries.small_table_scan,
    QueryPattern.AGG_LINEITEM: tpch_queries.aggregation_lineitem,
    QueryPattern.AGG_ORDERS: tpch_queries.aggregation_orders_by_priority,
}

#: Default relative weights: join and top-N queries dominate (the paper's two
#: headline pattern families), with a meaningful share of selective and
#: aggregation queries so both engines win a substantial fraction of queries.
DEFAULT_PATTERN_WEIGHTS: dict[QueryPattern, float] = {
    QueryPattern.JOIN_PHONE_PREFIX: 3.0,
    QueryPattern.JOIN_CUSTOMER_ORDERS: 2.0,
    QueryPattern.JOIN_ORDERS_LINEITEM: 2.0,
    QueryPattern.JOIN_SUPPLIER_CHAIN: 1.5,
    QueryPattern.JOIN_POINT_CUSTOMER: 1.5,
    QueryPattern.JOIN_SMALL_TABLES: 1.0,
    QueryPattern.JOIN_PART_SUPPLIER: 1.5,
    QueryPattern.TOPN_ORDERS_PRICE: 2.0,
    QueryPattern.TOPN_ORDERS_KEY: 2.0,
    QueryPattern.TOPN_CUSTOMER_BALANCE: 1.5,
    QueryPattern.TOPN_WITH_OFFSET: 1.0,
    QueryPattern.TOPN_LINEITEM_KEY: 1.0,
    QueryPattern.POINT_LOOKUP: 2.0,
    QueryPattern.RANGE_SCAN: 1.5,
    QueryPattern.SMALL_TABLE: 1.0,
    QueryPattern.AGG_LINEITEM: 1.5,
    QueryPattern.AGG_ORDERS: 1.0,
}


@dataclass(frozen=True)
class WorkloadQuery:
    """One generated query: SQL text plus generation metadata."""

    query_id: str
    sql: str
    pattern: QueryPattern
    params: dict = field(hash=False)

    @property
    def family(self) -> str:
        return self.pattern.family


class WorkloadGenerator:
    """Seeded generator of synthetic TPC-H workloads.

    Parameters
    ----------
    seed:
        Seed for the pseudo-random generator; identical seeds produce
        identical workloads.
    pattern_weights:
        Relative sampling weight per pattern; defaults to
        :data:`DEFAULT_PATTERN_WEIGHTS`.
    """

    def __init__(
        self,
        seed: int = 2024,
        pattern_weights: dict[QueryPattern, float] | None = None,
    ):
        self.seed = seed
        self._rng = random.Random(seed)
        self.pattern_weights = dict(pattern_weights or DEFAULT_PATTERN_WEIGHTS)
        unknown = set(self.pattern_weights) - set(_TEMPLATE_FUNCTIONS)
        if unknown:
            raise ValueError(f"unknown patterns in weights: {sorted(p.value for p in unknown)}")
        self._counter = 0

    # ------------------------------------------------------------------ public
    def generate_one(self, pattern: QueryPattern | None = None) -> WorkloadQuery:
        """Generate a single query, optionally forcing a pattern."""
        chosen = pattern or self._sample_pattern()
        template = _TEMPLATE_FUNCTIONS[chosen]
        sql, params = template(self._rng)
        self._counter += 1
        return WorkloadQuery(
            query_id=f"q{self._counter:05d}",
            sql=sql,
            pattern=chosen,
            params=params,
        )

    def generate(self, count: int, pattern: QueryPattern | None = None) -> list[WorkloadQuery]:
        """Generate ``count`` queries."""
        if count < 0:
            raise ValueError("count must be non-negative")
        return [self.generate_one(pattern) for _ in range(count)]

    def generate_balanced(self, count: int) -> list[WorkloadQuery]:
        """Generate a workload that cycles through every pattern evenly.

        Used to build the knowledge base, where the goal is coverage of the
        performance-distinction space rather than matching the production
        query mix.
        """
        patterns = [pattern for pattern in QueryPattern if self.pattern_weights.get(pattern, 0) > 0]
        queries: list[WorkloadQuery] = []
        for index in range(count):
            queries.append(self.generate_one(patterns[index % len(patterns)]))
        return queries

    # ---------------------------------------------------------------- internal
    def _sample_pattern(self) -> QueryPattern:
        patterns = list(self.pattern_weights)
        weights = [self.pattern_weights[pattern] for pattern in patterns]
        return self._rng.choices(patterns, weights=weights, k=1)[0]
