"""Recursive-descent parser for the SQL subset.

Grammar (informal):

.. code-block:: text

    query      := SELECT select_list FROM table_list
                  [WHERE expr] [GROUP BY expr_list]
                  [ORDER BY order_list] [LIMIT n] [OFFSET n] [;]
    select_list:= select_item (',' select_item)*
    select_item:= expr [AS ident] | '*'
    table_list := ident (',' ident)*            -- comma joins, like the paper
                | ident (JOIN ident ON expr)*   -- explicit inner joins
    expr       := or_expr
    or_expr    := and_expr (OR and_expr)*
    and_expr   := not_expr (AND not_expr)*
    not_expr   := NOT not_expr | predicate
    predicate  := primary [cmp primary | IN (...) | BETWEEN .. AND ..
                  | LIKE '...' | IS [NOT] NULL]
    primary    := literal | ident['.'ident] | func '(' args ')' | '(' expr ')' | '*'

The parser produces :mod:`repro.htap.sql.ast` nodes.  It raises
:class:`ParserError` with the offending token position on malformed input.
"""

from __future__ import annotations

from repro.htap.sql import ast
from repro.htap.sql.lexer import tokenize
from repro.htap.sql.tokens import Token, TokenType


class ParserError(ValueError):
    """Raised on malformed SQL with the offending token position."""

    def __init__(self, message: str, token: Token):
        super().__init__(f"{message} near {token.value!r} (position {token.position})")
        self.token = token


class _Parser:
    def __init__(self, sql: str):
        self.sql = sql
        self.tokens = tokenize(sql)
        self.index = 0

    # ---------------------------------------------------------------- helpers
    @property
    def current(self) -> Token:
        return self.tokens[self.index]

    def advance(self) -> Token:
        token = self.current
        self.index += 1
        return token

    def expect_keyword(self, keyword: str) -> Token:
        if not self.current.matches_keyword(keyword):
            raise ParserError(f"expected {keyword}", self.current)
        return self.advance()

    def expect(self, token_type: TokenType) -> Token:
        if self.current.type != token_type:
            raise ParserError(f"expected {token_type.value}", self.current)
        return self.advance()

    def accept_keyword(self, keyword: str) -> bool:
        if self.current.matches_keyword(keyword):
            self.advance()
            return True
        return False

    def accept(self, token_type: TokenType) -> bool:
        if self.current.type == token_type:
            self.advance()
            return True
        return False

    # ------------------------------------------------------------------ query
    def parse_query(self) -> ast.Query:
        self.expect_keyword("SELECT")
        select_items = self._parse_select_list()
        self.expect_keyword("FROM")
        tables, join_predicates = self._parse_table_list()
        where = None
        if self.accept_keyword("WHERE"):
            where = self._parse_expression()
        # Fold explicit JOIN ... ON predicates into the WHERE clause so the
        # optimizers see one uniform representation.
        for predicate in join_predicates:
            where = predicate if where is None else ast.And(where, predicate)
        group_by: tuple[ast.Expression, ...] = ()
        if self.accept_keyword("GROUP"):
            self.expect_keyword("BY")
            group_by = tuple(self._parse_expression_list())
        if self.accept_keyword("HAVING"):
            having = self._parse_expression()
            where = having if where is None else ast.And(where, having)
        order_by: tuple[ast.OrderItem, ...] = ()
        if self.accept_keyword("ORDER"):
            self.expect_keyword("BY")
            order_by = tuple(self._parse_order_list())
        limit = None
        if self.accept_keyword("LIMIT"):
            limit = int(self.expect(TokenType.NUMBER).value)
        offset = None
        if self.accept_keyword("OFFSET"):
            offset = int(self.expect(TokenType.NUMBER).value)
        self.accept(TokenType.SEMICOLON)
        if self.current.type != TokenType.EOF:
            raise ParserError("unexpected trailing input", self.current)
        return ast.Query(
            select_items=tuple(select_items),
            tables=tuple(tables),
            where=where,
            group_by=group_by,
            order_by=order_by,
            limit=limit,
            offset=offset,
            raw_sql=self.sql.strip(),
        )

    # ------------------------------------------------------------ select list
    def _parse_select_list(self) -> list[ast.SelectItem]:
        items = [self._parse_select_item()]
        while self.accept(TokenType.COMMA):
            items.append(self._parse_select_item())
        return items

    def _parse_select_item(self) -> ast.SelectItem:
        expression = self._parse_expression()
        alias = None
        if self.accept_keyword("AS"):
            alias = self.expect(TokenType.IDENTIFIER).value
        elif self.current.type == TokenType.IDENTIFIER:
            alias = self.advance().value
        return ast.SelectItem(expression=expression, alias=alias)

    # ------------------------------------------------------------- table list
    def _parse_table_list(self) -> tuple[list[str], list[ast.Expression]]:
        tables = [self.expect(TokenType.IDENTIFIER).value]
        join_predicates: list[ast.Expression] = []
        while True:
            if self.accept(TokenType.COMMA):
                tables.append(self.expect(TokenType.IDENTIFIER).value)
                continue
            if self.current.matches_keyword("INNER") or self.current.matches_keyword("JOIN"):
                self.accept_keyword("INNER")
                self.expect_keyword("JOIN")
                tables.append(self.expect(TokenType.IDENTIFIER).value)
                self.expect_keyword("ON")
                join_predicates.append(self._parse_expression())
                continue
            break
        return tables, join_predicates

    # -------------------------------------------------------------- order list
    def _parse_order_list(self) -> list[ast.OrderItem]:
        items = [self._parse_order_item()]
        while self.accept(TokenType.COMMA):
            items.append(self._parse_order_item())
        return items

    def _parse_order_item(self) -> ast.OrderItem:
        expression = self._parse_expression()
        descending = False
        if self.accept_keyword("DESC"):
            descending = True
        else:
            self.accept_keyword("ASC")
        return ast.OrderItem(expression=expression, descending=descending)

    def _parse_expression_list(self) -> list[ast.Expression]:
        expressions = [self._parse_expression()]
        while self.accept(TokenType.COMMA):
            expressions.append(self._parse_expression())
        return expressions

    # ------------------------------------------------------------- expressions
    def _parse_expression(self) -> ast.Expression:
        return self._parse_or()

    def _parse_or(self) -> ast.Expression:
        left = self._parse_and()
        while self.accept_keyword("OR"):
            right = self._parse_and()
            left = ast.Or(left, right)
        return left

    def _parse_and(self) -> ast.Expression:
        left = self._parse_not()
        while self.accept_keyword("AND"):
            right = self._parse_not()
            left = ast.And(left, right)
        return left

    def _parse_not(self) -> ast.Expression:
        if self.accept_keyword("NOT"):
            return ast.Not(self._parse_not())
        return self._parse_predicate()

    def _parse_predicate(self) -> ast.Expression:
        left = self._parse_primary()
        if self.current.type == TokenType.OPERATOR:
            operator = self.advance().value
            right = self._parse_primary()
            return ast.Comparison(operator=operator, left=left, right=right)
        negated = False
        if self.current.matches_keyword("NOT"):
            # look-ahead for NOT IN / NOT LIKE
            next_token = self.tokens[self.index + 1]
            if next_token.matches_keyword("IN") or next_token.matches_keyword("LIKE"):
                self.advance()
                negated = True
        if self.accept_keyword("IN"):
            return self._parse_in_list(left, negated)
        if self.accept_keyword("LIKE"):
            pattern = self.expect(TokenType.STRING).value
            return ast.Like(operand=left, pattern=pattern, negated=negated)
        if self.accept_keyword("BETWEEN"):
            low = self._parse_primary()
            self.expect_keyword("AND")
            high = self._parse_primary()
            return ast.Between(operand=left, low=low, high=high)
        if self.accept_keyword("IS"):
            null_negated = self.accept_keyword("NOT")
            self.expect_keyword("NULL")
            return ast.IsNull(operand=left, negated=null_negated)
        return left

    def _parse_in_list(self, operand: ast.Expression, negated: bool) -> ast.InList:
        self.expect(TokenType.LPAREN)
        values: list[ast.Literal] = []
        while True:
            token = self.current
            if token.type == TokenType.STRING:
                values.append(ast.Literal(self.advance().value))
            elif token.type == TokenType.NUMBER:
                values.append(ast.Literal(_numeric(self.advance().value)))
            else:
                raise ParserError("expected literal in IN list", token)
            if not self.accept(TokenType.COMMA):
                break
        self.expect(TokenType.RPAREN)
        return ast.InList(operand=operand, values=tuple(values), negated=negated)

    def _parse_primary(self) -> ast.Expression:
        token = self.current
        if token.type == TokenType.NUMBER:
            self.advance()
            return ast.Literal(_numeric(token.value))
        if token.type == TokenType.STRING:
            self.advance()
            return ast.Literal(token.value)
        if token.type == TokenType.STAR:
            self.advance()
            return ast.Star()
        if token.type == TokenType.LPAREN:
            self.advance()
            inner = self._parse_expression()
            self.expect(TokenType.RPAREN)
            return inner
        if token.type == TokenType.KEYWORD and token.value in {"COUNT", "SUM", "AVG", "MIN", "MAX"}:
            self.advance()
            return self._parse_function_call(token.value)
        if token.type == TokenType.IDENTIFIER:
            self.advance()
            if self.current.type == TokenType.LPAREN:
                return self._parse_function_call(token.value)
            if self.current.type == TokenType.DOT:
                self.advance()
                column = self.expect(TokenType.IDENTIFIER).value
                return ast.ColumnRef(name=column, table=token.value)
            return ast.ColumnRef(name=token.value)
        raise ParserError("expected expression", token)

    def _parse_function_call(self, name: str) -> ast.FunctionCall:
        self.expect(TokenType.LPAREN)
        distinct = self.accept_keyword("DISTINCT")
        args: list[ast.Expression] = []
        if not self.accept(TokenType.RPAREN):
            args.append(self._parse_expression())
            while self.accept(TokenType.COMMA):
                args.append(self._parse_expression())
            self.expect(TokenType.RPAREN)
        return ast.FunctionCall(name=name.upper(), args=tuple(args), distinct=distinct)


def _numeric(text: str) -> int | float:
    if "." in text:
        return float(text)
    return int(text)


def parse_query(sql: str) -> ast.Query:
    """Parse ``sql`` into a :class:`repro.htap.sql.ast.Query`.

    Raises
    ------
    ParserError
        If the statement is not in the supported subset.
    """
    return _Parser(sql).parse_query()
