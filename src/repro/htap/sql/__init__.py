"""SQL subset used by the HTAP simulator.

The workload of the paper (Section IV) consists of multi-way join queries and
top-N queries over the TPC-H schema.  This subpackage provides a small but
real SQL front end for that subset: a lexer, an abstract syntax tree, and a
recursive-descent parser.  Both engines plan queries from the same parsed
representation, mirroring ByteHTAP's unified interface.
"""

from repro.htap.sql import ast
from repro.htap.sql.parser import parse_query

__all__ = ["ast", "parse_query"]
