"""Token definitions for the SQL lexer."""

from __future__ import annotations

import enum
from dataclasses import dataclass


class TokenType(enum.Enum):
    """Kinds of tokens produced by the lexer."""

    KEYWORD = "keyword"
    IDENTIFIER = "identifier"
    NUMBER = "number"
    STRING = "string"
    OPERATOR = "operator"
    COMMA = "comma"
    LPAREN = "lparen"
    RPAREN = "rparen"
    STAR = "star"
    DOT = "dot"
    SEMICOLON = "semicolon"
    EOF = "eof"


#: Keywords recognised by the parser (upper-cased for comparison).
KEYWORDS = frozenset(
    {
        "SELECT",
        "FROM",
        "WHERE",
        "AND",
        "OR",
        "NOT",
        "IN",
        "BETWEEN",
        "LIKE",
        "IS",
        "NULL",
        "GROUP",
        "ORDER",
        "BY",
        "HAVING",
        "LIMIT",
        "OFFSET",
        "ASC",
        "DESC",
        "AS",
        "COUNT",
        "SUM",
        "AVG",
        "MIN",
        "MAX",
        "DISTINCT",
        "JOIN",
        "INNER",
        "ON",
    }
)

#: Multi-character operators, checked before single-character ones.
MULTI_CHAR_OPERATORS = ("<>", "!=", "<=", ">=")
SINGLE_CHAR_OPERATORS = ("=", "<", ">", "+", "-", "/", "%")


@dataclass(frozen=True)
class Token:
    """A single lexical token with its source position (for error messages)."""

    type: TokenType
    value: str
    position: int

    def matches_keyword(self, keyword: str) -> bool:
        return self.type == TokenType.KEYWORD and self.value == keyword.upper()

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"Token({self.type.name}, {self.value!r}@{self.position})"
