"""Abstract syntax tree for the SQL subset.

The AST mirrors the structure of the paper's workload: single-block
SELECT queries over one or more TPC-H tables, with conjunctive/disjunctive
filters, equi-join predicates in the WHERE clause, optional GROUP BY,
ORDER BY, LIMIT and OFFSET.  Expressions are small immutable dataclasses so
they hash/compare structurally, which the plan cache and tests rely on.
"""

from __future__ import annotations

from dataclasses import dataclass, field


# --------------------------------------------------------------------------- expressions
class Expression:
    """Base class for scalar expressions."""

    def referenced_columns(self) -> set[str]:
        """Names of all columns referenced anywhere in this expression."""
        return set()


@dataclass(frozen=True)
class ColumnRef(Expression):
    """Reference to a column, optionally qualified by a table name."""

    name: str
    table: str | None = None

    def referenced_columns(self) -> set[str]:
        return {self.name}

    def __str__(self) -> str:
        return f"{self.table}.{self.name}" if self.table else self.name


@dataclass(frozen=True)
class Literal(Expression):
    """A string or numeric constant."""

    value: str | int | float

    def __str__(self) -> str:
        if isinstance(self.value, str):
            return f"'{self.value}'"
        return str(self.value)


@dataclass(frozen=True)
class Star(Expression):
    """``*`` in a select list or ``COUNT(*)``."""

    def __str__(self) -> str:
        return "*"


@dataclass(frozen=True)
class FunctionCall(Expression):
    """A scalar or aggregate function call such as ``SUBSTRING`` or ``COUNT``."""

    name: str
    args: tuple[Expression, ...] = ()
    distinct: bool = False

    def referenced_columns(self) -> set[str]:
        columns: set[str] = set()
        for argument in self.args:
            columns |= argument.referenced_columns()
        return columns

    @property
    def is_aggregate(self) -> bool:
        return self.name.upper() in {"COUNT", "SUM", "AVG", "MIN", "MAX"}

    def __str__(self) -> str:
        inner = ", ".join(str(argument) for argument in self.args)
        prefix = "DISTINCT " if self.distinct else ""
        return f"{self.name.upper()}({prefix}{inner})"


@dataclass(frozen=True)
class Comparison(Expression):
    """A binary comparison: ``left <op> right``."""

    operator: str
    left: Expression
    right: Expression

    def referenced_columns(self) -> set[str]:
        return self.left.referenced_columns() | self.right.referenced_columns()

    def __str__(self) -> str:
        return f"{self.left} {self.operator} {self.right}"


@dataclass(frozen=True)
class InList(Expression):
    """``operand IN (v1, v2, ...)``."""

    operand: Expression
    values: tuple[Literal, ...]
    negated: bool = False

    def referenced_columns(self) -> set[str]:
        return self.operand.referenced_columns()

    def __str__(self) -> str:
        values = ", ".join(str(value) for value in self.values)
        keyword = "NOT IN" if self.negated else "IN"
        return f"{self.operand} {keyword} ({values})"


@dataclass(frozen=True)
class Between(Expression):
    """``operand BETWEEN low AND high``."""

    operand: Expression
    low: Expression
    high: Expression

    def referenced_columns(self) -> set[str]:
        return (
            self.operand.referenced_columns()
            | self.low.referenced_columns()
            | self.high.referenced_columns()
        )

    def __str__(self) -> str:
        return f"{self.operand} BETWEEN {self.low} AND {self.high}"


@dataclass(frozen=True)
class Like(Expression):
    """``operand LIKE 'pattern'``."""

    operand: Expression
    pattern: str
    negated: bool = False

    def referenced_columns(self) -> set[str]:
        return self.operand.referenced_columns()

    def __str__(self) -> str:
        keyword = "NOT LIKE" if self.negated else "LIKE"
        return f"{self.operand} {keyword} '{self.pattern}'"


@dataclass(frozen=True)
class IsNull(Expression):
    """``operand IS [NOT] NULL``."""

    operand: Expression
    negated: bool = False

    def referenced_columns(self) -> set[str]:
        return self.operand.referenced_columns()

    def __str__(self) -> str:
        keyword = "IS NOT NULL" if self.negated else "IS NULL"
        return f"{self.operand} {keyword}"


@dataclass(frozen=True)
class And(Expression):
    left: Expression
    right: Expression

    def referenced_columns(self) -> set[str]:
        return self.left.referenced_columns() | self.right.referenced_columns()

    def __str__(self) -> str:
        return f"({self.left} AND {self.right})"


@dataclass(frozen=True)
class Or(Expression):
    left: Expression
    right: Expression

    def referenced_columns(self) -> set[str]:
        return self.left.referenced_columns() | self.right.referenced_columns()

    def __str__(self) -> str:
        return f"({self.left} OR {self.right})"


@dataclass(frozen=True)
class Not(Expression):
    operand: Expression

    def referenced_columns(self) -> set[str]:
        return self.operand.referenced_columns()

    def __str__(self) -> str:
        return f"NOT ({self.operand})"


# ------------------------------------------------------------------------ query structure
@dataclass(frozen=True)
class SelectItem:
    """One item in the SELECT list, with an optional alias."""

    expression: Expression
    alias: str | None = None

    def __str__(self) -> str:
        if self.alias:
            return f"{self.expression} AS {self.alias}"
        return str(self.expression)


@dataclass(frozen=True)
class OrderItem:
    """One item in the ORDER BY clause."""

    expression: Expression
    descending: bool = False

    def __str__(self) -> str:
        return f"{self.expression} {'DESC' if self.descending else 'ASC'}"


@dataclass(frozen=True)
class Query:
    """A parsed single-block SELECT query."""

    select_items: tuple[SelectItem, ...]
    tables: tuple[str, ...]
    where: Expression | None = None
    group_by: tuple[Expression, ...] = ()
    order_by: tuple[OrderItem, ...] = ()
    limit: int | None = None
    offset: int | None = None
    raw_sql: str = field(default="", compare=False)

    @property
    def has_aggregation(self) -> bool:
        """True when the select list contains an aggregate function."""
        return any(
            isinstance(item.expression, FunctionCall) and item.expression.is_aggregate
            for item in self.select_items
        ) or bool(self.group_by)

    @property
    def is_top_n(self) -> bool:
        """True for the paper's "Top-N" pattern: ORDER BY with a LIMIT."""
        return bool(self.order_by) and self.limit is not None

    def referenced_columns(self) -> set[str]:
        """All columns referenced anywhere in the query."""
        columns: set[str] = set()
        for item in self.select_items:
            columns |= item.expression.referenced_columns()
        if self.where is not None:
            columns |= self.where.referenced_columns()
        for expression in self.group_by:
            columns |= expression.referenced_columns()
        for item in self.order_by:
            columns |= item.expression.referenced_columns()
        return columns


def conjuncts(expression: Expression | None) -> list[Expression]:
    """Flatten a WHERE clause into its top-level AND-ed conjuncts."""
    if expression is None:
        return []
    if isinstance(expression, And):
        return conjuncts(expression.left) + conjuncts(expression.right)
    return [expression]


def combine_conjuncts(parts: list[Expression]) -> Expression | None:
    """Rebuild an AND tree from a list of conjuncts (inverse of :func:`conjuncts`)."""
    if not parts:
        return None
    result = parts[0]
    for part in parts[1:]:
        result = And(result, part)
    return result


def is_join_predicate(expression: Expression) -> bool:
    """True for an equality between two bare column references."""
    return (
        isinstance(expression, Comparison)
        and expression.operator == "="
        and isinstance(expression.left, ColumnRef)
        and isinstance(expression.right, ColumnRef)
    )
