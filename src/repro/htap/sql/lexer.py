"""Hand-written lexer for the SQL subset.

The lexer is deliberately small: it recognises identifiers, keywords, numeric
and string literals, parentheses, commas, ``*`` and the comparison operators
used by TPC-H style queries.  Errors carry the offending position so parser
errors are actionable.
"""

from __future__ import annotations

from repro.htap.sql.tokens import (
    KEYWORDS,
    MULTI_CHAR_OPERATORS,
    SINGLE_CHAR_OPERATORS,
    Token,
    TokenType,
)


class LexerError(ValueError):
    """Raised when the input contains a character the lexer cannot handle."""

    def __init__(self, message: str, position: int):
        super().__init__(f"{message} (at position {position})")
        self.position = position


def tokenize(sql: str) -> list[Token]:
    """Convert ``sql`` into a list of tokens ending with an EOF token."""
    tokens: list[Token] = []
    index = 0
    length = len(sql)
    while index < length:
        char = sql[index]
        if char.isspace():
            index += 1
            continue
        if char == "," :
            tokens.append(Token(TokenType.COMMA, ",", index))
            index += 1
            continue
        if char == "(":
            tokens.append(Token(TokenType.LPAREN, "(", index))
            index += 1
            continue
        if char == ")":
            tokens.append(Token(TokenType.RPAREN, ")", index))
            index += 1
            continue
        if char == ";":
            tokens.append(Token(TokenType.SEMICOLON, ";", index))
            index += 1
            continue
        if char == "*":
            tokens.append(Token(TokenType.STAR, "*", index))
            index += 1
            continue
        if char == ".":
            tokens.append(Token(TokenType.DOT, ".", index))
            index += 1
            continue
        if char == "'":
            token, index = _read_string(sql, index)
            tokens.append(token)
            continue
        if char.isdigit():
            token, index = _read_number(sql, index)
            tokens.append(token)
            continue
        multi = _match_operator(sql, index)
        if multi is not None:
            tokens.append(Token(TokenType.OPERATOR, multi, index))
            index += len(multi)
            continue
        if char.isalpha() or char == "_":
            token, index = _read_word(sql, index)
            tokens.append(token)
            continue
        raise LexerError(f"unexpected character {char!r}", index)
    tokens.append(Token(TokenType.EOF, "", length))
    return tokens


def _read_string(sql: str, start: int) -> tuple[Token, int]:
    """Read a single-quoted string literal starting at ``start``."""
    index = start + 1
    chars: list[str] = []
    while index < len(sql):
        char = sql[index]
        if char == "'":
            # '' escapes a quote inside the literal.
            if index + 1 < len(sql) and sql[index + 1] == "'":
                chars.append("'")
                index += 2
                continue
            return Token(TokenType.STRING, "".join(chars), start), index + 1
        chars.append(char)
        index += 1
    raise LexerError("unterminated string literal", start)


def _read_number(sql: str, start: int) -> tuple[Token, int]:
    index = start
    seen_dot = False
    while index < len(sql) and (sql[index].isdigit() or (sql[index] == "." and not seen_dot)):
        if sql[index] == ".":
            # A trailing dot followed by a non-digit belongs to the next token.
            if index + 1 >= len(sql) or not sql[index + 1].isdigit():
                break
            seen_dot = True
        index += 1
    return Token(TokenType.NUMBER, sql[start:index], start), index


def _read_word(sql: str, start: int) -> tuple[Token, int]:
    index = start
    while index < len(sql) and (sql[index].isalnum() or sql[index] == "_"):
        index += 1
    word = sql[start:index]
    if word.upper() in KEYWORDS:
        return Token(TokenType.KEYWORD, word.upper(), start), index
    return Token(TokenType.IDENTIFIER, word.lower(), start), index


def _match_operator(sql: str, index: int) -> str | None:
    for operator in MULTI_CHAR_OPERATORS:
        if sql.startswith(operator, index):
            return operator
    for operator in SINGLE_CHAR_OPERATORS:
        if sql.startswith(operator, index):
            return operator
    return None
