"""Structural plan diffing.

DBG-PT (the baseline the paper compares against in Section VI-D) reasons
about *differences* between two plans.  This module computes a structural
diff between a TP plan and an AP plan: operators present in one but not the
other, differing join strategies for the same logical join, differing access
paths for the same base table, and the (incomparable) cost estimates.

The diff is consumed by :mod:`repro.baselines.dbgpt` to build its prompt, and
is also useful on its own for debugging the simulator's optimizers.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.htap.plan.nodes import JOIN_NODE_TYPES, SCAN_NODE_TYPES, PlanNode


@dataclass
class ScanDifference:
    """How the two plans access the same base table."""

    table: str
    tp_access: str | None
    ap_access: str | None
    tp_index: str | None
    ap_index: str | None

    @property
    def differs(self) -> bool:
        return self.tp_access != self.ap_access or self.tp_index != self.ap_index

    def describe(self) -> str:
        tp_part = f"{self.tp_access or 'not scanned'}"
        if self.tp_index:
            tp_part += f" using {self.tp_index}"
        ap_part = f"{self.ap_access or 'not scanned'}"
        if self.ap_index:
            ap_part += f" using {self.ap_index}"
        return f"table {self.table}: TP={tp_part}, AP={ap_part}"


@dataclass
class PlanDiff:
    """Structural differences between a TP plan and an AP plan."""

    tp_only_operators: list[str] = field(default_factory=list)
    ap_only_operators: list[str] = field(default_factory=list)
    shared_operators: list[str] = field(default_factory=list)
    tp_join_methods: list[str] = field(default_factory=list)
    ap_join_methods: list[str] = field(default_factory=list)
    scan_differences: list[ScanDifference] = field(default_factory=list)
    tp_total_cost: float = 0.0
    ap_total_cost: float = 0.0
    tp_node_count: int = 0
    ap_node_count: int = 0

    @property
    def join_strategy_differs(self) -> bool:
        return sorted(self.tp_join_methods) != sorted(self.ap_join_methods)

    @property
    def cost_ratio(self) -> float:
        """AP cost divided by TP cost.

        Included because DBG-PT (incorrectly, per the paper) reasons from this
        ratio even though the cost units differ between engines.
        """
        if self.tp_total_cost <= 0:
            return float("inf")
        return self.ap_total_cost / self.tp_total_cost

    def summary_lines(self) -> list[str]:
        """Human-readable bullet list used in the DBG-PT prompt."""
        lines: list[str] = []
        if self.join_strategy_differs:
            lines.append(
                "Join strategies differ: TP uses "
                f"[{', '.join(self.tp_join_methods) or 'no joins'}], AP uses "
                f"[{', '.join(self.ap_join_methods) or 'no joins'}]."
            )
        for difference in self.scan_differences:
            if difference.differs:
                lines.append("Access paths differ for " + difference.describe() + ".")
        if self.tp_only_operators:
            lines.append("Operators only in TP plan: " + ", ".join(sorted(set(self.tp_only_operators))) + ".")
        if self.ap_only_operators:
            lines.append("Operators only in AP plan: " + ", ".join(sorted(set(self.ap_only_operators))) + ".")
        lines.append(
            f"Optimizer cost estimates: TP={self.tp_total_cost:.1f}, AP={self.ap_total_cost:.1f} "
            "(different cost units)."
        )
        return lines


def _operator_multiset(plan: PlanNode) -> list[str]:
    return [node.node_type.value for node in plan.walk()]


def _access_for_table(plan: PlanNode, table: str) -> tuple[str | None, str | None]:
    for node in plan.walk():
        if node.node_type in SCAN_NODE_TYPES and node.relation == table:
            return node.node_type.value, node.index_name
    return None, None


def diff_plans(tp_plan: PlanNode, ap_plan: PlanNode) -> PlanDiff:
    """Compute the structural diff between a TP plan and an AP plan."""
    tp_operators = _operator_multiset(tp_plan)
    ap_operators = _operator_multiset(ap_plan)
    tp_set, ap_set = set(tp_operators), set(ap_operators)
    diff = PlanDiff(
        tp_only_operators=sorted(tp_set - ap_set),
        ap_only_operators=sorted(ap_set - tp_set),
        shared_operators=sorted(tp_set & ap_set),
        tp_join_methods=[node.node_type.value for node in tp_plan.walk() if node.node_type in JOIN_NODE_TYPES],
        ap_join_methods=[node.node_type.value for node in ap_plan.walk() if node.node_type in JOIN_NODE_TYPES],
        tp_total_cost=tp_plan.total_cost,
        ap_total_cost=ap_plan.total_cost,
        tp_node_count=tp_plan.node_count(),
        ap_node_count=ap_plan.node_count(),
    )
    tables = sorted(set(tp_plan.scanned_tables()) | set(ap_plan.scanned_tables()))
    for table in tables:
        tp_access, tp_index = _access_for_table(tp_plan, table)
        ap_access, ap_index = _access_for_table(ap_plan, table)
        diff.scan_differences.append(
            ScanDifference(
                table=table,
                tp_access=tp_access,
                ap_access=ap_access,
                tp_index=tp_index,
                ap_index=ap_index,
            )
        )
    return diff
