"""Plan tree nodes.

Both engines produce plans as trees of :class:`PlanNode`.  Node-type names
follow the paper's Table II exactly ("Nested loop inner join", "Inner hash
join", "Group aggregate", "Table Scan", ...) so the EXPLAIN output, the
tree-CNN featuriser, and the LLM prompts all speak the same vocabulary as the
paper.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterator


class NodeType(enum.Enum):
    """Physical operator types across both engines.

    The string values are the display names used in EXPLAIN output
    (paper Table II format).
    """

    TABLE_SCAN = "Table Scan"
    INDEX_SCAN = "Index Scan"
    INDEX_LOOKUP = "Index Lookup"
    FILTER = "Filter"
    NESTED_LOOP_JOIN = "Nested loop inner join"
    INDEX_NESTED_LOOP_JOIN = "Index nested loop join"
    HASH_JOIN = "Inner hash join"
    HASH = "Hash"
    MERGE_JOIN = "Merge join"
    SORT = "Sort"
    TOP_N_SORT = "Top-N sort"
    LIMIT = "Limit"
    AGGREGATE = "Aggregate"
    GROUP_AGGREGATE = "Group aggregate"
    HASH_AGGREGATE = "Hash aggregate"
    PROJECT = "Project"
    EXCHANGE = "Exchange"

    @classmethod
    def from_display_name(cls, name: str) -> "NodeType":
        for member in cls:
            if member.value == name:
                return member
        raise ValueError(f"unknown plan node type {name!r}")


#: Node types that implement a join.
JOIN_NODE_TYPES = frozenset(
    {
        NodeType.NESTED_LOOP_JOIN,
        NodeType.INDEX_NESTED_LOOP_JOIN,
        NodeType.HASH_JOIN,
        NodeType.MERGE_JOIN,
    }
)

#: Node types that implement an aggregation.
AGGREGATE_NODE_TYPES = frozenset(
    {NodeType.AGGREGATE, NodeType.GROUP_AGGREGATE, NodeType.HASH_AGGREGATE}
)

#: Node types that read base data.
SCAN_NODE_TYPES = frozenset({NodeType.TABLE_SCAN, NodeType.INDEX_SCAN, NodeType.INDEX_LOOKUP})


@dataclass
class PlanNode:
    """A node in a physical query plan tree.

    Attributes
    ----------
    node_type:
        Physical operator type.
    total_cost:
        The engine's own cost estimate for the subtree rooted here.  Costs are
        *not comparable across engines* — the paper stresses this repeatedly —
        so the AP optimizer uses a different cost unit scale than TP.
    plan_rows:
        Estimated output cardinality.
    relation:
        Base table name for scan nodes.
    index_name:
        Index used by index scans / index nested-loop joins.
    predicate:
        Human-readable predicate applied at this node (filter or join
        condition).
    output_columns:
        Columns produced by this node (used by column-store scans to show
        column pruning).
    children:
        Child plan nodes (left/outer first).
    extra:
        Engine-specific annotations (e.g. ``{"Storage": "column-oriented"}``).
    """

    node_type: NodeType
    total_cost: float = 0.0
    plan_rows: float = 1.0
    relation: str | None = None
    index_name: str | None = None
    predicate: str | None = None
    output_columns: tuple[str, ...] = ()
    children: list["PlanNode"] = field(default_factory=list)
    extra: dict[str, str] = field(default_factory=dict)

    # -------------------------------------------------------------- traversal
    def walk(self) -> Iterator["PlanNode"]:
        """Pre-order traversal of the subtree rooted at this node."""
        yield self
        for child in self.children:
            yield from child.walk()

    def depth(self) -> int:
        """Height of the subtree (a single node has depth 1)."""
        if not self.children:
            return 1
        return 1 + max(child.depth() for child in self.children)

    def node_count(self) -> int:
        return sum(1 for _ in self.walk())

    def find_all(self, node_type: NodeType) -> list["PlanNode"]:
        return [node for node in self.walk() if node.node_type == node_type]

    def scan_nodes(self) -> list["PlanNode"]:
        return [node for node in self.walk() if node.node_type in SCAN_NODE_TYPES]

    def join_nodes(self) -> list["PlanNode"]:
        return [node for node in self.walk() if node.node_type in JOIN_NODE_TYPES]

    def aggregate_nodes(self) -> list["PlanNode"]:
        return [node for node in self.walk() if node.node_type in AGGREGATE_NODE_TYPES]

    def scanned_tables(self) -> list[str]:
        """Base tables read by this plan, in traversal order."""
        return [node.relation for node in self.scan_nodes() if node.relation is not None]

    def uses_index(self) -> bool:
        """True when any node in the subtree uses an index."""
        return any(
            node.index_name is not None
            or node.node_type in (NodeType.INDEX_SCAN, NodeType.INDEX_LOOKUP, NodeType.INDEX_NESTED_LOOP_JOIN)
            for node in self.walk()
        )

    # ------------------------------------------------------------- structural
    def structural_signature(self) -> tuple:
        """Hashable structure-only signature (node types + relations).

        Two plans with identical operator trees over the same tables share a
        signature regardless of costs and cardinalities; used for plan caching
        and deduplication in the workload generator.
        """
        return (
            self.node_type.value,
            self.relation,
            tuple(child.structural_signature() for child in self.children),
        )

    def pretty(self, indent: int = 0) -> str:
        """Indented single-string rendering, useful in logs and tests."""
        parts = [self.node_type.value]
        if self.relation:
            parts.append(f"on {self.relation}")
        if self.index_name:
            parts.append(f"using {self.index_name}")
        parts.append(f"(cost={self.total_cost:.2f}, rows={self.plan_rows:.0f})")
        if self.predicate:
            parts.append(f"[{self.predicate}]")
        line = "  " * indent + " ".join(parts)
        lines = [line]
        for child in self.children:
            lines.append(child.pretty(indent + 1))
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.pretty()
