"""Query plan representation shared by the TP and AP engines."""

from repro.htap.plan.nodes import NodeType, PlanNode
from repro.htap.plan.serialize import plan_to_dict, plan_to_json, plan_from_dict
from repro.htap.plan.properties import PlanProperties, analyze_plan
from repro.htap.plan.diff import PlanDiff, diff_plans

__all__ = [
    "NodeType",
    "PlanNode",
    "plan_to_dict",
    "plan_to_json",
    "plan_from_dict",
    "PlanProperties",
    "analyze_plan",
    "PlanDiff",
    "diff_plans",
]
