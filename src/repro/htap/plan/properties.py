"""Derived plan properties.

The explainer, the simulated LLM, and the expert simulator all reason about
plans in terms of a small set of performance-relevant properties: which join
methods appear, whether indexes are used, how much data is scanned, whether
the plan sorts or limits, and so on.  Centralising this analysis keeps the
three components consistent and gives tests a single surface to verify.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.htap.plan.nodes import (
    AGGREGATE_NODE_TYPES,
    JOIN_NODE_TYPES,
    NodeType,
    PlanNode,
)


@dataclass
class PlanProperties:
    """Summary of performance-relevant features of one plan."""

    join_methods: list[str] = field(default_factory=list)
    join_count: int = 0
    uses_index: bool = False
    index_names: list[str] = field(default_factory=list)
    scanned_tables: list[str] = field(default_factory=list)
    largest_scan_rows: float = 0.0
    total_scanned_rows: float = 0.0
    aggregate_methods: list[str] = field(default_factory=list)
    has_sort: bool = False
    has_top_n: bool = False
    has_limit: bool = False
    node_count: int = 0
    depth: int = 0
    estimated_output_rows: float = 0.0
    storage_format: str = "unknown"

    @property
    def dominant_join_method(self) -> str | None:
        """The most frequent join method in the plan (None if no joins)."""
        if not self.join_methods:
            return None
        counts: dict[str, int] = {}
        for method in self.join_methods:
            counts[method] = counts.get(method, 0) + 1
        return max(counts, key=lambda method: (counts[method], method))

    @property
    def uses_nested_loop(self) -> bool:
        return any("Nested loop" in method or "Index nested" in method for method in self.join_methods)

    @property
    def uses_hash_join(self) -> bool:
        return any("hash join" in method.lower() for method in self.join_methods)

    def as_dict(self) -> dict:
        """Plain-dict form, convenient for prompts and JSON storage."""
        return {
            "join_methods": list(self.join_methods),
            "join_count": self.join_count,
            "uses_index": self.uses_index,
            "index_names": list(self.index_names),
            "scanned_tables": list(self.scanned_tables),
            "largest_scan_rows": self.largest_scan_rows,
            "total_scanned_rows": self.total_scanned_rows,
            "aggregate_methods": list(self.aggregate_methods),
            "has_sort": self.has_sort,
            "has_top_n": self.has_top_n,
            "has_limit": self.has_limit,
            "node_count": self.node_count,
            "depth": self.depth,
            "estimated_output_rows": self.estimated_output_rows,
            "storage_format": self.storage_format,
        }


def analyze_plan(plan: PlanNode) -> PlanProperties:
    """Compute :class:`PlanProperties` for a plan tree."""
    properties = PlanProperties()
    properties.node_count = plan.node_count()
    properties.depth = plan.depth()
    properties.estimated_output_rows = plan.plan_rows
    properties.storage_format = plan.extra.get("Storage", "unknown")
    for node in plan.walk():
        if node.node_type in JOIN_NODE_TYPES:
            properties.join_methods.append(node.node_type.value)
            properties.join_count += 1
        if node.node_type in AGGREGATE_NODE_TYPES:
            properties.aggregate_methods.append(node.node_type.value)
        if node.node_type in (NodeType.SORT, NodeType.TOP_N_SORT):
            properties.has_sort = True
        if node.node_type == NodeType.TOP_N_SORT:
            properties.has_top_n = True
        if node.node_type == NodeType.LIMIT:
            properties.has_limit = True
        if node.index_name is not None:
            properties.uses_index = True
            properties.index_names.append(node.index_name)
        if node.node_type in (NodeType.INDEX_SCAN, NodeType.INDEX_LOOKUP, NodeType.INDEX_NESTED_LOOP_JOIN):
            properties.uses_index = True
        if node.node_type in (NodeType.TABLE_SCAN, NodeType.INDEX_SCAN, NodeType.INDEX_LOOKUP):
            if node.relation is not None:
                properties.scanned_tables.append(node.relation)
            properties.largest_scan_rows = max(properties.largest_scan_rows, node.plan_rows)
            properties.total_scanned_rows += node.plan_rows
        if "Storage" in node.extra and properties.storage_format == "unknown":
            properties.storage_format = node.extra["Storage"]
    return properties


def compare_properties(tp: PlanProperties, ap: PlanProperties) -> dict[str, str]:
    """Human-readable comparison of the two plans' properties.

    Used by the un-grounded (no-RAG) reasoning path of the simulated LLM and
    by the DBG-PT baseline, both of which reason directly from plan structure.
    """
    comparison: dict[str, str] = {}
    comparison["join_methods"] = (
        f"TP joins: {', '.join(tp.join_methods) or 'none'}; "
        f"AP joins: {', '.join(ap.join_methods) or 'none'}"
    )
    comparison["index_usage"] = (
        f"TP {'uses' if tp.uses_index else 'does not use'} indexes; "
        f"AP {'uses' if ap.uses_index else 'does not use'} indexes"
    )
    comparison["scan_volume"] = (
        f"TP scans ~{tp.total_scanned_rows:.0f} rows across {len(tp.scanned_tables)} tables; "
        f"AP scans ~{ap.total_scanned_rows:.0f} rows across {len(ap.scanned_tables)} tables"
    )
    comparison["storage"] = f"TP storage: {tp.storage_format}; AP storage: {ap.storage_format}"
    if tp.has_top_n or ap.has_top_n or tp.has_limit or ap.has_limit:
        comparison["top_n"] = (
            f"TP {'has' if (tp.has_top_n or tp.has_limit) else 'lacks'} a Top-N/limit operator; "
            f"AP {'has' if (ap.has_top_n or ap.has_limit) else 'lacks'} one"
        )
    return comparison
