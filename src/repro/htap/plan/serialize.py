"""Serialisation of plan trees to the EXPLAIN dictionary format of the paper.

Table II of the paper shows plans as nested dictionaries with the keys
``'Node Type'``, ``'Total Cost'``, ``'Plan Rows'``, ``'Relation Name'`` and
``'Plans'``.  This module converts :class:`~repro.htap.plan.nodes.PlanNode`
trees to and from that format so that prompts, the knowledge base, and the
benchmark that regenerates Table II all use the exact same representation.
"""

from __future__ import annotations

import json
from typing import Any

from repro.htap.plan.nodes import NodeType, PlanNode


def plan_to_dict(plan: PlanNode, *, include_extra: bool = True) -> dict[str, Any]:
    """Convert a plan tree to the paper's EXPLAIN dictionary format."""
    node: dict[str, Any] = {
        "Node Type": plan.node_type.value,
        "Total Cost": round(float(plan.total_cost), 2),
        "Plan Rows": int(round(plan.plan_rows)),
    }
    if plan.relation is not None:
        node["Relation Name"] = plan.relation
    if plan.index_name is not None:
        node["Index Name"] = plan.index_name
    if plan.predicate is not None:
        node["Filter"] = plan.predicate
    if plan.output_columns:
        node["Output"] = list(plan.output_columns)
    if include_extra and plan.extra:
        node.update(plan.extra)
    if plan.children:
        node["Plans"] = [plan_to_dict(child, include_extra=include_extra) for child in plan.children]
    return node


def plan_to_json(plan: PlanNode, *, indent: int | None = None) -> str:
    """JSON rendering of :func:`plan_to_dict` (used in prompts and storage)."""
    return json.dumps(plan_to_dict(plan), indent=indent)


_KNOWN_KEYS = {
    "Node Type",
    "Total Cost",
    "Plan Rows",
    "Relation Name",
    "Index Name",
    "Filter",
    "Output",
    "Plans",
}


def plan_from_dict(data: dict[str, Any]) -> PlanNode:
    """Rebuild a plan tree from the EXPLAIN dictionary format.

    Unknown keys are preserved in ``extra`` so a round trip is lossless for
    engine-specific annotations.
    """
    if "Node Type" not in data:
        raise ValueError("plan dictionary is missing 'Node Type'")
    extra = {key: value for key, value in data.items() if key not in _KNOWN_KEYS}
    children = [plan_from_dict(child) for child in data.get("Plans", [])]
    output = tuple(data.get("Output", ()))
    return PlanNode(
        node_type=NodeType.from_display_name(data["Node Type"]),
        total_cost=float(data.get("Total Cost", 0.0)),
        plan_rows=float(data.get("Plan Rows", 1.0)),
        relation=data.get("Relation Name"),
        index_name=data.get("Index Name"),
        predicate=data.get("Filter"),
        output_columns=output,
        children=children,
        extra={key: value for key, value in extra.items()},
    )


def plan_pair_to_dict(tp_plan: PlanNode, ap_plan: PlanNode) -> dict[str, Any]:
    """Bundle a TP/AP plan pair the way the knowledge base stores plan details."""
    return {"TP": plan_to_dict(tp_plan), "AP": plan_to_dict(ap_plan)}
