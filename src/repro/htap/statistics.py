"""Optimizer statistics and selectivity estimation for the HTAP simulator.

Real optimizers estimate predicate selectivities from per-column statistics
(distinct counts, min/max, histograms).  The two engines in the paper share
the same data but estimate costs independently; this module gives both of
them a common, deterministic statistics source so that plan shapes and
cardinality estimates are reproducible.

The estimates intentionally follow the classic System-R rules:

* ``col = const``           -> 1 / distinct(col)
* ``col IN (v1..vk)``       -> k / distinct(col)
* ``col < const`` (range)   -> configurable default (1/3)
* ``func(col) ...``         -> same as the underlying predicate, but flagged
                               as *not index-eligible* (the paper's
                               ``SUBSTRING(c_phone, 1, 2) IN (...)`` example)
* conjunctions multiply, disjunctions use inclusion–exclusion.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.htap.catalog import Catalog, Column, ColumnType
from repro.htap.sql import ast

#: Default selectivity for inequality/range predicates when no histogram
#: information narrows them down (the classic System-R 1/3).
DEFAULT_RANGE_SELECTIVITY = 1.0 / 3.0
#: Default selectivity for LIKE patterns with a leading wildcard.
DEFAULT_LIKE_SELECTIVITY = 0.05
#: Selectivity of a prefix-LIKE (``LIKE 'abc%'``) which can use an index.
DEFAULT_PREFIX_LIKE_SELECTIVITY = 0.01


@dataclass(frozen=True)
class PredicateEstimate:
    """Result of estimating a single-table predicate.

    Attributes
    ----------
    selectivity:
        Estimated fraction of rows that satisfy the predicate.
    index_eligible:
        True when a B+-tree index on the referenced column could be used to
        evaluate the predicate (equality / IN / prefix LIKE on a bare column).
        Function-wrapped columns are never index eligible — this drives the
        paper's Example 1, where ``SUBSTRING(c_phone, 1, 2)`` defeats the
        index on ``c_phone``.
    column:
        The referenced column name (None for constant predicates).
    """

    selectivity: float
    index_eligible: bool
    column: str | None


class StatisticsCatalog:
    """Cardinality and selectivity estimation on top of a :class:`Catalog`."""

    def __init__(self, catalog: Catalog):
        self.catalog = catalog

    # ----------------------------------------------------------- cardinalities
    def table_rows(self, table_name: str) -> int:
        return self.catalog.row_count(table_name)

    def distinct_values(self, table_name: str, column_name: str) -> int:
        table = self.catalog.table(table_name)
        column = table.column(column_name)
        return column.distinct_values(self.table_rows(table_name))

    # ------------------------------------------------------------- predicates
    def estimate_predicate(self, table_name: str, predicate: ast.Expression) -> PredicateEstimate:
        """Estimate the selectivity of ``predicate`` against ``table_name``.

        The predicate must reference only columns of the given table
        (single-table filters); join predicates are estimated separately by
        :meth:`estimate_join_selectivity`.
        """
        if isinstance(predicate, ast.And):
            left = self.estimate_predicate(table_name, predicate.left)
            right = self.estimate_predicate(table_name, predicate.right)
            return PredicateEstimate(
                selectivity=left.selectivity * right.selectivity,
                index_eligible=left.index_eligible or right.index_eligible,
                column=left.column if left.index_eligible else right.column,
            )
        if isinstance(predicate, ast.Or):
            left = self.estimate_predicate(table_name, predicate.left)
            right = self.estimate_predicate(table_name, predicate.right)
            combined = left.selectivity + right.selectivity - left.selectivity * right.selectivity
            return PredicateEstimate(selectivity=min(1.0, combined), index_eligible=False, column=None)
        if isinstance(predicate, ast.Not):
            inner = self.estimate_predicate(table_name, predicate.operand)
            return PredicateEstimate(
                selectivity=max(0.0, 1.0 - inner.selectivity),
                index_eligible=False,
                column=inner.column,
            )
        if isinstance(predicate, ast.Comparison):
            return self._estimate_comparison(table_name, predicate)
        if isinstance(predicate, ast.InList):
            return self._estimate_in_list(table_name, predicate)
        if isinstance(predicate, ast.Between):
            return self._estimate_between(table_name, predicate)
        if isinstance(predicate, ast.Like):
            return self._estimate_like(table_name, predicate)
        if isinstance(predicate, ast.IsNull):
            return PredicateEstimate(selectivity=0.01, index_eligible=False, column=None)
        # Unknown expression type: be conservative.
        return PredicateEstimate(selectivity=DEFAULT_RANGE_SELECTIVITY, index_eligible=False, column=None)

    def _column_ref(self, expression: ast.Expression) -> tuple[str | None, bool]:
        """Return ``(column_name, wrapped_in_function)`` for an expression side."""
        if isinstance(expression, ast.ColumnRef):
            return expression.name, False
        if isinstance(expression, ast.FunctionCall):
            for argument in expression.args:
                name, _ = self._column_ref(argument)
                if name is not None:
                    return name, True
            return None, True
        return None, False

    def _selectivity_for_equality(self, table_name: str, column_name: str, value_count: int = 1) -> float:
        distinct = self.distinct_values(table_name, column_name)
        return min(1.0, value_count / max(1, distinct))

    def _estimate_comparison(self, table_name: str, predicate: ast.Comparison) -> PredicateEstimate:
        column_name, wrapped = self._column_ref(predicate.left)
        if column_name is None:
            column_name, wrapped = self._column_ref(predicate.right)
        if column_name is None or not self.catalog.table(table_name).has_column(column_name):
            return PredicateEstimate(DEFAULT_RANGE_SELECTIVITY, index_eligible=False, column=None)
        if predicate.operator == "=":
            selectivity = self._selectivity_for_equality(table_name, column_name)
            return PredicateEstimate(selectivity, index_eligible=not wrapped, column=column_name)
        if predicate.operator in ("<", "<=", ">", ">="):
            return PredicateEstimate(
                DEFAULT_RANGE_SELECTIVITY, index_eligible=not wrapped, column=column_name
            )
        if predicate.operator in ("<>", "!="):
            selectivity = 1.0 - self._selectivity_for_equality(table_name, column_name)
            return PredicateEstimate(selectivity, index_eligible=False, column=column_name)
        return PredicateEstimate(DEFAULT_RANGE_SELECTIVITY, index_eligible=False, column=column_name)

    def _estimate_in_list(self, table_name: str, predicate: ast.InList) -> PredicateEstimate:
        column_name, wrapped = self._column_ref(predicate.operand)
        if column_name is None or not self.catalog.table(table_name).has_column(column_name):
            return PredicateEstimate(DEFAULT_RANGE_SELECTIVITY, index_eligible=False, column=None)
        selectivity = self._selectivity_for_equality(table_name, column_name, len(predicate.values))
        # SUBSTRING(c_phone, 1, 2) IN (...) — the function wrapper defeats the
        # index but the selectivity estimate is unchanged.
        if wrapped:
            table = self.catalog.table(table_name)
            column = table.column(column_name)
            selectivity = self._wrapped_in_selectivity(column, len(predicate.values))
        return PredicateEstimate(selectivity, index_eligible=not wrapped, column=column_name)

    def _wrapped_in_selectivity(self, column: Column, value_count: int) -> float:
        """Selectivity of an IN over a *derived* value (e.g. substring prefix).

        The derived domain is smaller than the column's raw domain; for phone
        prefixes TPC-H has 25 country codes, so we approximate the derived
        distinct count as ``min(distinct, 100)``.
        """
        derived_distinct = 25 if column.type in (ColumnType.CHAR, ColumnType.VARCHAR) else 100
        return min(1.0, value_count / derived_distinct)

    def _estimate_between(self, table_name: str, predicate: ast.Between) -> PredicateEstimate:
        column_name, wrapped = self._column_ref(predicate.operand)
        if column_name is None:
            return PredicateEstimate(DEFAULT_RANGE_SELECTIVITY, index_eligible=False, column=None)
        selectivity = 0.25  # classic System-R default for BETWEEN
        low = predicate.low
        high = predicate.high
        if (
            isinstance(low, ast.Literal)
            and isinstance(high, ast.Literal)
            and isinstance(low.value, (int, float))
            and isinstance(high.value, (int, float))
            and self.catalog.table(table_name).has_column(column_name)
        ):
            # Numeric range against a column whose domain we approximate by its
            # distinct count (keys are dense 1..N in TPC-H), giving much more
            # realistic estimates for narrow key ranges.
            distinct = self.distinct_values(table_name, column_name)
            width = max(0.0, float(high.value) - float(low.value))
            selectivity = min(1.0, max(1.0 / max(1, distinct), width / max(1, distinct)))
        return PredicateEstimate(selectivity, index_eligible=not wrapped, column=column_name)

    def _estimate_like(self, table_name: str, predicate: ast.Like) -> PredicateEstimate:
        column_name, wrapped = self._column_ref(predicate.operand)
        pattern = predicate.pattern
        prefix_match = not pattern.startswith("%")
        selectivity = DEFAULT_PREFIX_LIKE_SELECTIVITY if prefix_match else DEFAULT_LIKE_SELECTIVITY
        return PredicateEstimate(
            selectivity,
            index_eligible=prefix_match and not wrapped,
            column=column_name,
        )

    # ------------------------------------------------------------------- joins
    def estimate_join_selectivity(
        self,
        left_table: str,
        left_column: str,
        right_table: str,
        right_column: str,
    ) -> float:
        """Equi-join selectivity: ``1 / max(distinct(left), distinct(right))``."""
        left_distinct = self.distinct_values(left_table, left_column)
        right_distinct = self.distinct_values(right_table, right_column)
        return 1.0 / max(1, left_distinct, right_distinct)

    def estimate_join_rows(
        self,
        left_rows: float,
        right_rows: float,
        left_table: str,
        left_column: str,
        right_table: str,
        right_column: str,
    ) -> float:
        """Output cardinality of an equi-join given input cardinalities."""
        selectivity = self.estimate_join_selectivity(left_table, left_column, right_table, right_column)
        return max(1.0, left_rows * right_rows * selectivity)

    # ------------------------------------------------------------ aggregations
    def estimate_group_count(self, table_rows: float, group_columns: list[tuple[str, str]]) -> float:
        """Estimated number of groups for GROUP BY over the given columns."""
        if not group_columns:
            return 1.0
        distinct_product = 1.0
        for table_name, column_name in group_columns:
            distinct_product *= self.distinct_values(table_name, column_name)
        return max(1.0, min(table_rows, distinct_product))
