"""Logical query analysis shared by both optimizers.

Both the TP and AP optimizers start from the same decomposition of a parsed
query:

* which base tables it touches,
* the single-table filter attached to each table,
* the equi-join predicates connecting tables (the join graph),
* which columns each table must produce,
* the aggregation / ordering / limit structure.

Keeping this analysis engine-agnostic mirrors the HTAP architecture of the
paper (one SQL front end, two physical planners) and avoids duplicating the
predicate classification logic.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.htap.catalog import Catalog
from repro.htap.sql import ast
from repro.htap.statistics import PredicateEstimate, StatisticsCatalog


@dataclass(frozen=True)
class JoinEdge:
    """An equi-join predicate between two tables."""

    left_table: str
    left_column: str
    right_table: str
    right_column: str

    def involves(self, table: str) -> bool:
        return table in (self.left_table, self.right_table)

    def other_side(self, table: str) -> tuple[str, str]:
        """Return ``(table, column)`` of the side that is *not* ``table``."""
        if table == self.left_table:
            return self.right_table, self.right_column
        if table == self.right_table:
            return self.left_table, self.left_column
        raise ValueError(f"table {table!r} is not part of this join edge")

    def column_for(self, table: str) -> str:
        if table == self.left_table:
            return self.left_column
        if table == self.right_table:
            return self.right_column
        raise ValueError(f"table {table!r} is not part of this join edge")

    def describe(self) -> str:
        return f"{self.left_table}.{self.left_column} = {self.right_table}.{self.right_column}"


@dataclass
class TableAccessInfo:
    """Per-table information derived from the WHERE clause."""

    table: str
    base_rows: int
    filters: list[ast.Expression] = field(default_factory=list)
    filter_estimates: list[PredicateEstimate] = field(default_factory=list)
    required_columns: set[str] = field(default_factory=set)

    @property
    def combined_selectivity(self) -> float:
        selectivity = 1.0
        for estimate in self.filter_estimates:
            selectivity *= estimate.selectivity
        return selectivity

    @property
    def filtered_rows(self) -> float:
        return max(1.0, self.base_rows * self.combined_selectivity)

    @property
    def filter_text(self) -> str | None:
        if not self.filters:
            return None
        return " AND ".join(str(predicate) for predicate in self.filters)

    def best_indexable_filter(self) -> PredicateEstimate | None:
        """The most selective index-eligible filter estimate, if any."""
        candidates = [estimate for estimate in self.filter_estimates if estimate.index_eligible]
        if not candidates:
            return None
        return min(candidates, key=lambda estimate: estimate.selectivity)


@dataclass
class QueryAnalysis:
    """Engine-agnostic decomposition of a query."""

    query: ast.Query
    tables: list[str]
    access: dict[str, TableAccessInfo]
    join_edges: list[JoinEdge]
    aggregates: list[ast.FunctionCall]
    group_by_columns: list[tuple[str, str]]
    order_by_columns: list[tuple[str, str, bool]]
    limit: int | None
    offset: int | None

    @property
    def is_aggregation(self) -> bool:
        return bool(self.aggregates) or bool(self.group_by_columns)

    @property
    def is_top_n(self) -> bool:
        return bool(self.order_by_columns) and self.limit is not None

    @property
    def join_count(self) -> int:
        return len(self.join_edges)

    def edges_for(self, table: str) -> list[JoinEdge]:
        return [edge for edge in self.join_edges if edge.involves(table)]

    def edges_between(self, placed: set[str], table: str) -> list[JoinEdge]:
        """Join edges connecting ``table`` to any already-placed table."""
        return [
            edge
            for edge in self.join_edges
            if edge.involves(table) and edge.other_side(table)[0] in placed
        ]


def _owning_table(catalog: Catalog, query_tables: list[str], column: str) -> str | None:
    """Which of the query's tables owns ``column`` (None if not found)."""
    for table_name in query_tables:
        if catalog.table(table_name).has_column(column):
            return table_name
    return None


def _classify_conjunct(
    catalog: Catalog,
    query_tables: list[str],
    conjunct: ast.Expression,
) -> tuple[str, object]:
    """Classify one conjunct as a join edge, a single-table filter, or other.

    Returns ``("join", JoinEdge)``, ``("filter", (table, expr))`` or
    ``("other", expr)``.
    """
    if ast.is_join_predicate(conjunct):
        assert isinstance(conjunct, ast.Comparison)
        left = conjunct.left
        right = conjunct.right
        assert isinstance(left, ast.ColumnRef) and isinstance(right, ast.ColumnRef)
        left_table = left.table or _owning_table(catalog, query_tables, left.name)
        right_table = right.table or _owning_table(catalog, query_tables, right.name)
        if left_table and right_table and left_table != right_table:
            return "join", JoinEdge(left_table, left.name, right_table, right.name)
    referenced = conjunct.referenced_columns()
    owners = {_owning_table(catalog, query_tables, column) for column in referenced}
    owners.discard(None)
    if len(owners) == 1:
        return "filter", (owners.pop(), conjunct)
    return "other", conjunct


def analyze_query(query: ast.Query, catalog: Catalog, statistics: StatisticsCatalog) -> QueryAnalysis:
    """Decompose ``query`` into the structure both optimizers consume.

    Raises
    ------
    KeyError
        If the query references a table or column not in the catalog.
    """
    tables = [table.lower() for table in query.tables]
    for table_name in tables:
        catalog.table(table_name)  # validate existence early

    access = {
        table_name: TableAccessInfo(table=table_name, base_rows=catalog.row_count(table_name))
        for table_name in tables
    }
    join_edges: list[JoinEdge] = []
    for conjunct in ast.conjuncts(query.where):
        kind, payload = _classify_conjunct(catalog, tables, conjunct)
        if kind == "join":
            assert isinstance(payload, JoinEdge)
            join_edges.append(payload)
        elif kind == "filter":
            table_name, expression = payload  # type: ignore[misc]
            info = access[table_name]
            info.filters.append(expression)
            info.filter_estimates.append(statistics.estimate_predicate(table_name, expression))
        else:
            # Cross-table non-equi predicate: attach to the first referenced
            # table conservatively so it is at least applied somewhere.
            referenced = payload.referenced_columns()  # type: ignore[union-attr]
            for table_name in tables:
                table = catalog.table(table_name)
                if any(table.has_column(column) for column in referenced):
                    access[table_name].filters.append(payload)  # type: ignore[arg-type]
                    access[table_name].filter_estimates.append(
                        statistics.estimate_predicate(table_name, payload)  # type: ignore[arg-type]
                    )
                    break

    # Column requirements: everything referenced by the query, attributed to
    # its owning table (drives AP column pruning).
    for column in query.referenced_columns():
        owner = _owning_table(catalog, tables, column)
        if owner is not None:
            access[owner].required_columns.add(column)
    for edge in join_edges:
        access[edge.left_table].required_columns.add(edge.left_column)
        access[edge.right_table].required_columns.add(edge.right_column)

    aggregates = [
        item.expression
        for item in query.select_items
        if isinstance(item.expression, ast.FunctionCall) and item.expression.is_aggregate
    ]
    group_by_columns: list[tuple[str, str]] = []
    for expression in query.group_by:
        if isinstance(expression, ast.ColumnRef):
            owner = expression.table or _owning_table(catalog, tables, expression.name)
            if owner is not None:
                group_by_columns.append((owner, expression.name))
    order_by_columns: list[tuple[str, str, bool]] = []
    for item in query.order_by:
        if isinstance(item.expression, ast.ColumnRef):
            owner = item.expression.table or _owning_table(catalog, tables, item.expression.name)
            if owner is not None:
                order_by_columns.append((owner, item.expression.name, item.descending))

    return QueryAnalysis(
        query=query,
        tables=tables,
        access=access,
        join_edges=join_edges,
        aggregates=aggregates,
        group_by_columns=group_by_columns,
        order_by_columns=order_by_columns,
        limit=query.limit,
        offset=query.offset,
    )
