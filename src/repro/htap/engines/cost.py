"""Cost models for the two optimizers.

A central point of the paper is that **cost estimates are not comparable
across engines**: the TP optimizer costs plans in page-fetch units
(PostgreSQL-style), while the AP optimizer costs plans in a throughput-based
unit that ends up numerically orders of magnitude larger (compare the paper's
Table II: TP total cost 5213 vs AP total cost 16,500,000 even though AP is
~19x faster).  Keeping two deliberately different cost models reproduces that
property, which in turn is what trips up the DBG-PT baseline.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.htap.catalog import Catalog, Index
from repro.htap.storage.column_store import ColumnStoreModel
from repro.htap.storage.row_store import RowStoreModel


@dataclass(frozen=True)
class TPCostParameters:
    """PostgreSQL-style cost constants for the row engine.

    The absolute scale is deliberately small: the TP optimizer reports totals
    in the thousands while the AP optimizer reports totals in the millions
    (see the paper's Table II), so naively comparing the two numbers points
    the wrong way — exactly the trap the paper warns the LLM about.
    """

    seq_page_cost: float = 0.001
    random_page_cost: float = 0.004
    cpu_tuple_cost: float = 1e-5
    cpu_index_tuple_cost: float = 5e-6
    cpu_operator_cost: float = 2.5e-6


@dataclass(frozen=True)
class APCostParameters:
    """Throughput-style cost constants for the column engine.

    The unit is "abstract work"; the absolute scale is intentionally very
    different from the TP unit.
    """

    bytes_cost: float = 1e-6
    row_cost: float = 0.1
    hash_build_row_cost: float = 0.25
    hash_probe_row_cost: float = 0.12
    aggregate_row_cost: float = 0.15
    sort_row_cost: float = 0.2
    exchange_row_cost: float = 0.02


class TPCostModel:
    """Costing primitives used by the TP optimizer."""

    def __init__(self, catalog: Catalog, row_model: RowStoreModel, parameters: TPCostParameters | None = None):
        self.catalog = catalog
        self.row_model = row_model
        self.parameters = parameters or TPCostParameters()

    def sequential_scan_cost(self, table_name: str) -> float:
        """Full heap scan: sequential pages plus per-tuple CPU."""
        stats = self.row_model.table_stats(table_name)
        return (
            stats.page_count * self.parameters.seq_page_cost
            + stats.row_count * self.parameters.cpu_tuple_cost
        )

    def index_scan_cost(self, index: Index, matching_rows: float) -> float:
        """Index descent plus heap fetches for ``matching_rows`` matches."""
        pages = self.row_model.index_lookup_pages(index, matching_rows)
        return (
            pages * self.parameters.random_page_cost
            + matching_rows * self.parameters.cpu_index_tuple_cost
        )

    def filter_cost(self, input_rows: float, predicate_count: int = 1) -> float:
        return input_rows * self.parameters.cpu_operator_cost * max(1, predicate_count)

    def nested_loop_join_cost(self, outer_rows: float, inner_cost: float, inner_rows: float) -> float:
        """Nested-loop join: the inner is materialised once, then probed.

        The probe term models a per-(outer, candidate) comparison against the
        materialised inner relation.
        """
        probe = outer_rows * inner_rows * self.parameters.cpu_operator_cost * 0.001
        return inner_cost + probe + outer_rows * self.parameters.cpu_tuple_cost

    def index_nested_loop_join_cost(self, outer_rows: float, index: Index, matches_per_probe: float) -> float:
        """Index nested-loop join: one index lookup per outer row."""
        per_probe = self.index_scan_cost(index, max(1.0, matches_per_probe))
        return outer_rows * per_probe * 0.25 + outer_rows * self.parameters.cpu_tuple_cost

    def sort_cost(self, input_rows: float) -> float:
        import math

        if input_rows <= 1:
            return self.parameters.cpu_operator_cost
        return input_rows * math.log2(input_rows) * self.parameters.cpu_operator_cost * 2.0

    def aggregate_cost(self, input_rows: float, group_count: float) -> float:
        return input_rows * self.parameters.cpu_operator_cost * 4.0 + group_count * self.parameters.cpu_tuple_cost


class APCostModel:
    """Costing primitives used by the AP optimizer."""

    def __init__(
        self,
        catalog: Catalog,
        column_model: ColumnStoreModel,
        parameters: APCostParameters | None = None,
    ):
        self.catalog = catalog
        self.column_model = column_model
        self.parameters = parameters or APCostParameters()

    def column_scan_cost(self, table_name: str, columns: list[str], output_rows: float) -> float:
        """Columnar scan: compressed bytes read plus per-row decode work."""
        scanned_bytes = self.column_model.scan_bytes(table_name, columns or None)
        row_count = self.catalog.row_count(table_name)
        return (
            scanned_bytes * self.parameters.bytes_cost
            + row_count * self.parameters.row_cost
            + output_rows * self.parameters.row_cost * 0.1
        )

    def filter_cost(self, input_rows: float) -> float:
        return input_rows * self.parameters.row_cost * 0.2

    def hash_join_cost(self, build_rows: float, probe_rows: float) -> float:
        return (
            build_rows * self.parameters.hash_build_row_cost
            + probe_rows * self.parameters.hash_probe_row_cost
        )

    def aggregate_cost(self, input_rows: float, group_count: float) -> float:
        return input_rows * self.parameters.aggregate_row_cost + group_count * self.parameters.row_cost

    def top_n_sort_cost(self, input_rows: float, limit: int) -> float:
        import math

        heap = max(2.0, float(limit))
        return input_rows * math.log2(heap) * self.parameters.sort_row_cost * 0.25

    def sort_cost(self, input_rows: float) -> float:
        import math

        if input_rows <= 1:
            return self.parameters.sort_row_cost
        return input_rows * math.log2(input_rows) * self.parameters.sort_row_cost

    def exchange_cost(self, input_rows: float) -> float:
        return input_rows * self.parameters.exchange_row_cost
