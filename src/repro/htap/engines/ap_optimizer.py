"""Optimizer for the AP (column-oriented, analytical) engine.

The AP engine models a modern vectorised column store:

* Access paths: columnar table scans that read only the referenced columns;
  filters are applied directly above the scan (there are no B+-tree indexes,
  so any secondary index created for the TP engine is irrelevant here).
* Joins: hash joins only.  The smaller input becomes the build side and is
  wrapped in a ``Hash`` node, exactly like the AP plan in the paper's
  Table II (``Inner hash join`` with children ``[probe, Hash[build]]``).
* Aggregation: plain ``Aggregate`` for scalar aggregates, ``Hash aggregate``
  for GROUP BY.
* Top-N: a ``Top-N sort`` operator that keeps a bounded heap.

Join ordering is greedy: the largest filtered input becomes the initial probe
side and smaller inputs are hashed, which is how left-deep hash-join
pipelines are usually laid out.

Cost figures use the AP cost unit (see :mod:`repro.htap.engines.cost`) and
are intentionally on a very different numeric scale from TP costs.
"""

from __future__ import annotations

from repro.htap.catalog import Catalog
from repro.htap.engines.base import EngineKind
from repro.htap.engines.cost import APCostModel
from repro.htap.engines.query_analysis import QueryAnalysis, TableAccessInfo, analyze_query
from repro.htap.plan.nodes import NodeType, PlanNode
from repro.htap.sql import ast
from repro.htap.statistics import StatisticsCatalog
from repro.htap.storage.column_store import ColumnStoreModel


class APOptimizer:
    """Plan generator for the AP engine."""

    engine = EngineKind.AP

    def __init__(self, catalog: Catalog, statistics: StatisticsCatalog | None = None):
        self.catalog = catalog
        self.statistics = statistics or StatisticsCatalog(catalog)
        self.column_model = ColumnStoreModel(catalog)
        self.cost_model = APCostModel(catalog, self.column_model)

    # ------------------------------------------------------------------ public
    def optimize(self, query: ast.Query) -> PlanNode:
        """Produce an AP physical plan for ``query``."""
        analysis = analyze_query(query, self.catalog, self.statistics)
        return self.optimize_analysis(analysis)

    def optimize_analysis(self, analysis: QueryAnalysis) -> PlanNode:
        plan = self._build_join_tree(analysis)
        plan = self._add_aggregation(plan, analysis)
        plan = self._add_order_and_limit(plan, analysis)
        plan.extra.setdefault("Engine", self.engine.value)
        plan.extra.setdefault("Storage", self.engine.storage_format)
        return plan

    # ------------------------------------------------------------ access paths
    def _access_path(self, info: TableAccessInfo) -> PlanNode:
        """Columnar scan (+ filter) for one base table."""
        table_name = info.table
        columns = sorted(info.required_columns)
        scan = PlanNode(
            node_type=NodeType.TABLE_SCAN,
            total_cost=self.cost_model.column_scan_cost(table_name, columns, float(info.base_rows)),
            plan_rows=float(info.base_rows),
            relation=table_name,
            output_columns=tuple(columns),
            extra={"Storage": "column-oriented"},
        )
        if info.filters:
            return PlanNode(
                node_type=NodeType.FILTER,
                total_cost=scan.total_cost + self.cost_model.filter_cost(info.base_rows),
                plan_rows=info.filtered_rows,
                predicate=info.filter_text,
                children=[scan],
            )
        return scan

    # -------------------------------------------------------------- join tree
    def _join_order(self, analysis: QueryAnalysis) -> list[str]:
        """Largest filtered input first (it becomes the outer probe side)."""
        remaining = set(analysis.tables)
        order: list[str] = []
        if not remaining:
            return order
        first = max(remaining, key=lambda name: analysis.access[name].filtered_rows)
        order.append(first)
        remaining.discard(first)
        while remaining:
            connected = [name for name in remaining if analysis.edges_between(set(order), name)]
            candidates = connected or sorted(remaining)
            next_table = max(candidates, key=lambda name: analysis.access[name].filtered_rows)
            order.append(next_table)
            remaining.discard(next_table)
        return order

    def _build_join_tree(self, analysis: QueryAnalysis) -> PlanNode:
        order = self._join_order(analysis)
        if not order:
            raise ValueError("query references no tables")
        if len(order) == 1:
            return self._access_path(analysis.access[order[0]])

        # The probe (largest) side stays on the left; every further table is
        # built into a hash table.  When the remaining side is itself a join
        # result, the smaller subtree still ends up on the build side.
        probe = self._access_path(analysis.access[order[0]])
        probe_rows = probe.plan_rows
        build_subtree: PlanNode | None = None
        build_rows = 0.0
        build_tables: set[str] = set()
        for table_name in order[1:]:
            access = self._access_path(analysis.access[table_name])
            if build_subtree is None:
                build_subtree = access
                build_rows = access.plan_rows
                build_tables = {table_name}
                continue
            edges = analysis.edges_between(build_tables, table_name)
            selectivity = self._edge_selectivity(analysis, edges, table_name)
            output_rows = max(1.0, build_rows * access.plan_rows * selectivity)
            smaller, larger = (
                (access, build_subtree) if access.plan_rows <= build_rows else (build_subtree, access)
            )
            hash_node = PlanNode(
                node_type=NodeType.HASH,
                total_cost=smaller.total_cost,
                plan_rows=smaller.plan_rows,
                children=[smaller],
            )
            join_cost = (
                larger.total_cost
                + hash_node.total_cost
                + self.cost_model.hash_join_cost(smaller.plan_rows, larger.plan_rows)
            )
            build_subtree = PlanNode(
                node_type=NodeType.HASH_JOIN,
                total_cost=join_cost,
                plan_rows=output_rows,
                predicate=" AND ".join(edge.describe() for edge in edges) if edges else None,
                children=[larger, hash_node],
            )
            build_rows = output_rows
            build_tables.add(table_name)

        assert build_subtree is not None
        edges = [
            edge
            for edge in analysis.join_edges
            if (edge.involves(order[0]) and any(edge.involves(table) for table in build_tables))
        ]
        selectivity = self._edge_selectivity(analysis, edges, order[0])
        output_rows = max(1.0, probe_rows * build_rows * selectivity)
        hash_node = PlanNode(
            node_type=NodeType.HASH,
            total_cost=build_subtree.total_cost,
            plan_rows=build_subtree.plan_rows,
            children=[build_subtree],
        )
        join_cost = (
            probe.total_cost
            + hash_node.total_cost
            + self.cost_model.hash_join_cost(build_subtree.plan_rows, probe_rows)
        )
        return PlanNode(
            node_type=NodeType.HASH_JOIN,
            total_cost=join_cost,
            plan_rows=output_rows,
            predicate=" AND ".join(edge.describe() for edge in edges) if edges else None,
            children=[probe, hash_node],
        )

    def _edge_selectivity(self, analysis: QueryAnalysis, edges: list, table_name: str) -> float:
        """Combined selectivity of the join edges connecting ``table_name``."""
        if not edges:
            return 1.0
        selectivity = 1.0
        for edge in edges:
            other_table, other_column = edge.other_side(table_name)
            selectivity *= self.statistics.estimate_join_selectivity(
                other_table, other_column, table_name, edge.column_for(table_name)
            )
        return selectivity

    # ------------------------------------------------------------ aggregation
    def _add_aggregation(self, plan: PlanNode, analysis: QueryAnalysis) -> PlanNode:
        if not analysis.is_aggregation:
            return plan
        group_count = self.statistics.estimate_group_count(plan.plan_rows, analysis.group_by_columns)
        if analysis.group_by_columns:
            return PlanNode(
                node_type=NodeType.HASH_AGGREGATE,
                total_cost=plan.total_cost + self.cost_model.aggregate_cost(plan.plan_rows, group_count),
                plan_rows=group_count,
                predicate=", ".join(column for _table, column in analysis.group_by_columns),
                children=[plan],
            )
        return PlanNode(
            node_type=NodeType.AGGREGATE,
            total_cost=plan.total_cost + self.cost_model.aggregate_cost(plan.plan_rows, 1.0),
            plan_rows=1.0,
            children=[plan],
        )

    # --------------------------------------------------------- order and limit
    def _add_order_and_limit(self, plan: PlanNode, analysis: QueryAnalysis) -> PlanNode:
        limit_rows = analysis.limit
        offset_rows = analysis.offset or 0
        if analysis.order_by_columns and limit_rows is not None:
            keep = limit_rows + offset_rows
            plan = PlanNode(
                node_type=NodeType.TOP_N_SORT,
                total_cost=plan.total_cost + self.cost_model.top_n_sort_cost(plan.plan_rows, max(1, keep)),
                plan_rows=float(min(plan.plan_rows, keep)),
                predicate=", ".join(
                    f"{column} {'DESC' if descending else 'ASC'}"
                    for _table, column, descending in analysis.order_by_columns
                ),
                extra={"Limit": str(limit_rows), "Offset": str(offset_rows)},
                children=[plan],
            )
        elif analysis.order_by_columns:
            plan = PlanNode(
                node_type=NodeType.SORT,
                total_cost=plan.total_cost + self.cost_model.sort_cost(plan.plan_rows),
                plan_rows=plan.plan_rows,
                predicate=", ".join(
                    f"{column} {'DESC' if descending else 'ASC'}"
                    for _table, column, descending in analysis.order_by_columns
                ),
                children=[plan],
            )
        if limit_rows is not None:
            output = float(min(plan.plan_rows, limit_rows))
            plan = PlanNode(
                node_type=NodeType.LIMIT,
                total_cost=plan.total_cost + 0.01 * (limit_rows + offset_rows),
                plan_rows=output,
                predicate=f"LIMIT {limit_rows}" + (f" OFFSET {offset_rows}" if offset_rows else ""),
                children=[plan],
            )
        return plan
