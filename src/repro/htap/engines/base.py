"""Common engine definitions."""

from __future__ import annotations

import enum


class EngineKind(enum.Enum):
    """The two engines of the HTAP system, named as in the paper."""

    TP = "TP"
    AP = "AP"

    @property
    def storage_format(self) -> str:
        """Storage orientation, used in plan annotations and prompts."""
        if self is EngineKind.TP:
            return "row-oriented"
        return "column-oriented"

    @property
    def description(self) -> str:
        if self is EngineKind.TP:
            return "row-oriented transactional engine (OLTP)"
        return "column-oriented analytical engine (OLAP)"

    def other(self) -> "EngineKind":
        """The opposite engine (TP <-> AP)."""
        return EngineKind.AP if self is EngineKind.TP else EngineKind.TP

    def __str__(self) -> str:
        return self.value
