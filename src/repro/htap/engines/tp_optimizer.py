"""Optimizer for the TP (row-oriented, transactional) engine.

The TP engine models a classic OLTP row store:

* Access paths: full heap scan, or B+-tree index scan when an index-eligible
  predicate exists on an indexed column (function-wrapped columns never
  qualify, which is the paper's ``SUBSTRING(c_phone, ...)`` trap).
* Joins: nested-loop joins only — plain nested loop when the inner join
  column has no index, index nested-loop when it does.  There is no hash
  join, matching the plans in the paper's Table II.
* Aggregation: sort-based "Group aggregate".
* Top-N: Sort + Limit, except when a single-table ORDER BY column is the
  leading column of an index — then the index delivers the order and the
  scan stops after LIMIT+OFFSET rows (the case where TP wins top-N queries).

Join ordering is greedy smallest-estimated-cardinality-first along the join
graph, which is what a simple OLTP optimizer does and reproduces the shape of
the paper's Example 1 plan (nation -> customer -> orders).
"""

from __future__ import annotations

from repro.htap.catalog import Catalog
from repro.htap.engines.base import EngineKind
from repro.htap.engines.cost import TPCostModel
from repro.htap.engines.query_analysis import QueryAnalysis, TableAccessInfo, analyze_query
from repro.htap.plan.nodes import NodeType, PlanNode
from repro.htap.sql import ast
from repro.htap.statistics import StatisticsCatalog
from repro.htap.storage.row_store import RowStoreModel

#: An index path is only attractive when it touches at most this fraction of
#: the table; beyond that a sequential scan is cheaper (random I/O dominates).
INDEX_SCAN_SELECTIVITY_THRESHOLD = 0.05
#: Index nested-loop joins are chosen when the outer side is estimated below
#: this many rows; with a huge outer the repeated lookups lose to other plans.
INDEX_JOIN_MAX_OUTER_ROWS = 5_000_000


class TPOptimizer:
    """Plan generator for the TP engine."""

    engine = EngineKind.TP

    def __init__(self, catalog: Catalog, statistics: StatisticsCatalog | None = None):
        self.catalog = catalog
        self.statistics = statistics or StatisticsCatalog(catalog)
        self.row_model = RowStoreModel(catalog)
        self.cost_model = TPCostModel(catalog, self.row_model)

    # ------------------------------------------------------------------ public
    def optimize(self, query: ast.Query) -> PlanNode:
        """Produce a TP physical plan for ``query``."""
        analysis = analyze_query(query, self.catalog, self.statistics)
        return self.optimize_analysis(analysis)

    def optimize_analysis(self, analysis: QueryAnalysis) -> PlanNode:
        plan = self._build_join_tree(analysis)
        plan = self._add_aggregation(plan, analysis)
        plan = self._add_order_and_limit(plan, analysis)
        plan.extra.setdefault("Engine", self.engine.value)
        plan.extra.setdefault("Storage", self.engine.storage_format)
        return plan

    # ------------------------------------------------------------ access paths
    def _access_path(self, info: TableAccessInfo, *, ordered_column: str | None = None) -> PlanNode:
        """Choose scan + filter operators for one base table.

        ``ordered_column`` asks for the output to be ordered by that column if
        an index can provide the order for free (used for top-N pushdown).
        """
        table_name = info.table
        best_filter = info.best_indexable_filter()
        index = None
        if best_filter is not None and best_filter.column is not None:
            index = self.catalog.index_on_column(table_name, best_filter.column)
        ordered_index = None
        if ordered_column is not None:
            ordered_index = self.catalog.index_on_column(table_name, ordered_column)

        use_filter_index = (
            index is not None
            and best_filter is not None
            and best_filter.selectivity <= INDEX_SCAN_SELECTIVITY_THRESHOLD
        )
        if use_filter_index:
            matching = info.base_rows * best_filter.selectivity
            scan = PlanNode(
                node_type=NodeType.INDEX_SCAN,
                total_cost=self.cost_model.index_scan_cost(index, matching),
                plan_rows=max(1.0, matching),
                relation=table_name,
                index_name=index.name,
                predicate=str(best_filter.column) + " (index condition)",
            )
            remaining = [
                predicate
                for predicate, estimate in zip(info.filters, info.filter_estimates)
                if estimate is not best_filter
            ]
            if remaining:
                residual_selectivity = info.combined_selectivity / best_filter.selectivity
                rows = max(1.0, scan.plan_rows * residual_selectivity)
                return PlanNode(
                    node_type=NodeType.FILTER,
                    total_cost=scan.total_cost + self.cost_model.filter_cost(scan.plan_rows, len(remaining)),
                    plan_rows=rows,
                    predicate=" AND ".join(str(predicate) for predicate in remaining),
                    children=[scan],
                )
            return scan

        if ordered_index is not None and not info.filters:
            # Ordered full index scan (used for top-N when no filter exists).
            scan = PlanNode(
                node_type=NodeType.INDEX_SCAN,
                total_cost=self.cost_model.index_scan_cost(ordered_index, info.base_rows) * 0.5,
                plan_rows=float(info.base_rows),
                relation=table_name,
                index_name=ordered_index.name,
                extra={"Ordered": ordered_column or ""},
            )
            return scan

        scan = PlanNode(
            node_type=NodeType.TABLE_SCAN,
            total_cost=self.cost_model.sequential_scan_cost(table_name),
            plan_rows=float(info.base_rows),
            relation=table_name,
        )
        if info.filters:
            return PlanNode(
                node_type=NodeType.FILTER,
                total_cost=scan.total_cost + self.cost_model.filter_cost(info.base_rows, len(info.filters)),
                plan_rows=info.filtered_rows,
                predicate=info.filter_text,
                children=[scan],
            )
        return scan

    # -------------------------------------------------------------- join tree
    def _join_order(self, analysis: QueryAnalysis) -> list[str]:
        """Greedy join order: start from the smallest filtered table, then
        repeatedly add the smallest table connected to what is already placed."""
        remaining = set(analysis.tables)
        order: list[str] = []
        if not remaining:
            return order
        first = min(remaining, key=lambda name: analysis.access[name].filtered_rows)
        order.append(first)
        remaining.discard(first)
        while remaining:
            connected = [
                name for name in remaining if analysis.edges_between(set(order), name)
            ]
            candidates = connected or sorted(remaining)
            next_table = min(candidates, key=lambda name: analysis.access[name].filtered_rows)
            order.append(next_table)
            remaining.discard(next_table)
        return order

    def _build_join_tree(self, analysis: QueryAnalysis) -> PlanNode:
        order = self._join_order(analysis)
        if not order:
            raise ValueError("query references no tables")
        ordered_column = None
        if len(order) == 1 and analysis.is_top_n and analysis.order_by_columns:
            table, column, _descending = analysis.order_by_columns[0]
            if table == order[0]:
                ordered_column = column
        current = self._access_path(analysis.access[order[0]], ordered_column=ordered_column)
        placed = {order[0]}
        current_rows = current.plan_rows
        for table_name in order[1:]:
            edges = analysis.edges_between(placed, table_name)
            inner_info = analysis.access[table_name]
            inner_join_column = edges[0].column_for(table_name) if edges else None
            join_index = (
                self.catalog.index_on_column(table_name, inner_join_column)
                if inner_join_column is not None
                else None
            )
            join_selectivity = 1.0
            predicate_text = " AND ".join(edge.describe() for edge in edges) if edges else None
            if edges:
                edge = edges[0]
                outer_table, outer_column = edge.other_side(table_name)
                join_selectivity = self.statistics.estimate_join_selectivity(
                    outer_table, outer_column, table_name, edge.column_for(table_name)
                )
            output_rows = max(1.0, current_rows * inner_info.filtered_rows * join_selectivity)
            use_index_join = (
                join_index is not None
                and edges
                and current_rows <= INDEX_JOIN_MAX_OUTER_ROWS
            )
            if use_index_join:
                matches_per_probe = max(1.0, inner_info.filtered_rows * join_selectivity)
                lookup = PlanNode(
                    node_type=NodeType.INDEX_LOOKUP,
                    total_cost=self.cost_model.index_scan_cost(join_index, matches_per_probe),
                    plan_rows=matches_per_probe,
                    relation=table_name,
                    index_name=join_index.name,
                    predicate=inner_info.filter_text,
                )
                join_cost = current.total_cost + self.cost_model.index_nested_loop_join_cost(
                    current_rows, join_index, matches_per_probe
                )
                # Apply residual single-table filters during the lookup.
                output_rows = max(1.0, output_rows * inner_info.combined_selectivity)
                current = PlanNode(
                    node_type=NodeType.INDEX_NESTED_LOOP_JOIN,
                    total_cost=join_cost,
                    plan_rows=output_rows,
                    predicate=predicate_text,
                    children=[current, lookup],
                )
            else:
                inner = self._access_path(inner_info)
                join_cost = self.cost_model.nested_loop_join_cost(
                    current_rows, inner.total_cost, inner.plan_rows
                ) + current.total_cost
                current = PlanNode(
                    node_type=NodeType.NESTED_LOOP_JOIN,
                    total_cost=join_cost,
                    plan_rows=output_rows,
                    predicate=predicate_text,
                    children=[current, inner],
                )
            placed.add(table_name)
            current_rows = current.plan_rows
        return current

    # ------------------------------------------------------------ aggregation
    def _add_aggregation(self, plan: PlanNode, analysis: QueryAnalysis) -> PlanNode:
        if not analysis.is_aggregation:
            return plan
        group_count = self.statistics.estimate_group_count(plan.plan_rows, analysis.group_by_columns)
        aggregate_cost = plan.total_cost + self.cost_model.aggregate_cost(plan.plan_rows, group_count)
        if analysis.group_by_columns:
            group_text = ", ".join(column for _table, column in analysis.group_by_columns)
            if group_count > 10_000:
                # Many groups: sort-based grouping (sort on the grouping keys).
                sort = PlanNode(
                    node_type=NodeType.SORT,
                    total_cost=plan.total_cost + self.cost_model.sort_cost(plan.plan_rows),
                    plan_rows=plan.plan_rows,
                    predicate=group_text,
                    children=[plan],
                )
                return PlanNode(
                    node_type=NodeType.GROUP_AGGREGATE,
                    total_cost=sort.total_cost + self.cost_model.aggregate_cost(plan.plan_rows, group_count),
                    plan_rows=group_count,
                    children=[sort],
                )
            # Few groups: stream the input into an in-memory group table.
            return PlanNode(
                node_type=NodeType.GROUP_AGGREGATE,
                total_cost=aggregate_cost,
                plan_rows=group_count,
                predicate=group_text,
                children=[plan],
            )
        return PlanNode(
            node_type=NodeType.GROUP_AGGREGATE,
            total_cost=aggregate_cost,
            plan_rows=1.0,
            children=[plan],
        )

    # --------------------------------------------------------- order and limit
    def _add_order_and_limit(self, plan: PlanNode, analysis: QueryAnalysis) -> PlanNode:
        limit_rows = analysis.limit
        offset_rows = analysis.offset or 0
        if analysis.order_by_columns:
            order_provided = any(
                node.extra.get("Ordered") == analysis.order_by_columns[0][1]
                for node in plan.walk()
            )
            if not order_provided:
                order_text = ", ".join(
                    f"{column} {'DESC' if descending else 'ASC'}"
                    for _table, column, descending in analysis.order_by_columns
                )
                if limit_rows is not None:
                    # Bounded-heap sort: the row engine keeps only the top
                    # LIMIT+OFFSET rows while scanning its input.
                    keep = limit_rows + offset_rows
                    plan = PlanNode(
                        node_type=NodeType.TOP_N_SORT,
                        total_cost=plan.total_cost + self.cost_model.sort_cost(min(plan.plan_rows, max(2.0, keep * 4.0))),
                        plan_rows=float(min(plan.plan_rows, max(1, keep))),
                        predicate=order_text,
                        extra={"Limit": str(limit_rows), "Offset": str(offset_rows)},
                        children=[plan],
                    )
                else:
                    plan = PlanNode(
                        node_type=NodeType.SORT,
                        total_cost=plan.total_cost + self.cost_model.sort_cost(plan.plan_rows),
                        plan_rows=plan.plan_rows,
                        predicate=order_text,
                        children=[plan],
                    )
        if limit_rows is not None:
            output = float(min(plan.plan_rows, limit_rows))
            plan = PlanNode(
                node_type=NodeType.LIMIT,
                total_cost=plan.total_cost + 0.01 * (limit_rows + offset_rows),
                plan_rows=output,
                predicate=f"LIMIT {limit_rows}" + (f" OFFSET {offset_rows}" if offset_rows else ""),
                children=[plan],
            )
        return plan
