"""The two execution engines of the simulated HTAP system.

``tp`` is the row-oriented transactional engine; ``ap`` is the
column-oriented analytical engine.  Each has its own optimizer and cost
model (with deliberately incomparable cost units, as the paper stresses) and
shares the analytical execution-latency model used to decide which engine is
actually faster for a query.
"""

from repro.htap.engines.base import EngineKind
from repro.htap.engines.query_analysis import QueryAnalysis, analyze_query
from repro.htap.engines.tp_optimizer import TPOptimizer
from repro.htap.engines.ap_optimizer import APOptimizer
from repro.htap.engines.execution import ExecutionResult, ExecutionSimulator, HardwareProfile

__all__ = [
    "EngineKind",
    "QueryAnalysis",
    "analyze_query",
    "TPOptimizer",
    "APOptimizer",
    "ExecutionResult",
    "ExecutionSimulator",
    "HardwareProfile",
]
