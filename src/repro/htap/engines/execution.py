"""Analytical execution-latency model for both engines.

The paper reports *measured* execution times (e.g. Example 1: TP 5.80 s vs AP
310 ms on a six-machine ByteHTAP cluster).  We cannot run ByteHTAP, so this
module provides the closest synthetic equivalent: a latency model that walks
a physical plan bottom-up and charges realistic per-operator times based on
the work the operator performs.

Two different execution profiles are modelled:

* **TP** — single-node, row-at-a-time execution.  Scans pay a per-row CPU
  cost, index lookups pay a per-probe random-access cost, nested-loop joins
  materialise their inner input once and then probe it per outer row.
* **AP** — distributed, vectorised, columnar execution.  Scans pay per-byte
  bandwidth plus per-value decode cost divided by the worker parallelism;
  hash joins pay build/probe costs; every query pays a fixed scheduling /
  fragment start-up overhead, which is why the AP engine loses on small,
  selective queries.

The constants are calibrated so the Example 1 query (3-way join, no usable
TP index, 150 M-row ``orders`` table at SF=100) lands at a few seconds on TP
and a few hundred milliseconds on AP — the same "who wins and by roughly what
factor" shape as the paper — while selective indexed point lookups and small
top-N queries win on TP by a wide margin.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.htap.catalog import Catalog
from repro.htap.engines.base import EngineKind
from repro.htap.plan.nodes import NodeType, PlanNode
from repro.htap.storage.column_store import ColumnStoreModel
from repro.htap.storage.row_store import RowStoreModel


@dataclass(frozen=True)
class HardwareProfile:
    """Hardware assumptions of the simulated cluster.

    Defaults follow the paper's environment: four data servers with 8 vCPUs
    each (the AP engine parallelises across them; the TP engine executes a
    query on a single node).
    """

    ap_parallelism: int = 32
    ap_scan_bandwidth_bytes_per_s: float = 5e9
    ap_startup_seconds: float = 0.1
    ap_value_cpu_seconds: float = 4.0e-9
    ap_hash_build_seconds: float = 1.6e-8
    ap_hash_probe_seconds: float = 8.0e-9
    ap_aggregate_seconds: float = 8.0e-9
    ap_sort_seconds: float = 1.2e-8
    ap_exchange_seconds: float = 2.0e-9

    tp_startup_seconds: float = 0.0005
    tp_row_scan_seconds: float = 3.2e-8
    tp_filter_seconds: float = 4.0e-9
    tp_random_lookup_seconds: float = 8.0e-5
    tp_probe_seconds: float = 2.5e-7
    tp_compare_seconds: float = 4.0e-9
    tp_aggregate_seconds: float = 2.5e-8
    tp_sort_seconds: float = 2.0e-8


@dataclass
class LatencyBreakdown:
    """Per-component latency attribution for one executed plan.

    Components are coarse-grained buckets ("scan", "join", "aggregate",
    "sort", "startup", "index_lookup") used by the workload labeler to
    identify the *dominant* performance factor behind an engine's win/loss.
    """

    components: dict[str, float] = field(default_factory=dict)

    def add(self, component: str, seconds: float) -> None:
        """Accumulate time into a bucket.

        Negative values are allowed: the LIMIT early-stop adjustment credits
        back scan time that a pipelined plan never actually spends.
        """
        self.components[component] = self.components.get(component, 0.0) + seconds

    @property
    def total_seconds(self) -> float:
        return sum(self.components.values())

    def dominant_component(self) -> str:
        """The component contributing the most latency."""
        if not self.components:
            return "startup"
        return max(self.components, key=lambda key: self.components[key])

    def as_dict(self) -> dict[str, float]:
        return dict(self.components)


@dataclass
class ExecutionResult:
    """Outcome of (simulated) execution of one plan on one engine."""

    engine: EngineKind
    latency_seconds: float
    breakdown: LatencyBreakdown
    plan: PlanNode

    @property
    def latency_ms(self) -> float:
        return self.latency_seconds * 1000.0


class ExecutionSimulator:
    """Computes execution latency for TP and AP plans."""

    def __init__(self, catalog: Catalog, hardware: HardwareProfile | None = None):
        self.catalog = catalog
        self.hardware = hardware or HardwareProfile()
        self.row_model = RowStoreModel(catalog)
        self.column_model = ColumnStoreModel(catalog)

    # ------------------------------------------------------------------ public
    def execute(self, engine: EngineKind, plan: PlanNode) -> ExecutionResult:
        """Simulate execution of ``plan`` on ``engine``."""
        breakdown = LatencyBreakdown()
        if engine is EngineKind.TP:
            breakdown.add("startup", self.hardware.tp_startup_seconds)
            self._tp_latency(plan, breakdown)
        else:
            breakdown.add("startup", self.hardware.ap_startup_seconds)
            self._ap_latency(plan, breakdown)
        return ExecutionResult(
            engine=engine,
            latency_seconds=breakdown.total_seconds,
            breakdown=breakdown,
            plan=plan,
        )

    # --------------------------------------------------------------------- TP
    def _tp_latency(self, node: PlanNode, breakdown: LatencyBreakdown) -> float:
        """Latency of the subtree rooted at ``node``; also fills ``breakdown``."""
        hardware = self.hardware
        node_type = node.node_type

        if node_type == NodeType.TABLE_SCAN:
            rows = self._base_rows(node)
            seconds = rows * hardware.tp_row_scan_seconds
            breakdown.add("scan", seconds)
            return seconds
        if node_type == NodeType.INDEX_SCAN:
            matches = max(1.0, node.plan_rows)
            if node.extra.get("Ordered"):
                # Ordered full-index scan: leaf pages are read in order, so the
                # access pattern is (mostly) sequential rather than random.
                seconds = matches * hardware.tp_row_scan_seconds * 1.5
                breakdown.add("scan", seconds)
                return seconds
            height = 3.0
            seconds = (height + matches) * hardware.tp_random_lookup_seconds * 0.25 + (
                matches * hardware.tp_filter_seconds
            )
            breakdown.add("index_lookup", seconds)
            return seconds
        if node_type == NodeType.INDEX_LOOKUP:
            # Charged per probe by the enclosing index nested-loop join.
            return 0.0
        if node_type == NodeType.FILTER:
            child_seconds = sum(self._tp_latency(child, breakdown) for child in node.children)
            input_rows = node.children[0].plan_rows if node.children else node.plan_rows
            seconds = input_rows * hardware.tp_filter_seconds
            breakdown.add("filter", seconds)
            return child_seconds + seconds
        if node_type == NodeType.NESTED_LOOP_JOIN:
            outer, inner = node.children
            outer_seconds = self._tp_latency(outer, breakdown)
            inner_seconds = self._tp_latency(inner, breakdown)
            # The inner input is materialised once; each outer row then probes
            # the materialised (hashed-on-the-fly) inner relation.
            probe_seconds = outer.plan_rows * (
                hardware.tp_probe_seconds
                + math.log2(max(2.0, inner.plan_rows)) * hardware.tp_compare_seconds
            )
            breakdown.add("join", probe_seconds)
            return outer_seconds + inner_seconds + probe_seconds
        if node_type == NodeType.INDEX_NESTED_LOOP_JOIN:
            outer, lookup = node.children
            outer_seconds = self._tp_latency(outer, breakdown)
            matches = max(1.0, lookup.plan_rows)
            per_probe = hardware.tp_random_lookup_seconds * (1.0 + 0.1 * matches)
            probe_seconds = outer.plan_rows * per_probe
            breakdown.add("index_lookup", probe_seconds)
            return outer_seconds + probe_seconds
        if node_type in (NodeType.GROUP_AGGREGATE, NodeType.AGGREGATE, NodeType.HASH_AGGREGATE):
            child_seconds = sum(self._tp_latency(child, breakdown) for child in node.children)
            input_rows = node.children[0].plan_rows if node.children else node.plan_rows
            seconds = input_rows * hardware.tp_aggregate_seconds
            breakdown.add("aggregate", seconds)
            return child_seconds + seconds
        if node_type == NodeType.TOP_N_SORT:
            # Bounded-heap top-N: one heap update per input row against a heap
            # of LIMIT(+OFFSET) entries.
            child_seconds = sum(self._tp_latency(child, breakdown) for child in node.children)
            input_rows = max(2.0, node.children[0].plan_rows if node.children else node.plan_rows)
            keep = max(2.0, node.plan_rows)
            seconds = input_rows * math.log2(keep) * hardware.tp_sort_seconds
            breakdown.add("sort", seconds)
            return child_seconds + seconds
        if node_type == NodeType.SORT:
            child_seconds = sum(self._tp_latency(child, breakdown) for child in node.children)
            input_rows = max(2.0, node.children[0].plan_rows if node.children else node.plan_rows)
            seconds = input_rows * math.log2(input_rows) * hardware.tp_sort_seconds
            breakdown.add("sort", seconds)
            return child_seconds + seconds
        if node_type == NodeType.LIMIT:
            child = node.children[0]
            child_seconds = self._tp_latency(child, breakdown)
            # An index-ordered child lets the limit stop early: only the
            # first LIMIT(+OFFSET) rows are actually produced.
            if self._limit_stops_early(child):
                fraction = min(1.0, node.plan_rows / max(1.0, child.plan_rows))
                saved = child_seconds * (1.0 - fraction) * 0.999
                breakdown.add("scan", -saved)
                child_seconds -= saved
            return child_seconds
        # PROJECT / EXCHANGE / HASH and anything else: recurse with no charge.
        return sum(self._tp_latency(child, breakdown) for child in node.children)

    def _limit_stops_early(self, child: PlanNode) -> bool:
        """True when the child pipeline preserves index order end-to-end."""
        for node in child.walk():
            if node.node_type in (NodeType.SORT, NodeType.TOP_N_SORT):
                return False
            if node.extra.get("Ordered"):
                return True
        return False

    # --------------------------------------------------------------------- AP
    def _ap_latency(self, node: PlanNode, breakdown: LatencyBreakdown) -> float:
        hardware = self.hardware
        parallelism = max(1, hardware.ap_parallelism)
        node_type = node.node_type

        if node_type == NodeType.TABLE_SCAN:
            rows = self._base_rows(node)
            columns = max(1, len(node.output_columns)) if node.relation else 1
            scanned_bytes = (
                self.column_model.scan_bytes(node.relation, list(node.output_columns) or None)
                if node.relation
                else 0
            )
            io_seconds = scanned_bytes / hardware.ap_scan_bandwidth_bytes_per_s
            cpu_seconds = rows * columns * hardware.ap_value_cpu_seconds / parallelism
            seconds = io_seconds + cpu_seconds
            breakdown.add("scan", seconds)
            return seconds
        if node_type == NodeType.FILTER:
            child_seconds = sum(self._ap_latency(child, breakdown) for child in node.children)
            input_rows = node.children[0].plan_rows if node.children else node.plan_rows
            seconds = input_rows * hardware.ap_value_cpu_seconds / parallelism
            breakdown.add("filter", seconds)
            return child_seconds + seconds
        if node_type == NodeType.HASH:
            child_seconds = sum(self._ap_latency(child, breakdown) for child in node.children)
            seconds = node.plan_rows * hardware.ap_hash_build_seconds / parallelism
            breakdown.add("join", seconds)
            return child_seconds + seconds
        if node_type == NodeType.HASH_JOIN:
            probe, build = node.children
            probe_seconds = self._ap_latency(probe, breakdown)
            build_seconds = self._ap_latency(build, breakdown)
            seconds = probe.plan_rows * hardware.ap_hash_probe_seconds / parallelism
            breakdown.add("join", seconds)
            return probe_seconds + build_seconds + seconds
        if node_type in (NodeType.AGGREGATE, NodeType.HASH_AGGREGATE, NodeType.GROUP_AGGREGATE):
            child_seconds = sum(self._ap_latency(child, breakdown) for child in node.children)
            input_rows = node.children[0].plan_rows if node.children else node.plan_rows
            seconds = input_rows * hardware.ap_aggregate_seconds / parallelism
            breakdown.add("aggregate", seconds)
            return child_seconds + seconds
        if node_type == NodeType.TOP_N_SORT:
            child_seconds = sum(self._ap_latency(child, breakdown) for child in node.children)
            input_rows = node.children[0].plan_rows if node.children else node.plan_rows
            keep = max(2.0, node.plan_rows)
            seconds = input_rows * math.log2(keep) * hardware.ap_sort_seconds / parallelism
            breakdown.add("sort", seconds)
            return child_seconds + seconds
        if node_type == NodeType.SORT:
            child_seconds = sum(self._ap_latency(child, breakdown) for child in node.children)
            input_rows = max(2.0, node.children[0].plan_rows if node.children else node.plan_rows)
            seconds = input_rows * math.log2(input_rows) * hardware.ap_sort_seconds / parallelism
            breakdown.add("sort", seconds)
            return child_seconds + seconds
        if node_type == NodeType.EXCHANGE:
            child_seconds = sum(self._ap_latency(child, breakdown) for child in node.children)
            seconds = node.plan_rows * hardware.ap_exchange_seconds / parallelism
            breakdown.add("exchange", seconds)
            return child_seconds + seconds
        if node_type == NodeType.LIMIT:
            return sum(self._ap_latency(child, breakdown) for child in node.children)
        return sum(self._ap_latency(child, breakdown) for child in node.children)

    # ---------------------------------------------------------------- helpers
    def _base_rows(self, node: PlanNode) -> float:
        """True cardinality of a base-table scan (catalog row count)."""
        if node.relation is not None and self.catalog.has_table(node.relation):
            return float(self.catalog.row_count(node.relation))
        return node.plan_rows
