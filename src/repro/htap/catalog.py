"""TPC-H catalog for the simulated HTAP system.

The paper evaluates on a 100 GB TPC-H dataset (scale factor 100) loaded into
ByteHTAP.  This module provides the schema metadata the rest of the system
needs: tables, columns, column types, primary/foreign keys, secondary
indexes, and base cardinalities scaled by an arbitrary scale factor.

The catalog is deliberately *metadata only*: the engines never materialise
100 GB of rows.  The statistics module (`repro.htap.statistics`) layers
per-column distributions on top of this catalog so that selectivity and
cardinality estimation behave like a real optimizer's.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class ColumnType(enum.Enum):
    """Logical column types used by the TPC-H schema."""

    INTEGER = "integer"
    BIGINT = "bigint"
    DECIMAL = "decimal"
    CHAR = "char"
    VARCHAR = "varchar"
    DATE = "date"


#: Fixed storage width (bytes) per column type, used by the storage layer and
#: the cost models to estimate scan volumes.
TYPE_WIDTH_BYTES = {
    ColumnType.INTEGER: 4,
    ColumnType.BIGINT: 8,
    ColumnType.DECIMAL: 8,
    ColumnType.CHAR: 16,
    ColumnType.VARCHAR: 48,
    ColumnType.DATE: 4,
}


@dataclass(frozen=True)
class Column:
    """A column in a table.

    ``distinct_fraction`` expresses the number of distinct values as a
    fraction of the table cardinality (1.0 for a key, small for low-cardinality
    attributes such as ``o_orderstatus``).  ``fixed_distinct`` overrides it
    with an absolute distinct count when the domain does not scale with the
    table (e.g. 25 nations, 3 order statuses).
    """

    name: str
    type: ColumnType
    nullable: bool = False
    distinct_fraction: float = 1.0
    fixed_distinct: int | None = None
    width_override: int | None = None

    @property
    def width_bytes(self) -> int:
        """Storage width of a single value of this column."""
        if self.width_override is not None:
            return self.width_override
        return TYPE_WIDTH_BYTES[self.type]

    def distinct_values(self, table_rows: int) -> int:
        """Number of distinct values given the owning table's cardinality."""
        if self.fixed_distinct is not None:
            return max(1, min(self.fixed_distinct, table_rows))
        return max(1, int(round(table_rows * self.distinct_fraction)))


@dataclass(frozen=True)
class Index:
    """A secondary (or primary) index on one or more columns of a table."""

    name: str
    table: str
    columns: tuple[str, ...]
    unique: bool = False
    primary: bool = False

    @property
    def leading_column(self) -> str:
        return self.columns[0]


@dataclass
class Table:
    """A table: columns, key structure, and base cardinality per scale factor."""

    name: str
    columns: list[Column]
    primary_key: tuple[str, ...]
    #: Row count at scale factor 1; scaled linearly except for fixed tables.
    base_rows: int
    #: Tables such as ``nation``/``region`` do not grow with the scale factor.
    scales_with_sf: bool = True
    foreign_keys: dict[str, tuple[str, str]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self._columns_by_name = {column.name: column for column in self.columns}
        missing = [name for name in self.primary_key if name not in self._columns_by_name]
        if missing:
            raise ValueError(f"primary key columns {missing} not in table {self.name}")

    def column(self, name: str) -> Column:
        """Look up a column by name, raising ``KeyError`` with context."""
        try:
            return self._columns_by_name[name]
        except KeyError:
            raise KeyError(f"table {self.name!r} has no column {name!r}") from None

    def has_column(self, name: str) -> bool:
        return name in self._columns_by_name

    @property
    def column_names(self) -> list[str]:
        return [column.name for column in self.columns]

    def row_count(self, scale_factor: float) -> int:
        """Cardinality of the table at the given TPC-H scale factor."""
        if not self.scales_with_sf:
            return self.base_rows
        return int(round(self.base_rows * scale_factor))

    def row_width_bytes(self) -> int:
        """Width of a full row (sum of column widths), used by the row store."""
        return sum(column.width_bytes for column in self.columns)


def _tpch_tables() -> list[Table]:
    """Construct the eight TPC-H tables with realistic metadata."""
    region = Table(
        name="region",
        columns=[
            Column("r_regionkey", ColumnType.INTEGER, distinct_fraction=1.0),
            Column("r_name", ColumnType.CHAR, fixed_distinct=5),
            Column("r_comment", ColumnType.VARCHAR, fixed_distinct=5, width_override=120),
        ],
        primary_key=("r_regionkey",),
        base_rows=5,
        scales_with_sf=False,
    )
    nation = Table(
        name="nation",
        columns=[
            Column("n_nationkey", ColumnType.INTEGER, distinct_fraction=1.0),
            Column("n_name", ColumnType.CHAR, fixed_distinct=25),
            Column("n_regionkey", ColumnType.INTEGER, fixed_distinct=5),
            Column("n_comment", ColumnType.VARCHAR, fixed_distinct=25, width_override=120),
        ],
        primary_key=("n_nationkey",),
        base_rows=25,
        scales_with_sf=False,
        foreign_keys={"n_regionkey": ("region", "r_regionkey")},
    )
    supplier = Table(
        name="supplier",
        columns=[
            Column("s_suppkey", ColumnType.INTEGER, distinct_fraction=1.0),
            Column("s_name", ColumnType.CHAR, distinct_fraction=1.0),
            Column("s_address", ColumnType.VARCHAR, distinct_fraction=1.0),
            Column("s_nationkey", ColumnType.INTEGER, fixed_distinct=25),
            Column("s_phone", ColumnType.CHAR, distinct_fraction=1.0),
            Column("s_acctbal", ColumnType.DECIMAL, distinct_fraction=0.9),
            Column("s_comment", ColumnType.VARCHAR, distinct_fraction=1.0, width_override=100),
        ],
        primary_key=("s_suppkey",),
        base_rows=10_000,
        foreign_keys={"s_nationkey": ("nation", "n_nationkey")},
    )
    customer = Table(
        name="customer",
        columns=[
            Column("c_custkey", ColumnType.INTEGER, distinct_fraction=1.0),
            Column("c_name", ColumnType.VARCHAR, distinct_fraction=1.0),
            Column("c_address", ColumnType.VARCHAR, distinct_fraction=1.0),
            Column("c_nationkey", ColumnType.INTEGER, fixed_distinct=25),
            Column("c_phone", ColumnType.CHAR, distinct_fraction=1.0),
            Column("c_acctbal", ColumnType.DECIMAL, distinct_fraction=0.9),
            Column("c_mktsegment", ColumnType.CHAR, fixed_distinct=5),
            Column("c_comment", ColumnType.VARCHAR, distinct_fraction=1.0, width_override=100),
        ],
        primary_key=("c_custkey",),
        base_rows=150_000,
        foreign_keys={"c_nationkey": ("nation", "n_nationkey")},
    )
    orders = Table(
        name="orders",
        columns=[
            Column("o_orderkey", ColumnType.BIGINT, distinct_fraction=1.0),
            Column("o_custkey", ColumnType.INTEGER, distinct_fraction=0.1),
            Column("o_orderstatus", ColumnType.CHAR, fixed_distinct=3, width_override=1),
            Column("o_totalprice", ColumnType.DECIMAL, distinct_fraction=0.9),
            Column("o_orderdate", ColumnType.DATE, fixed_distinct=2_406),
            Column("o_orderpriority", ColumnType.CHAR, fixed_distinct=5),
            Column("o_clerk", ColumnType.CHAR, distinct_fraction=0.001),
            Column("o_shippriority", ColumnType.INTEGER, fixed_distinct=1),
            Column("o_comment", ColumnType.VARCHAR, distinct_fraction=1.0, width_override=70),
        ],
        primary_key=("o_orderkey",),
        base_rows=1_500_000,
        foreign_keys={"o_custkey": ("customer", "c_custkey")},
    )
    lineitem = Table(
        name="lineitem",
        columns=[
            Column("l_orderkey", ColumnType.BIGINT, distinct_fraction=0.25),
            Column("l_partkey", ColumnType.INTEGER, distinct_fraction=0.033),
            Column("l_suppkey", ColumnType.INTEGER, distinct_fraction=0.0017),
            Column("l_linenumber", ColumnType.INTEGER, fixed_distinct=7),
            Column("l_quantity", ColumnType.DECIMAL, fixed_distinct=50),
            Column("l_extendedprice", ColumnType.DECIMAL, distinct_fraction=0.2),
            Column("l_discount", ColumnType.DECIMAL, fixed_distinct=11),
            Column("l_tax", ColumnType.DECIMAL, fixed_distinct=9),
            Column("l_returnflag", ColumnType.CHAR, fixed_distinct=3, width_override=1),
            Column("l_linestatus", ColumnType.CHAR, fixed_distinct=2, width_override=1),
            Column("l_shipdate", ColumnType.DATE, fixed_distinct=2_526),
            Column("l_commitdate", ColumnType.DATE, fixed_distinct=2_466),
            Column("l_receiptdate", ColumnType.DATE, fixed_distinct=2_554),
            Column("l_shipinstruct", ColumnType.CHAR, fixed_distinct=4),
            Column("l_shipmode", ColumnType.CHAR, fixed_distinct=7),
            Column("l_comment", ColumnType.VARCHAR, distinct_fraction=0.6, width_override=40),
        ],
        primary_key=("l_orderkey", "l_linenumber"),
        base_rows=6_000_000,
        foreign_keys={
            "l_orderkey": ("orders", "o_orderkey"),
            "l_partkey": ("part", "p_partkey"),
            "l_suppkey": ("supplier", "s_suppkey"),
        },
    )
    part = Table(
        name="part",
        columns=[
            Column("p_partkey", ColumnType.INTEGER, distinct_fraction=1.0),
            Column("p_name", ColumnType.VARCHAR, distinct_fraction=1.0),
            Column("p_mfgr", ColumnType.CHAR, fixed_distinct=5),
            Column("p_brand", ColumnType.CHAR, fixed_distinct=25),
            Column("p_type", ColumnType.VARCHAR, fixed_distinct=150),
            Column("p_size", ColumnType.INTEGER, fixed_distinct=50),
            Column("p_container", ColumnType.CHAR, fixed_distinct=40),
            Column("p_retailprice", ColumnType.DECIMAL, distinct_fraction=0.2),
            Column("p_comment", ColumnType.VARCHAR, distinct_fraction=0.8, width_override=20),
        ],
        primary_key=("p_partkey",),
        base_rows=200_000,
    )
    partsupp = Table(
        name="partsupp",
        columns=[
            Column("ps_partkey", ColumnType.INTEGER, distinct_fraction=0.25),
            Column("ps_suppkey", ColumnType.INTEGER, distinct_fraction=0.0125),
            Column("ps_availqty", ColumnType.INTEGER, fixed_distinct=10_000),
            Column("ps_supplycost", ColumnType.DECIMAL, distinct_fraction=0.12),
            Column("ps_comment", ColumnType.VARCHAR, distinct_fraction=0.9, width_override=125),
        ],
        primary_key=("ps_partkey", "ps_suppkey"),
        base_rows=800_000,
        foreign_keys={
            "ps_partkey": ("part", "p_partkey"),
            "ps_suppkey": ("supplier", "s_suppkey"),
        },
    )
    return [region, nation, supplier, customer, orders, lineitem, part, partsupp]


def _default_indexes(include_fk_indexes: bool) -> list[Index]:
    """Indexes present on the TP (row) engine out of the box.

    Primary-key indexes always exist.  Foreign-key indexes are optional:
    the plans in the paper's Example 1 fall back to nested-loop joins with
    "no index available" on the join columns, so the default configuration
    matches that setting; workloads that want the "index available" regime
    pass ``include_fk_indexes=True`` or create indexes explicitly.  The AP
    engine is a column store and never uses B+-tree indexes.
    """
    indexes: list[Index] = []
    for table in _tpch_tables():
        indexes.append(
            Index(
                name=f"pk_{table.name}",
                table=table.name,
                columns=table.primary_key,
                unique=True,
                primary=True,
            )
        )
        if not include_fk_indexes:
            continue
        for column_name in table.foreign_keys:
            indexes.append(
                Index(
                    name=f"fk_{table.name}_{column_name}",
                    table=table.name,
                    columns=(column_name,),
                )
            )
    return indexes


class Catalog:
    """Schema catalog shared by both engines of the simulated HTAP system.

    Parameters
    ----------
    scale_factor:
        TPC-H scale factor; the paper uses SF=100 (≈100 GB).
    include_fk_indexes:
        Whether secondary indexes on foreign-key columns exist on the TP
        engine.  Defaults to False, matching the paper's Example 1 plans.
    """

    def __init__(self, scale_factor: float = 100.0, *, include_fk_indexes: bool = False):
        if scale_factor <= 0:
            raise ValueError("scale_factor must be positive")
        self.scale_factor = scale_factor
        self.include_fk_indexes = include_fk_indexes
        self._tables: dict[str, Table] = {table.name: table for table in _tpch_tables()}
        self._indexes: dict[str, Index] = {}
        for index in _default_indexes(include_fk_indexes):
            self._indexes[index.name] = index

    # ------------------------------------------------------------------ tables
    @property
    def table_names(self) -> list[str]:
        return sorted(self._tables)

    def table(self, name: str) -> Table:
        try:
            return self._tables[name.lower()]
        except KeyError:
            raise KeyError(f"unknown table {name!r}") from None

    def has_table(self, name: str) -> bool:
        return name.lower() in self._tables

    def row_count(self, table_name: str) -> int:
        return self.table(table_name).row_count(self.scale_factor)

    def resolve_column(self, column_name: str) -> tuple[Table, Column]:
        """Find the unique table owning ``column_name``.

        TPC-H column names carry a table prefix (``c_``, ``o_``, ...) so a bare
        column name is unambiguous; this mirrors how the paper's queries are
        written (no table aliases).
        """
        matches = [
            (table, table.column(column_name))
            for table in self._tables.values()
            if table.has_column(column_name)
        ]
        if not matches:
            raise KeyError(f"no table defines column {column_name!r}")
        if len(matches) > 1:
            owners = [table.name for table, _ in matches]
            raise KeyError(f"column {column_name!r} is ambiguous across {owners}")
        return matches[0]

    # ----------------------------------------------------------------- indexes
    @property
    def indexes(self) -> list[Index]:
        return list(self._indexes.values())

    def indexes_on(self, table_name: str) -> list[Index]:
        return [index for index in self._indexes.values() if index.table == table_name.lower()]

    def index_on_column(self, table_name: str, column_name: str) -> Index | None:
        """Return an index whose *leading* column is ``column_name``, if any."""
        for index in self.indexes_on(table_name):
            if index.leading_column == column_name:
                return index
        return None

    def create_index(self, table_name: str, column_name: str, *, unique: bool = False) -> Index:
        """Create a secondary index (the paper's ``c_phone`` example).

        Returns the created (or existing equivalent) index.
        """
        table = self.table(table_name)
        if not table.has_column(column_name):
            raise KeyError(f"table {table_name!r} has no column {column_name!r}")
        existing = self.index_on_column(table_name, column_name)
        if existing is not None:
            return existing
        index = Index(
            name=f"idx_{table.name}_{column_name}",
            table=table.name,
            columns=(column_name,),
            unique=unique,
        )
        self._indexes[index.name] = index
        return index

    def drop_index(self, index_name: str) -> None:
        if index_name not in self._indexes:
            raise KeyError(f"unknown index {index_name!r}")
        if self._indexes[index_name].primary:
            raise ValueError("cannot drop a primary-key index")
        del self._indexes[index_name]

    # ------------------------------------------------------------------- sizes
    def table_size_bytes(self, table_name: str) -> int:
        """Uncompressed size of a table (row format)."""
        table = self.table(table_name)
        return table.row_width_bytes() * self.row_count(table_name)

    def database_size_bytes(self) -> int:
        return sum(self.table_size_bytes(name) for name in self._tables)

    def foreign_key_target(self, table_name: str, column_name: str) -> tuple[str, str] | None:
        """Return ``(referenced_table, referenced_column)`` for an FK column."""
        table = self.table(table_name)
        return table.foreign_keys.get(column_name)

    def join_is_pk_fk(self, left_table: str, left_column: str, right_table: str, right_column: str) -> bool:
        """True when the join predicate matches a declared PK–FK relationship."""
        forward = self.foreign_key_target(left_table, left_column)
        backward = self.foreign_key_target(right_table, right_column)
        if forward == (self.table(right_table).name, right_column):
            return True
        if backward == (self.table(left_table).name, left_column):
            return True
        return False

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"Catalog(scale_factor={self.scale_factor}, tables={len(self._tables)})"
