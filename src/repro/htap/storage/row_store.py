"""Row-store (TP engine) storage model.

The TP engine stores tables in heap pages of fixed size with B+-tree indexes
on primary keys, foreign keys, and any user-created secondary indexes.  The
model exposes the quantities the TP optimizer and the latency model need:

* pages per table (drives full-scan cost),
* index height and matching-leaf estimates (drives index-lookup cost),
* per-row access cost constants for sequential vs random access.

No rows are materialised; everything derives from catalog cardinalities.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.htap.catalog import Catalog, Index
from repro.htap.storage.btree import BPlusTree

#: Heap page size for the row store.
PAGE_SIZE_BYTES = 8192
#: Per-page fill factor (free space for updates, standard for OLTP stores).
FILL_FACTOR = 0.9
#: Default B+-tree fanout used for index height estimation.
INDEX_FANOUT = 256


@dataclass(frozen=True)
class RowStoreStats:
    """Physical statistics of one table in the row store."""

    table: str
    row_count: int
    row_width_bytes: int
    rows_per_page: int
    page_count: int
    size_bytes: int


class RowStoreModel:
    """Analytical model of the TP engine's row-oriented storage."""

    def __init__(self, catalog: Catalog):
        self.catalog = catalog

    def table_stats(self, table_name: str) -> RowStoreStats:
        """Physical layout statistics for ``table_name``."""
        table = self.catalog.table(table_name)
        row_count = self.catalog.row_count(table_name)
        row_width = table.row_width_bytes()
        rows_per_page = max(1, int((PAGE_SIZE_BYTES * FILL_FACTOR) // row_width))
        page_count = max(1, -(-row_count // rows_per_page))  # ceil division
        return RowStoreStats(
            table=table_name,
            row_count=row_count,
            row_width_bytes=row_width,
            rows_per_page=rows_per_page,
            page_count=page_count,
            size_bytes=page_count * PAGE_SIZE_BYTES,
        )

    # ----------------------------------------------------------------- scans
    def full_scan_pages(self, table_name: str) -> int:
        """Pages read by a full table scan."""
        return self.table_stats(table_name).page_count

    def full_scan_rows(self, table_name: str) -> int:
        return self.table_stats(table_name).row_count

    # ---------------------------------------------------------------- indexes
    def index_height(self, index: Index) -> int:
        """Height of the B+-tree backing ``index``."""
        row_count = self.catalog.row_count(index.table)
        return BPlusTree.estimated_height(row_count, order=INDEX_FANOUT)

    def index_lookup_pages(self, index: Index, matching_rows: float) -> float:
        """Pages touched by an index lookup returning ``matching_rows`` rows.

        One page per tree level for the descent, plus (for non-covering
        secondary indexes) roughly one heap page per matching row because the
        heap order is uncorrelated with the index order.
        """
        descent = self.index_height(index)
        heap_fetches = matching_rows if not index.primary else max(1.0, matching_rows)
        return descent + heap_fetches

    def clustered_range_pages(self, table_name: str, matching_rows: float) -> float:
        """Pages read by a range scan on the primary (clustered) key."""
        stats = self.table_stats(table_name)
        return max(1.0, matching_rows / stats.rows_per_page)
