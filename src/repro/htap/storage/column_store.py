"""Column-store (AP engine) storage model.

The AP engine stores each column in compressed chunks ("row groups") with
zone maps (per-chunk min/max) that allow chunk skipping for selective
predicates.  The model exposes:

* per-column chunk counts and compressed sizes (drives scan cost — AP reads
  only the referenced columns),
* zone-map skip fractions for equality/range predicates,
* vectorised processing batch size used by the cost and latency models.

The AP engine has no B+-tree indexes; this is why, in the paper's Example 1,
the index on ``c_phone`` is irrelevant to the AP plan.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.htap.catalog import Catalog, ColumnType

#: Rows per column chunk (row group).
CHUNK_ROWS = 65_536
#: Vectorised execution batch size.
VECTOR_BATCH_ROWS = 4_096
#: Compression ratios per column type (column stores compress aggressively).
COMPRESSION_RATIO = {
    ColumnType.INTEGER: 0.35,
    ColumnType.BIGINT: 0.40,
    ColumnType.DECIMAL: 0.45,
    ColumnType.CHAR: 0.25,
    ColumnType.VARCHAR: 0.30,
    ColumnType.DATE: 0.30,
}


@dataclass(frozen=True)
class ColumnStoreStats:
    """Physical statistics of one column of one table in the column store."""

    table: str
    column: str
    row_count: int
    chunk_count: int
    uncompressed_bytes: int
    compressed_bytes: int


class ColumnStoreModel:
    """Analytical model of the AP engine's column-oriented storage."""

    def __init__(self, catalog: Catalog):
        self.catalog = catalog

    def column_stats(self, table_name: str, column_name: str) -> ColumnStoreStats:
        table = self.catalog.table(table_name)
        column = table.column(column_name)
        row_count = self.catalog.row_count(table_name)
        chunk_count = max(1, -(-row_count // CHUNK_ROWS))
        uncompressed = row_count * column.width_bytes
        ratio = COMPRESSION_RATIO[column.type]
        return ColumnStoreStats(
            table=table_name,
            column=column_name,
            row_count=row_count,
            chunk_count=chunk_count,
            uncompressed_bytes=uncompressed,
            compressed_bytes=int(uncompressed * ratio),
        )

    def scan_bytes(self, table_name: str, columns: list[str] | None = None) -> int:
        """Compressed bytes read when scanning the given columns of a table.

        ``columns=None`` means all columns (no projection pruning).
        """
        table = self.catalog.table(table_name)
        names = columns if columns is not None else table.column_names
        total = 0
        for name in names:
            if not table.has_column(name):
                continue
            total += self.column_stats(table_name, name).compressed_bytes
        return total

    def chunk_count(self, table_name: str) -> int:
        row_count = self.catalog.row_count(table_name)
        return max(1, -(-row_count // CHUNK_ROWS))

    def zone_map_skip_fraction(self, table_name: str, column_name: str, selectivity: float) -> float:
        """Fraction of chunks that zone maps allow the scan to skip.

        Zone maps help when the predicate is selective *and* the column has
        some physical clustering.  Keys (ordered on load) skip aggressively;
        low-cardinality unclustered columns barely skip at all.  The model
        interpolates between these using the column's distinct count.
        """
        table = self.catalog.table(table_name)
        column = table.column(column_name)
        row_count = self.catalog.row_count(table_name)
        distinct = column.distinct_values(row_count)
        # Clustering proxy: keys have distinct==rows (clustered on load order),
        # attributes with few distinct values are scattered across all chunks.
        clustering = min(1.0, distinct / max(1, row_count))
        skip_fraction = clustering * max(0.0, 1.0 - selectivity)
        return min(0.95, skip_fraction)

    def effective_scan_rows(self, table_name: str, column_name: str | None, selectivity: float) -> float:
        """Rows actually processed by a filtered scan after chunk skipping."""
        row_count = self.catalog.row_count(table_name)
        if column_name is None:
            return float(row_count)
        skip = self.zone_map_skip_fraction(table_name, column_name, selectivity)
        return row_count * (1.0 - skip)
