"""Storage layer simulation: row store (TP) and column store (AP)."""

from repro.htap.storage.btree import BPlusTree
from repro.htap.storage.row_store import RowStoreStats, RowStoreModel
from repro.htap.storage.column_store import ColumnStoreStats, ColumnStoreModel

__all__ = [
    "BPlusTree",
    "RowStoreStats",
    "RowStoreModel",
    "ColumnStoreStats",
    "ColumnStoreModel",
]
