"""An in-memory B+-tree.

The TP engine's row store keeps primary-key and secondary indexes in
B+-trees.  The optimizer only needs the *shape* of the tree (height, leaf
count) to cost index lookups, but the tree itself is a real, working data
structure: the unit and property-based tests insert, look up, range-scan and
delete through it, which keeps the storage model honest.

Keys can be any orderable value; values are opaque (typically row ids).
Duplicate keys are supported (secondary indexes are generally non-unique).
"""

from __future__ import annotations

import bisect
import math
from typing import Any, Iterator


class _Node:
    """Internal or leaf node."""

    __slots__ = ("keys", "children", "values", "next_leaf", "is_leaf")

    def __init__(self, is_leaf: bool):
        self.is_leaf = is_leaf
        self.keys: list[Any] = []
        # For internal nodes: children[i] covers keys < keys[i].
        self.children: list[_Node] = []
        # For leaf nodes: values[i] is the list of values for keys[i].
        self.values: list[list[Any]] = []
        self.next_leaf: _Node | None = None


class BPlusTree:
    """A B+-tree with configurable fanout (order).

    Parameters
    ----------
    order:
        Maximum number of keys per node; nodes split when they exceed it.
    """

    def __init__(self, order: int = 64):
        if order < 3:
            raise ValueError("order must be at least 3")
        self.order = order
        self._root: _Node = _Node(is_leaf=True)
        self._size = 0

    # ----------------------------------------------------------------- basics
    def __len__(self) -> int:
        return self._size

    @property
    def height(self) -> int:
        """Number of levels from root to leaves (1 for an empty tree)."""
        height = 1
        node = self._root
        while not node.is_leaf:
            node = node.children[0]
            height += 1
        return height

    def leaf_count(self) -> int:
        count = 0
        node = self._root
        while not node.is_leaf:
            node = node.children[0]
        while node is not None:
            count += 1
            node = node.next_leaf
        return count

    # ----------------------------------------------------------------- insert
    def insert(self, key: Any, value: Any) -> None:
        """Insert ``(key, value)``; duplicate keys accumulate values."""
        root = self._root
        result = self._insert_into(root, key, value)
        if result is not None:
            middle_key, right = result
            new_root = _Node(is_leaf=False)
            new_root.keys = [middle_key]
            new_root.children = [root, right]
            self._root = new_root
        self._size += 1

    def _insert_into(self, node: _Node, key: Any, value: Any) -> tuple[Any, _Node] | None:
        if node.is_leaf:
            index = bisect.bisect_left(node.keys, key)
            if index < len(node.keys) and node.keys[index] == key:
                node.values[index].append(value)
            else:
                node.keys.insert(index, key)
                node.values.insert(index, [value])
            if len(node.keys) > self.order:
                return self._split_leaf(node)
            return None
        index = bisect.bisect_right(node.keys, key)
        result = self._insert_into(node.children[index], key, value)
        if result is None:
            return None
        middle_key, right = result
        node.keys.insert(index, middle_key)
        node.children.insert(index + 1, right)
        if len(node.keys) > self.order:
            return self._split_internal(node)
        return None

    def _split_leaf(self, node: _Node) -> tuple[Any, _Node]:
        middle = len(node.keys) // 2
        right = _Node(is_leaf=True)
        right.keys = node.keys[middle:]
        right.values = node.values[middle:]
        node.keys = node.keys[:middle]
        node.values = node.values[:middle]
        right.next_leaf = node.next_leaf
        node.next_leaf = right
        return right.keys[0], right

    def _split_internal(self, node: _Node) -> tuple[Any, _Node]:
        middle = len(node.keys) // 2
        middle_key = node.keys[middle]
        right = _Node(is_leaf=False)
        right.keys = node.keys[middle + 1 :]
        right.children = node.children[middle + 1 :]
        node.keys = node.keys[:middle]
        node.children = node.children[: middle + 1]
        return middle_key, right

    # ----------------------------------------------------------------- lookup
    def _find_leaf(self, key: Any) -> _Node:
        node = self._root
        while not node.is_leaf:
            index = bisect.bisect_right(node.keys, key)
            node = node.children[index]
        return node

    def search(self, key: Any) -> list[Any]:
        """Return all values stored under ``key`` (empty list if absent)."""
        leaf = self._find_leaf(key)
        index = bisect.bisect_left(leaf.keys, key)
        if index < len(leaf.keys) and leaf.keys[index] == key:
            return list(leaf.values[index])
        return []

    def __contains__(self, key: Any) -> bool:
        return bool(self.search(key))

    def range_scan(self, low: Any, high: Any) -> Iterator[tuple[Any, Any]]:
        """Yield ``(key, value)`` pairs with ``low <= key <= high`` in order."""
        leaf = self._find_leaf(low)
        index = bisect.bisect_left(leaf.keys, low)
        while leaf is not None:
            while index < len(leaf.keys):
                key = leaf.keys[index]
                if key > high:
                    return
                for value in leaf.values[index]:
                    yield key, value
                index += 1
            leaf = leaf.next_leaf
            index = 0

    def items(self) -> Iterator[tuple[Any, Any]]:
        """All ``(key, value)`` pairs in key order."""
        node = self._root
        while not node.is_leaf:
            node = node.children[0]
        while node is not None:
            for key, values in zip(node.keys, node.values):
                for value in values:
                    yield key, value
            node = node.next_leaf

    def delete(self, key: Any) -> int:
        """Remove all entries under ``key``; return how many were removed.

        Deletion does not rebalance (leaves may under-fill); this keeps the
        implementation simple and is fine for a statistics-only storage model.
        """
        leaf = self._find_leaf(key)
        index = bisect.bisect_left(leaf.keys, key)
        if index < len(leaf.keys) and leaf.keys[index] == key:
            removed = len(leaf.values[index])
            del leaf.keys[index]
            del leaf.values[index]
            self._size -= removed
            return removed
        return 0

    # -------------------------------------------------------------- estimates
    @staticmethod
    def estimated_height(entry_count: int, order: int = 64) -> int:
        """Estimated tree height for ``entry_count`` keys without building it.

        The optimizer uses this to cost index lookups on tables whose data is
        never materialised (SF=100 cardinalities).
        """
        if entry_count <= 1:
            return 1
        return max(1, math.ceil(math.log(max(2, entry_count), max(2, order // 2))))
