"""Simulated HTAP system (the ByteHTAP stand-in).

This subpackage implements everything the paper's framework expects from the
underlying database: a TPC-H catalog with statistics, a SQL front end, a
row-oriented TP engine and a column-oriented AP engine (each with its own
optimizer and cost model), and an execution-latency model that determines
which engine actually runs a query faster.
"""

from repro.htap.catalog import Catalog, Column, ColumnType, Index, Table
from repro.htap.engines.base import EngineKind
from repro.htap.engines.execution import ExecutionResult, HardwareProfile
from repro.htap.statistics import StatisticsCatalog
from repro.htap.system import HTAPSystem, PlanPair, QueryExecution

__all__ = [
    "Catalog",
    "Column",
    "ColumnType",
    "Index",
    "Table",
    "EngineKind",
    "ExecutionResult",
    "HardwareProfile",
    "StatisticsCatalog",
    "HTAPSystem",
    "PlanPair",
    "QueryExecution",
]
