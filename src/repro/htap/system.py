"""HTAPSystem — the facade that plays the role of ByteHTAP in the paper.

A single object owns the catalog, statistics, both optimizers and the
execution simulator, and exposes the operations the rest of the framework
needs:

* ``parse`` / ``explain_pair`` — obtain TP and AP plans for a SQL query
  (the equivalent of running ``EXPLAIN`` on both engines);
* ``run_both`` — execute the query on both engines (simulated) and report
  which engine is faster, by how much, and where the time went;
* ``create_index`` — DDL hook used by workloads that exercise the "index
  available" regime and by the paper's "additional index on ``c_phone``"
  user-context example.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.htap.catalog import Catalog, Index
from repro.htap.engines.ap_optimizer import APOptimizer
from repro.htap.engines.base import EngineKind
from repro.htap.engines.execution import ExecutionResult, ExecutionSimulator, HardwareProfile
from repro.htap.engines.query_analysis import QueryAnalysis, analyze_query
from repro.htap.engines.tp_optimizer import TPOptimizer
from repro.htap.plan.nodes import PlanNode
from repro.htap.plan.serialize import plan_to_dict
from repro.htap.sql import ast, parse_query
from repro.htap.statistics import StatisticsCatalog
from repro.obs.tracing import get_tracer


@dataclass
class PlanPair:
    """The TP and AP plans produced for one query."""

    query: ast.Query
    tp_plan: PlanNode
    ap_plan: PlanNode

    def plan_for(self, engine: EngineKind) -> PlanNode:
        return self.tp_plan if engine is EngineKind.TP else self.ap_plan

    def explain_dicts(self) -> dict[str, dict]:
        """EXPLAIN output for both engines in the paper's Table II format."""
        return {"TP": plan_to_dict(self.tp_plan), "AP": plan_to_dict(self.ap_plan)}


@dataclass
class QueryExecution:
    """Full record of running one query on both engines."""

    query: ast.Query
    plan_pair: PlanPair
    tp_result: ExecutionResult
    ap_result: ExecutionResult

    @property
    def faster_engine(self) -> EngineKind:
        if self.tp_result.latency_seconds <= self.ap_result.latency_seconds:
            return EngineKind.TP
        return EngineKind.AP

    @property
    def slower_engine(self) -> EngineKind:
        return self.faster_engine.other()

    @property
    def speedup(self) -> float:
        """Latency of the slower engine divided by the faster engine's."""
        fast = self.result_for(self.faster_engine).latency_seconds
        slow = self.result_for(self.slower_engine).latency_seconds
        if fast <= 0:
            return float("inf")
        return slow / fast

    def result_for(self, engine: EngineKind) -> ExecutionResult:
        return self.tp_result if engine is EngineKind.TP else self.ap_result

    def summary(self) -> str:
        return (
            f"{self.faster_engine} is faster: TP={self.tp_result.latency_seconds:.3f}s, "
            f"AP={self.ap_result.latency_seconds:.3f}s (speedup {self.speedup:.1f}x)"
        )


class HTAPSystem:
    """The simulated HTAP DBMS with a TP and an AP engine.

    Parameters
    ----------
    scale_factor:
        TPC-H scale factor; the paper uses 100.
    include_fk_indexes:
        Whether foreign-key indexes exist on the TP engine (see
        :class:`repro.htap.catalog.Catalog`).
    hardware:
        Hardware profile used by the execution-latency model.
    """

    def __init__(
        self,
        scale_factor: float = 100.0,
        *,
        include_fk_indexes: bool = False,
        hardware: HardwareProfile | None = None,
    ):
        self.catalog = Catalog(scale_factor, include_fk_indexes=include_fk_indexes)
        self.statistics = StatisticsCatalog(self.catalog)
        self.tp_optimizer = TPOptimizer(self.catalog, self.statistics)
        self.ap_optimizer = APOptimizer(self.catalog, self.statistics)
        self.simulator = ExecutionSimulator(self.catalog, hardware)
        self._ddl_listeners: list[Callable[[str, str], None]] = []

    # ------------------------------------------------------------------- DDL
    def add_ddl_listener(self, listener: Callable[[str, str], None]) -> None:
        """Register a ``(event, index_name)`` callback fired after every DDL.

        Events are ``"create_index"`` and ``"drop_index"``.  The serving
        layer subscribes to invalidate its plan and explanation caches —
        a new or dropped index changes the plans the optimizers produce.
        """
        self._ddl_listeners.append(listener)

    def remove_ddl_listener(self, listener: Callable[[str, str], None]) -> None:
        self._ddl_listeners.remove(listener)

    def _notify_ddl(self, event: str, index_name: str) -> None:
        for listener in list(self._ddl_listeners):
            listener(event, index_name)

    def create_index(self, table_name: str, column_name: str) -> Index:
        """Create a secondary index on the TP engine (AP ignores indexes)."""
        index = self.catalog.create_index(table_name, column_name)
        self._notify_ddl("create_index", index.name)
        return index

    def drop_index(self, index_name: str) -> None:
        self.catalog.drop_index(index_name)
        self._notify_ddl("drop_index", index_name)

    # ------------------------------------------------------------------ query
    def parse(self, sql: str) -> ast.Query:
        """Parse SQL into the shared AST."""
        with get_tracer().span("htap.parse"):
            return parse_query(sql)

    def analyze(self, query: ast.Query | str) -> QueryAnalysis:
        """Engine-agnostic logical analysis of a query."""
        parsed = self.parse(query) if isinstance(query, str) else query
        return analyze_query(parsed, self.catalog, self.statistics)

    def explain_pair(self, query: ast.Query | str) -> PlanPair:
        """Plan the query on both engines (the EXPLAIN step of the paper)."""
        parsed = self.parse(query) if isinstance(query, str) else query
        with get_tracer().span("htap.optimize", engines="tp+ap"):
            tp_plan = self.tp_optimizer.optimize(parsed)
            ap_plan = self.ap_optimizer.optimize(parsed)
        return PlanPair(query=parsed, tp_plan=tp_plan, ap_plan=ap_plan)

    def execute_plan(self, engine: EngineKind, plan: PlanNode) -> ExecutionResult:
        """Execute a single plan on one engine (simulated)."""
        return self.simulator.execute(engine, plan)

    def run_both(self, query: ast.Query | str) -> QueryExecution:
        """Plan and execute the query on both engines, as the paper's setup does."""
        plan_pair = self.explain_pair(query)
        with get_tracer().span("htap.execute", engines="tp+ap"):
            tp_result = self.simulator.execute(EngineKind.TP, plan_pair.tp_plan)
            ap_result = self.simulator.execute(EngineKind.AP, plan_pair.ap_plan)
        return QueryExecution(
            query=plan_pair.query,
            plan_pair=plan_pair,
            tp_result=tp_result,
            ap_result=ap_result,
        )
