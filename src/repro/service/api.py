"""Request/response model for the explanation-serving subsystem.

Every interaction with :class:`~repro.service.server.ExplanationService` is
described by these types: a caller submits an :class:`ExplainRequest` (or
just a SQL string, which the service wraps) and always gets back an
:class:`ExplainResult` — rejections and failures are *values* with a typed
:class:`ServiceError`, never exceptions leaking out of the worker pool.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass, field
from enum import Enum
from typing import TYPE_CHECKING

from repro.knowledge.sharding import DEFAULT_TENANT

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.explainer.pipeline import Explanation

_REQUEST_COUNTER = itertools.count(1)


def new_request_id() -> str:
    """Process-unique, monotonically increasing request id."""
    return f"req-{next(_REQUEST_COUNTER):08d}"


class RequestStatus(str, Enum):
    """Terminal state of one request."""

    OK = "ok"
    REJECTED = "rejected"  # never entered the pipeline (shed / closed)
    FAILED = "failed"      # entered the pipeline but could not finish


class ServiceErrorCode(str, Enum):
    """Typed reasons a request did not produce an explanation."""

    QUEUE_FULL = "queue_full"
    DEADLINE_EXCEEDED = "deadline_exceeded"
    QUOTA_EXCEEDED = "quota_exceeded"
    SERVICE_CLOSED = "service_closed"
    INTERNAL_ERROR = "internal_error"


@dataclass(frozen=True)
class ServiceError:
    """Structured error carried inside a non-OK :class:`ExplainResult`."""

    code: ServiceErrorCode
    message: str

    @property
    def retryable(self) -> bool:
        """Whether retrying the same request later can succeed."""
        return self.code in (
            ServiceErrorCode.QUEUE_FULL,
            ServiceErrorCode.DEADLINE_EXCEEDED,
            ServiceErrorCode.QUOTA_EXCEEDED,
        )


@dataclass
class ExplainRequest:
    """One explanation request as tracked inside the service."""

    sql: str
    user_notes: str | None = None
    #: Wall-clock budget for the whole request (queueing included); ``None``
    #: means no deadline.
    deadline_seconds: float | None = None
    #: Tenant namespace the request runs in — scopes cache keys, quota
    #: accounting, fair-queue weight, and (when sharded) KB retrieval.
    tenant: str = DEFAULT_TENANT
    request_id: str = field(default_factory=new_request_id)
    #: ``time.perf_counter()`` at admission, set by the service.
    submitted_at: float = field(default_factory=time.perf_counter)

    def remaining_seconds(self, now: float | None = None) -> float | None:
        """Time left in the budget, or ``None`` when there is no deadline."""
        if self.deadline_seconds is None:
            return None
        now = time.perf_counter() if now is None else now
        return self.deadline_seconds - (now - self.submitted_at)

    def expired(self, now: float | None = None) -> bool:
        remaining = self.remaining_seconds(now)
        return remaining is not None and remaining <= 0.0


@dataclass
class ExplainResult:
    """Terminal outcome of one request — always returned, never raised."""

    request_id: str
    status: RequestStatus
    explanation: "Explanation | None" = None
    error: ServiceError | None = None
    #: Whether the explanation came straight from the L1 cache.
    cache_hit: bool = False
    #: Whether the plan/embedding came from the L2 cache (cold LLM call only).
    plan_cache_hit: bool = False
    #: Time spent waiting before a worker picked the request up.
    queue_seconds: float = 0.0
    #: End-to-end time inside the service (admission to completion).
    total_seconds: float = 0.0

    @property
    def ok(self) -> bool:
        return self.status is RequestStatus.OK

    @property
    def text(self) -> str | None:
        """The explanation text, if the request succeeded."""
        return self.explanation.text if self.explanation is not None else None

    @classmethod
    def rejection(
        cls, request_id: str, code: ServiceErrorCode, message: str, *, total_seconds: float = 0.0
    ) -> "ExplainResult":
        return cls(
            request_id=request_id,
            status=RequestStatus.REJECTED,
            error=ServiceError(code=code, message=message),
            total_seconds=total_seconds,
        )

    @classmethod
    def failure(
        cls,
        request_id: str,
        code: ServiceErrorCode,
        message: str,
        *,
        queue_seconds: float = 0.0,
        total_seconds: float = 0.0,
    ) -> "ExplainResult":
        return cls(
            request_id=request_id,
            status=RequestStatus.FAILED,
            error=ServiceError(code=code, message=message),
            queue_seconds=queue_seconds,
            total_seconds=total_seconds,
        )
