"""ExplanationService — the concurrent serving front-end of the pipeline.

Wraps ``HTAPSystem + SmartRouter + KnowledgeBase + LLMClient`` behind a
production-shaped request path:

* **admission control** — a bounded in-flight budget; when it is exhausted,
  new requests are shed with a typed ``QUEUE_FULL`` rejection instead of an
  exception or an unbounded queue;
* **multi-level caching** — an L1 explanation cache (normalized-SQL +
  user-notes key) served synchronously at admission, and an L2 plan /
  embedding cache that lets repeated SQL skip parse → optimize → execute →
  encode (see :mod:`repro.service.cache`); both are invalidated
  automatically on DDL and knowledge-base writes via the listener hooks on
  :class:`~repro.htap.system.HTAPSystem` and
  :class:`~repro.knowledge.knowledge_base.KnowledgeBase`;
* **micro-batched router inference** — cold requests encode through the
  :class:`~repro.service.batching.MicroBatcher`, so concurrent encodes run
  as one stacked forward pass;
* **worker pool + deadlines** — a ``ThreadPoolExecutor`` drives the
  remaining stages; a request whose latency budget expires while queued is
  completed with ``DEADLINE_EXCEEDED`` rather than doing dead work;
* **sharding + multi-tenancy** — with ``ServiceConfig(num_shards=N)`` or
  declared ``tenants``, the knowledge base is wrapped in a
  :class:`~repro.knowledge.sharding.ShardedKnowledgeBase` (scatter-gather
  retrieval, per-shard locks) and every request carries a ``tenant``
  namespace: tenant-scoped cache levels and fingerprints, per-tenant
  quotas (``QUOTA_EXCEEDED`` rejections), and weighted fair batching;
* **telemetry** — counters and p50/p95/p99 latency histograms exported as
  one dict by :meth:`ExplanationService.metrics_snapshot`;
* **admin plane** — with ``ServiceConfig(admin_port=...)`` the service
  starts an embedded :class:`~repro.obs.server.AdminServer` serving
  ``/metrics`` (Prometheus text), ``/healthz`` / ``/readyz`` (typed health
  checks via :meth:`ExplanationService.health_report`), ``/traces`` (the
  live tracer's retained traces), and ``/slo`` (burn-rate evaluation of
  the default objectives).
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from typing import Sequence

from repro.explainer.pipeline import Explanation, RagExplainer, execution_result_text
from repro.htap.catalog import Index
from repro.htap.system import HTAPSystem, QueryExecution
from repro.knowledge.knowledge_base import KnowledgeBase
from repro.knowledge.sharding import DEFAULT_TENANT, ShardedKnowledgeBase
from repro.llm.client import LLMClient
from repro.llm.prompts import PromptBuilder
from repro.obs.tracing import NULL_SPAN, Span, get_tracer
from repro.router.router import SmartRouter
from repro.service.api import (
    ExplainRequest,
    ExplainResult,
    RequestStatus,
    ServiceErrorCode,
)
from repro.service.batching import MicroBatcher
from repro.service.cache import ServiceCache
from repro.service.config import ServiceConfig
from repro.service.fingerprint import request_cache_key, sql_fingerprint
from repro.service.metrics import MetricsRegistry
from repro.service.tenancy import TenantConfig, TenantRegistry


def _completed(result: ExplainResult) -> "Future[ExplainResult]":
    future: "Future[ExplainResult]" = Future()
    future.set_result(result)
    return future


#: Root span name for one served request; ``repro-trace`` trees hang off it.
ROOT_SPAN_NAME = "service.explain"


class ExplanationService:
    """Concurrent, cached, batched serving layer over :class:`RagExplainer`."""

    def __init__(
        self,
        system: HTAPSystem,
        router: SmartRouter,
        knowledge_base: KnowledgeBase | ShardedKnowledgeBase,
        llm: LLMClient,
        *,
        config: ServiceConfig | None = None,
        prompt_builder: PromptBuilder | None = None,
        top_k: int | None = None,
        max_workers: int | None = None,
        max_in_flight: int | None = None,
        default_deadline_seconds: float | None = None,
        explanation_cache_capacity: int | None = None,
        plan_cache_capacity: int | None = None,
        explanation_ttl_seconds: float | None = None,
        plan_ttl_seconds: float | None = None,
        batch_max_size: int | None = None,
        batch_max_wait_seconds: float | None = None,
        quantize_embedding_cache: bool | None = None,
        admin_port: int | None = None,
        admin_host: str | None = None,
        num_shards: int | None = None,
        tenants: tuple[TenantConfig, ...] | None = None,
    ):
        self.config = (config or ServiceConfig()).with_overrides(
            top_k=top_k,
            max_workers=max_workers,
            max_in_flight=max_in_flight,
            default_deadline_seconds=default_deadline_seconds,
            explanation_cache_capacity=explanation_cache_capacity,
            plan_cache_capacity=plan_cache_capacity,
            explanation_ttl_seconds=explanation_ttl_seconds,
            plan_ttl_seconds=plan_ttl_seconds,
            batch_max_size=batch_max_size,
            batch_max_wait_seconds=batch_max_wait_seconds,
            quantize_embedding_cache=quantize_embedding_cache,
            admin_port=admin_port,
            admin_host=admin_host,
            num_shards=num_shards,
            tenants=tenants,
        )
        resolved = self.config
        if resolved.max_workers < 1:
            raise ValueError("max_workers must be at least 1")
        if resolved.max_in_flight < 1:
            raise ValueError("max_in_flight must be at least 1")
        if resolved.num_shards < 1:
            raise ValueError("num_shards must be at least 1")
        self.system = system
        self.router = router
        # Sharding / tenancy: a plain KnowledgeBase is wrapped in a
        # ShardedKnowledgeBase (seeding its entries into the default
        # tenant) whenever the config asks for shards or declares tenants;
        # a pre-built ShardedKnowledgeBase passes through untouched.
        if isinstance(knowledge_base, ShardedKnowledgeBase):
            self._sharded = True
        elif resolved.num_shards > 1 or resolved.tenants:
            knowledge_base = ShardedKnowledgeBase.from_knowledge_base(
                knowledge_base, resolved.num_shards
            )
            self._sharded = True
        else:
            self._sharded = False
        self.knowledge_base = knowledge_base
        self.tenants = TenantRegistry(resolved.tenants)
        self.llm = llm
        self.explainer = RagExplainer(
            system, router, knowledge_base, llm,
            top_k=resolved.top_k, prompt_builder=prompt_builder,
        )
        self.default_deadline_seconds = resolved.default_deadline_seconds
        self.max_in_flight = resolved.max_in_flight
        self.metrics = MetricsRegistry()
        self.cache = ServiceCache(
            explanation_capacity=resolved.explanation_cache_capacity,
            plan_capacity=resolved.plan_cache_capacity,
            explanation_ttl_seconds=resolved.explanation_ttl_seconds,
            plan_ttl_seconds=resolved.plan_ttl_seconds,
            quantize_embeddings=resolved.quantize_embedding_cache,
        )
        self.batcher = MicroBatcher(
            router,
            max_batch_size=resolved.batch_max_size,
            max_wait_seconds=resolved.batch_max_wait_seconds,
            metrics=self.metrics,
        )
        self._executor = ThreadPoolExecutor(
            max_workers=resolved.max_workers, thread_name_prefix="explain"
        )
        self._in_flight = 0
        self._admission_lock = threading.Lock()
        self._closed = False
        # Stale-data hooks: any DDL or knowledge write invalidates caches.
        # The sharded KB reports the writing tenant, so only that tenant's
        # explanation cache is dropped; a plain KB write drops all of them.
        if self._sharded:
            knowledge_base.add_write_listener(self._on_tenant_kb_write)
        else:
            knowledge_base.add_write_listener(self._on_kb_write)
        system.add_ddl_listener(self._on_ddl)
        #: Embedded admin HTTP server and SLO tracker (None unless
        #: ``admin_port`` is configured).
        self.admin = None
        self.slo = None
        if resolved.admin_port is not None:
            self._start_admin(resolved)

    # ------------------------------------------------------------- admin plane
    def _start_admin(self, resolved: ServiceConfig) -> None:
        # Imported lazily: most deployments never start the admin plane,
        # and repro.obs.server pulls in asyncio machinery this hot-path
        # module otherwise does not need.
        from repro.obs.server import AdminServer
        from repro.obs.slo import SLOTracker

        self.slo = SLOTracker()
        self.admin = AdminServer(
            host=resolved.admin_host,
            port=resolved.admin_port,
            # The tracer providers re-read get_tracer() per request so the
            # endpoints follow `traced(...)` installs/restores live.
            snapshot_providers=(
                self.metrics_snapshot,
                lambda: get_tracer().stage_snapshot(),
            ),
            health=self.health_report,
            ready=lambda: self.health_report(readiness=True),
            store_provider=lambda: get_tracer().store,
            slo=self.slo,
        )
        self.admin.start()

    def health_report(self, *, readiness: bool = False):
        """Typed liveness (default) or readiness checks for the admin plane.

        Liveness: the service accepts work and its background machinery
        (worker pool, micro-batch scheduler) is running.  Readiness adds
        load-dependent checks — the admission queue has capacity and the
        caches are answering — so an orchestrator can pull a saturated
        instance out of rotation without killing it.
        """
        from repro.obs.health import HealthCheck, HealthReport

        checks = [
            HealthCheck(
                "service_open",
                not self._closed,
                "accepting requests" if not self._closed else "service is shut down",
            ),
            HealthCheck(
                "worker_pool",
                not self._closed,
                f"{self.config.max_workers} workers configured",
            ),
            HealthCheck(
                "batcher",
                self.batcher.alive,
                "scheduler thread running" if self.batcher.alive else "scheduler thread down",
            ),
        ]
        if readiness:
            with self._admission_lock:
                in_flight = self._in_flight
            checks.append(
                HealthCheck(
                    "queue_depth",
                    in_flight < self.max_in_flight,
                    f"{in_flight}/{self.max_in_flight} in flight",
                )
            )
            cache_stats = self.cache.snapshot()
            checks.append(
                HealthCheck(
                    "caches",
                    True,
                    "; ".join(
                        f"{name}: {int(stats.get('size', 0))} entries"
                        for name, stats in sorted(cache_stats.items())
                    ),
                )
            )
        return HealthReport(checks=tuple(checks))

    # ------------------------------------------------------------- invalidation
    def _on_kb_write(self, event: str, entry_id: str) -> None:
        self.metrics.counter("invalidations.kb_write").increment()
        self.cache.on_kb_write(event, entry_id)

    def _on_tenant_kb_write(self, event: str, entry_id: str, tenant: str) -> None:
        self.metrics.counter("invalidations.kb_write").increment()
        # The default namespace is the shared corpus grounding every
        # tenant's retrieval, so a write to it stales all tenants' cached
        # explanations; a tenant-namespace write stales only that tenant's.
        self.cache.on_kb_write(event, entry_id, None if tenant == DEFAULT_TENANT else tenant)

    def _on_ddl(self, event: str, index_name: str) -> None:
        self.metrics.counter("invalidations.ddl").increment()
        self.cache.on_ddl(event, index_name)
        # DDL can change catalog row counts, so the featurizer's per-relation
        # row-count memo is stale along with the plan cache.
        self.router.featurizer.invalidate_catalog_cache()

    # -------------------------------------------------------------------- DDL
    def create_index(self, table_name: str, column_name: str) -> Index:
        """DDL passthrough; the system's listener hook invalidates caches."""
        return self.system.create_index(table_name, column_name)

    def drop_index(self, index_name: str) -> None:
        self.system.drop_index(index_name)

    # ----------------------------------------------------------------- public
    def submit(
        self,
        sql: str,
        *,
        user_notes: str | None = None,
        deadline_seconds: float | None = None,
        tenant: str | None = None,
    ) -> "Future[ExplainResult]":
        """Admit one request; returns a future that never raises.

        The L1 explanation cache is consulted synchronously, so warm
        requests cost a dict lookup and never occupy a worker or a queue
        slot.  When the in-flight budget is exhausted the request is shed
        with a ``QUEUE_FULL`` rejection; a tenant over its declared quota
        is shed with ``QUOTA_EXCEEDED``.
        """
        resolved_tenant = tenant if tenant is not None else DEFAULT_TENANT
        request = ExplainRequest(
            sql=sql,
            user_notes=user_notes,
            deadline_seconds=(
                self.default_deadline_seconds if deadline_seconds is None else deadline_seconds
            ),
            tenant=resolved_tenant,
        )
        self.metrics.counter("requests.submitted").increment()
        self.metrics.counter(f"requests.tenant.{resolved_tenant}").increment()
        tracer = get_tracer()
        root = tracer.span(
            ROOT_SPAN_NAME, root=True, request_id=request.request_id, tenant=resolved_tenant
        )
        if self._closed:
            self.metrics.counter("requests.rejected_closed").increment()
            self._reject_span(root, ServiceErrorCode.SERVICE_CLOSED)
            return _completed(
                ExplainResult.rejection(
                    request.request_id, ServiceErrorCode.SERVICE_CLOSED, "service is shut down"
                )
            )
        if not self.tenants.try_admit(resolved_tenant):
            self._reject_span(root, ServiceErrorCode.QUOTA_EXCEEDED)
            return _completed(
                ExplainResult.rejection(
                    request.request_id,
                    ServiceErrorCode.QUOTA_EXCEEDED,
                    f"tenant {resolved_tenant!r} is over its request quota",
                )
            )
        cache_key = request_cache_key(
            sql, user_notes, self.explainer.top_k, tenant=resolved_tenant
        )
        levels = self.cache.level(resolved_tenant)
        with tracer.attach(root):
            with tracer.span("cache.l1_lookup") as lookup:
                cached = levels.explanations.get(cache_key)
                lookup.set_attribute("hit", cached is not None)
        if cached is not None:
            self.metrics.counter("requests.ok").increment()
            total = time.perf_counter() - request.submitted_at
            self.metrics.histogram("latency.warm_seconds").record(total)
            root.set_attributes(status="ok", cache="l1_hit")
            root.end()
            return _completed(
                ExplainResult(
                    request_id=request.request_id,
                    status=RequestStatus.OK,
                    explanation=cached,
                    cache_hit=True,
                    total_seconds=total,
                )
            )
        with self._admission_lock:
            if self._in_flight >= self.max_in_flight:
                self.metrics.counter("requests.shed").increment()
                self._reject_span(root, ServiceErrorCode.QUEUE_FULL)
                return _completed(
                    ExplainResult.rejection(
                        request.request_id,
                        ServiceErrorCode.QUEUE_FULL,
                        f"in-flight limit of {self.max_in_flight} reached",
                    )
                )
            self._in_flight += 1
        try:
            return self._executor.submit(self._process_guarded, request, cache_key, root)
        except RuntimeError:
            # shutdown() raced us between the _closed check and the executor
            # submit; release the admission slot and reject like any other
            # post-close request instead of letting the exception escape.
            with self._admission_lock:
                self._in_flight -= 1
            self.metrics.counter("requests.rejected_closed").increment()
            self._reject_span(root, ServiceErrorCode.SERVICE_CLOSED)
            return _completed(
                ExplainResult.rejection(
                    request.request_id, ServiceErrorCode.SERVICE_CLOSED, "service is shut down"
                )
            )

    def _reject_span(self, root: "Span", code: ServiceErrorCode) -> None:
        """Tag and close a root span for a request the service refused.

        Every refusal — shed on a full queue, an expired deadline, a
        post-shutdown submit — increments a per-reason counter
        (``requests.rejected.<reason>``) and stamps the reason on the
        root span so shed traffic is visible both in the metrics
        exposition and in individual traces.
        """
        self.metrics.counter(f"requests.rejected.{code.value}").increment()
        root.set_attributes(status="rejected", rejected_reason=code.value)
        root.end()

    def explain(
        self,
        sql: str,
        *,
        user_notes: str | None = None,
        deadline_seconds: float | None = None,
        tenant: str | None = None,
    ) -> ExplainResult:
        """Synchronous convenience wrapper around :meth:`submit`."""
        return self.submit(
            sql, user_notes=user_notes, deadline_seconds=deadline_seconds, tenant=tenant
        ).result()

    def explain_many(self, sqls: Sequence[str]) -> list[ExplainResult]:
        """Submit a batch of SQL strings and gather all results."""
        futures = [self.submit(sql) for sql in sqls]
        return [future.result() for future in futures]

    # ------------------------------------------------------------------ worker
    def _process_guarded(
        self, request: ExplainRequest, cache_key: str, root: "Span" = NULL_SPAN
    ) -> ExplainResult:
        # Re-enter the root span on this worker thread: it was opened on the
        # submitting thread, and contextvars do not follow work into a pool,
        # so without the attach every stage span below would be orphaned.
        try:
            with get_tracer().attach(root):
                result = self._process(request, cache_key, root)
        except Exception as exc:  # noqa: BLE001 - typed result, never raise
            self.metrics.counter("requests.failed").increment()
            root.set_attributes(status="failed", error=type(exc).__name__)
            result = ExplainResult.failure(
                request.request_id,
                ServiceErrorCode.INTERNAL_ERROR,
                f"{type(exc).__name__}: {exc}",
                total_seconds=time.perf_counter() - request.submitted_at,
            )
        finally:
            with self._admission_lock:
                self._in_flight -= 1
            root.end()
        return result

    def _process(
        self, request: ExplainRequest, cache_key: str, root: "Span" = NULL_SPAN
    ) -> ExplainResult:
        started = time.perf_counter()
        queue_seconds = started - request.submitted_at
        self.metrics.histogram("latency.queue_seconds").record(queue_seconds)
        root.set_attribute("queue_seconds", round(queue_seconds, 6))
        if request.expired(started):
            self.metrics.counter("requests.deadline_exceeded").increment()
            self.metrics.counter(
                f"requests.rejected.{ServiceErrorCode.DEADLINE_EXCEEDED.value}"
            ).increment()
            root.set_attributes(
                status="rejected", rejected_reason=ServiceErrorCode.DEADLINE_EXCEEDED.value
            )
            return ExplainResult.failure(
                request.request_id,
                ServiceErrorCode.DEADLINE_EXCEEDED,
                f"deadline of {request.deadline_seconds:.3f}s expired after "
                f"{queue_seconds:.3f}s in queue",
                queue_seconds=queue_seconds,
                total_seconds=queue_seconds,
            )
        # A twin request may have populated the explanation cache while this
        # one waited for a worker.
        tenant = request.tenant
        levels = self.cache.level(tenant)
        tracer = get_tracer()
        with tracer.span("cache.l1_lookup") as lookup:
            cached = levels.explanations.get(cache_key)
            lookup.set_attribute("hit", cached is not None)
        if cached is not None:
            self.metrics.counter("requests.ok").increment()
            total = time.perf_counter() - request.submitted_at
            self.metrics.histogram("latency.warm_seconds").record(total)
            root.set_attributes(status="ok", cache="l1_hit")
            return ExplainResult(
                request_id=request.request_id,
                status=RequestStatus.OK,
                explanation=cached,
                cache_hit=True,
                queue_seconds=queue_seconds,
                total_seconds=total,
            )

        plan_key = sql_fingerprint(request.sql, tenant=tenant)
        # Epochs read *before* computing guard the puts below: if DDL or a KB
        # write invalidates a cache while this request is mid-flight, the
        # stale result must not be re-inserted after the clear.
        plan_epoch = levels.plans.epoch
        explanation_epoch = levels.explanations.epoch
        with tracer.span("cache.l2_lookup") as lookup:
            plan_entry = self.cache.get_plan(plan_key, tenant=tenant)
            lookup.set_attribute("hit", plan_entry is not None)
        encode_seconds = 0.0
        if plan_entry is None:
            execution: QueryExecution = self.system.run_both(request.sql)
            encode_start = time.perf_counter()
            with tracer.span("pipeline.encode", batched=True):
                embedding = self.batcher.encode(
                    execution.plan_pair,
                    tenant=tenant,
                    weight=self.tenants.weight(tenant),
                )
            encode_seconds = time.perf_counter() - encode_start
            self.cache.put_plan(plan_key, execution, embedding, epoch=plan_epoch, tenant=tenant)
            plan_cache_hit = False
        else:
            execution, embedding = plan_entry
            plan_cache_hit = True
        root.set_attribute("cache.l2_hit", plan_cache_hit)

        if request.expired():
            self.metrics.counter("requests.deadline_exceeded").increment()
            self.metrics.counter(
                f"requests.rejected.{ServiceErrorCode.DEADLINE_EXCEEDED.value}"
            ).increment()
            root.set_attributes(
                status="rejected", rejected_reason=ServiceErrorCode.DEADLINE_EXCEEDED.value
            )
            elapsed = time.perf_counter() - request.submitted_at
            return ExplainResult.failure(
                request.request_id,
                ServiceErrorCode.DEADLINE_EXCEEDED,
                f"deadline of {request.deadline_seconds:.3f}s expired before generation",
                queue_seconds=queue_seconds,
                total_seconds=elapsed,
            )

        retrieval = self.explainer.retrieve_stage(
            embedding, tenant=tenant if self._sharded else None
        )
        explanation: Explanation = self.explainer.generate_stage(
            execution.plan_pair,
            embedding,
            retrieval,
            encode_seconds=encode_seconds,
            execution_result=execution_result_text(execution),
            faster_engine=execution.faster_engine,
            user_notes=request.user_notes,
        )
        levels.explanations.put(cache_key, explanation, epoch=explanation_epoch)
        self.metrics.counter("requests.ok").increment()
        total = time.perf_counter() - request.submitted_at
        self.metrics.histogram("latency.cold_seconds").record(total)
        root.set_attributes(status="ok")
        return ExplainResult(
            request_id=request.request_id,
            status=RequestStatus.OK,
            explanation=explanation,
            plan_cache_hit=plan_cache_hit,
            queue_seconds=queue_seconds,
            total_seconds=total,
        )

    # --------------------------------------------------------------- telemetry
    def metrics_snapshot(self) -> dict[str, object]:
        """One dict with counters, latency summaries, cache and batch stats."""
        payload = self.metrics.snapshot()
        payload["cache"] = self.cache.snapshot()
        payload["batching"] = self.batcher.stats()
        if self._sharded:
            payload["sharding"] = self.knowledge_base.stats()
        with self._admission_lock:
            payload["in_flight"] = self._in_flight
        payload["max_in_flight"] = self.max_in_flight
        return payload

    # ---------------------------------------------------------------- lifecycle
    def shutdown(self, wait: bool = True) -> None:
        """Stop accepting work and tear down the pool and the batcher."""
        self._closed = True
        if self.admin is not None:
            self.admin.stop()
        self._executor.shutdown(wait=wait)
        self.batcher.close()
        # Unhook the invalidation listeners so a discarded service does not
        # keep receiving callbacks from long-lived system objects.
        try:
            if self._sharded:
                self.knowledge_base.remove_write_listener(self._on_tenant_kb_write)
            else:
                self.knowledge_base.remove_write_listener(self._on_kb_write)
        except ValueError:
            pass
        try:
            self.system.remove_ddl_listener(self._on_ddl)
        except ValueError:
            pass
        if self._sharded:
            self.knowledge_base.close()

    def __enter__(self) -> "ExplanationService":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.shutdown()
