"""Multi-level caching for the explanation service.

Two levels, both LRU with optional TTL and full hit/miss accounting:

* **L1 — explanation cache**: ``request_cache_key -> Explanation``.  A hit
  serves the finished answer without touching planner, router, knowledge
  base, or LLM.  Invalidated by knowledge-base writes (retrieval grounding
  changed) and by DDL (plans changed).
* **L2 — plan cache**: ``sql_fingerprint -> (QueryExecution, embedding)``.
  A hit skips parse → optimize → execute → encode and goes straight to
  retrieval + generation.  Invalidated by DDL only; knowledge-base writes
  do not change plans or embeddings.

Both caches are safe to use from many worker threads.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable, Hashable

from repro.knowledge.quantization import QuantizedVector, quantize_vector
from repro.knowledge.sharding import DEFAULT_TENANT

_MISSING = object()


@dataclass
class CacheStats:
    """Counters for one cache level."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    invalidations: int = 0
    expirations: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def as_dict(self) -> dict[str, float]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
            "expirations": self.expirations,
            "hit_rate": self.hit_rate,
        }


class LRUTTLCache:
    """Thread-safe LRU cache with optional per-cache TTL.

    ``ttl_seconds=None`` disables expiry; ``capacity`` bounds the entry
    count, evicting least-recently-used entries.  The clock is injectable
    so TTL behaviour is testable without sleeping.
    """

    def __init__(
        self,
        capacity: int = 1024,
        *,
        ttl_seconds: float | None = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        if capacity < 1:
            raise ValueError("capacity must be at least 1")
        if ttl_seconds is not None and ttl_seconds <= 0:
            raise ValueError("ttl_seconds must be positive (or None to disable)")
        self.capacity = capacity
        self.ttl_seconds = ttl_seconds
        self._clock = clock
        self._entries: "OrderedDict[Hashable, tuple[Any, float | None]]" = OrderedDict()
        self._lock = threading.Lock()
        self._stats = CacheStats()
        self._epoch = 0

    def get(self, key: Hashable, default: Any = None) -> Any:
        with self._lock:
            item = self._entries.get(key, _MISSING)
            if item is _MISSING:
                self._stats.misses += 1
                return default
            value, expires_at = item
            if expires_at is not None and self._clock() >= expires_at:
                del self._entries[key]
                self._stats.expirations += 1
                self._stats.misses += 1
                return default
            self._entries.move_to_end(key)
            self._stats.hits += 1
            return value

    def put(self, key: Hashable, value: Any, *, epoch: int | None = None) -> bool:
        """Insert ``key``; returns whether the value was stored.

        ``epoch`` guards against a check-compute-put race with invalidation:
        pass the value of :attr:`epoch` read *before* computing ``value``,
        and the put becomes a no-op if :meth:`clear` ran in between (the
        computed value may reflect pre-invalidation state).
        """
        with self._lock:
            if epoch is not None and epoch != self._epoch:
                return False
            expires_at = None if self.ttl_seconds is None else self._clock() + self.ttl_seconds
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = (value, expires_at)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self._stats.evictions += 1
            return True

    def invalidate(self, key: Hashable) -> bool:
        """Drop one entry; returns whether it was present."""
        with self._lock:
            if key in self._entries:
                del self._entries[key]
                self._stats.invalidations += 1
                return True
            return False

    def clear(self) -> int:
        """Drop every entry; returns how many were dropped.

        Also advances :attr:`epoch`, so epoch-guarded :meth:`put` calls that
        started computing before the clear will refuse to store stale data.
        """
        with self._lock:
            dropped = len(self._entries)
            self._entries.clear()
            self._stats.invalidations += dropped
            self._epoch += 1
            return dropped

    @property
    def epoch(self) -> int:
        """Invalidation epoch; advanced by every :meth:`clear`."""
        with self._lock:
            return self._epoch

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            item = self._entries.get(key, _MISSING)
            if item is _MISSING:
                return False
            _value, expires_at = item
            return expires_at is None or self._clock() < expires_at

    @property
    def stats(self) -> CacheStats:
        return self._stats

    def stats_dict(self) -> dict[str, float]:
        with self._lock:
            payload = self._stats.as_dict()
            payload["size"] = len(self._entries)
            payload["capacity"] = self.capacity
            return payload


@dataclass
class CacheLevels:
    """One tenant's pair of cache levels (L1 explanations + L2 plans)."""

    explanations: LRUTTLCache
    plans: LRUTTLCache


class ServiceCache:
    """The explanation service's two cache levels plus their invalidation.

    Wire :meth:`on_kb_write` into ``KnowledgeBase.add_write_listener`` and
    :meth:`on_ddl` into ``HTAPSystem.add_ddl_listener``; the service does
    this automatically.

    Every tenant gets a private :class:`CacheLevels` pair (created lazily
    by :meth:`level`), so one tenant's knowledge-base writes invalidate
    only that tenant's explanations and a noisy tenant cannot evict a
    quiet one's entries.  The :attr:`explanations` / :attr:`plans`
    properties alias the default tenant's levels, keeping the
    single-tenant API unchanged.

    With ``quantize_embeddings`` the L2 plan entries store their embedding
    as int8 codes (:mod:`repro.knowledge.quantization`) — ~8× less
    embedding memory per entry — and :meth:`get_plan` dequantizes on hit,
    so callers always receive a float64 array.
    """

    def __init__(
        self,
        *,
        explanation_capacity: int = 512,
        plan_capacity: int = 2048,
        explanation_ttl_seconds: float | None = None,
        plan_ttl_seconds: float | None = None,
        quantize_embeddings: bool = False,
        clock: Callable[[], float] = time.monotonic,
    ):
        self._explanation_capacity = explanation_capacity
        self._plan_capacity = plan_capacity
        self._explanation_ttl = explanation_ttl_seconds
        self._plan_ttl = plan_ttl_seconds
        self._clock = clock
        self.quantize_embeddings = quantize_embeddings
        self._levels_lock = threading.Lock()
        #: tenant -> CacheLevels; replaced copy-on-write so readers may
        #: iterate a snapshot without holding the lock.
        self._levels: dict[str, CacheLevels] = {DEFAULT_TENANT: self._new_levels()}

    def _new_levels(self) -> CacheLevels:
        return CacheLevels(
            explanations=LRUTTLCache(
                self._explanation_capacity, ttl_seconds=self._explanation_ttl, clock=self._clock
            ),
            plans=LRUTTLCache(self._plan_capacity, ttl_seconds=self._plan_ttl, clock=self._clock),
        )

    # ------------------------------------------------------------ tenant levels
    def level(self, tenant: str | None = None) -> CacheLevels:
        """The (lazily created) cache pair owned by ``tenant``."""
        name = tenant if tenant is not None else DEFAULT_TENANT
        levels = self._levels.get(name)
        if levels is None:
            with self._levels_lock:
                levels = self._levels.get(name)
                if levels is None:
                    levels = self._new_levels()
                    fresh = dict(self._levels)
                    fresh[name] = levels
                    self._levels = fresh
        return levels

    def tenants(self) -> tuple[str, ...]:
        return tuple(sorted(self._levels))

    @property
    def explanations(self) -> LRUTTLCache:
        """The default tenant's L1 (legacy single-tenant accessor)."""
        return self._levels[DEFAULT_TENANT].explanations

    @property
    def plans(self) -> LRUTTLCache:
        """The default tenant's L2 (legacy single-tenant accessor)."""
        return self._levels[DEFAULT_TENANT].plans

    # -------------------------------------------------------------- L2 entries
    def put_plan(
        self,
        key: Hashable,
        execution: Any,
        embedding: Any,
        *,
        epoch: int | None = None,
        tenant: str | None = None,
    ) -> bool:
        """Store one L2 entry, quantizing the embedding when configured."""
        stored = quantize_vector(embedding) if self.quantize_embeddings else embedding
        return self.level(tenant).plans.put(key, (execution, stored), epoch=epoch)

    def get_plan(self, key: Hashable, *, tenant: str | None = None) -> tuple[Any, Any] | None:
        """One L2 lookup; quantized embeddings are dequantized on hit."""
        entry = self.level(tenant).plans.get(key)
        if entry is None:
            return None
        execution, stored = entry
        if isinstance(stored, QuantizedVector):
            stored = stored.dequantize()
        return execution, stored

    # ------------------------------------------------------------ invalidation
    def on_kb_write(self, event: str, entry_id: str, tenant: str | None = None) -> None:
        """Knowledge changed: cached explanations may cite stale entries.

        With ``tenant`` set only that tenant's explanations drop — tenant
        namespaces are retrieval-isolated, so tenant A's write cannot make
        tenant B's cached answers stale.  Without it (a legacy
        un-namespaced KB write) every tenant's explanations drop.  Plans
        and embeddings are untouched — they do not depend on the KB.
        """
        if tenant is not None:
            self.level(tenant).explanations.clear()
        else:
            for levels in self._levels.values():
                levels.explanations.clear()

    def on_ddl(self, event: str, index_name: str) -> None:
        """Schema changed: optimizer output (and hence embeddings and
        explanations) may differ.  The simulated engines' schema is shared
        infrastructure, so every tenant's levels are dropped."""
        for levels in self._levels.values():
            levels.plans.clear()
            levels.explanations.clear()

    def invalidate_all(self) -> None:
        self.on_ddl("manual", "*")

    # ---------------------------------------------------------------- export
    def snapshot(self) -> dict[str, dict[str, float]]:
        """Per-level stats; the default tenant keeps the legacy flat keys,
        other tenants appear as ``explanations.<tenant>`` / ``plans.<tenant>``."""
        payload: dict[str, dict[str, float]] = {}
        for tenant, levels in sorted(self._levels.items()):
            if tenant == DEFAULT_TENANT:
                payload["explanations"] = levels.explanations.stats_dict()
                payload["plans"] = levels.plans.stats_dict()
            else:
                payload[f"explanations.{tenant}"] = levels.explanations.stats_dict()
                payload[f"plans.{tenant}"] = levels.plans.stats_dict()
        return payload
