"""Multi-tenant serving policy: tenant registry, weights, and quotas.

One :class:`~repro.service.server.ExplanationService` can serve many
tenants, each with a private knowledge-base namespace (see
:mod:`repro.knowledge.sharding`) and private cache levels.  This module
holds the *policy* side of that isolation:

* :class:`TenantConfig` — declarative per-tenant settings carried on
  :class:`~repro.service.config.ServiceConfig` (``tenants=``);
* :class:`TokenBucket` — a classic rate limiter backing per-tenant
  request quotas;
* :class:`TenantRegistry` — resolves a request's tenant to its weight
  (for the batcher's weighted fair queue) and admits or rejects it
  against its quota.

Unknown tenants are admitted with weight 1.0 and no quota (open-by-default
keeps single-tenant deployments configuration-free); declare a tenant in
``ServiceConfig.tenants`` to give it a weight or a quota.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable

from repro.knowledge.sharding import DEFAULT_TENANT

__all__ = ["DEFAULT_TENANT", "TenantConfig", "TokenBucket", "TenantRegistry"]


@dataclass(frozen=True)
class TenantConfig:
    """Declarative per-tenant serving policy.

    ``weight`` scales the tenant's share of the micro-batcher (2.0 drains
    twice as fast as 1.0 under contention).  ``requests_per_second`` caps
    sustained admission (``None`` = unlimited); ``burst`` is the token
    bucket's capacity (defaults to ``max(1, 2 * rate)``).
    """

    name: str
    weight: float = 1.0
    requests_per_second: float | None = None
    burst: float | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("tenant name must be non-empty")
        if self.weight <= 0:
            raise ValueError(f"tenant {self.name!r} weight must be positive")
        if self.requests_per_second is not None and self.requests_per_second <= 0:
            raise ValueError(f"tenant {self.name!r} requests_per_second must be positive")
        if self.burst is not None and self.burst <= 0:
            raise ValueError(f"tenant {self.name!r} burst must be positive")


class TokenBucket:
    """Thread-safe token-bucket rate limiter with an injectable clock."""

    def __init__(
        self,
        rate: float,
        capacity: float | None = None,
        *,
        clock: Callable[[], float] = time.monotonic,
    ):
        if rate <= 0:
            raise ValueError("rate must be positive")
        self.rate = rate
        self.capacity = capacity if capacity is not None else max(1.0, 2.0 * rate)
        self._clock = clock
        self._tokens = self.capacity
        self._refilled_at = clock()
        self._lock = threading.Lock()

    def try_acquire(self, tokens: float = 1.0) -> bool:
        """Take ``tokens`` if available; never blocks."""
        with self._lock:
            now = self._clock()
            self._tokens = min(self.capacity, self._tokens + (now - self._refilled_at) * self.rate)
            self._refilled_at = now
            if self._tokens >= tokens:
                self._tokens -= tokens
                return True
            return False

    @property
    def available(self) -> float:
        with self._lock:
            now = self._clock()
            return min(self.capacity, self._tokens + (now - self._refilled_at) * self.rate)


class TenantRegistry:
    """Resolves tenants to their configured weight and quota state."""

    def __init__(
        self,
        tenants: tuple[TenantConfig, ...] | list[TenantConfig] = (),
        *,
        clock: Callable[[], float] = time.monotonic,
    ):
        self._configs: dict[str, TenantConfig] = {}
        self._buckets: dict[str, TokenBucket] = {}
        for config in tenants:
            if config.name in self._configs:
                raise ValueError(f"duplicate tenant {config.name!r}")
            self._configs[config.name] = config
            if config.requests_per_second is not None:
                self._buckets[config.name] = TokenBucket(
                    config.requests_per_second, config.burst, clock=clock
                )

    def known(self, tenant: str) -> bool:
        return tenant in self._configs

    def names(self) -> tuple[str, ...]:
        return tuple(sorted(self._configs))

    def config(self, tenant: str) -> TenantConfig:
        """The declared config, or an open default for unknown tenants."""
        declared = self._configs.get(tenant)
        return declared if declared is not None else TenantConfig(name=tenant)

    def weight(self, tenant: str) -> float:
        return self.config(tenant).weight

    def try_admit(self, tenant: str) -> bool:
        """Charge one request against the tenant's quota.

        ``True`` when the tenant has no quota or has tokens left.
        """
        bucket = self._buckets.get(tenant)
        return True if bucket is None else bucket.try_acquire()
