"""Counters and latency histograms for the serving layer.

Deliberately lightweight: a :class:`MetricsRegistry` is a named bag of
:class:`Counter` and :class:`LatencyHistogram` objects whose
:meth:`~MetricsRegistry.snapshot` exports one plain dict — the contract the
throughput benchmark, the ``BENCH_*.json`` exporter, and any external
scraper consume.  Quantile math is delegated to :mod:`repro.bench.stats`
so a p95 reported here uses the same nearest-rank convention as every
other percentile in the repo.
"""

from __future__ import annotations

import threading

from repro.bench.stats import percentile_index


class Counter:
    """A monotonically increasing, thread-safe counter."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0

    def increment(self, amount: int = 1) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        with self._lock:
            return self._value


class LatencyHistogram:
    """Latency samples with percentile export.

    The hot path (:meth:`record`) is O(1): samples land in an unsorted
    ring buffer whose bounded size keeps memory flat under sustained
    traffic (once full, a cursor overwrites the retained set in
    round-robin order, keeping it spread across the stream without a
    random source).  Sorting is deferred to the rare read side —
    :meth:`percentile` / :meth:`summary` sort lazily and cache the sorted
    view until the next write.
    """

    def __init__(self, max_samples: int = 8192) -> None:
        if max_samples < 1:
            raise ValueError("max_samples must be at least 1")
        self._lock = threading.Lock()
        self._max_samples = max_samples
        self._ring: list[float] = []
        self._cursor = 0
        self._count = 0
        self._total = 0.0
        self._min = 0.0
        self._max = 0.0
        self._sorted_cache: list[float] | None = None

    def record(self, seconds: float) -> None:
        with self._lock:
            if self._count == 0 or seconds < self._min:
                self._min = seconds
            self._count += 1
            self._total += seconds
            if seconds > self._max:
                self._max = seconds
            if len(self._ring) < self._max_samples:
                self._ring.append(seconds)
            else:
                self._ring[self._cursor] = seconds
                self._cursor = (self._cursor + 1) % self._max_samples
            self._sorted_cache = None

    def _sorted_samples(self) -> list[float]:
        # Caller holds the lock.
        if self._sorted_cache is None:
            self._sorted_cache = sorted(self._ring)
        return self._sorted_cache

    def percentile(self, fraction: float) -> float:
        """Latency at the given quantile (0 < fraction <= 1) in seconds."""
        if not 0.0 < fraction <= 1.0:
            raise ValueError("fraction must be in (0, 1]")
        with self._lock:
            samples = self._sorted_samples()
            if not samples:
                return 0.0
            return samples[percentile_index(len(samples), fraction)]

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    def summary(self) -> dict[str, float]:
        """Count, sum, mean, all-time min/max, and ring-window percentiles.

        ``min``/``max``/``sum``/``mean`` cover every sample ever recorded
        (not just the retained ring), so a scraper can derive rates from
        consecutive ``sum``/``count`` pairs without losing overwritten
        samples; the percentiles are computed over the ring window.
        """
        with self._lock:
            samples = self._sorted_samples()
            if not samples:
                return {
                    "count": 0,
                    "sum": 0.0,
                    "mean": 0.0,
                    "min": 0.0,
                    "p50": 0.0,
                    "p95": 0.0,
                    "p99": 0.0,
                    "max": 0.0,
                }
            size = len(samples)

            def at(fraction: float) -> float:
                return samples[percentile_index(size, fraction)]

            return {
                "count": self._count,
                "sum": self._total,
                "mean": self._total / self._count,
                "min": self._min,
                "p50": at(0.50),
                "p95": at(0.95),
                "p99": at(0.99),
                "max": self._max,
            }


class MetricsRegistry:
    """Named counters and histograms, exported as one dict."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._histograms: dict[str, LatencyHistogram] = {}

    def counter(self, name: str) -> Counter:
        with self._lock:
            counter = self._counters.get(name)
            if counter is None:
                counter = self._counters[name] = Counter()
            return counter

    def histogram(self, name: str) -> LatencyHistogram:
        with self._lock:
            histogram = self._histograms.get(name)
            if histogram is None:
                histogram = self._histograms[name] = LatencyHistogram()
            return histogram

    def snapshot(self) -> dict[str, object]:
        # Lock discipline, audited under 16-way writer stress (see
        # tests/service/test_batching_and_metrics.py): the registry lock
        # only guards the name->object maps and is released before any
        # per-object read, so a snapshot never blocks writers for longer
        # than two dict copies.  Each Counter.value and
        # LatencyHistogram.summary() takes its own lock — record() both
        # mutates the ring and invalidates the sorted-cache under that
        # same lock, and summary() rebuilds the cache under it, so a
        # concurrent record can never leave summary() indexing a stale or
        # half-built sorted view.  The snapshot is point-in-time per
        # metric, not atomic across metrics (documented contract).
        with self._lock:
            counters = dict(self._counters)
            histograms = dict(self._histograms)
        payload: dict[str, object] = {name: counter.value for name, counter in counters.items()}
        for name, histogram in histograms.items():
            payload[name] = histogram.summary()
        return payload
