"""Normalized-SQL fingerprints — the cache keys of the serving layer.

Two textually different spellings of the same query ("SELECT * FROM t" vs
"select  *\nfrom t;") must hit the same cache line, so cache keys are
derived from a normalized form: whitespace collapsed, keywords and
identifiers lowercased, trailing semicolons stripped — while string
literals keep their exact case and spacing (they change result semantics
in the simulated engines' selectivity model).
"""

from __future__ import annotations

import hashlib

from repro.knowledge.sharding import DEFAULT_TENANT


def _fold_tenant(digest: "hashlib._Hash", tenant: str | None) -> None:
    """Mix a non-default tenant into ``digest``.

    The default tenant (and ``None``) is deliberately a no-op so
    single-tenant deployments keep byte-identical cache keys across the
    multi-tenancy change — warm caches survive the upgrade.
    """
    if tenant not in (None, DEFAULT_TENANT):
        digest.update(b"\x00tenant\x00")
        digest.update(tenant.encode("utf-8"))


def normalize_sql(sql: str) -> str:
    """Canonical spelling of ``sql`` used for fingerprinting.

    Outside single-quoted string literals, every run of whitespace becomes
    one space and characters are lowercased; literals are preserved verbatim.
    Trailing semicolons and surrounding whitespace are dropped.
    """
    out: list[str] = []
    in_literal = False
    pending_space = False
    for char in sql:
        if in_literal:
            out.append(char)
            if char == "'":
                in_literal = False
            continue
        if char == "'":
            if pending_space and out:
                out.append(" ")
            pending_space = False
            out.append(char)
            in_literal = True
            continue
        if char.isspace():
            pending_space = True
            continue
        if pending_space and out:
            out.append(" ")
        pending_space = False
        out.append(char.lower())
    normalized = "".join(out).strip()
    while normalized.endswith(";"):
        normalized = normalized[:-1].rstrip()
    return normalized


def sql_fingerprint(sql: str, *, tenant: str | None = None) -> str:
    """Stable hex fingerprint of the normalized SQL (plan-cache key).

    ``tenant`` namespaces the key so two tenants' identical SQL never
    share a plan-cache line; the default tenant folds to nothing.
    """
    digest = hashlib.sha256(normalize_sql(sql).encode("utf-8"))
    _fold_tenant(digest, tenant)
    return digest.hexdigest()[:32]


def request_cache_key(
    sql: str,
    user_notes: str | None = None,
    top_k: int | None = None,
    *,
    tenant: str | None = None,
) -> str:
    """Explanation-cache key: the SQL fingerprint plus everything else that
    shapes the generated answer (user notes, retrieval depth, tenant)."""
    digest = hashlib.sha256(normalize_sql(sql).encode("utf-8"))
    digest.update(b"\x00notes\x00")
    digest.update((user_notes or "").encode("utf-8"))
    digest.update(b"\x00k\x00")
    digest.update(str(top_k if top_k is not None else "").encode("utf-8"))
    _fold_tenant(digest, tenant)
    return digest.hexdigest()[:32]
