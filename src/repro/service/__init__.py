"""repro.service — the concurrent explanation-serving subsystem.

The paper's pipeline (plan → tree-CNN encode → KB retrieve → prompt → LLM)
is exposed to callers one blocking query at a time by
:class:`~repro.explainer.pipeline.RagExplainer`.  This package wraps it in a
production-shaped serving layer:

* :mod:`repro.service.api` — request/response model with request ids,
  deadlines, and typed error results;
* :mod:`repro.service.fingerprint` — normalized-SQL cache keys;
* :mod:`repro.service.cache` — L1 explanation / L2 plan+embedding LRU+TTL
  caches with hit/miss accounting and DDL / KB-write invalidation;
* :mod:`repro.service.batching` — micro-batching scheduler driving
  :meth:`~repro.router.router.SmartRouter.embed_batch`, fed through a
  per-tenant weighted fair queue;
* :mod:`repro.service.tenancy` — tenant registry, weights, and
  token-bucket request quotas;
* :mod:`repro.service.metrics` — counters and p50/p95/p99 latency
  histograms exported as a dict;
* :mod:`repro.service.server` — :class:`ExplanationService`: worker pool,
  bounded admission, graceful shed.
"""

from repro.service.api import (
    ExplainRequest,
    ExplainResult,
    RequestStatus,
    ServiceError,
    ServiceErrorCode,
)
from repro.service.batching import MicroBatcher, WeightedFairQueue
from repro.service.cache import CacheLevels, CacheStats, LRUTTLCache, ServiceCache
from repro.service.config import ServiceConfig
from repro.service.fingerprint import normalize_sql, request_cache_key, sql_fingerprint
from repro.service.metrics import Counter, LatencyHistogram, MetricsRegistry
from repro.service.server import ExplanationService
from repro.service.tenancy import DEFAULT_TENANT, TenantConfig, TenantRegistry, TokenBucket

__all__ = [
    "CacheLevels",
    "CacheStats",
    "Counter",
    "DEFAULT_TENANT",
    "ExplainRequest",
    "ExplainResult",
    "ExplanationService",
    "LRUTTLCache",
    "LatencyHistogram",
    "MetricsRegistry",
    "MicroBatcher",
    "RequestStatus",
    "ServiceCache",
    "ServiceConfig",
    "ServiceError",
    "ServiceErrorCode",
    "TenantConfig",
    "TenantRegistry",
    "TokenBucket",
    "WeightedFairQueue",
    "normalize_sql",
    "request_cache_key",
    "sql_fingerprint",
]
