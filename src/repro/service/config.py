"""ServiceConfig — the explanation service's tuning knobs in one place.

:class:`~repro.service.server.ExplanationService` historically took every
knob as a keyword argument; that still works (the kwargs override the
config), but a :class:`ServiceConfig` can now be built once, shared between
deployments, and extended without touching the service signature.

The knobs group into four concerns:

* **concurrency** — ``max_workers``, ``max_in_flight``,
  ``default_deadline_seconds``;
* **caching** — capacities and TTLs for the L1 explanation and L2 plan
  caches, plus ``quantize_embedding_cache``: store L2 embeddings as int8
  (:mod:`repro.knowledge.quantization`) for ~8× less embedding memory per
  entry at a small, bounded precision cost — a capacity-for-accuracy knob
  for deployments that want deeper plan caches in the same footprint;
* **batching** — the micro-batcher's ``batch_max_size`` and
  ``batch_max_wait_seconds`` coalescing window (the window only applies
  once concurrent arrivals are observed; a lone request flushes
  immediately);
* **retrieval** — ``top_k`` entries fetched from the knowledge base;
* **scale-out** — ``num_shards``: split the knowledge base into N
  consistent-hashed shards (:mod:`repro.knowledge.sharding`) so a write
  locks one shard instead of the whole KB; ``tenants``: declarative
  per-tenant weights and quotas
  (:class:`~repro.service.tenancy.TenantConfig`) — any ``num_shards > 1``
  or non-empty ``tenants`` makes the service wrap its knowledge base in a
  :class:`~repro.knowledge.sharding.ShardedKnowledgeBase`;
* **observability** — ``admin_port`` / ``admin_host``: when ``admin_port``
  is set (``0`` picks an ephemeral port) the service starts an embedded
  :class:`~repro.obs.server.AdminServer` exposing ``/metrics``,
  ``/healthz``, ``/readyz``, ``/traces``, and ``/slo`` over HTTP, and an
  :class:`~repro.obs.slo.SLOTracker` with the default objectives.
"""

from __future__ import annotations

from dataclasses import dataclass, fields

from repro.service.tenancy import TenantConfig


@dataclass(frozen=True)
class ServiceConfig:
    """Tuning knobs for :class:`~repro.service.server.ExplanationService`."""

    top_k: int = 2
    #: 1 keeps the single-KB fast path; >1 shards the knowledge base.
    num_shards: int = 1
    #: Declared tenants (weights / quotas).  Undeclared tenants are still
    #: served, with weight 1.0 and no quota.
    tenants: tuple[TenantConfig, ...] = ()
    max_workers: int = 4
    max_in_flight: int = 64
    default_deadline_seconds: float | None = None
    explanation_cache_capacity: int = 512
    plan_cache_capacity: int = 2048
    explanation_ttl_seconds: float | None = None
    plan_ttl_seconds: float | None = None
    batch_max_size: int = 16
    batch_max_wait_seconds: float = 0.002
    quantize_embedding_cache: bool = False
    #: ``None`` disables the admin HTTP server; ``0`` binds an ephemeral port.
    admin_port: int | None = None
    admin_host: str = "127.0.0.1"

    def with_overrides(self, **overrides: object) -> "ServiceConfig":
        """A copy with the non-``None`` overrides applied.

        ``None`` means "keep the config value" — the service's keyword
        arguments default to ``None`` so explicit kwargs win over the
        config while absent ones fall through to it.
        """
        known = {field.name for field in fields(self)}
        unknown = sorted(set(overrides) - known)
        if unknown:
            raise TypeError(f"unknown ServiceConfig field(s): {', '.join(unknown)}")
        applied = {name: value for name, value in overrides.items() if value is not None}
        if not applied:
            return self
        return ServiceConfig(**{**self.as_dict(), **applied})

    def as_dict(self) -> dict[str, object]:
        return {field.name: getattr(self, field.name) for field in fields(self)}
