"""Micro-batching scheduler for router inference.

Under concurrent load, many worker threads need plan-pair embeddings at
the same time.  Instead of each running its own forward pass, they hand
their plan pair to the :class:`MicroBatcher`, whose single scheduler
thread coalesces whatever arrives into one call to
:meth:`SmartRouter.embed_batch` — one stacked forward pass per batch
instead of N independent ones.  Callers block on a future, so the API
stays synchronous.

The scheduler flushes *greedily*: after the first request it drains
whatever is already queued without waiting, so a lone cold request never
pays the coalescing latency.  Only when that drain proves concurrent
arrivals (more than one request, batch not yet full) does the scheduler
hold the batch open for up to ``max_wait_seconds`` to catch stragglers.

The pending queue is a :class:`WeightedFairQueue` (start-time fair
queueing): each tenant's submissions carry a virtual finish tag advancing
at ``1 / weight`` per request, and the scheduler always pops the smallest
tag — so under contention a hot tenant flooding the batcher still drains
interleaved with everyone else in proportion to weight instead of
starving them.  With a single tenant the tags are monotone and the queue
degrades to plain FIFO.
"""

from __future__ import annotations

import heapq
import queue
import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass
from typing import TYPE_CHECKING, Generic, TypeVar

import numpy as np

from repro.knowledge.sharding import DEFAULT_TENANT
from repro.obs.tracing import NULL_SPAN, get_tracer
from repro.service.metrics import MetricsRegistry

if TYPE_CHECKING:  # pragma: no cover
    from repro.htap.system import PlanPair
    from repro.obs.tracing import Span
    from repro.router.router import SmartRouter

T = TypeVar("T")


class WeightedFairQueue(Generic[T]):
    """Blocking queue with per-tenant weighted fair ordering.

    Start-time fair queueing: item ``i`` from a tenant gets finish tag
    ``max(virtual_time, tenant_last_tag) + 1 / weight`` and :meth:`get`
    pops the smallest tag (FIFO within a tenant, submission order as the
    tiebreak).  Popping advances the virtual clock to the popped tag, so a
    tenant idle for a while does not bank unbounded credit.
    """

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, T]] = []
        self._last_tag: dict[str, float] = {}
        self._virtual = 0.0
        self._seq = 0
        self._cond = threading.Condition()

    def put(self, item: T, *, tenant: str = DEFAULT_TENANT, weight: float = 1.0) -> None:
        if weight <= 0:
            raise ValueError("weight must be positive")
        with self._cond:
            tag = max(self._virtual, self._last_tag.get(tenant, 0.0)) + 1.0 / weight
            self._last_tag[tenant] = tag
            self._seq += 1
            heapq.heappush(self._heap, (tag, self._seq, item))
            self._cond.notify()

    def get(self, timeout: float | None = None) -> T:
        """Pop the fairest pending item; raises :class:`queue.Empty` on
        timeout like the stdlib queues."""
        with self._cond:
            if not self._heap and not self._cond.wait_for(lambda: bool(self._heap), timeout):
                raise queue.Empty
            tag, _seq, item = heapq.heappop(self._heap)
            self._virtual = max(self._virtual, tag)
            return item

    def get_nowait(self) -> T:
        with self._cond:
            if not self._heap:
                raise queue.Empty
            tag, _seq, item = heapq.heappop(self._heap)
            self._virtual = max(self._virtual, tag)
            return item

    def qsize(self) -> int:
        with self._cond:
            return len(self._heap)


@dataclass
class _PendingEncode:
    plan_pair: "PlanPair"
    future: "Future[np.ndarray]"
    #: Ambient span of the submitting thread, captured at submit time so the
    #: flush (which runs on the scheduler thread, where contextvars from the
    #: submitter are invisible) can re-parent its span under the request.
    parent_span: "Span" = NULL_SPAN
    tenant: str = DEFAULT_TENANT


class MicroBatcher:
    """Coalesces concurrent embedding requests into batched forward passes."""

    def __init__(
        self,
        router: "SmartRouter",
        *,
        max_batch_size: int = 16,
        max_wait_seconds: float = 0.002,
        metrics: MetricsRegistry | None = None,
    ):
        if max_batch_size < 1:
            raise ValueError("max_batch_size must be at least 1")
        if max_wait_seconds < 0:
            raise ValueError("max_wait_seconds must be non-negative")
        self.router = router
        self.max_batch_size = max_batch_size
        self.max_wait_seconds = max_wait_seconds
        self.metrics = metrics or MetricsRegistry()
        self._queue: "WeightedFairQueue[_PendingEncode]" = WeightedFairQueue()
        self._closed = threading.Event()
        # Serializes the closed-check-then-enqueue in submit() against
        # close(), so no request can slip into the queue after the drain
        # and leave its future unresolved forever.
        self._submit_lock = threading.Lock()
        self._thread = threading.Thread(
            target=self._run, name="embed-microbatcher", daemon=True
        )
        self._thread.start()

    # ----------------------------------------------------------------- public
    def submit(
        self,
        plan_pair: "PlanPair",
        *,
        tenant: str = DEFAULT_TENANT,
        weight: float = 1.0,
    ) -> "Future[np.ndarray]":
        """Enqueue one plan pair; the future resolves to its embedding row.

        ``tenant`` / ``weight`` feed the fair queue: under contention a
        tenant's share of flush slots is proportional to its weight.
        """
        pending = _PendingEncode(
            plan_pair=plan_pair,
            future=Future(),
            parent_span=get_tracer().current_span(),
            tenant=tenant,
        )
        with self._submit_lock:
            if self._closed.is_set():
                raise RuntimeError("MicroBatcher is closed")
            self._queue.put(pending, tenant=tenant, weight=weight)
        return pending.future

    def encode(
        self,
        plan_pair: "PlanPair",
        *,
        tenant: str = DEFAULT_TENANT,
        weight: float = 1.0,
    ) -> np.ndarray:
        """Blocking convenience wrapper around :meth:`submit`."""
        return self.submit(plan_pair, tenant=tenant, weight=weight).result()

    @property
    def alive(self) -> bool:
        """Whether the scheduler thread is up and accepting submissions.

        This is the liveness signal the admin ``/healthz`` endpoint
        reports: a dead scheduler thread means every future-returning
        submit would hang, which must surface as unhealthy.
        """
        return self._thread.is_alive() and not self._closed.is_set()

    def close(self) -> None:
        """Stop the scheduler thread; fails any still-queued requests."""
        with self._submit_lock:
            if self._closed.is_set():
                return
            self._closed.set()
        self._thread.join(timeout=5.0)
        while True:
            try:
                pending = self._queue.get_nowait()
            except queue.Empty:
                break
            pending.future.set_exception(RuntimeError("MicroBatcher closed"))

    def __enter__(self) -> "MicroBatcher":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -------------------------------------------------------------- scheduler
    def _run(self) -> None:
        while not self._closed.is_set():
            try:
                first = self._queue.get(timeout=0.05)
            except queue.Empty:
                continue
            batch = [first]
            while len(batch) < self.max_batch_size:
                try:
                    batch.append(self._queue.get_nowait())
                except queue.Empty:
                    break
            if 1 < len(batch) < self.max_batch_size:
                # Concurrent arrivals observed: hold the batch open for the
                # coalescing window to catch stragglers.  A lone request
                # skips this and flushes immediately.
                deadline = time.perf_counter() + self.max_wait_seconds
                while len(batch) < self.max_batch_size:
                    remaining = deadline - time.perf_counter()
                    if remaining <= 0:
                        try:
                            batch.append(self._queue.get_nowait())
                        except queue.Empty:
                            break
                    else:
                        try:
                            batch.append(self._queue.get(timeout=remaining))
                        except queue.Empty:
                            break
            self._flush(batch)

    def _flush(self, batch: list[_PendingEncode]) -> None:
        flush_start = time.perf_counter()
        timings: dict[str, float] = {}
        try:
            embeddings = self.router.embed_batch(
                [item.plan_pair for item in batch], timings=timings
            )
        except Exception as exc:  # pragma: no cover - defensive
            for item in batch:
                if not item.future.cancelled():
                    item.future.set_exception(exc)
            return
        flush_end = time.perf_counter()
        # One pre-timed span per coalesced request, re-parented under the
        # span its submitter captured; requests sharing a batch report the
        # same forward-pass window.
        tracer = get_tracer()
        for item in batch:
            tracer.record_span(
                "router.embed_batch",
                parent=item.parent_span,
                start_seconds=flush_start,
                end_seconds=flush_end,
                batch_size=len(batch),
                coalesced=len(batch) > 1,
                featurize_seconds=round(timings.get("featurize_seconds", 0.0), 6),
                forward_seconds=round(timings.get("forward_seconds", 0.0), 6),
            )
        self.metrics.counter("batcher.batches").increment()
        self.metrics.counter("batcher.requests").increment(len(batch))
        if len(batch) > 1:
            self.metrics.counter("batcher.coalesced_requests").increment(len(batch) - 1)
        self.metrics.histogram("batcher.batch_size").record(float(len(batch)))
        for row, item in enumerate(batch):
            if not item.future.cancelled():
                item.future.set_result(embeddings[row])

    # ------------------------------------------------------------------ stats
    def stats(self) -> dict[str, float]:
        batches = self.metrics.counter("batcher.batches").value
        requests = self.metrics.counter("batcher.requests").value
        return {
            "batches": batches,
            "requests": requests,
            "coalesced_requests": self.metrics.counter("batcher.coalesced_requests").value,
            "mean_batch_size": requests / batches if batches else 0.0,
        }
