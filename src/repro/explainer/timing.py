"""End-to-end latency accounting for the explanation pipeline.

The paper (Section VI-B) breaks the response time into: smart-router encoding
(< 0.1 ms), knowledge-base search (< 0.1 ms with 20 entries), LLM thinking
(≤ 2 s) and LLM generation (≈ 10 s).  :class:`LatencyProfile` carries the
same four components for every generated explanation so the latency
benchmark can reproduce the breakdown table.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class LatencyProfile:
    """Per-explanation latency breakdown (all values in seconds)."""

    encode_seconds: float = 0.0
    search_seconds: float = 0.0
    llm_thinking_seconds: float = 0.0
    llm_generation_seconds: float = 0.0

    @property
    def total_seconds(self) -> float:
        return (
            self.encode_seconds
            + self.search_seconds
            + self.llm_thinking_seconds
            + self.llm_generation_seconds
        )

    @property
    def retrieval_seconds(self) -> float:
        """Encoding plus search — the part the paper calls near-instantaneous."""
        return self.encode_seconds + self.search_seconds

    def as_dict(self) -> dict[str, float]:
        return {
            "encode_seconds": self.encode_seconds,
            "search_seconds": self.search_seconds,
            "llm_thinking_seconds": self.llm_thinking_seconds,
            "llm_generation_seconds": self.llm_generation_seconds,
            "total_seconds": self.total_seconds,
        }

    @staticmethod
    def average(profiles: list["LatencyProfile"]) -> "LatencyProfile":
        """Component-wise mean over a list of profiles."""
        if not profiles:
            return LatencyProfile()
        count = len(profiles)
        return LatencyProfile(
            encode_seconds=sum(profile.encode_seconds for profile in profiles) / count,
            search_seconds=sum(profile.search_seconds for profile in profiles) / count,
            llm_thinking_seconds=sum(profile.llm_thinking_seconds for profile in profiles) / count,
            llm_generation_seconds=sum(profile.llm_generation_seconds for profile in profiles) / count,
        )
