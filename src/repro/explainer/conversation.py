"""Conversational follow-up questions (paper Section VI-B).

The paper highlights a side benefit of using an LLM: the user can ask
follow-up questions about an explanation — e.g. *"why doesn't the predicate
on the customer table benefit from the index on c_phone?"* — and get an
in-depth answer (functions applied to an indexed column disable index use).

:class:`ExplanationConversation` keeps the original explanation as context
and answers follow-ups.  With the offline :class:`~repro.llm.SimulatedLLM`
the answers come from a small library of grounded follow-up topics (index
use under functions, cost comparability, storage formats, join strategies,
LIMIT/OFFSET); a hosted LLM would receive the full conversational prompt
instead — the prompt is built either way.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.explainer.pipeline import Explanation
from repro.llm.client import LLMClient, LLMRequest, LLMResponse

#: Canned grounded answers per follow-up topic, used by the offline simulator
#: path.  Keys are keyword tuples; the first topic whose keywords all appear
#: in the question is used.
_FOLLOW_UP_TOPICS: list[tuple[tuple[str, ...], str]] = [
    (
        ("index", "substring"),
        "Most database systems cannot use a B+-tree index when a function such as SUBSTRING is "
        "applied directly to the indexed column: the index stores the original column values in "
        "sorted order, not the function's output, so the predicate has to be evaluated against "
        "every row. Rewriting the predicate as a range on the raw column (or adding a generated "
        "column / functional index) would restore index use.",
    ),
    (
        ("index", "phone"),
        "The index on c_phone stores raw phone numbers in sorted order. Because the filter applies "
        "SUBSTRING(c_phone, 1, 2) before comparing, the engine cannot seek into the index for the "
        "matching prefixes and falls back to scanning and filtering every row.",
    ),
    (
        ("cost",),
        "The cost figures shown in the two plans come from different optimizers with different cost "
        "units, so they are not comparable across engines: a numerically larger AP cost does not "
        "mean the AP plan is slower. Only measured execution times can be compared directly.",
    ),
    (
        ("storage", "column"),
        "The AP engine stores each column separately and compressed, so it reads only the columns "
        "the query touches and processes them in vectorised batches across all workers; the TP "
        "engine stores complete rows, so even a two-column query pays for reading entire rows.",
    ),
    (
        ("join",),
        "A hash join builds an in-memory hash table on the smaller input and probes it once per row "
        "of the larger input, so its cost grows linearly with the inputs. A nested-loop join "
        "re-examines the inner input for every outer row, which is only competitive when an index "
        "makes each probe cheap or the outer input is tiny.",
    ),
    (
        ("offset",),
        "A large OFFSET forces the engine to produce and discard all the skipped rows before "
        "returning the requested ones, so the work grows with OFFSET + LIMIT even though the result "
        "is small; whether a given OFFSET is 'large' depends on how expensive each produced row is.",
    ),
    (
        ("limit",),
        "LIMIT only caps how many rows are returned; unless an index already provides the requested "
        "order, the engine still has to process enough of the input to know which rows are in the "
        "top N before it can stop.",
    ),
]

_DEFAULT_FOLLOW_UP = (
    "Based on the plans and the retrieved historical cases, the dominant factor is the one named in "
    "the explanation above; if you can share more detail about the schema or the data distribution "
    "I can refine the answer further."
)


@dataclass
class ConversationTurn:
    """One question/answer exchange after the initial explanation."""

    question: str
    answer: str
    response: LLMResponse


@dataclass
class ExplanationConversation:
    """A follow-up conversation anchored on one generated explanation."""

    explanation: Explanation
    llm: LLMClient
    turns: list[ConversationTurn] = field(default_factory=list)

    def ask(self, question: str) -> ConversationTurn:
        """Ask a follow-up question about the explanation."""
        if not question.strip():
            raise ValueError("follow-up question must not be empty")
        prompt = self._build_prompt(question)
        response = self.llm.generate(
            LLMRequest(prompt=prompt, attachments={"follow_up": question})
        )
        answer = response.text
        if not response.claims.get("factors") and not response.claims.get("winner"):
            # Offline simulator path (the generic model reply carries no plan
            # claims): ground the answer in the follow-up topic library.
            answer = self._grounded_answer(question)
            response = LLMResponse(
                text=answer,
                thinking_seconds=response.thinking_seconds,
                generation_seconds=max(1.0, len(answer.split()) / 9.0),
                model_name=response.model_name,
                claims={"follow_up": True},
            )
        turn = ConversationTurn(question=question, answer=answer, response=response)
        self.turns.append(turn)
        return turn

    # ------------------------------------------------------------- internals
    def _build_prompt(self, question: str) -> str:
        history = "\n".join(
            f"User: {turn.question}\nAssistant: {turn.answer}" for turn in self.turns
        )
        return "\n\n".join(
            part
            for part in (
                "You previously explained a query performance difference in our HTAP system.",
                f"Original question (SQL): {self.explanation.sql}",
                f"Your explanation: {self.explanation.text}",
                history,
                f"Follow-up question: {question}",
            )
            if part
        )

    @staticmethod
    def _grounded_answer(question: str) -> str:
        lowered = question.lower()
        for keywords, answer in _FOLLOW_UP_TOPICS:
            if all(keyword in lowered for keyword in keywords):
                return answer
        return _DEFAULT_FOLLOW_UP
