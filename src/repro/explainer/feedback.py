"""Expert feedback loop.

The paper closes the loop between experts and the knowledge base: whenever a
generated explanation is judged inaccurate, an expert writes the corrected
explanation and it is added to (or corrected in) the knowledge base so that
future retrievals for similar queries are grounded correctly.

:class:`FeedbackLoop` implements that process against the simulated expert
and evaluation panel, and reports how accuracy evolves as corrections
accumulate — the mechanism the paper describes as "further enhancing its
accuracy for subsequent queries".
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.explainer.evaluation import ExpertPanel, Grade
from repro.explainer.pipeline import RagExplainer, entries_from_labeled
from repro.workloads.experts import SimulatedExpert
from repro.workloads.labeling import LabeledQuery


@dataclass
class FeedbackRound:
    """Result of one pass over a batch of queries with corrections applied."""

    graded_counts: dict[str, int] = field(default_factory=dict)
    corrections_added: int = 0
    knowledge_base_size: int = 0

    @property
    def accurate_rate(self) -> float:
        total = sum(self.graded_counts.values())
        if total == 0:
            return 0.0
        return self.graded_counts.get(Grade.ACCURATE.value, 0) / total


class FeedbackLoop:
    """Run explanation batches and fold expert corrections back into the KB."""

    def __init__(
        self,
        explainer: RagExplainer,
        panel: ExpertPanel | None = None,
        expert: SimulatedExpert | None = None,
    ):
        self.explainer = explainer
        self.panel = panel or ExpertPanel()
        self.expert = expert or SimulatedExpert(name="corrections-expert")

    def run_round(self, labeled_queries: list[LabeledQuery]) -> FeedbackRound:
        """Explain every query, grade it, and insert corrections for failures.

        A failed (non-accurate) query is added to the knowledge base with the
        expert's curated explanation, keyed by its own plan-pair embedding, so
        the next occurrence of a similar query retrieves the correction.
        """
        round_result = FeedbackRound()
        corrections: list[LabeledQuery] = []
        for labeled in labeled_queries:
            explanation = self.explainer.explain_execution(labeled.execution)
            graded = self.panel.grade(labeled, explanation)
            key = graded.grade.value
            round_result.graded_counts[key] = round_result.graded_counts.get(key, 0) + 1
            if graded.grade is not Grade.ACCURATE:
                corrections.append(labeled)
        added = self._add_corrections(corrections)
        round_result.corrections_added = added
        round_result.knowledge_base_size = len(self.explainer.knowledge_base)
        return round_result

    def _add_corrections(self, labeled_queries: list[LabeledQuery]) -> int:
        """Insert corrected entries, skipping queries already present."""
        added = 0
        new_entries = entries_from_labeled(labeled_queries, self.explainer.router, self.expert)
        for entry in new_entries:
            if entry.entry_id in self.explainer.knowledge_base:
                self.explainer.knowledge_base.correct(
                    entry.entry_id, entry.expert_explanation, entry.factors
                )
            else:
                self.explainer.knowledge_base.add(entry)
            added += 1
        return added

    def run(self, labeled_queries: list[LabeledQuery], rounds: int = 2) -> list[FeedbackRound]:
        """Run multiple rounds over the same batch; accuracy should not degrade."""
        return [self.run_round(labeled_queries) for _ in range(rounds)]
