"""The paper's core contribution: retrieval-augmented explanation generation."""

from repro.explainer.pipeline import Explanation, RagExplainer, entries_from_labeled
from repro.explainer.evaluation import AccuracyReport, ExpertPanel, Grade
from repro.explainer.feedback import FeedbackLoop
from repro.explainer.timing import LatencyProfile
from repro.explainer.conversation import ConversationTurn, ExplanationConversation

__all__ = [
    "RagExplainer",
    "Explanation",
    "entries_from_labeled",
    "ExpertPanel",
    "Grade",
    "AccuracyReport",
    "FeedbackLoop",
    "LatencyProfile",
    "ExplanationConversation",
    "ConversationTurn",
]
