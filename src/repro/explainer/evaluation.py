"""Expert evaluation of generated explanations.

The paper relies on three HTAP experts to judge whether each generated
explanation is "accurate and informative", "less precise", or a ``None``
non-answer.  The reproduction replaces the human panel with a deterministic
grading procedure that compares the explanation's *claims* (which engine is
faster and which causal factors are responsible) against the workload
labeler's ground truth.

Grading works from the structured ``claims`` attached by the simulated LLM
when available, and falls back to keyword matching over the explanation text
otherwise (so hosted models can be graded too, just more coarsely).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.explainer.pipeline import Explanation
from repro.htap.engines.base import EngineKind
from repro.workloads.labeling import ExplanationFactor, GroundTruth, LabeledQuery


class Grade(enum.Enum):
    """Verdict for one explanation."""

    ACCURATE = "accurate"
    IMPRECISE = "imprecise"
    NONE_ANSWER = "none"
    WRONG = "wrong"


@dataclass
class GradedExplanation:
    """One graded explanation with the reasons behind the verdict."""

    query_id: str
    grade: Grade
    cited_factors: list[str]
    expected_primary: str
    winner_correct: bool
    notes: list[str] = field(default_factory=list)


@dataclass
class AccuracyReport:
    """Aggregate grading results over a test set."""

    graded: list[GradedExplanation] = field(default_factory=list)

    def count(self, grade: Grade) -> int:
        return sum(1 for item in self.graded if item.grade is grade)

    @property
    def total(self) -> int:
        return len(self.graded)

    def rate(self, grade: Grade) -> float:
        if not self.graded:
            return 0.0
        return self.count(grade) / self.total

    @property
    def accurate_rate(self) -> float:
        return self.rate(Grade.ACCURATE)

    @property
    def none_rate(self) -> float:
        return self.rate(Grade.NONE_ANSWER)

    @property
    def imprecise_rate(self) -> float:
        return self.rate(Grade.IMPRECISE)

    @property
    def wrong_rate(self) -> float:
        return self.rate(Grade.WRONG)

    @property
    def less_precise_rate(self) -> float:
        """The paper's "remaining 9 %" bucket: everything not fully accurate."""
        return 1.0 - self.accurate_rate if self.graded else 0.0

    def as_dict(self) -> dict[str, float]:
        return {
            "total": float(self.total),
            "accurate": self.accurate_rate,
            "imprecise": self.imprecise_rate,
            "none": self.none_rate,
            "wrong": self.wrong_rate,
        }


#: Keywords used by the text-only fallback grader, per factor.
_FACTOR_KEYWORDS = {
    ExplanationFactor.HASH_JOIN_VS_NESTED_LOOP: ("hash join", "nested loop"),
    ExplanationFactor.NO_USABLE_INDEX: ("no usable index", "no index"),
    ExplanationFactor.INDEX_DEFEATED_BY_FUNCTION: ("substring", "function"),
    ExplanationFactor.COLUMNAR_PARALLEL_SCAN: ("column", "columnar"),
    ExplanationFactor.AGGREGATION_EFFICIENCY: ("aggregat",),
    ExplanationFactor.FULL_SORT_REQUIRED: ("sort",),
    ExplanationFactor.LARGE_OFFSET_PENALTY: ("offset",),
    ExplanationFactor.SELECTIVE_INDEX_ACCESS: ("index lookup", "selective"),
    ExplanationFactor.INDEX_PROVIDES_ORDER: ("index", "order"),
    ExplanationFactor.SMALL_QUERY_OVERHEAD: ("overhead", "start-up", "startup"),
    ExplanationFactor.SMALL_DATA_VOLUME: ("tiny", "small"),
}


class ExpertPanel:
    """Deterministic stand-in for the paper's three-expert grading panel."""

    def __init__(self, panel_size: int = 3):
        if panel_size < 1:
            raise ValueError("panel_size must be at least 1")
        self.panel_size = panel_size

    # ------------------------------------------------------------------ grade
    def grade(self, labeled: LabeledQuery, explanation: Explanation) -> GradedExplanation:
        """Grade one explanation against its ground truth."""
        ground_truth = labeled.ground_truth
        if explanation.is_none_answer:
            return GradedExplanation(
                query_id=labeled.query_id,
                grade=Grade.NONE_ANSWER,
                cited_factors=[],
                expected_primary=ground_truth.primary_factor.value,
                winner_correct=False,
                notes=["model returned None"],
            )
        cited = explanation.cited_factors or self._factors_from_text(explanation.text, ground_truth)
        claimed_winner = explanation.claims.get("winner")
        if claimed_winner is None and explanation.faster_engine is not None:
            claimed_winner = explanation.faster_engine.value
        winner_correct = claimed_winner == ground_truth.faster_engine.value

        notes: list[str] = []
        if explanation.claims.get("used_cost_comparison"):
            notes.append("compared cost estimates across engines")
        inconsistent = [
            factor
            for factor in cited
            if self._favours(factor) is not None
            and self._favours(factor) is not ground_truth.faster_engine
        ]
        if inconsistent:
            notes.append(f"cited factors favouring the slower engine: {inconsistent}")
        if explanation.claims.get("index_misread"):
            notes.append("claimed index benefits despite a function-wrapped predicate")
            if ground_truth.primary_factor in (
                ExplanationFactor.INDEX_DEFEATED_BY_FUNCTION,
                ExplanationFactor.HASH_JOIN_VS_NESTED_LOOP,
                ExplanationFactor.NO_USABLE_INDEX,
            ):
                inconsistent.append("index_misread")

        grade = self._decide(ground_truth, cited, winner_correct, bool(inconsistent))
        return GradedExplanation(
            query_id=labeled.query_id,
            grade=grade,
            cited_factors=list(cited),
            expected_primary=ground_truth.primary_factor.value,
            winner_correct=winner_correct,
            notes=notes,
        )

    def evaluate(
        self, labeled_queries: list[LabeledQuery], explanations: list[Explanation]
    ) -> AccuracyReport:
        """Grade a whole test set (labeled queries and explanations aligned)."""
        if len(labeled_queries) != len(explanations):
            raise ValueError("labeled_queries and explanations must have equal length")
        report = AccuracyReport()
        for labeled, explanation in zip(labeled_queries, explanations):
            report.graded.append(self.grade(labeled, explanation))
        return report

    # --------------------------------------------------------------- internals
    @staticmethod
    def _decide(
        ground_truth: GroundTruth,
        cited: list[str],
        winner_correct: bool,
        has_inconsistency: bool,
    ) -> Grade:
        if not winner_correct or (has_inconsistency and not cited):
            return Grade.WRONG
        truth_values = ground_truth.factor_values()
        primary = ground_truth.primary_factor.value
        cited_set = set(cited)
        if has_inconsistency:
            return Grade.WRONG if primary not in cited_set else Grade.IMPRECISE
        if not cited_set:
            return Grade.IMPRECISE
        if primary in cited_set and cited_set <= truth_values:
            return Grade.ACCURATE
        if primary in cited_set:
            # Primary named but with extra, weaker claims.
            return Grade.ACCURATE if cited[0] == primary else Grade.IMPRECISE
        if cited_set & truth_values:
            return Grade.IMPRECISE
        return Grade.WRONG

    @staticmethod
    def _favours(factor_value: str) -> EngineKind | None:
        try:
            return ExplanationFactor(factor_value).favours
        except ValueError:
            return None

    @staticmethod
    def _factors_from_text(text: str, ground_truth: GroundTruth) -> list[str]:
        """Keyword fallback when structured claims are unavailable."""
        lowered = text.lower()
        found: list[str] = []
        for factor, keywords in _FACTOR_KEYWORDS.items():
            if any(keyword in lowered for keyword in keywords):
                found.append(factor.value)
        return found
