"""RagExplainer — the end-to-end explanation pipeline (paper Figure 1).

For a new query the pipeline follows the paper's red path:

1. Plan the query on both engines (``EXPLAIN`` from the HTAP system).
2. Encode the plan pair with the smart router into a 16-dim embedding.
3. Retrieve the top-K most similar historical plan pairs from the knowledge
   base.
4. Assemble the Table-I prompt with the retrieved knowledge and the question.
5. Ask the LLM to generate the explanation; return it with the full latency
   breakdown.

Historical queries follow the black path instead: they are labeled, explained
by an expert, and inserted into the knowledge base via
:func:`entries_from_labeled`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.htap.engines.base import EngineKind
from repro.htap.plan.serialize import plan_to_dict
from repro.htap.system import HTAPSystem, PlanPair, QueryExecution
from repro.knowledge.entry import KnowledgeEntry
from repro.knowledge.knowledge_base import KnowledgeBase, RetrievalResult, RetrievedKnowledge
from repro.llm.client import LLMClient, LLMRequest, LLMResponse
from repro.llm.prompts import KnowledgeAttachment, PromptBuilder, PromptPayload, QuestionAttachment
from repro.obs.tracing import get_tracer
from repro.router.router import SmartRouter
from repro.explainer.timing import LatencyProfile
from repro.workloads.experts import SimulatedExpert
from repro.workloads.labeling import LabeledQuery


@dataclass
class Explanation:
    """The pipeline's answer for one query."""

    sql: str
    text: str
    faster_engine: EngineKind | None
    retrieved: list[RetrievedKnowledge]
    prompt: PromptPayload
    response: LLMResponse
    latency: LatencyProfile
    embedding: np.ndarray
    claims: dict[str, Any] = field(default_factory=dict)

    @property
    def is_none_answer(self) -> bool:
        return self.response.is_none_answer

    @property
    def cited_factors(self) -> list[str]:
        return list(self.claims.get("factors", []))


def entries_from_labeled(
    labeled_queries: list[LabeledQuery],
    router: SmartRouter,
    expert: SimulatedExpert | None = None,
) -> list[KnowledgeEntry]:
    """Build knowledge-base entries from expert-annotated historical queries.

    This is the paper's black (historical) path: queries from the router's
    training set are executed on both engines, explained by an expert, and
    stored with their plan-pair embedding as the key.
    """
    expert = expert or SimulatedExpert()
    entries: list[KnowledgeEntry] = []
    for labeled in labeled_queries:
        execution = labeled.execution
        embedding = router.embed_pair(execution.plan_pair)
        entries.append(
            KnowledgeEntry(
                entry_id=labeled.query_id,
                embedding=embedding,
                sql=labeled.sql,
                plan_details={
                    "TP": plan_to_dict(execution.plan_pair.tp_plan),
                    "AP": plan_to_dict(execution.plan_pair.ap_plan),
                },
                faster_engine=execution.faster_engine,
                tp_latency_seconds=execution.tp_result.latency_seconds,
                ap_latency_seconds=execution.ap_result.latency_seconds,
                expert_explanation=expert.explain(labeled),
                factors=tuple(factor.value for factor in labeled.ground_truth.all_factors),
                metadata={"pattern": labeled.workload_query.pattern.value},
            )
        )
    return entries


def execution_result_text(execution: QueryExecution) -> str:
    """The one-line execution summary fed to the prompt for a run query."""
    return (
        f"{execution.faster_engine.value} was faster "
        f"(TP {execution.tp_result.latency_seconds:.3f}s vs "
        f"AP {execution.ap_result.latency_seconds:.3f}s)"
    )


class RagExplainer:
    """Retrieval-augmented explanation generator.

    The pipeline is decomposed into three reusable stages —
    :meth:`encode_stage`, :meth:`retrieve_stage`, :meth:`generate_stage` —
    so callers that already hold an embedding (the serving layer's plan
    cache and micro-batcher) can skip straight to retrieval and generation.
    """

    def __init__(
        self,
        system: HTAPSystem,
        router: SmartRouter,
        knowledge_base: KnowledgeBase,
        llm: LLMClient,
        *,
        prompt_builder: PromptBuilder | None = None,
        top_k: int = 2,
    ):
        if top_k < 0:
            raise ValueError("top_k must be non-negative")
        self.system = system
        self.router = router
        self.knowledge_base = knowledge_base
        self.llm = llm
        self.prompt_builder = prompt_builder or PromptBuilder(
            data_size_gb=system.catalog.database_size_bytes() / 1e9
        )
        self.top_k = top_k

    # ------------------------------------------------------------------ public
    def explain_sql(self, sql: str, *, user_notes: str | None = None) -> Explanation:
        """Explain a query given only its SQL (plans and execution are obtained
        from the HTAP system, as in the paper's deployment)."""
        execution = self.system.run_both(sql)
        return self.explain_execution(execution, user_notes=user_notes)

    def explain_execution(
        self,
        execution: QueryExecution,
        *,
        user_notes: str | None = None,
    ) -> Explanation:
        """Explain an already-executed query (both plans and latencies known)."""
        result_text = execution_result_text(execution)
        return self._explain(
            execution.plan_pair,
            execution_result=result_text,
            faster_engine=execution.faster_engine,
            user_notes=user_notes,
        )

    def explain_plan_pair(
        self,
        plan_pair: PlanPair,
        *,
        execution_result: str | None = None,
        faster_engine: EngineKind | None = None,
        user_notes: str | None = None,
    ) -> Explanation:
        """Explain a plan pair directly (used when execution data is external)."""
        return self._explain(
            plan_pair,
            execution_result=execution_result,
            faster_engine=faster_engine,
            user_notes=user_notes,
        )

    # ------------------------------------------------------------------ stages
    def encode_stage(self, plan_pair: PlanPair) -> tuple[np.ndarray, float]:
        """Stage 1: encode the plan pair; returns (embedding, encode seconds)."""
        with get_tracer().span("pipeline.encode", batched=False):
            return self.router.timed_embed(plan_pair)

    def retrieve_stage(self, embedding: np.ndarray, *, tenant: str | None = None) -> RetrievalResult:
        """Stage 2: top-K knowledge retrieval for an embedding.

        ``tenant`` scopes retrieval to one namespace of a
        :class:`~repro.knowledge.sharding.ShardedKnowledgeBase`; leave it
        ``None`` for a plain (un-namespaced) knowledge base.
        """
        with get_tracer().span("pipeline.retrieve", top_k=self.top_k) as span:
            if tenant is None:
                retrieval = self.knowledge_base.retrieve(embedding, k=self.top_k)
            else:
                retrieval = self.knowledge_base.retrieve(embedding, k=self.top_k, tenant=tenant)
            span.set_attribute("hits", len(retrieval.hits))
            return retrieval

    def generate_stage(
        self,
        plan_pair: PlanPair,
        embedding: np.ndarray,
        retrieval: RetrievalResult,
        *,
        encode_seconds: float = 0.0,
        execution_result: str | None = None,
        faster_engine: EngineKind | None = None,
        user_notes: str | None = None,
    ) -> Explanation:
        """Stage 3: assemble the prompt, call the LLM, package the result."""
        with get_tracer().span("pipeline.generate", retrieved=len(retrieval.hits)):
            return self._generate(
                plan_pair,
                embedding,
                retrieval,
                encode_seconds=encode_seconds,
                execution_result=execution_result,
                faster_engine=faster_engine,
                user_notes=user_notes,
            )

    def _generate(
        self,
        plan_pair: PlanPair,
        embedding: np.ndarray,
        retrieval: RetrievalResult,
        *,
        encode_seconds: float,
        execution_result: str | None,
        faster_engine: EngineKind | None,
        user_notes: str | None,
    ) -> Explanation:
        knowledge_attachments = [
            KnowledgeAttachment.from_entry(hit.entry, similarity=hit.similarity)
            for hit in retrieval.hits
        ]
        question = QuestionAttachment(
            sql=plan_pair.query.raw_sql,
            tp_plan=plan_to_dict(plan_pair.tp_plan),
            ap_plan=plan_to_dict(plan_pair.ap_plan),
            execution_result=execution_result,
            faster_engine=faster_engine,
        )
        prompt = self.prompt_builder.build(question, knowledge_attachments, user_notes=user_notes)
        request = LLMRequest(prompt=prompt.text, attachments=prompt.attachments())
        response = self.llm.generate_traced(request)
        latency = LatencyProfile(
            encode_seconds=encode_seconds,
            search_seconds=retrieval.search_seconds,
            llm_thinking_seconds=response.thinking_seconds,
            llm_generation_seconds=response.generation_seconds,
        )
        return Explanation(
            sql=plan_pair.query.raw_sql,
            text=response.text,
            faster_engine=faster_engine,
            retrieved=retrieval.hits,
            prompt=prompt,
            response=response,
            latency=latency,
            embedding=embedding,
            claims=dict(response.claims),
        )

    # --------------------------------------------------------------- internals
    def _explain(
        self,
        plan_pair: PlanPair,
        *,
        execution_result: str | None,
        faster_engine: EngineKind | None,
        user_notes: str | None,
    ) -> Explanation:
        embedding, encode_seconds = self.encode_stage(plan_pair)
        retrieval = self.retrieve_stage(embedding)
        return self.generate_stage(
            plan_pair,
            embedding,
            retrieval,
            encode_seconds=encode_seconds,
            execution_result=execution_result,
            faster_engine=faster_engine,
            user_notes=user_notes,
        )
