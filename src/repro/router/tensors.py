"""Tree-to-tensor conversion for the tree convolution.

A plan tree is flattened into three aligned arrays:

* ``features`` — an ``(N + 1, F)`` matrix whose row 0 is an all-zero padding
  node and rows ``1..N`` are the real nodes in pre-order;
* ``left`` / ``right`` — integer arrays of length ``N`` giving, for each real
  node, the row index of its left/right child (0 when absent).

The tree convolution then computes, for every real node, a function of the
triple ``(node, left child, right child)``, exactly as in Bao/Neo.  Plans in
this system are at most binary (joins have two children, every other
operator has at most one), so no binarisation tricks are needed; a defensive
check raises if that invariant is ever violated.

Featurization goes through :meth:`PlanFeaturizer.features_for_nodes`, so
one tensor costs one array-op pipeline over all its nodes rather than ~F
small allocations per node; :meth:`PlanTensor.from_plans` extends that to a
whole batch of plans — every node of every plan is featurized in a single
call, which is what ``SmartRouter.embed_batch`` drives.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.htap.plan.nodes import PlanNode
from repro.router.features import PlanFeaturizer


def _child_indices(nodes: list[PlanNode]) -> tuple[np.ndarray, np.ndarray]:
    """Left/right child row indices (1-based, 0 = absent) for pre-order nodes."""
    index_of = {id(node): position + 1 for position, node in enumerate(nodes)}
    left = np.zeros(len(nodes), dtype=np.int64)
    right = np.zeros(len(nodes), dtype=np.int64)
    for position, node in enumerate(nodes):
        if len(node.children) > 2:
            raise ValueError(
                f"plan node {node.node_type.value!r} has {len(node.children)} children; "
                "the tree convolution expects at most binary trees"
            )
        if len(node.children) >= 1:
            left[position] = index_of[id(node.children[0])]
        if len(node.children) == 2:
            right[position] = index_of[id(node.children[1])]
    return left, right


@dataclass
class PlanTensor:
    """Tensor form of one plan tree (see module docstring)."""

    features: np.ndarray  # (N + 1, F), row 0 is the zero padding node
    left: np.ndarray      # (N,) int, child row index or 0
    right: np.ndarray     # (N,) int, child row index or 0

    @property
    def node_count(self) -> int:
        return self.features.shape[0] - 1

    @property
    def feature_size(self) -> int:
        return self.features.shape[1]

    @classmethod
    def from_plan(cls, plan: PlanNode, featurizer: PlanFeaturizer) -> "PlanTensor":
        """Convert ``plan`` into tensor form using ``featurizer``."""
        nodes = list(plan.walk())
        features = np.zeros((len(nodes) + 1, featurizer.feature_size), dtype=np.float64)
        features[1:] = featurizer.features_for_nodes(nodes)
        left, right = _child_indices(nodes)
        return cls(features=features, left=left, right=right)

    @classmethod
    def from_plans(
        cls, plans: Sequence[PlanNode], featurizer: PlanFeaturizer
    ) -> list["PlanTensor"]:
        """Tensor forms for many plans, featurized in one batched call.

        All plans' nodes are concatenated and pushed through
        :meth:`PlanFeaturizer.features_for_nodes` once, then split back
        into per-plan feature matrices; each result matches
        :meth:`from_plan` exactly.
        """
        if not plans:
            return []
        node_lists = [list(plan.walk()) for plan in plans]
        all_nodes = [node for nodes in node_lists for node in nodes]
        all_features = featurizer.features_for_nodes(all_nodes)
        tensors: list[PlanTensor] = []
        cursor = 0
        for nodes in node_lists:
            count = len(nodes)
            features = np.zeros((count + 1, featurizer.feature_size), dtype=np.float64)
            features[1:] = all_features[cursor : cursor + count]
            cursor += count
            left, right = _child_indices(nodes)
            tensors.append(cls(features=features, left=left, right=right))
        return tensors

    def triples(self) -> np.ndarray:
        """The ``(N, 3F)`` matrix of concatenated (node, left, right) features."""
        node_rows = self.features[1:]
        left_rows = self.features[self.left]
        right_rows = self.features[self.right]
        return np.concatenate([node_rows, left_rows, right_rows], axis=1)
