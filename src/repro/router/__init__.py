"""The smart router: a tree-CNN classifier over plan pairs.

The paper's HTAP system contains a lightweight learned router (a tree-CNN in
the spirit of Bao/Lero) that predicts which engine will execute a query
faster.  Its penultimate hidden layer doubles as the **plan-pair embedding**
(16 dimensions in the paper) used as the retrieval key of the RAG knowledge
base.  This subpackage implements the model from scratch in numpy: plan
featurisation, tree convolution with dynamic pooling, manual backpropagation,
an Adam trainer, and the :class:`~repro.router.router.SmartRouter` facade.
"""

from repro.router.features import PlanFeaturizer
from repro.router.tensors import PlanTensor
from repro.router.treecnn import TreeCNNClassifier, TreeCNNConfig
from repro.router.training import RouterTrainer, TrainingReport
from repro.router.router import SmartRouter, RoutingDecision

__all__ = [
    "PlanFeaturizer",
    "PlanTensor",
    "TreeCNNClassifier",
    "TreeCNNConfig",
    "RouterTrainer",
    "TrainingReport",
    "SmartRouter",
    "RoutingDecision",
]
