"""Plan-node featurisation for the tree-CNN.

Each plan node becomes a fixed-width feature vector:

* a one-hot encoding of the physical operator type,
* log-scaled cardinality and cost estimates,
* boolean structural flags (index use, scan/join/aggregate role),
* a log-scaled size of the scanned relation (zero for non-scan nodes).

The encoding intentionally contains only information available at EXPLAIN
time — no execution feedback — because the router must route *before* the
query runs.
"""

from __future__ import annotations

import math

import numpy as np

from repro.htap.catalog import Catalog
from repro.htap.plan.nodes import (
    AGGREGATE_NODE_TYPES,
    JOIN_NODE_TYPES,
    SCAN_NODE_TYPES,
    NodeType,
    PlanNode,
)

#: Stable operator ordering for the one-hot encoding.
_NODE_TYPE_ORDER: list[NodeType] = list(NodeType)
_NODE_TYPE_INDEX = {node_type: index for index, node_type in enumerate(_NODE_TYPE_ORDER)}

#: Normalisation constants for the log-scaled numeric features.
_LOG_ROWS_SCALE = 20.0
_LOG_COST_SCALE = 25.0
_LOG_TABLE_SCALE = 22.0


class PlanFeaturizer:
    """Converts plan nodes into numeric feature vectors.

    Parameters
    ----------
    catalog:
        Optional catalog used to look up the size of scanned relations; when
        omitted the relation-size feature falls back to the node's estimated
        row count.
    """

    def __init__(self, catalog: Catalog | None = None):
        self.catalog = catalog

    @property
    def feature_size(self) -> int:
        """Width of one node's feature vector."""
        return len(_NODE_TYPE_ORDER) + 7

    def node_features(self, node: PlanNode) -> np.ndarray:
        """Feature vector of a single plan node."""
        one_hot = np.zeros(len(_NODE_TYPE_ORDER), dtype=np.float64)
        one_hot[_NODE_TYPE_INDEX[node.node_type]] = 1.0

        log_rows = math.log1p(max(0.0, node.plan_rows)) / _LOG_ROWS_SCALE
        log_cost = math.log1p(max(0.0, node.total_cost)) / _LOG_COST_SCALE
        uses_index = 1.0 if (
            node.index_name is not None
            or node.node_type in (NodeType.INDEX_SCAN, NodeType.INDEX_LOOKUP, NodeType.INDEX_NESTED_LOOP_JOIN)
        ) else 0.0
        is_scan = 1.0 if node.node_type in SCAN_NODE_TYPES else 0.0
        is_join = 1.0 if node.node_type in JOIN_NODE_TYPES else 0.0
        is_aggregate = 1.0 if node.node_type in AGGREGATE_NODE_TYPES else 0.0

        table_rows = 0.0
        if node.relation is not None:
            if self.catalog is not None and self.catalog.has_table(node.relation):
                table_rows = float(self.catalog.row_count(node.relation))
            else:
                table_rows = max(0.0, node.plan_rows)
        log_table = math.log1p(table_rows) / _LOG_TABLE_SCALE

        numeric = np.array(
            [log_rows, log_cost, uses_index, is_scan, is_join, is_aggregate, log_table],
            dtype=np.float64,
        )
        return np.concatenate([one_hot, numeric])

    def plan_features(self, plan: PlanNode) -> np.ndarray:
        """Feature matrix (pre-order node order) for a whole plan tree."""
        rows = [self.node_features(node) for node in plan.walk()]
        return np.vstack(rows)


def structural_embedding(plan: PlanNode, dimensions: int = 16) -> np.ndarray:
    """A non-learned baseline embedding used for the ablation in DESIGN.md.

    Buckets operator counts and coarse size statistics into a fixed-width
    vector.  It intentionally ignores the routing task, so retrieval quality
    with it shows how much the task-specific tree-CNN embedding matters.
    """
    vector = np.zeros(dimensions, dtype=np.float64)
    for node in plan.walk():
        bucket = _NODE_TYPE_INDEX[node.node_type] % dimensions
        vector[bucket] += 1.0
    vector[0] += math.log1p(plan.plan_rows)
    vector[1] += math.log1p(plan.total_cost)
    vector[2] += plan.depth()
    norm = np.linalg.norm(vector)
    if norm > 0:
        vector = vector / norm
    return vector
