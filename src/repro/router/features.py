"""Plan-node featurisation for the tree-CNN.

Each plan node becomes a fixed-width feature vector:

* a one-hot encoding of the physical operator type,
* log-scaled cardinality and cost estimates,
* boolean structural flags (index use, scan/join/aggregate role),
* a log-scaled size of the scanned relation (zero for non-scan nodes).

The encoding intentionally contains only information available at EXPLAIN
time — no execution feedback — because the router must route *before* the
query runs.

Two implementations coexist:

* :meth:`PlanFeaturizer.node_features` — the original scalar path, one
  node at a time.  Kept as the numerical reference the equivalence tests
  check the batched path against.
* :meth:`PlanFeaturizer.features_for_nodes` — the vectorized hot path: one
  pass over the nodes extracts plain python scalars, then the whole
  feature matrix is filled with a handful of array operations (one-hot by
  index assignment, ``np.log1p`` over the stacked numeric columns, flag
  columns gathered from per-operator lookup tables).  This is what
  :class:`~repro.router.tensors.PlanTensor` builds from.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.htap.catalog import Catalog
from repro.htap.plan.nodes import (
    AGGREGATE_NODE_TYPES,
    JOIN_NODE_TYPES,
    SCAN_NODE_TYPES,
    NodeType,
    PlanNode,
)

#: Stable operator ordering for the one-hot encoding.
_NODE_TYPE_ORDER: list[NodeType] = list(NodeType)
_NODE_TYPE_INDEX = {node_type: index for index, node_type in enumerate(_NODE_TYPE_ORDER)}

#: Operator types that imply index use regardless of ``index_name``.
_INDEX_NODE_TYPES = (NodeType.INDEX_SCAN, NodeType.INDEX_LOOKUP, NodeType.INDEX_NESTED_LOOP_JOIN)

#: Per-operator flag lookup tables, indexed by the one-hot type index, so the
#: batched path derives the structural flags with pure array gathers.
_TYPE_IS_INDEX = np.array(
    [1.0 if node_type in _INDEX_NODE_TYPES else 0.0 for node_type in _NODE_TYPE_ORDER]
)
_TYPE_IS_SCAN = np.array(
    [1.0 if node_type in SCAN_NODE_TYPES else 0.0 for node_type in _NODE_TYPE_ORDER]
)
_TYPE_IS_JOIN = np.array(
    [1.0 if node_type in JOIN_NODE_TYPES else 0.0 for node_type in _NODE_TYPE_ORDER]
)
_TYPE_IS_AGGREGATE = np.array(
    [1.0 if node_type in AGGREGATE_NODE_TYPES else 0.0 for node_type in _NODE_TYPE_ORDER]
)

#: Normalisation constants for the log-scaled numeric features.
_LOG_ROWS_SCALE = 20.0
_LOG_COST_SCALE = 25.0
_LOG_TABLE_SCALE = 22.0

#: Memo sentinel: the relation is unknown to the catalog, fall back to the
#: node's own row estimate (which is per-node, hence not memoizable).
_UNKNOWN_RELATION = -1.0


class PlanFeaturizer:
    """Converts plan nodes into numeric feature vectors.

    Parameters
    ----------
    catalog:
        Optional catalog used to look up the size of scanned relations; when
        omitted the relation-size feature falls back to the node's estimated
        row count.

    Catalog row counts are memoized per relation, so a workload that scans
    the same eight TPC-H tables over and over resolves each one exactly
    once.  The serving layer clears the memo through its DDL-listener hook
    (see :meth:`invalidate_catalog_cache`), keeping it correct if a future
    catalog mutation ever changes cardinalities.
    """

    def __init__(self, catalog: Catalog | None = None):
        self.catalog = catalog
        self._row_count_cache: dict[str, float] = {}

    @property
    def feature_size(self) -> int:
        """Width of one node's feature vector."""
        return len(_NODE_TYPE_ORDER) + 7

    # ------------------------------------------------------------- catalog memo
    def invalidate_catalog_cache(self) -> None:
        """Drop the memoized relation row counts (wired to DDL listeners)."""
        self._row_count_cache.clear()

    def _table_rows(self, relation: str, plan_rows: float) -> float:
        """Memoized catalog cardinality, falling back to the node estimate."""
        if self.catalog is None:
            return max(0.0, plan_rows)
        cached = self._row_count_cache.get(relation)
        if cached is None:
            cached = (
                float(self.catalog.row_count(relation))
                if self.catalog.has_table(relation)
                else _UNKNOWN_RELATION
            )
            self._row_count_cache[relation] = cached
        return max(0.0, plan_rows) if cached == _UNKNOWN_RELATION else cached

    # ---------------------------------------------------------------- scalar
    def node_features(self, node: PlanNode) -> np.ndarray:
        """Feature vector of a single plan node (scalar reference path)."""
        one_hot = np.zeros(len(_NODE_TYPE_ORDER), dtype=np.float64)
        one_hot[_NODE_TYPE_INDEX[node.node_type]] = 1.0

        log_rows = math.log1p(max(0.0, node.plan_rows)) / _LOG_ROWS_SCALE
        log_cost = math.log1p(max(0.0, node.total_cost)) / _LOG_COST_SCALE
        uses_index = 1.0 if (
            node.index_name is not None or node.node_type in _INDEX_NODE_TYPES
        ) else 0.0
        is_scan = 1.0 if node.node_type in SCAN_NODE_TYPES else 0.0
        is_join = 1.0 if node.node_type in JOIN_NODE_TYPES else 0.0
        is_aggregate = 1.0 if node.node_type in AGGREGATE_NODE_TYPES else 0.0

        table_rows = 0.0
        if node.relation is not None:
            table_rows = self._table_rows(node.relation, node.plan_rows)
        log_table = math.log1p(table_rows) / _LOG_TABLE_SCALE

        numeric = np.array(
            [log_rows, log_cost, uses_index, is_scan, is_join, is_aggregate, log_table],
            dtype=np.float64,
        )
        return np.concatenate([one_hot, numeric])

    # --------------------------------------------------------------- batched
    def features_for_nodes(self, nodes: Sequence[PlanNode]) -> np.ndarray:
        """Feature matrix ``(len(nodes), F)`` built with array operations.

        Row ``i`` equals ``node_features(nodes[i])`` to float round-off: one
        python pass extracts the raw per-node scalars, then the one-hot
        block is filled by index assignment and the numeric block by
        vectorized ``np.log1p`` / lookup-table gathers over the whole batch.
        """
        count = len(nodes)
        width = self.feature_size
        features = np.zeros((count, width), dtype=np.float64)
        if count == 0:
            return features
        type_index = np.fromiter(
            (_NODE_TYPE_INDEX[node.node_type] for node in nodes), dtype=np.int64, count=count
        )
        plan_rows = np.fromiter(
            (node.plan_rows for node in nodes), dtype=np.float64, count=count
        )
        total_cost = np.fromiter(
            (node.total_cost for node in nodes), dtype=np.float64, count=count
        )
        has_index_name = np.fromiter(
            (node.index_name is not None for node in nodes), dtype=np.float64, count=count
        )
        table_rows = np.zeros(count, dtype=np.float64)
        for position, node in enumerate(nodes):
            if node.relation is not None:
                table_rows[position] = self._table_rows(node.relation, node.plan_rows)

        features[np.arange(count), type_index] = 1.0
        base = len(_NODE_TYPE_ORDER)
        features[:, base] = np.log1p(np.maximum(plan_rows, 0.0)) / _LOG_ROWS_SCALE
        features[:, base + 1] = np.log1p(np.maximum(total_cost, 0.0)) / _LOG_COST_SCALE
        features[:, base + 2] = np.maximum(has_index_name, _TYPE_IS_INDEX[type_index])
        features[:, base + 3] = _TYPE_IS_SCAN[type_index]
        features[:, base + 4] = _TYPE_IS_JOIN[type_index]
        features[:, base + 5] = _TYPE_IS_AGGREGATE[type_index]
        features[:, base + 6] = np.log1p(table_rows) / _LOG_TABLE_SCALE
        return features

    def plan_features(self, plan: PlanNode) -> np.ndarray:
        """Feature matrix (pre-order node order) for a whole plan tree."""
        return self.features_for_nodes(list(plan.walk()))


def structural_embedding(plan: PlanNode, dimensions: int = 16) -> np.ndarray:
    """A non-learned baseline embedding used for the ablation in DESIGN.md.

    Buckets operator counts and coarse size statistics into a fixed-width
    vector.  It intentionally ignores the routing task, so retrieval quality
    with it shows how much the task-specific tree-CNN embedding matters.
    """
    vector = np.zeros(dimensions, dtype=np.float64)
    for node in plan.walk():
        bucket = _NODE_TYPE_INDEX[node.node_type] % dimensions
        vector[bucket] += 1.0
    vector[0] += math.log1p(plan.plan_rows)
    vector[1] += math.log1p(plan.total_cost)
    vector[2] += plan.depth()
    norm = np.linalg.norm(vector)
    if norm > 0:
        vector = vector / norm
    return vector
