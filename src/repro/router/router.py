"""SmartRouter — the user-facing facade over the tree-CNN.

Responsibilities (paper Section III-A):

* **Routing**: given the TP and AP plans for a query, predict which engine
  will be faster (used by the HTAP system to pick an engine).
* **Plan-pair encoding**: expose the model's 16-dim penultimate activations
  as the embedding stored in, and used to query, the RAG knowledge base.
* **Operational claims**: the model is tiny (< 1 MB) and inference is
  sub-millisecond; :meth:`model_size_bytes` and :meth:`timed_embed` exist so
  the benchmarks can verify both.

The router is trained on labeled query executions
(:class:`repro.workloads.labeling.LabeledQuery`), i.e. on plan pairs whose
faster engine is known from (simulated) execution.
"""

from __future__ import annotations

import pickle
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Sequence

import numpy as np

from repro.htap.catalog import Catalog
from repro.htap.engines.base import EngineKind
from repro.htap.system import PlanPair
from repro.obs.tracing import get_tracer
from repro.router.features import PlanFeaturizer
from repro.router.tensors import PlanTensor
from repro.router.training import RouterTrainer, TrainingReport, TrainingSample
from repro.router.treecnn import CLASS_AP, CLASS_TP, TreeCNNClassifier, TreeCNNConfig
from repro.workloads.labeling import LabeledQuery


@dataclass
class RoutingDecision:
    """Outcome of routing one plan pair."""

    engine: EngineKind
    confidence: float
    probabilities: tuple[float, float]
    inference_seconds: float

    @property
    def inference_ms(self) -> float:
        return self.inference_seconds * 1000.0


class SmartRouter:
    """Tree-CNN router and plan-pair encoder."""

    def __init__(
        self,
        catalog: Catalog | None = None,
        *,
        embedding_size: int = 16,
        seed: int = 13,
    ):
        self.featurizer = PlanFeaturizer(catalog)
        self.config = TreeCNNConfig(
            feature_size=self.featurizer.feature_size,
            embedding_size=embedding_size,
            seed=seed,
        )
        self.model = TreeCNNClassifier(self.config)
        self.training_report: TrainingReport | None = None

    # ------------------------------------------------------------------ train
    def _sample_from(self, labeled: LabeledQuery) -> TrainingSample:
        pair = labeled.execution.plan_pair
        label = CLASS_TP if labeled.faster_engine is EngineKind.TP else CLASS_AP
        return (
            PlanTensor.from_plan(pair.tp_plan, self.featurizer),
            PlanTensor.from_plan(pair.ap_plan, self.featurizer),
            label,
        )

    def fit(
        self,
        labeled_queries: list[LabeledQuery],
        *,
        epochs: int = 40,
        learning_rate: float = 1e-3,
        validation_fraction: float = 0.2,
    ) -> TrainingReport:
        """Train the router on labeled executions."""
        samples = [self._sample_from(labeled) for labeled in labeled_queries]
        trainer = RouterTrainer(self.model, learning_rate=learning_rate)
        self.training_report = trainer.train(
            samples, epochs=epochs, validation_fraction=validation_fraction
        )
        return self.training_report

    def accuracy(self, labeled_queries: list[LabeledQuery]) -> float:
        """Routing accuracy on a labeled set."""
        samples = [self._sample_from(labeled) for labeled in labeled_queries]
        trainer = RouterTrainer(self.model)
        return trainer.evaluate(samples)

    # ------------------------------------------------------------------ route
    def route(self, plan_pair: PlanPair) -> RoutingDecision:
        """Predict the faster engine for a plan pair."""
        with get_tracer().span("router.route") as span:
            tp_tensor = PlanTensor.from_plan(plan_pair.tp_plan, self.featurizer)
            ap_tensor = PlanTensor.from_plan(plan_pair.ap_plan, self.featurizer)
            start = time.perf_counter()
            probabilities = self.model.predict_proba(tp_tensor, ap_tensor)
            elapsed = time.perf_counter() - start
            winner = EngineKind.TP if probabilities[CLASS_TP] >= probabilities[CLASS_AP] else EngineKind.AP
            confidence = float(np.max(probabilities))
            span.set_attributes(engine=winner.value, confidence=round(confidence, 4))
            return RoutingDecision(
                engine=winner,
                confidence=confidence,
                probabilities=(float(probabilities[CLASS_TP]), float(probabilities[CLASS_AP])),
                inference_seconds=elapsed,
            )

    # ------------------------------------------------------------------ embed
    def embed_pair(self, plan_pair: PlanPair) -> np.ndarray:
        """The 16-dim plan-pair embedding used as the knowledge-base key."""
        tp_tensor = PlanTensor.from_plan(plan_pair.tp_plan, self.featurizer)
        ap_tensor = PlanTensor.from_plan(plan_pair.ap_plan, self.featurizer)
        return self.model.embed_pair(tp_tensor, ap_tensor)

    def timed_embed(self, plan_pair: PlanPair) -> tuple[np.ndarray, float]:
        """Embedding plus wall-clock encoding time (for the latency benchmark)."""
        start = time.perf_counter()
        embedding = self.embed_pair(plan_pair)
        return embedding, time.perf_counter() - start

    def embed_batch(
        self,
        plan_pairs: Sequence[PlanPair],
        *,
        timings: dict[str, float] | None = None,
    ) -> np.ndarray:
        """Embed many plan pairs in one vectorized pipeline.

        Returns a ``(len(plan_pairs), embedding_size)`` array whose rows match
        per-pair :meth:`embed_pair` output.  This is the path the serving
        layer's micro-batcher drives: every node of every plan is featurized
        in one :meth:`PlanTensor.from_plans` call, and the convolutions and
        the dense head each run as a single stacked matmul over the whole
        batch instead of ``N`` independent passes.

        When ``timings`` is given, ``featurize_seconds`` and
        ``forward_seconds`` are written into it — the micro-batcher uses
        this to stamp the same split onto its replayed request spans.
        """
        with get_tracer().span("router.embed_batch", batch_size=len(plan_pairs)) as span:
            featurize_start = time.perf_counter()
            tp_tensors = PlanTensor.from_plans(
                [pair.tp_plan for pair in plan_pairs], self.featurizer
            )
            ap_tensors = PlanTensor.from_plans(
                [pair.ap_plan for pair in plan_pairs], self.featurizer
            )
            forward_start = time.perf_counter()
            embeddings = self.model.embed_pairs(list(zip(tp_tensors, ap_tensors)))
            forward_end = time.perf_counter()
            featurize_seconds = forward_start - featurize_start
            forward_seconds = forward_end - forward_start
            span.set_attributes(
                featurize_seconds=round(featurize_seconds, 6),
                forward_seconds=round(forward_seconds, 6),
            )
            if timings is not None:
                timings["featurize_seconds"] = featurize_seconds
                timings["forward_seconds"] = forward_seconds
            return embeddings

    def timed_embed_batch(self, plan_pairs: Sequence[PlanPair]) -> tuple[np.ndarray, float]:
        """Batched embeddings plus total wall-clock encoding time."""
        start = time.perf_counter()
        embeddings = self.embed_batch(plan_pairs)
        return embeddings, time.perf_counter() - start

    # --------------------------------------------------------------- metadata
    @property
    def embedding_size(self) -> int:
        return self.config.embedding_size

    def model_size_bytes(self) -> int:
        return self.model.model_size_bytes()

    def parameter_count(self) -> int:
        return self.model.parameter_count()

    # ------------------------------------------------------------ persistence
    def save(self, path: str | Path) -> None:
        """Persist the trained parameters (and config) to ``path``."""
        payload = {
            "config": self.config,
            "state": self.model.state_dict(),
        }
        with open(path, "wb") as handle:
            pickle.dump(payload, handle)

    @classmethod
    def load(cls, path: str | Path, catalog: Catalog | None = None) -> "SmartRouter":
        """Load a router previously stored with :meth:`save`."""
        with open(path, "rb") as handle:
            payload = pickle.load(handle)
        config: TreeCNNConfig = payload["config"]
        router = cls(catalog, embedding_size=config.embedding_size, seed=config.seed)
        if router.config.feature_size != config.feature_size:
            raise ValueError(
                "featurizer width changed since the model was saved "
                f"({config.feature_size} vs {router.config.feature_size})"
            )
        router.model.load_state_dict(payload["state"])
        return router
