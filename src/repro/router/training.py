"""Adam trainer for the tree-CNN router.

Training data is a list of ``(tp_tensor, ap_tensor, label)`` triples where
``label`` follows the :data:`repro.router.treecnn.CLASS_TP` /
:data:`~repro.router.treecnn.CLASS_AP` convention.  Mini-batches accumulate
gradients sample by sample (plans are tiny trees, so a Python loop is far
from the bottleneck) and an Adam step is applied per batch.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

import numpy as np

from repro.router.tensors import PlanTensor
from repro.router.treecnn import Gradients, TreeCNNClassifier


@dataclass
class TrainingReport:
    """Summary of one training run."""

    epochs: int
    final_train_loss: float
    final_train_accuracy: float
    validation_accuracy: float
    loss_history: list[float] = field(default_factory=list)
    accuracy_history: list[float] = field(default_factory=list)


@dataclass
class _AdamState:
    first_moment: dict[str, np.ndarray] = field(default_factory=dict)
    second_moment: dict[str, np.ndarray] = field(default_factory=dict)
    step: int = 0


TrainingSample = tuple[PlanTensor, PlanTensor, int]


class RouterTrainer:
    """Mini-batch Adam trainer."""

    def __init__(
        self,
        model: TreeCNNClassifier,
        *,
        learning_rate: float = 1e-3,
        batch_size: int = 16,
        beta1: float = 0.9,
        beta2: float = 0.999,
        epsilon: float = 1e-8,
        weight_decay: float = 1e-5,
        seed: int = 17,
    ):
        self.model = model
        self.learning_rate = learning_rate
        self.batch_size = batch_size
        self.beta1 = beta1
        self.beta2 = beta2
        self.epsilon = epsilon
        self.weight_decay = weight_decay
        self._rng = random.Random(seed)
        self._adam = _AdamState()

    # ------------------------------------------------------------------ train
    def train(
        self,
        samples: list[TrainingSample],
        *,
        epochs: int = 40,
        validation_fraction: float = 0.2,
    ) -> TrainingReport:
        """Train for ``epochs`` passes and return a report.

        A deterministic tail split of ``validation_fraction`` of the samples
        is held out for the validation accuracy number.
        """
        if not samples:
            raise ValueError("cannot train on an empty sample list")
        validation_count = int(len(samples) * validation_fraction)
        training = samples[: len(samples) - validation_count]
        validation = samples[len(samples) - validation_count :]
        if not training:
            training, validation = samples, []

        loss_history: list[float] = []
        accuracy_history: list[float] = []
        order = list(range(len(training)))
        for _epoch in range(epochs):
            self._rng.shuffle(order)
            epoch_loss = 0.0
            correct = 0
            for start in range(0, len(order), self.batch_size):
                batch = [training[index] for index in order[start : start + self.batch_size]]
                gradients = Gradients()
                for tp_tensor, ap_tensor, label in batch:
                    loss, probabilities = self.model.loss_and_gradients(
                        tp_tensor, ap_tensor, label, gradients
                    )
                    epoch_loss += loss
                    if int(np.argmax(probabilities)) == label:
                        correct += 1
                gradients.scale(1.0 / len(batch))
                self._apply_adam(gradients)
            loss_history.append(epoch_loss / len(training))
            accuracy_history.append(correct / len(training))

        validation_accuracy = self.evaluate(validation) if validation else accuracy_history[-1]
        return TrainingReport(
            epochs=epochs,
            final_train_loss=loss_history[-1],
            final_train_accuracy=accuracy_history[-1],
            validation_accuracy=validation_accuracy,
            loss_history=loss_history,
            accuracy_history=accuracy_history,
        )

    def evaluate(self, samples: list[TrainingSample]) -> float:
        """Classification accuracy over ``samples`` (1.0 for an empty list)."""
        if not samples:
            return 1.0
        correct = 0
        for tp_tensor, ap_tensor, label in samples:
            probabilities = self.model.predict_proba(tp_tensor, ap_tensor)
            if int(np.argmax(probabilities)) == label:
                correct += 1
        return correct / len(samples)

    # ------------------------------------------------------------------- adam
    def _apply_adam(self, gradients: Gradients) -> None:
        state = self._adam
        state.step += 1
        for name, gradient in gradients.values.items():
            parameter = self.model.parameters[name]
            if self.weight_decay and parameter.ndim > 1:
                gradient = gradient + self.weight_decay * parameter
            if name not in state.first_moment:
                state.first_moment[name] = np.zeros_like(parameter)
                state.second_moment[name] = np.zeros_like(parameter)
            state.first_moment[name] = (
                self.beta1 * state.first_moment[name] + (1.0 - self.beta1) * gradient
            )
            state.second_moment[name] = (
                self.beta2 * state.second_moment[name] + (1.0 - self.beta2) * gradient**2
            )
            corrected_first = state.first_moment[name] / (1.0 - self.beta1**state.step)
            corrected_second = state.second_moment[name] / (1.0 - self.beta2**state.step)
            parameter -= self.learning_rate * corrected_first / (np.sqrt(corrected_second) + self.epsilon)
