"""Tree-CNN plan-pair classifier with manual backpropagation.

Architecture (numpy only, no deep-learning framework):

.. code-block:: text

    per plan:   node features --tree conv (C1)--> --tree conv (C2)--> max pool
    per pair:   [pool(TP) ; pool(AP)] --dense (H, relu)--> dense (E, relu)
                --dense (2)--> softmax over {TP faster, AP faster}

The output of the ``E``-dimensional layer (16 by default, as in the paper) is
the **plan-pair embedding** stored in the knowledge base and used as the
retrieval key.  The model is a few thousand parameters — well under the
paper's "< 1 MB" footprint — and a single forward pass is far below 1 ms.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.router.tensors import PlanTensor

#: Class index convention: 0 = TP is faster, 1 = AP is faster.
CLASS_TP = 0
CLASS_AP = 1


@dataclass(frozen=True)
class TreeCNNConfig:
    """Hyper-parameters of the tree-CNN."""

    feature_size: int
    conv1_channels: int = 64
    conv2_channels: int = 32
    head_hidden: int = 32
    embedding_size: int = 16
    seed: int = 13


@dataclass
class _PlanCache:
    """Intermediate activations needed for the backward pass of one plan."""

    tensor: PlanTensor
    triples1: np.ndarray
    z1: np.ndarray
    a1: np.ndarray
    padded1: np.ndarray
    triples2: np.ndarray
    z2: np.ndarray
    a2: np.ndarray
    argmax: np.ndarray
    pooled: np.ndarray


@dataclass
class _PairCache:
    """Intermediate activations for one plan pair."""

    tp: _PlanCache
    ap: _PlanCache
    pair_vector: np.ndarray
    z_hidden: np.ndarray
    hidden: np.ndarray
    z_embedding: np.ndarray
    embedding: np.ndarray
    logits: np.ndarray
    probabilities: np.ndarray


@dataclass
class Gradients:
    """Gradient accumulator keyed like the parameter dictionary."""

    values: dict[str, np.ndarray] = field(default_factory=dict)

    def add(self, name: str, gradient: np.ndarray) -> None:
        if name in self.values:
            self.values[name] += gradient
        else:
            self.values[name] = gradient.copy()

    def scale(self, factor: float) -> None:
        for name in self.values:
            self.values[name] *= factor


def _relu(x: np.ndarray) -> np.ndarray:
    return np.maximum(x, 0.0)


def _relu_grad(z: np.ndarray) -> np.ndarray:
    return (z > 0.0).astype(np.float64)


def _softmax(logits: np.ndarray) -> np.ndarray:
    shifted = logits - np.max(logits)
    exp = np.exp(shifted)
    return exp / np.sum(exp)


class TreeCNNClassifier:
    """The smart router's model: classify which engine is faster.

    All parameters live in :attr:`parameters`, a flat ``name -> ndarray``
    dictionary, which keeps the Adam trainer and (de)serialisation trivial.
    """

    def __init__(self, config: TreeCNNConfig):
        self.config = config
        rng = np.random.default_rng(config.seed)
        feature_size = config.feature_size
        c1, c2 = config.conv1_channels, config.conv2_channels
        hidden, embedding = config.head_hidden, config.embedding_size
        self.parameters: dict[str, np.ndarray] = {
            "conv1_w": _glorot(rng, 3 * feature_size, c1),
            "conv1_b": np.zeros(c1),
            "conv2_w": _glorot(rng, 3 * c1, c2),
            "conv2_b": np.zeros(c2),
            "head_w": _glorot(rng, 2 * c2, hidden),
            "head_b": np.zeros(hidden),
            "embed_w": _glorot(rng, hidden, embedding),
            "embed_b": np.zeros(embedding),
            "out_w": _glorot(rng, embedding, 2),
            "out_b": np.zeros(2),
        }

    # --------------------------------------------------------------- forward
    def _forward_plan(self, tensor: PlanTensor) -> _PlanCache:
        parameters = self.parameters
        triples1 = tensor.triples()
        z1 = triples1 @ parameters["conv1_w"] + parameters["conv1_b"]
        a1 = _relu(z1)
        padded1 = np.zeros((tensor.node_count + 1, self.config.conv1_channels))
        padded1[1:] = a1
        triples2 = np.concatenate(
            [padded1[1:], padded1[tensor.left], padded1[tensor.right]], axis=1
        )
        z2 = triples2 @ parameters["conv2_w"] + parameters["conv2_b"]
        a2 = _relu(z2)
        argmax = np.argmax(a2, axis=0)
        pooled = a2[argmax, np.arange(a2.shape[1])]
        return _PlanCache(
            tensor=tensor,
            triples1=triples1,
            z1=z1,
            a1=a1,
            padded1=padded1,
            triples2=triples2,
            z2=z2,
            a2=a2,
            argmax=argmax,
            pooled=pooled,
        )

    def forward_pair(self, tp_tensor: PlanTensor, ap_tensor: PlanTensor) -> _PairCache:
        """Full forward pass over a TP/AP plan-pair."""
        parameters = self.parameters
        tp_cache = self._forward_plan(tp_tensor)
        ap_cache = self._forward_plan(ap_tensor)
        pair_vector = np.concatenate([tp_cache.pooled, ap_cache.pooled])
        z_hidden = pair_vector @ parameters["head_w"] + parameters["head_b"]
        hidden = _relu(z_hidden)
        z_embedding = hidden @ parameters["embed_w"] + parameters["embed_b"]
        embedding = _relu(z_embedding)
        logits = embedding @ parameters["out_w"] + parameters["out_b"]
        probabilities = _softmax(logits)
        return _PairCache(
            tp=tp_cache,
            ap=ap_cache,
            pair_vector=pair_vector,
            z_hidden=z_hidden,
            hidden=hidden,
            z_embedding=z_embedding,
            embedding=embedding,
            logits=logits,
            probabilities=probabilities,
        )

    # ------------------------------------------------------------- inference
    def predict_proba(self, tp_tensor: PlanTensor, ap_tensor: PlanTensor) -> np.ndarray:
        """Probabilities ``[P(TP faster), P(AP faster)]``."""
        return self.forward_pair(tp_tensor, ap_tensor).probabilities

    def embed_pair(self, tp_tensor: PlanTensor, ap_tensor: PlanTensor) -> np.ndarray:
        """The 16-dim plan-pair embedding (penultimate layer activations)."""
        return self.forward_pair(tp_tensor, ap_tensor).embedding.copy()

    # ------------------------------------------------------------- batched
    def _pooled_batch(self, tensors: Sequence[PlanTensor]) -> np.ndarray:
        """Max-pooled conv outputs for many plans in one stacked forward pass.

        All plans' node rows are concatenated into a single matrix (row 0 is
        the shared zero padding node), child indices are shifted into the
        global row space, and each convolution becomes one matmul over the
        whole batch.  Pooling then reduces each plan's own row segment, so
        the result is numerically the per-plan ``_forward_plan`` pooling.
        """
        parameters = self.parameters
        counts = np.array([tensor.node_count for tensor in tensors], dtype=np.int64)
        total = int(counts.sum())
        starts = np.zeros(len(tensors), dtype=np.int64)
        np.cumsum(counts[:-1], out=starts[1:])
        node_features = np.zeros((total + 1, self.config.feature_size))
        node_features[1:] = np.concatenate([tensor.features[1:] for tensor in tensors], axis=0)
        # Local child index j >= 1 lives at global row start + j; the local
        # padding index 0 maps to the shared global padding row 0.
        offsets = np.repeat(starts, counts)
        local_left = np.concatenate([tensor.left for tensor in tensors])
        local_right = np.concatenate([tensor.right for tensor in tensors])
        left = np.where(local_left > 0, local_left + offsets, 0)
        right = np.where(local_right > 0, local_right + offsets, 0)
        triples1 = np.concatenate(
            [node_features[1:], node_features[left], node_features[right]], axis=1
        )
        a1 = _relu(triples1 @ parameters["conv1_w"] + parameters["conv1_b"])
        padded1 = np.zeros((total + 1, self.config.conv1_channels))
        padded1[1:] = a1
        triples2 = np.concatenate([a1, padded1[left], padded1[right]], axis=1)
        a2 = _relu(triples2 @ parameters["conv2_w"] + parameters["conv2_b"])
        return np.maximum.reduceat(a2, starts, axis=0)

    def embed_pairs(self, pairs: Sequence[tuple[PlanTensor, PlanTensor]]) -> np.ndarray:
        """Batched :meth:`embed_pair`: one ``(B, E)`` array, one forward pass.

        The dense head runs as a single matmul over the stacked pair vectors;
        results match per-pair :meth:`embed_pair` to float64 round-off.
        """
        if not pairs:
            return np.zeros((0, self.config.embedding_size))
        parameters = self.parameters
        tp_pooled = self._pooled_batch([tp for tp, _ap in pairs])
        ap_pooled = self._pooled_batch([ap for _tp, ap in pairs])
        pair_vectors = np.concatenate([tp_pooled, ap_pooled], axis=1)
        hidden = _relu(pair_vectors @ parameters["head_w"] + parameters["head_b"])
        return _relu(hidden @ parameters["embed_w"] + parameters["embed_b"])

    # -------------------------------------------------------------- backward
    def loss_and_gradients(
        self,
        tp_tensor: PlanTensor,
        ap_tensor: PlanTensor,
        label: int,
        gradients: Gradients,
    ) -> tuple[float, np.ndarray]:
        """Cross-entropy loss for one pair; accumulates gradients in place.

        Returns ``(loss, probabilities)``.
        """
        if label not in (CLASS_TP, CLASS_AP):
            raise ValueError(f"label must be {CLASS_TP} or {CLASS_AP}, got {label}")
        cache = self.forward_pair(tp_tensor, ap_tensor)
        probabilities = cache.probabilities
        loss = -float(np.log(max(probabilities[label], 1e-12)))

        parameters = self.parameters
        d_logits = probabilities.copy()
        d_logits[label] -= 1.0

        gradients.add("out_w", np.outer(cache.embedding, d_logits))
        gradients.add("out_b", d_logits)
        d_embedding = d_logits @ parameters["out_w"].T
        d_z_embedding = d_embedding * _relu_grad(cache.z_embedding)

        gradients.add("embed_w", np.outer(cache.hidden, d_z_embedding))
        gradients.add("embed_b", d_z_embedding)
        d_hidden = d_z_embedding @ parameters["embed_w"].T
        d_z_hidden = d_hidden * _relu_grad(cache.z_hidden)

        gradients.add("head_w", np.outer(cache.pair_vector, d_z_hidden))
        gradients.add("head_b", d_z_hidden)
        d_pair = d_z_hidden @ parameters["head_w"].T

        c2 = self.config.conv2_channels
        self._backward_plan(cache.tp, d_pair[:c2], gradients)
        self._backward_plan(cache.ap, d_pair[c2:], gradients)
        return loss, probabilities

    def _backward_plan(self, cache: _PlanCache, d_pooled: np.ndarray, gradients: Gradients) -> None:
        parameters = self.parameters
        d_a2 = np.zeros_like(cache.a2)
        d_a2[cache.argmax, np.arange(cache.a2.shape[1])] = d_pooled
        d_z2 = d_a2 * _relu_grad(cache.z2)
        gradients.add("conv2_w", cache.triples2.T @ d_z2)
        gradients.add("conv2_b", d_z2.sum(axis=0))
        d_triples2 = d_z2 @ parameters["conv2_w"].T

        c1 = self.config.conv1_channels
        d_node = d_triples2[:, :c1]
        d_left = d_triples2[:, c1 : 2 * c1]
        d_right = d_triples2[:, 2 * c1 :]
        d_padded1 = np.zeros_like(cache.padded1)
        d_padded1[1:] += d_node
        np.add.at(d_padded1, cache.tensor.left, d_left)
        np.add.at(d_padded1, cache.tensor.right, d_right)
        d_a1 = d_padded1[1:]
        d_z1 = d_a1 * _relu_grad(cache.z1)
        gradients.add("conv1_w", cache.triples1.T @ d_z1)
        gradients.add("conv1_b", d_z1.sum(axis=0))

    # ----------------------------------------------------------- persistence
    def parameter_count(self) -> int:
        return int(sum(array.size for array in self.parameters.values()))

    def model_size_bytes(self) -> int:
        """Serialised size of the parameters (float64), for the <1 MB claim."""
        return int(sum(array.nbytes for array in self.parameters.values()))

    def state_dict(self) -> dict[str, np.ndarray]:
        return {name: array.copy() for name, array in self.parameters.items()}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        for name, array in state.items():
            if name not in self.parameters:
                raise KeyError(f"unexpected parameter {name!r}")
            if self.parameters[name].shape != array.shape:
                raise ValueError(
                    f"shape mismatch for {name!r}: "
                    f"{self.parameters[name].shape} vs {array.shape}"
                )
            self.parameters[name] = array.copy()


def _glorot(rng: np.random.Generator, fan_in: int, fan_out: int) -> np.ndarray:
    """Glorot/Xavier uniform initialisation."""
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=(fan_in, fan_out))
