"""Symmetric int8 quantization for cached embeddings.

The serving layer's L2 cache stores one float64 embedding per distinct SQL
fingerprint.  At 16 dimensions that is 128 bytes per entry — modest, but
the cache is sized in the tens of thousands of entries and the embeddings
are by far its largest payload after the plan objects.  Quantizing to int8
with one float scale per vector cuts the embedding payload 8× (16 bytes of
codes + one scale), trading a bounded amount of precision: the worst-case
reconstruction error per component is ``scale / 2 = max|x| / 254``.

The codec is *symmetric* (zero maps to zero, codes span ``[-127, 127]``),
the standard scheme for activation quantization: it needs no zero-point
arithmetic on decode, and retrieval quality degrades gracefully — the
recall@5 equivalence test in ``tests/knowledge/test_quantization.py`` holds
it to ≥ 0.95 against the float64 path.

Opt in through ``ServiceConfig(quantize_embedding_cache=True)``; entries
are dequantized on hit, so everything downstream of the cache still sees
float64 arrays.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: Largest code magnitude; -128 is unused so the range stays symmetric.
_CODE_PEAK = 127


@dataclass(frozen=True)
class QuantizedVector:
    """An int8-quantized vector: codes plus one reconstruction scale.

    ``dequantize`` reconstructs ``codes * scale`` as float64.  A zero
    vector quantizes to ``scale == 0.0`` and reconstructs exactly.
    """

    codes: np.ndarray  # int8, shape (d,)
    scale: float

    @property
    def nbytes(self) -> int:
        """Payload size of the stored representation (codes + scale)."""
        return int(self.codes.nbytes) + 8

    def dequantize(self) -> np.ndarray:
        return self.codes.astype(np.float64) * self.scale

    @property
    def max_abs_error(self) -> float:
        """Worst-case per-component reconstruction error (half a step)."""
        return self.scale / 2.0


def quantize_vector(vector: np.ndarray) -> QuantizedVector:
    """Symmetric int8 quantization: ``scale = max|x| / 127``, round to nearest."""
    array = np.asarray(vector, dtype=np.float64)
    if array.ndim != 1:
        raise ValueError("only 1-D vectors can be quantized")
    peak = float(np.max(np.abs(array))) if array.size else 0.0
    if peak == 0.0 or not np.isfinite(peak):
        if not np.isfinite(peak):
            raise ValueError("cannot quantize a vector with non-finite components")
        return QuantizedVector(codes=np.zeros(array.shape, dtype=np.int8), scale=0.0)
    scale = peak / _CODE_PEAK
    codes = np.clip(np.rint(array / scale), -_CODE_PEAK, _CODE_PEAK).astype(np.int8)
    return QuantizedVector(codes=codes, scale=scale)


def dequantize_vector(quantized: QuantizedVector) -> np.ndarray:
    """Reconstruct the float64 vector from its int8 codes."""
    return quantized.dequantize()
