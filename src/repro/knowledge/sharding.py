"""Sharded, multi-tenant knowledge base (horizontal-scale serving).

PR 2 made :class:`~repro.knowledge.knowledge_base.KnowledgeBase` thread-safe
behind one writer-preferring read–write lock — which means every expert
write momentarily serializes *all* retrieval.  This module removes that
single choke point:

* :class:`ConsistentHashRing` — entry keys are consistent-hashed (virtual
  nodes, stable blake2b) across N shards, so adding or removing a shard
  moves only ~K/N keys instead of reshuffling everything;
* :class:`ShardedKnowledgeBase` — N independent
  :class:`~repro.knowledge.knowledge_base.KnowledgeBase` shards, each with
  its own :class:`~repro.knowledge.vector_store.VectorStore` and its own
  read–write lock.  Retrieval is scatter-gather: ``search`` fans out to
  every shard (in parallel once there is more than one), results merge by
  distance, and a write now locks only the one shard that owns its key —
  reads on the other N−1 shards proceed untouched.  The per-shard searches
  go through the unchanged ``VectorStore.search``, so the HNSW
  tombstone-inflation and batched-kernel paths from PR 8 apply per shard;
* **tenant namespaces** — every operation takes a ``tenant``; the tenant id
  is folded into the shard hash and each (shard, tenant) pair owns a
  private ``KnowledgeBase``, so one tenant's entries are invisible to
  another's retrieval and a tenant's writes contend only with that
  tenant's readers on one shard.  The default namespace doubles as the
  shared corpus: tenant retrieval searches it too (tenant entries shadow
  shared ones by id), so tenants are grounded without seeding each
  namespace separately.

Concurrency model: reads (``retrieve`` / ``get`` / ``entries``) never take
a sharded-level lock — they snapshot the copy-on-write topology dicts and
rely on each shard's own read–write lock.  Writes and topology changes
(``add_shard`` / ``remove_shard``) serialize on one sharded-level mutex.
During a rebalance an entry is added to its new shard *before* being
removed from the old one, so retrieval never misses it (the scatter-gather
merge deduplicates the transient double appearance).
"""

from __future__ import annotations

import bisect
import hashlib
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Callable, Iterator

import numpy as np

from repro.knowledge.entry import KnowledgeEntry
from repro.knowledge.knowledge_base import (
    KnowledgeBase,
    RetrievalResult,
    RetrievedKnowledge,
)
from repro.knowledge.vector_store import FlatVectorStore, VectorStore
from repro.obs.tracing import get_tracer

#: Tenant every un-namespaced operation belongs to.  Folding this tenant
#: into a fingerprint or shard hash is defined to be a no-op, so
#: single-tenant deployments produce byte-identical keys to the
#: pre-tenancy code.
DEFAULT_TENANT = "default"

#: Signature of a sharded write listener: ``(event, entry_id, tenant)``.
TenantWriteListener = Callable[[str, str, str], None]


def namespaced_key(tenant: str, entry_id: str) -> str:
    """The ring key for one entry: the tenant folded into the entry id."""
    return f"{tenant}::{entry_id}"


def _stable_hash(text: str) -> int:
    """Process- and version-stable 64-bit hash (``hash()`` is salted)."""
    return int.from_bytes(hashlib.blake2b(text.encode("utf-8"), digest_size=8).digest(), "big")


class ConsistentHashRing:
    """Consistent hashing with virtual nodes.

    Each shard owns ``vnodes`` points on a 64-bit ring; a key belongs to
    the shard owning the first point at or after the key's hash (wrapping
    at the top).  Virtual nodes keep the assignment uniform within a few
    percent, and adding or removing one shard only reassigns the keys in
    the arcs its points covered — the bounded-movement property the
    rebalance tests gate.
    """

    def __init__(self, shards: tuple[str, ...] | list[str] = (), *, vnodes: int = 64):
        if vnodes < 1:
            raise ValueError("vnodes must be at least 1")
        self.vnodes = vnodes
        self._shards: set[str] = set()
        self._points: list[tuple[int, str]] = []
        self._hashes: list[int] = []
        for name in shards:
            self.add_shard(name)

    @property
    def shards(self) -> tuple[str, ...]:
        return tuple(sorted(self._shards))

    def __len__(self) -> int:
        return len(self._shards)

    def add_shard(self, name: str) -> None:
        if name in self._shards:
            raise ValueError(f"shard {name!r} already on the ring")
        self._shards.add(name)
        for replica in range(self.vnodes):
            bisect.insort(self._points, (_stable_hash(f"{name}#{replica}"), name))
        self._hashes = [point for point, _shard in self._points]

    def remove_shard(self, name: str) -> None:
        if name not in self._shards:
            raise KeyError(f"unknown shard {name!r}")
        self._shards.discard(name)
        self._points = [(point, shard) for point, shard in self._points if shard != name]
        self._hashes = [point for point, _shard in self._points]

    def shard_for(self, key: str) -> str:
        if not self._points:
            raise RuntimeError("ring has no shards")
        index = bisect.bisect_right(self._hashes, _stable_hash(key))
        if index == len(self._points):
            index = 0
        return self._points[index][1]

    def copy(self) -> "ConsistentHashRing":
        """An independent ring with the same shards (for copy-on-write
        topology changes: mutate the copy, then swap the reference)."""
        duplicate = ConsistentHashRing(vnodes=self.vnodes)
        duplicate._shards = set(self._shards)
        duplicate._points = list(self._points)
        duplicate._hashes = list(self._hashes)
        return duplicate


@dataclass(frozen=True)
class RebalanceReport:
    """What one ``add_shard`` / ``remove_shard`` topology change did."""

    shard: str
    moved_entries: int
    total_entries: int

    @property
    def moved_fraction(self) -> float:
        return self.moved_entries / self.total_entries if self.total_entries else 0.0


class ShardedKnowledgeBase:
    """N knowledge-base shards behind one consistent-hash ring.

    Duck-type compatible with the single
    :class:`~repro.knowledge.knowledge_base.KnowledgeBase` (``add`` /
    ``remove`` / ``correct`` / ``get`` / ``retrieve`` / ``entries`` /
    ``__len__`` / ``__contains__``), with every method taking an optional
    ``tenant`` keyword (default :data:`DEFAULT_TENANT`).

    ``store_factory`` builds the vector store for each (shard, tenant)
    namespace — pass ``lambda: HNSWVectorStore(...)`` for the approximate
    index; the default is an exact :class:`FlatVectorStore`, under which
    scatter-gather top-k is provably identical to a single flat store.
    """

    def __init__(
        self,
        num_shards: int = 4,
        *,
        store_factory: Callable[[], VectorStore] | None = None,
        vnodes: int = 64,
        fanout_workers: int | None = None,
    ):
        if num_shards < 1:
            raise ValueError("num_shards must be at least 1")
        self._store_factory = store_factory or FlatVectorStore
        self._ring = ConsistentHashRing(vnodes=vnodes)
        #: shard name -> tenant -> KnowledgeBase; both levels copy-on-write.
        self._shards: dict[str, dict[str, KnowledgeBase]] = {}
        self._write_lock = threading.RLock()
        self._listeners: list[TenantWriteListener] = []
        self._next_shard_index = 0
        self._rebalances = 0
        self._fanout_workers = fanout_workers
        self._fanout: ThreadPoolExecutor | None = None
        self._fanout_lock = threading.Lock()
        for _ in range(num_shards):
            name = self._next_name()
            self._shards[name] = {}
            self._ring.add_shard(name)

    # ------------------------------------------------------------- construction
    @classmethod
    def from_knowledge_base(
        cls,
        knowledge_base: KnowledgeBase,
        num_shards: int,
        *,
        store_factory: Callable[[], VectorStore] | None = None,
        vnodes: int = 64,
        tenant: str = DEFAULT_TENANT,
    ) -> "ShardedKnowledgeBase":
        """Shard an existing single knowledge base's entries.

        The default ``store_factory`` is an exact flat store with the
        source store's metric, so retrieval results stay identical to the
        source.  The source instance is not mutated, but callers should
        stop writing to it — writes belong on the sharded instance now.
        """
        if store_factory is None:
            metric = knowledge_base.vector_store.metric
            store_factory = lambda: FlatVectorStore(metric)  # noqa: E731
        sharded = cls(num_shards=num_shards, store_factory=store_factory, vnodes=vnodes)
        sharded.add_many(knowledge_base.entries(), tenant=tenant)
        return sharded

    def _next_name(self) -> str:
        name = f"shard-{self._next_shard_index}"
        self._next_shard_index += 1
        return name

    # ---------------------------------------------------------------- listeners
    def add_write_listener(self, listener: TenantWriteListener) -> None:
        """Register a ``(event, entry_id, tenant)`` callback fired after
        every successful write (rebalance moves do not fire — they change
        placement, not content)."""
        self._listeners.append(listener)

    def remove_write_listener(self, listener: TenantWriteListener) -> None:
        self._listeners.remove(listener)

    def _notify(self, event: str, entry_id: str, tenant: str) -> None:
        for listener in list(self._listeners):
            listener(event, entry_id, tenant)

    # ----------------------------------------------------------------- topology
    @property
    def shard_names(self) -> tuple[str, ...]:
        return tuple(sorted(self._shards))

    @property
    def num_shards(self) -> int:
        return len(self._shards)

    def tenants(self) -> tuple[str, ...]:
        seen: set[str] = set()
        for tenant_kbs in self._shards.values():
            seen.update(tenant_kbs)
        return tuple(sorted(seen))

    def shard_sizes(self, *, tenant: str | None = None) -> dict[str, int]:
        """Entry count per shard (one tenant's, or all tenants summed)."""
        sizes: dict[str, int] = {}
        for name, tenant_kbs in sorted(self._shards.items()):
            if tenant is None:
                sizes[name] = sum(len(kb) for kb in tenant_kbs.values())
            else:
                kb = tenant_kbs.get(tenant)
                sizes[name] = len(kb) if kb is not None else 0
        return sizes

    def stats(self) -> dict[str, object]:
        """Numeric snapshot for the metrics exposition (``/metrics``)."""
        sizes = self.shard_sizes()
        return {
            "num_shards": len(self._shards),
            "entries": sum(sizes.values()),
            "tenants": len(self.tenants()),
            "rebalances": self._rebalances,
            "shard_sizes": sizes,
        }

    # ----------------------------------------------------------- shard plumbing
    def _kb_for_write(self, shard: str, tenant: str) -> KnowledgeBase:
        """The (shard, tenant) namespace, created lazily.

        Callers hold ``_write_lock``; both topology dicts are replaced
        copy-on-write so lock-free readers never iterate a mutating dict.
        """
        tenant_kbs = self._shards[shard]
        kb = tenant_kbs.get(tenant)
        if kb is None:
            kb = KnowledgeBase(vector_store=self._store_factory())
            fresh_tenants = dict(tenant_kbs)
            fresh_tenants[tenant] = kb
            fresh_shards = dict(self._shards)
            fresh_shards[shard] = fresh_tenants
            self._shards = fresh_shards
        return kb

    def _kb_for_read(self, entry_id: str, tenant: str) -> KnowledgeBase | None:
        """The namespace the ring says owns ``entry_id`` (may be absent)."""
        shards = self._shards
        shard = self._ring.shard_for(namespaced_key(tenant, entry_id))
        tenant_kbs = shards.get(shard)
        return None if tenant_kbs is None else tenant_kbs.get(tenant)

    def _iter_tenant_kbs(self, tenant: str) -> Iterator[tuple[str, KnowledgeBase]]:
        for name, tenant_kbs in sorted(self._shards.items()):
            kb = tenant_kbs.get(tenant)
            if kb is not None:
                yield name, kb

    # -------------------------------------------------------------------- write
    def add(self, entry: KnowledgeEntry, *, tenant: str = DEFAULT_TENANT) -> None:
        with self._write_lock:
            shard = self._ring.shard_for(namespaced_key(tenant, entry.entry_id))
            self._kb_for_write(shard, tenant).add(entry)
        self._notify("add", entry.entry_id, tenant)

    def add_many(self, entries: list[KnowledgeEntry], *, tenant: str = DEFAULT_TENANT) -> None:
        with self._write_lock:
            for entry in entries:
                shard = self._ring.shard_for(namespaced_key(tenant, entry.entry_id))
                self._kb_for_write(shard, tenant).add(entry)
        for entry in entries:
            self._notify("add", entry.entry_id, tenant)

    def remove(self, entry_id: str, *, tenant: str = DEFAULT_TENANT) -> KnowledgeEntry:
        with self._write_lock:
            kb = self._kb_for_read(entry_id, tenant)
            if kb is None or entry_id not in kb:
                raise KeyError(f"unknown entry id {entry_id!r} for tenant {tenant!r}")
            removed = kb.remove(entry_id)
        self._notify("remove", entry_id, tenant)
        return removed

    def correct(
        self,
        entry_id: str,
        corrected_explanation: str,
        factors: tuple[str, ...] | None = None,
        *,
        tenant: str = DEFAULT_TENANT,
    ) -> None:
        with self._write_lock:
            kb = self._kb_for_read(entry_id, tenant)
            if kb is None or entry_id not in kb:
                raise KeyError(f"unknown entry id {entry_id!r} for tenant {tenant!r}")
            kb.correct(entry_id, corrected_explanation, factors)
        self._notify("correct", entry_id, tenant)

    # --------------------------------------------------------------------- read
    def get(self, entry_id: str, *, tenant: str = DEFAULT_TENANT) -> KnowledgeEntry:
        kb = self._kb_for_read(entry_id, tenant)
        if kb is not None and entry_id in kb:
            return kb.get(entry_id)
        # Mid-rebalance the ring may already point at a shard the entry has
        # not reached (or has just left); the fallback scan keeps lookups
        # correct during the move window.
        for _name, candidate in self._iter_tenant_kbs(tenant):
            if entry_id in candidate:
                return candidate.get(entry_id)
        raise KeyError(f"unknown entry id {entry_id!r} for tenant {tenant!r}")

    def __contains__(self, entry_id: str) -> bool:
        return self.contains(entry_id)

    def contains(self, entry_id: str, *, tenant: str = DEFAULT_TENANT) -> bool:
        kb = self._kb_for_read(entry_id, tenant)
        if kb is not None and entry_id in kb:
            return True
        return any(entry_id in candidate for _name, candidate in self._iter_tenant_kbs(tenant))

    def __len__(self) -> int:
        return sum(
            len(kb) for tenant_kbs in self._shards.values() for kb in tenant_kbs.values()
        )

    def count(self, *, tenant: str = DEFAULT_TENANT) -> int:
        return sum(len(kb) for _name, kb in self._iter_tenant_kbs(tenant))

    def entries(self, *, tenant: str | None = None) -> list[KnowledgeEntry]:
        collected: list[KnowledgeEntry] = []
        for name, tenant_kbs in sorted(self._shards.items()):
            for tenant_name, kb in sorted(tenant_kbs.items()):
                if tenant is None or tenant_name == tenant:
                    collected.extend(kb.entries())
        return collected

    # ----------------------------------------------------------------- retrieve
    def _fanout_executor(self) -> ThreadPoolExecutor:
        if self._fanout is None:
            with self._fanout_lock:
                if self._fanout is None:
                    workers = self._fanout_workers or min(8, max(2, len(self._shards)))
                    self._fanout = ThreadPoolExecutor(
                        max_workers=workers, thread_name_prefix="kb-shard"
                    )
        return self._fanout

    def retrieve(
        self, embedding: np.ndarray, k: int = 2, *, tenant: str = DEFAULT_TENANT
    ) -> RetrievalResult:
        """Scatter-gather top-K across every shard holding the tenant.

        The default namespace is the *shared corpus*: a non-default tenant
        searches its own namespaces **plus** the default ones, so tenants
        are grounded on the curated knowledge out of the box while their
        private entries stay invisible to everyone else.  A tenant entry
        shadows a shared entry with the same id.

        Each shard is searched for its own top-K under that shard's read
        lock (in parallel once more than one shard holds entries), the
        per-shard hits merge by distance, and duplicates — possible only
        transiently during a rebalance move — collapse to their best
        distance.  A write in progress on one shard therefore delays only
        that shard's branch of the gather.
        """
        query = np.asarray(embedding, dtype=np.float64)
        tracer = get_tracer()
        with tracer.span("kb.retrieve", k=k, tenant=tenant) as span:
            start = time.perf_counter()
            targets = [(name, kb, tenant) for name, kb in self._iter_tenant_kbs(tenant)]
            if tenant != DEFAULT_TENANT:
                targets.extend(
                    (name, kb, DEFAULT_TENANT)
                    for name, kb in self._iter_tenant_kbs(DEFAULT_TENANT)
                )
            if len(targets) > 1:
                parent = tracer.current_span()
                executor = self._fanout_executor()
                futures = [
                    executor.submit(self._search_shard, name, kb, query, k, namespace, parent)
                    for name, kb, namespace in targets
                ]
                shard_hits = [
                    (namespace, future.result())
                    for (_name, _kb, namespace), future in zip(targets, futures)
                ]
            else:
                shard_hits = [
                    (namespace, self._search_shard(name, kb, query, k, namespace, None))
                    for name, kb, namespace in targets
                ]
            # Merge priority: the tenant's own entry beats a shared entry
            # with the same id; within a namespace, best distance wins
            # (duplicates across shards happen only mid-rebalance).
            merged: dict[str, tuple[int, float, KnowledgeEntry]] = {}
            for namespace, pairs in shard_hits:
                priority = 0 if namespace == tenant else 1
                for entry, distance in pairs:
                    known = merged.get(entry.entry_id)
                    if (
                        known is None
                        or priority < known[0]
                        or (priority == known[0] and distance < known[1])
                    ):
                        merged[entry.entry_id] = (priority, distance, entry)
            ranked = sorted(
                ((distance, entry) for _priority, distance, entry in merged.values()),
                key=lambda item: (item[0], item[1].entry_id),
            )[:k]
            hits = [
                RetrievedKnowledge(entry=entry, distance=float(distance), rank=rank)
                for rank, (distance, entry) in enumerate(ranked, start=1)
            ]
            elapsed = time.perf_counter() - start
            span.set_attributes(shard_fanout=len(targets), hits=len(hits))
            return RetrievalResult(hits=hits, search_seconds=elapsed)

    def _search_shard(
        self,
        shard_name: str,
        kb: KnowledgeBase,
        query: np.ndarray,
        k: int,
        tenant: str,
        parent,
    ) -> list[tuple[KnowledgeEntry, float]]:
        tracer = get_tracer()
        # Fan-out workers run on pool threads where the submitting request's
        # ambient span is invisible; re-attach so kb.shard.search (and the
        # store's kb.search below it) parent correctly.
        if parent is not None:
            with tracer.attach(parent):
                return self._search_attached(shard_name, kb, query, k, tenant)
        return self._search_attached(shard_name, kb, query, k, tenant)

    def _search_attached(
        self, shard_name: str, kb: KnowledgeBase, query: np.ndarray, k: int, tenant: str
    ) -> list[tuple[KnowledgeEntry, float]]:
        with get_tracer().span("kb.shard.search", shard=shard_name, tenant=tenant) as span:
            pairs, search_seconds = kb.search_entries(query, k)
            span.set_attributes(hits=len(pairs), search_ms=round(search_seconds * 1000.0, 4))
            return pairs

    # ---------------------------------------------------------------- rebalance
    def add_shard(self, name: str | None = None) -> RebalanceReport:
        """Grow the ring by one shard, moving only the keys it now owns.

        Entries are added to the new shard before being removed from their
        old one, so concurrent retrieval never misses them (the gather
        deduplicates).  Returns how many entries moved — consistent
        hashing bounds this near ``K / (N + 1)``.
        """
        with self._write_lock:
            if name is None:
                name = self._next_name()
            elif name in self._shards:
                raise ValueError(f"shard {name!r} already exists")
            new_ring = self._ring.copy()
            new_ring.add_shard(name)
            fresh_shards = dict(self._shards)
            fresh_shards[name] = {}
            self._shards = fresh_shards
            moved, total = self._move_entries(new_ring)
            self._ring = new_ring
            self._rebalances += 1
            return RebalanceReport(shard=name, moved_entries=moved, total_entries=total)

    def remove_shard(self, name: str) -> RebalanceReport:
        """Shrink the ring by one shard, redistributing only its keys."""
        with self._write_lock:
            if name not in self._shards:
                raise KeyError(f"unknown shard {name!r}")
            if len(self._shards) == 1:
                raise ValueError("cannot remove the last shard")
            new_ring = self._ring.copy()
            new_ring.remove_shard(name)
            moved, total = self._move_entries(new_ring)
            self._ring = new_ring
            fresh_shards = dict(self._shards)
            del fresh_shards[name]
            self._shards = fresh_shards
            self._rebalances += 1
            return RebalanceReport(shard=name, moved_entries=moved, total_entries=total)

    def _move_entries(self, new_ring: ConsistentHashRing) -> tuple[int, int]:
        """Move every entry whose assignment changed under ``new_ring``.

        Caller holds ``_write_lock``.  Add-before-remove: retrieval sees
        the entry on at least one shard at every instant.
        """
        moves: list[tuple[str, KnowledgeBase, str, KnowledgeEntry]] = []
        total = 0
        for shard_name, tenant_kbs in list(self._shards.items()):
            for tenant, kb in list(tenant_kbs.items()):
                for entry in kb.entries():
                    total += 1
                    target = new_ring.shard_for(namespaced_key(tenant, entry.entry_id))
                    if target != shard_name:
                        moves.append((tenant, kb, target, entry))
        for tenant, source_kb, target, entry in moves:
            self._kb_for_write(target, tenant).add(entry)
            source_kb.remove(entry.entry_id)
        return len(moves), total

    # ---------------------------------------------------------------- lifecycle
    def close(self) -> None:
        """Shut down the fan-out pool (idempotent; searches fall back to
        sequential scatter if used afterwards)."""
        with self._fanout_lock:
            if self._fanout is not None:
                self._fanout.shutdown(wait=False)
                self._fanout = None

    def __enter__(self) -> "ShardedKnowledgeBase":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
