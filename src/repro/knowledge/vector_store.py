"""Vector stores for the knowledge base.

Two interchangeable implementations:

* :class:`FlatVectorStore` — exact brute-force search.  With the paper's 20
  entries this is already well under 0.1 ms per query, which is all the paper
  needs.
* :class:`HNSWVectorStore` — a from-scratch Hierarchical Navigable Small
  World graph (Malkov & Yashunin), the index the paper cites as the reason
  retrieval will not become a bottleneck as the knowledge base grows.  Used
  by the KB-scaling ablation benchmark.

Both support cosine and Euclidean distances and deletion by id (needed for
the stale-entry expiry policies).

Distance math runs through one shared matrix kernel,
:meth:`VectorStore.pairwise_distances`: cosine is a single matvec against
precomputed row norms, Euclidean uses the ``‖a‖² + ‖b‖² − 2a·b`` identity.
The flat store keeps its vectors in a contiguous cached matrix (rebuilt
lazily behind a dirty flag), and the HNSW store scores each candidate
frontier with one batched kernel call instead of per-neighbor python
distance calls — that is what makes its promised scaling hold in practice.
The original scalar path is retained behind ``use_batched_kernels=False``
so equivalence tests can diff both implementations on the same graph.
"""

from __future__ import annotations

import heapq
import math
import random
from dataclasses import dataclass
from typing import Iterable

import numpy as np

from repro.obs.tracing import get_tracer


@dataclass(frozen=True)
class SearchResult:
    """One nearest-neighbour hit."""

    key: str
    distance: float


def _as_matrix(vector: np.ndarray) -> np.ndarray:
    array = np.asarray(vector, dtype=np.float64)
    if array.ndim != 1:
        raise ValueError("vectors must be 1-D")
    return array


def cosine_distance(a: np.ndarray, b: np.ndarray) -> float:
    """1 - cosine similarity, with zero vectors treated as maximally distant."""
    norm_a = float(np.linalg.norm(a))
    norm_b = float(np.linalg.norm(b))
    if norm_a == 0.0 or norm_b == 0.0:
        return 1.0
    return 1.0 - float(np.dot(a, b) / (norm_a * norm_b))


def euclidean_distance(a: np.ndarray, b: np.ndarray) -> float:
    return float(np.linalg.norm(a - b))


_METRICS = {"cosine": cosine_distance, "euclidean": euclidean_distance}


class VectorStore:
    """Interface shared by the flat and HNSW stores."""

    def __init__(self, metric: str = "cosine"):
        if metric not in _METRICS:
            raise ValueError(f"unknown metric {metric!r}; choose from {sorted(_METRICS)}")
        self.metric = metric
        self._distance = _METRICS[metric]

    # -- implemented by subclasses ------------------------------------------
    def add(self, key: str, vector: np.ndarray) -> None:
        raise NotImplementedError

    def remove(self, key: str) -> None:
        raise NotImplementedError

    def search(self, vector: np.ndarray, k: int) -> list[SearchResult]:
        raise NotImplementedError

    def __len__(self) -> int:
        raise NotImplementedError

    # -- shared matrix distance kernel ----------------------------------------
    def pairwise_distances(
        self,
        query: np.ndarray,
        matrix: np.ndarray,
        *,
        row_norms: np.ndarray | None = None,
        row_sq_norms: np.ndarray | None = None,
    ) -> np.ndarray:
        """Distances from ``query`` to every row of ``matrix``, one kernel call.

        Cosine runs as one matvec over precomputed row norms (zero vectors
        stay maximally distant, matching :func:`cosine_distance`); Euclidean
        uses the ``‖a‖² + ‖b‖² − 2a·b`` identity so the only O(n·d) work is
        the same single matvec.  Pass ``row_norms`` / ``row_sq_norms`` when
        the caller caches them; otherwise they are derived on the fly.
        """
        products = matrix @ query
        if self.metric == "cosine":
            if row_norms is None:
                row_norms = np.linalg.norm(matrix, axis=1)
            denominator = row_norms * (float(np.linalg.norm(query)) or 1.0)
            # Zero-norm rows produce a 0/denominator similarity of 0, i.e.
            # a distance of 1.0 — but guard against 0 denominators anyway.
            safe = np.where(denominator == 0.0, 1.0, denominator)
            return 1.0 - products / safe
        if row_sq_norms is None:
            row_sq_norms = np.einsum("ij,ij->i", matrix, matrix)
        squared = row_sq_norms + float(query @ query) - 2.0 * products
        return np.sqrt(np.maximum(squared, 0.0))

    # -- shared helpers -------------------------------------------------------
    def add_many(self, items: Iterable[tuple[str, np.ndarray]]) -> None:
        for key, vector in items:
            self.add(key, vector)

    def __contains__(self, key: str) -> bool:
        # Subclasses override with an O(1) dict lookup; this fallback scans.
        return key in self.keys()

    def keys(self) -> list[str]:
        raise NotImplementedError


class FlatVectorStore(VectorStore):
    """Exact nearest-neighbour search by scanning all vectors.

    Vectors live in a contiguous cached matrix with precomputed norms, so
    each query is one kernel call; ``add`` / ``remove`` only mark the cache
    dirty and the matrix is rebuilt lazily on the next search.  ``remove``
    is O(1): the last vector swaps into the vacated slot, which is safe
    because result order comes from distances, not insertion positions.
    """

    def __init__(self, metric: str = "cosine"):
        super().__init__(metric)
        self._keys: list[str] = []
        self._vectors: list[np.ndarray] = []
        self._index_of: dict[str, int] = {}
        self._matrix: np.ndarray | None = None
        self._norms: np.ndarray | None = None
        self._sq_norms: np.ndarray | None = None
        self._dirty = True

    def add(self, key: str, vector: np.ndarray) -> None:
        if key in self._index_of:
            raise KeyError(f"duplicate key {key!r}")
        self._index_of[key] = len(self._keys)
        self._keys.append(key)
        self._vectors.append(_as_matrix(vector))
        self._dirty = True

    def remove(self, key: str) -> None:
        if key not in self._index_of:
            raise KeyError(f"unknown key {key!r}")
        index = self._index_of.pop(key)
        last = len(self._keys) - 1
        if index != last:
            # Swap-with-last: O(1) instead of shifting and re-numbering
            # every key after the removed position.
            self._keys[index] = self._keys[last]
            self._vectors[index] = self._vectors[last]
            self._index_of[self._keys[index]] = index
        self._keys.pop()
        self._vectors.pop()
        self._dirty = True

    def _ensure_matrix(self) -> None:
        if not self._dirty and self._matrix is not None:
            return
        self._matrix = np.vstack(self._vectors)
        self._norms = np.linalg.norm(self._matrix, axis=1)
        self._sq_norms = np.einsum("ij,ij->i", self._matrix, self._matrix)
        self._dirty = False

    def search(self, vector: np.ndarray, k: int) -> list[SearchResult]:
        if k <= 0 or not self._keys:
            return []
        with get_tracer().span(
            "kb.search", store="flat", candidates_scanned=len(self._keys)
        ) as span:
            query = _as_matrix(vector)
            self._ensure_matrix()
            distances = self.pairwise_distances(
                query, self._matrix, row_norms=self._norms, row_sq_norms=self._sq_norms
            )
            order = np.argsort(distances, kind="stable")[:k]
            results = [
                SearchResult(key=self._keys[int(i)], distance=float(distances[int(i)]))
                for i in order
            ]
            span.set_attributes(
                hits=len(results), kernel_batches=1, vectors_scored=len(self._keys)
            )
            return results

    def keys(self) -> list[str]:
        return list(self._keys)

    def __contains__(self, key: str) -> bool:
        return key in self._index_of

    def __len__(self) -> int:
        return len(self._keys)


class _HNSWNode:
    __slots__ = ("key", "vector", "neighbors", "deleted")

    def __init__(self, key: str, vector: np.ndarray, level: int):
        self.key = key
        self.vector = vector
        # neighbors[layer] -> list of node ids
        self.neighbors: list[list[int]] = [[] for _ in range(level + 1)]
        self.deleted = False

    @property
    def max_level(self) -> int:
        return len(self.neighbors) - 1


class _KernelCounters:
    """Per-search accounting surfaced as ``kb.search`` span attributes."""

    __slots__ = ("kernel_batches", "vectors_scored")

    def __init__(self) -> None:
        self.kernel_batches = 0
        self.vectors_scored = 0


class HNSWVectorStore(VectorStore):
    """Hierarchical Navigable Small World approximate nearest-neighbour index.

    Parameters follow the original paper's naming: ``M`` is the maximum
    number of neighbours per layer, ``ef_construction`` / ``ef_search``
    control the candidate-list sizes during insertion and querying.
    Deletions are handled by tombstoning (deleted nodes are skipped in
    results but still used for graph navigation), which is how most
    production HNSW implementations behave.

    With ``use_batched_kernels`` (the default) each candidate frontier —
    the unvisited neighbours of the node being expanded — is scored with a
    single :meth:`pairwise_distances` call against a contiguous vector
    matrix, instead of one python-level distance call per neighbour.
    Setting it to ``False`` restores the scalar reference path; both run
    on the same graph, so equivalence tests can compare them directly.
    """

    def __init__(
        self,
        metric: str = "cosine",
        *,
        M: int = 12,
        ef_construction: int = 64,
        ef_search: int = 32,
        seed: int = 42,
        use_batched_kernels: bool = True,
    ):
        super().__init__(metric)
        if M < 2:
            raise ValueError("M must be at least 2")
        self.M = M
        self.max_M0 = 2 * M
        self.ef_construction = max(ef_construction, M)
        self.ef_search = max(ef_search, 1)
        self.use_batched_kernels = use_batched_kernels
        self._level_multiplier = 1.0 / math.log(M)
        self._rng = random.Random(seed)
        self._nodes: list[_HNSWNode] = []
        self._id_of: dict[str, int] = {}
        self._entry_point: int | None = None
        self._live_count = 0
        # Contiguous copy of every node's vector (plus cached norms), grown
        # by doubling, so frontier scoring is a fancy-index + one matvec.
        self._matrix: np.ndarray | None = None
        self._norms: np.ndarray | None = None
        self._sq_norms: np.ndarray | None = None

    # ------------------------------------------------------------------ basic
    def keys(self) -> list[str]:
        return [node.key for node in self._nodes if not node.deleted]

    def __contains__(self, key: str) -> bool:
        node_id = self._id_of.get(key)
        return node_id is not None and not self._nodes[node_id].deleted

    def __len__(self) -> int:
        return self._live_count

    # ----------------------------------------------------------------- matrix
    def _append_vector(self, vector: np.ndarray) -> None:
        count = len(self._nodes)
        if self._matrix is None:
            capacity = 64
            self._matrix = np.zeros((capacity, vector.shape[0]), dtype=np.float64)
            self._norms = np.zeros(capacity, dtype=np.float64)
            self._sq_norms = np.zeros(capacity, dtype=np.float64)
        elif vector.shape[0] != self._matrix.shape[1]:
            raise ValueError(
                f"vector has {vector.shape[0]} dimensions; store holds "
                f"{self._matrix.shape[1]}-dimensional vectors"
            )
        if count >= self._matrix.shape[0]:
            capacity = self._matrix.shape[0] * 2
            self._matrix = np.resize(self._matrix, (capacity, self._matrix.shape[1]))
            self._norms = np.resize(self._norms, capacity)
            self._sq_norms = np.resize(self._sq_norms, capacity)
        self._matrix[count] = vector
        sq = float(vector @ vector)
        self._sq_norms[count] = sq
        self._norms[count] = math.sqrt(sq)

    def _frontier_distances(self, query: np.ndarray, ids: list[int], counters: _KernelCounters | None = None) -> np.ndarray:
        """Distances from ``query`` to the given node ids in one kernel call."""
        index = np.asarray(ids, dtype=np.int64)
        if counters is not None:
            counters.kernel_batches += 1
            counters.vectors_scored += len(ids)
        return self.pairwise_distances(
            query,
            self._matrix[index],
            row_norms=self._norms[index],
            row_sq_norms=self._sq_norms[index],
        )

    # -------------------------------------------------------------------- add
    def add(self, key: str, vector: np.ndarray) -> None:
        if key in self._id_of:
            raise KeyError(f"duplicate key {key!r}")
        vector = _as_matrix(vector)
        level = self._random_level()
        node = _HNSWNode(key, vector, level)
        node_id = len(self._nodes)
        self._append_vector(vector)
        self._nodes.append(node)
        self._id_of[key] = node_id
        self._live_count += 1

        if self._entry_point is None:
            self._entry_point = node_id
            return

        entry = self._entry_point
        entry_level = self._nodes[entry].max_level
        current = entry
        # Greedy descent through the upper layers.
        for layer in range(entry_level, level, -1):
            current = self._greedy_search(vector, current, layer)
        # Insert into each layer from min(level, entry_level) down to 0.
        for layer in range(min(level, entry_level), -1, -1):
            candidates, _scanned = self._search_layer(vector, [current], layer, self.ef_construction)
            neighbors = self._select_neighbors(vector, candidates, self._max_neighbors(layer))
            node.neighbors[layer] = [neighbor_id for _dist, neighbor_id in neighbors]
            for _dist, neighbor_id in neighbors:
                neighbor = self._nodes[neighbor_id]
                neighbor.neighbors[layer].append(node_id)
                limit = self._max_neighbors(layer)
                if len(neighbor.neighbors[layer]) > limit:
                    neighbor.neighbors[layer] = self._shrink_neighbors(neighbor, layer, limit)
            if candidates:
                current = min(candidates)[1]
        if level > entry_level:
            self._entry_point = node_id

    def _random_level(self) -> int:
        return int(-math.log(max(1e-12, self._rng.random())) * self._level_multiplier)

    def _max_neighbors(self, layer: int) -> int:
        return self.max_M0 if layer == 0 else self.M

    def _select_neighbors(
        self, vector: np.ndarray, candidates: list[tuple[float, int]], limit: int
    ) -> list[tuple[float, int]]:
        """Pick the ``limit`` closest candidates (simple distance heuristic)."""
        unique: dict[int, float] = {}
        for distance, node_id in candidates:
            if node_id not in unique or distance < unique[node_id]:
                unique[node_id] = distance
        ranked = sorted((distance, node_id) for node_id, distance in unique.items())
        return ranked[:limit]

    def _shrink_neighbors(self, node: _HNSWNode, layer: int, limit: int) -> list[int]:
        neighbor_ids = node.neighbors[layer]
        if self.use_batched_kernels:
            distances = self._frontier_distances(node.vector, neighbor_ids)
            scored = list(zip(distances.tolist(), neighbor_ids))
        else:
            scored = [
                (self._distance(node.vector, self._nodes[other].vector), other)
                for other in neighbor_ids
            ]
        scored.sort()
        return [other for _dist, other in scored[:limit]]

    # ----------------------------------------------------------------- search
    def search(self, vector: np.ndarray, k: int) -> list[SearchResult]:
        if k <= 0 or self._entry_point is None or self._live_count == 0:
            return []
        with get_tracer().span("kb.search", store="hnsw") as span:
            query = _as_matrix(vector)
            counters = _KernelCounters()
            # Tombstoned nodes still occupy slots in the ef candidate list, so a
            # store with D deletions would otherwise return fewer than k live
            # hits.  Inflate ef by the tombstone count, and fall back to an
            # exhaustive ef if the inflated pass still comes up short.
            tombstones = len(self._nodes) - self._live_count
            ef = max(self.ef_search, k) + tombstones
            results, scanned = self._search_with_ef(query, k, ef, counters)
            if len(results) < min(k, self._live_count) and ef < len(self._nodes):
                results, fallback_scanned = self._search_with_ef(
                    query, k, len(self._nodes), counters
                )
                scanned += fallback_scanned
            span.set_attributes(
                ef=ef,
                tombstones=tombstones,
                candidates_scanned=scanned,
                hits=len(results),
                kernel_batches=counters.kernel_batches,
                vectors_scored=counters.vectors_scored,
            )
            return results

    def _search_with_ef(
        self,
        query: np.ndarray,
        k: int,
        ef: int,
        counters: _KernelCounters | None = None,
    ) -> tuple[list[SearchResult], int]:
        """One full descent + layer-0 expansion; returns (hits, nodes visited)."""
        current = self._entry_point
        for layer in range(self._nodes[current].max_level, 0, -1):
            current = self._greedy_search(query, current, layer, counters)
        candidates, scanned = self._search_layer(query, [current], 0, ef, counters)
        candidates.sort()
        results: list[SearchResult] = []
        for distance, node_id in candidates:
            node = self._nodes[node_id]
            if node.deleted:
                continue
            results.append(SearchResult(key=node.key, distance=float(distance)))
            if len(results) == k:
                break
        return results, scanned

    def _greedy_search(
        self,
        query: np.ndarray,
        start: int,
        layer: int,
        counters: _KernelCounters | None = None,
    ) -> int:
        current = start
        current_distance = self._node_distance(query, current)
        improved = True
        while improved:
            improved = False
            neighbor_ids = self._nodes[current].neighbors[layer]
            if not neighbor_ids:
                break
            if self.use_batched_kernels:
                distances = self._frontier_distances(query, neighbor_ids, counters)
                best = int(np.argmin(distances))
                if distances[best] < current_distance:
                    current = neighbor_ids[best]
                    current_distance = float(distances[best])
                    improved = True
            else:
                for neighbor_id in neighbor_ids:
                    distance = self._distance(query, self._nodes[neighbor_id].vector)
                    if distance < current_distance:
                        current, current_distance = neighbor_id, distance
                        improved = True
        return current

    def _node_distance(self, query: np.ndarray, node_id: int) -> float:
        if self.use_batched_kernels:
            return float(self._frontier_distances(query, [node_id])[0])
        return self._distance(query, self._nodes[node_id].vector)

    def _search_layer(
        self,
        query: np.ndarray,
        entry_points: list[int],
        layer: int,
        ef: int,
        counters: _KernelCounters | None = None,
    ) -> tuple[list[tuple[float, int]], int]:
        """Beam search on one layer; returns (candidates, distinct nodes visited).

        Each frontier expansion — the unvisited neighbours of the popped
        candidate — is scored in one batched kernel call when
        ``use_batched_kernels`` is set.
        """
        visited = set(entry_points)
        candidates: list[tuple[float, int]] = []
        best: list[tuple[float, int]] = []  # max-heap via negated distance
        batched = self.use_batched_kernels
        if batched:
            entry_distances = self._frontier_distances(query, entry_points, counters)
        for position, point in enumerate(entry_points):
            distance = (
                float(entry_distances[position])
                if batched
                else self._distance(query, self._nodes[point].vector)
            )
            heapq.heappush(candidates, (distance, point))
            heapq.heappush(best, (-distance, point))
        while candidates:
            distance, point = heapq.heappop(candidates)
            if best and distance > -best[0][0]:
                break
            frontier = [
                neighbor_id
                for neighbor_id in self._nodes[point].neighbors[layer]
                if neighbor_id not in visited
            ]
            if not frontier:
                continue
            visited.update(frontier)
            if batched:
                frontier_distances = self._frontier_distances(query, frontier, counters)
            for position, neighbor_id in enumerate(frontier):
                neighbor_distance = (
                    float(frontier_distances[position])
                    if batched
                    else self._distance(query, self._nodes[neighbor_id].vector)
                )
                if len(best) < ef or neighbor_distance < -best[0][0]:
                    heapq.heappush(candidates, (neighbor_distance, neighbor_id))
                    heapq.heappush(best, (-neighbor_distance, neighbor_id))
                    if len(best) > ef:
                        heapq.heappop(best)
        return [(-negated, node_id) for negated, node_id in best], len(visited)

    # ----------------------------------------------------------------- remove
    def remove(self, key: str) -> None:
        if key not in self._id_of:
            raise KeyError(f"unknown key {key!r}")
        node = self._nodes[self._id_of[key]]
        if node.deleted:
            raise KeyError(f"key {key!r} already removed")
        node.deleted = True
        self._live_count -= 1
