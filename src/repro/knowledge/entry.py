"""Knowledge-base entries.

The paper stores, for each historical query:
``<plan pair encoding, plan details, execution result, expert explanation>``.
:class:`KnowledgeEntry` is exactly that record, with a little metadata used
by the curation policies (insert time, correction history, ground-truth
factors for evaluation).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.htap.engines.base import EngineKind


@dataclass
class KnowledgeEntry:
    """One historical query stored in the knowledge base."""

    entry_id: str
    #: The plan-pair encoding produced by the smart router (the retrieval key).
    embedding: np.ndarray
    #: Original SQL of the historical query.
    sql: str
    #: Plan details for both engines in EXPLAIN-dict form ({"TP": ..., "AP": ...}).
    plan_details: dict[str, Any]
    #: Which engine executed the query faster.
    faster_engine: EngineKind
    #: Measured latencies in seconds.
    tp_latency_seconds: float
    ap_latency_seconds: float
    #: Expert-curated explanation of the performance difference.
    expert_explanation: str
    #: Ground-truth causal factors (factor enum values) behind the difference.
    factors: tuple[str, ...] = ()
    #: Logical insert time (a counter, not a wall clock) used by expiry policies.
    inserted_at: int = 0
    #: Number of expert corrections applied to this entry.
    correction_count: int = 0
    #: Free-form metadata (pattern name, generator parameters, ...).
    metadata: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.embedding = np.asarray(self.embedding, dtype=np.float64)
        if self.embedding.ndim != 1:
            raise ValueError("embedding must be a 1-D vector")

    @property
    def execution_result_text(self) -> str:
        """The "execution result" field as prose, used inside prompts."""
        return (
            f"{self.faster_engine.value} was faster "
            f"(TP {self.tp_latency_seconds:.3f}s vs AP {self.ap_latency_seconds:.3f}s)"
        )

    @property
    def speedup(self) -> float:
        slow = max(self.tp_latency_seconds, self.ap_latency_seconds)
        fast = min(self.tp_latency_seconds, self.ap_latency_seconds)
        if fast <= 0:
            return float("inf")
        return slow / fast

    def apply_correction(self, corrected_explanation: str, factors: tuple[str, ...] | None = None) -> None:
        """Replace the explanation with an expert correction."""
        self.expert_explanation = corrected_explanation
        if factors is not None:
            self.factors = factors
        self.correction_count += 1
