"""RAG knowledge base: entries, vector stores, and curation policies."""

from repro.knowledge.entry import KnowledgeEntry
from repro.knowledge.vector_store import FlatVectorStore, HNSWVectorStore, SearchResult, VectorStore
from repro.knowledge.knowledge_base import KnowledgeBase, RetrievedKnowledge
from repro.knowledge.sharding import (
    DEFAULT_TENANT,
    ConsistentHashRing,
    RebalanceReport,
    ShardedKnowledgeBase,
)
from repro.knowledge.curation import (
    expire_stale_entries,
    select_representative_queries,
)

__all__ = [
    "KnowledgeEntry",
    "VectorStore",
    "FlatVectorStore",
    "HNSWVectorStore",
    "SearchResult",
    "KnowledgeBase",
    "RetrievedKnowledge",
    "DEFAULT_TENANT",
    "ConsistentHashRing",
    "RebalanceReport",
    "ShardedKnowledgeBase",
    "select_representative_queries",
    "expire_stale_entries",
]
