"""The RAG knowledge base (paper Section IV).

A key-value store whose keys are plan-pair embeddings (from the smart
router) and whose values are the full knowledge entries (plan details,
execution result, expert explanation).  The retriever searches it for the
top-K most similar plan pairs; experts can add new entries and correct
existing ones at any time (the paper's feedback loop).

The backing vector index is pluggable (flat or HNSW) so the KB-scaling
ablation can compare both.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.knowledge.entry import KnowledgeEntry
from repro.knowledge.vector_store import FlatVectorStore, SearchResult, VectorStore


@dataclass
class RetrievedKnowledge:
    """One retrieval hit: the entry plus its distance and rank."""

    entry: KnowledgeEntry
    distance: float
    rank: int

    @property
    def similarity(self) -> float:
        """Convenience: cosine similarity when the store uses cosine distance."""
        return 1.0 - self.distance


@dataclass
class RetrievalResult:
    """Top-K retrieval outcome with the time it took."""

    hits: list[RetrievedKnowledge]
    search_seconds: float

    @property
    def search_ms(self) -> float:
        return self.search_seconds * 1000.0

    def entries(self) -> list[KnowledgeEntry]:
        return [hit.entry for hit in self.hits]


class KnowledgeBase:
    """Embedding-keyed store of historical queries and expert explanations."""

    def __init__(self, vector_store: VectorStore | None = None):
        self.vector_store = vector_store if vector_store is not None else FlatVectorStore()
        self._entries: dict[str, KnowledgeEntry] = {}
        self._insert_counter = 0

    # ------------------------------------------------------------------ write
    def add(self, entry: KnowledgeEntry) -> None:
        """Insert a new entry (raises on duplicate ids)."""
        if entry.entry_id in self._entries:
            raise KeyError(f"duplicate entry id {entry.entry_id!r}")
        self._insert_counter += 1
        entry.inserted_at = self._insert_counter
        self._entries[entry.entry_id] = entry
        self.vector_store.add(entry.entry_id, entry.embedding)

    def add_many(self, entries: list[KnowledgeEntry]) -> None:
        for entry in entries:
            self.add(entry)

    def remove(self, entry_id: str) -> KnowledgeEntry:
        """Remove an entry (used by the stale-expiry curation policy)."""
        if entry_id not in self._entries:
            raise KeyError(f"unknown entry id {entry_id!r}")
        self.vector_store.remove(entry_id)
        return self._entries.pop(entry_id)

    def correct(self, entry_id: str, corrected_explanation: str, factors: tuple[str, ...] | None = None) -> None:
        """Apply an expert correction to an existing entry (paper's feedback loop)."""
        self.get(entry_id).apply_correction(corrected_explanation, factors)

    # ------------------------------------------------------------------- read
    def get(self, entry_id: str) -> KnowledgeEntry:
        try:
            return self._entries[entry_id]
        except KeyError:
            raise KeyError(f"unknown entry id {entry_id!r}") from None

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, entry_id: str) -> bool:
        return entry_id in self._entries

    def entries(self) -> list[KnowledgeEntry]:
        return list(self._entries.values())

    # ---------------------------------------------------------------- retrieve
    def retrieve(self, embedding: np.ndarray, k: int = 2) -> RetrievalResult:
        """Top-K most similar historical plan pairs for ``embedding``.

        ``k=2`` is the paper's default retrieval depth.
        """
        start = time.perf_counter()
        raw: list[SearchResult] = self.vector_store.search(np.asarray(embedding, dtype=np.float64), k)
        elapsed = time.perf_counter() - start
        hits = [
            RetrievedKnowledge(entry=self._entries[result.key], distance=result.distance, rank=rank)
            for rank, result in enumerate(raw, start=1)
            if result.key in self._entries
        ]
        return RetrievalResult(hits=hits, search_seconds=elapsed)
