"""The RAG knowledge base (paper Section IV).

A key-value store whose keys are plan-pair embeddings (from the smart
router) and whose values are the full knowledge entries (plan details,
execution result, expert explanation).  The retriever searches it for the
top-K most similar plan pairs; experts can add new entries and correct
existing ones at any time (the paper's feedback loop).

The backing vector index is pluggable (flat or HNSW) so the KB-scaling
ablation can compare both.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.knowledge.entry import KnowledgeEntry
from repro.knowledge.locking import ReadWriteLock
from repro.knowledge.vector_store import FlatVectorStore, SearchResult, VectorStore
from repro.obs.tracing import get_tracer

#: Signature of a knowledge-base write listener: ``(event, entry_id)`` where
#: ``event`` is one of ``"add"``, ``"remove"``, ``"correct"``.
WriteListener = Callable[[str, str], None]


@dataclass
class RetrievedKnowledge:
    """One retrieval hit: the entry plus its distance and rank."""

    entry: KnowledgeEntry
    distance: float
    rank: int

    @property
    def similarity(self) -> float:
        """Convenience: cosine similarity when the store uses cosine distance."""
        return 1.0 - self.distance


@dataclass
class RetrievalResult:
    """Top-K retrieval outcome with the time it took."""

    hits: list[RetrievedKnowledge]
    search_seconds: float

    @property
    def search_ms(self) -> float:
        return self.search_seconds * 1000.0

    def entries(self) -> list[KnowledgeEntry]:
        return [hit.entry for hit in self.hits]


class KnowledgeBase:
    """Embedding-keyed store of historical queries and expert explanations.

    Thread safety: all operations take a :class:`ReadWriteLock`, so any
    number of concurrent retrievals proceed in parallel while expert writes
    (add / remove / correct) get exclusive access.  Write listeners — used by
    the serving layer to invalidate its explanation cache — fire *after* the
    write lock is released, so a listener may safely read the knowledge base.
    """

    def __init__(self, vector_store: VectorStore | None = None):
        self.vector_store = vector_store if vector_store is not None else FlatVectorStore()
        self._entries: dict[str, KnowledgeEntry] = {}
        self._insert_counter = 0
        self._lock = ReadWriteLock()
        self._write_listeners: list[WriteListener] = []

    # -------------------------------------------------------------- listeners
    def add_write_listener(self, listener: WriteListener) -> None:
        """Register a callback fired after every successful write."""
        self._write_listeners.append(listener)

    def remove_write_listener(self, listener: WriteListener) -> None:
        self._write_listeners.remove(listener)

    def _notify(self, event: str, entry_id: str) -> None:
        for listener in list(self._write_listeners):
            listener(event, entry_id)

    # ------------------------------------------------------------------ write
    def _add_unlocked(self, entry: KnowledgeEntry) -> None:
        if entry.entry_id in self._entries:
            raise KeyError(f"duplicate entry id {entry.entry_id!r}")
        self._insert_counter += 1
        entry.inserted_at = self._insert_counter
        self._entries[entry.entry_id] = entry
        self.vector_store.add(entry.entry_id, entry.embedding)

    def add(self, entry: KnowledgeEntry) -> None:
        """Insert a new entry (raises on duplicate ids)."""
        with self._lock.write_locked():
            self._add_unlocked(entry)
        self._notify("add", entry.entry_id)

    def add_many(self, entries: list[KnowledgeEntry]) -> None:
        with self._lock.write_locked():
            for entry in entries:
                self._add_unlocked(entry)
        for entry in entries:
            self._notify("add", entry.entry_id)

    def remove(self, entry_id: str) -> KnowledgeEntry:
        """Remove an entry (used by the stale-expiry curation policy)."""
        with self._lock.write_locked():
            if entry_id not in self._entries:
                raise KeyError(f"unknown entry id {entry_id!r}")
            self.vector_store.remove(entry_id)
            removed = self._entries.pop(entry_id)
        self._notify("remove", entry_id)
        return removed

    def correct(self, entry_id: str, corrected_explanation: str, factors: tuple[str, ...] | None = None) -> None:
        """Apply an expert correction to an existing entry (paper's feedback loop)."""
        with self._lock.write_locked():
            try:
                entry = self._entries[entry_id]
            except KeyError:
                raise KeyError(f"unknown entry id {entry_id!r}") from None
            entry.apply_correction(corrected_explanation, factors)
        self._notify("correct", entry_id)

    # ------------------------------------------------------------------- read
    def get(self, entry_id: str) -> KnowledgeEntry:
        with self._lock.read_locked():
            try:
                return self._entries[entry_id]
            except KeyError:
                raise KeyError(f"unknown entry id {entry_id!r}") from None

    def __len__(self) -> int:
        with self._lock.read_locked():
            return len(self._entries)

    def __contains__(self, entry_id: str) -> bool:
        with self._lock.read_locked():
            return entry_id in self._entries

    def entries(self) -> list[KnowledgeEntry]:
        with self._lock.read_locked():
            return list(self._entries.values())

    # ---------------------------------------------------------------- retrieve
    def search_entries(
        self, embedding: np.ndarray, k: int
    ) -> tuple[list[tuple[KnowledgeEntry, float]], float]:
        """Raw top-K ``(entry, distance)`` pairs plus the in-lock search time.

        The locked building block under :meth:`retrieve` — also what a
        sharded wrapper calls per shard, so each shard search holds only
        that shard's read lock.
        """
        with self._lock.read_locked():
            start = time.perf_counter()
            raw: list[SearchResult] = self.vector_store.search(
                np.asarray(embedding, dtype=np.float64), k
            )
            elapsed = time.perf_counter() - start
            pairs = [
                (self._entries[result.key], result.distance)
                for result in raw
                if result.key in self._entries
            ]
        return pairs, elapsed

    def retrieve(self, embedding: np.ndarray, k: int = 2) -> RetrievalResult:
        """Top-K most similar historical plan pairs for ``embedding``.

        ``k=2`` is the paper's default retrieval depth.
        """
        with get_tracer().span("kb.retrieve", k=k) as span:
            pairs, elapsed = self.search_entries(embedding, k)
            hits = [
                RetrievedKnowledge(entry=entry, distance=distance, rank=rank)
                for rank, (entry, distance) in enumerate(pairs, start=1)
            ]
            span.set_attribute("hits", len(hits))
            return RetrievalResult(hits=hits, search_seconds=elapsed)
