"""A writer-preferring read–write lock for the knowledge base.

The serving layer reads the knowledge base from many worker threads while
experts occasionally write (new entries, corrections, expiries).  A plain
mutex would serialize retrieval; this lock lets any number of readers
proceed concurrently and blocks them only while a write is pending or in
progress.  Writer preference keeps a steady stream of retrievals from
starving feedback-loop writes.

The lock is intentionally *not* reentrant — holders must not re-acquire it.
Internal knowledge-base helpers therefore operate on already-locked state
(`_get_unlocked` and friends) instead of calling back into public methods.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Iterator


class ReadWriteLock:
    """Many concurrent readers, one exclusive writer, writer preference."""

    def __init__(self) -> None:
        self._condition = threading.Condition()
        self._readers = 0
        self._writer_active = False
        self._writers_waiting = 0

    # ------------------------------------------------------------------ read
    def acquire_read(self) -> None:
        with self._condition:
            while self._writer_active or self._writers_waiting:
                self._condition.wait()
            self._readers += 1

    def release_read(self) -> None:
        with self._condition:
            self._readers -= 1
            if self._readers == 0:
                self._condition.notify_all()

    # ----------------------------------------------------------------- write
    def acquire_write(self) -> None:
        with self._condition:
            self._writers_waiting += 1
            try:
                while self._writer_active or self._readers:
                    self._condition.wait()
            finally:
                self._writers_waiting -= 1
            self._writer_active = True

    def release_write(self) -> None:
        with self._condition:
            self._writer_active = False
            self._condition.notify_all()

    # ------------------------------------------------------------- contexts
    @contextmanager
    def read_locked(self) -> Iterator[None]:
        self.acquire_read()
        try:
            yield
        finally:
            self.release_read()

    @contextmanager
    def write_locked(self) -> Iterator[None]:
        self.acquire_write()
        try:
            yield
        finally:
            self.release_write()
