"""Knowledge-base curation policies.

The paper leaves knowledge-base maintenance as future work but names the two
policies it has in mind: *automatically selecting representative queries* and
*expiring stale queries*.  Both are implemented here so the curation ablation
(benchmark E12 in DESIGN.md) can quantify them.

* :func:`select_representative_queries` — a k-center (farthest-point) sweep
  over plan-pair embeddings; it picks a small set of entries that covers the
  embedding space, which is the property the paper relies on when arguing
  that 20 entries are enough.
* :func:`expire_stale_entries` — age- and redundancy-based expiry: the oldest
  entries whose embedding is nearly identical to a newer entry are dropped
  first, then plain oldest-first until the budget is met.
"""

from __future__ import annotations

import numpy as np

from repro.knowledge.entry import KnowledgeEntry
from repro.knowledge.knowledge_base import KnowledgeBase
from repro.knowledge.vector_store import cosine_distance


def select_representative_queries(
    entries: list[KnowledgeEntry],
    budget: int,
    *,
    seed: int = 0,
) -> list[KnowledgeEntry]:
    """Pick ``budget`` entries that cover the embedding space (k-center greedy).

    The first pick is the entry closest to the centroid (a stable, seedable
    tie-break keeps the selection deterministic); each subsequent pick is the
    entry farthest from everything already selected.
    """
    if budget <= 0:
        return []
    if budget >= len(entries):
        return list(entries)
    vectors = np.vstack([entry.embedding for entry in entries])
    centroid = vectors.mean(axis=0)
    start = int(np.argmin([cosine_distance(vector, centroid) for vector in vectors]))
    selected = [start]
    min_distance = np.array([cosine_distance(vectors[i], vectors[start]) for i in range(len(entries))])
    rng = np.random.default_rng(seed)
    while len(selected) < budget:
        # Farthest-first; random jitter breaks exact ties deterministically.
        jitter = rng.uniform(0.0, 1e-9, size=len(entries))
        candidate = int(np.argmax(min_distance + jitter))
        selected.append(candidate)
        for index in range(len(entries)):
            distance = cosine_distance(vectors[index], vectors[candidate])
            if distance < min_distance[index]:
                min_distance[index] = distance
    return [entries[index] for index in selected]


def expire_stale_entries(
    knowledge_base: KnowledgeBase,
    max_entries: int,
    *,
    redundancy_threshold: float = 0.02,
) -> list[KnowledgeEntry]:
    """Shrink ``knowledge_base`` to at most ``max_entries`` entries.

    Entries are removed in two passes:

    1. *Redundant* entries: an older entry whose embedding is within
       ``redundancy_threshold`` cosine distance of a newer entry is removed
       first (the newer entry presumably reflects fresher statistics).
    2. If still above budget, plain oldest-first expiry.

    Returns the removed entries (so callers can archive them).
    """
    removed: list[KnowledgeEntry] = []
    if len(knowledge_base) <= max_entries:
        return removed

    entries = sorted(knowledge_base.entries(), key=lambda entry: entry.inserted_at)
    # Pass 1: redundancy.
    for index, older in enumerate(entries):
        if len(knowledge_base) <= max_entries:
            return removed
        if older.entry_id not in knowledge_base:
            continue
        for newer in entries[index + 1 :]:
            if newer.entry_id not in knowledge_base:
                continue
            if cosine_distance(older.embedding, newer.embedding) <= redundancy_threshold:
                removed.append(knowledge_base.remove(older.entry_id))
                break
    # Pass 2: oldest first.
    for entry in entries:
        if len(knowledge_base) <= max_entries:
            break
        if entry.entry_id in knowledge_base:
            removed.append(knowledge_base.remove(entry.entry_id))
    return removed
