"""Simulated participant study (paper Section VI-C)."""

from repro.study.participants import Participant, ParticipantPool
from repro.study.protocol import GroupReport, ParticipantStudy, StudyMaterials, StudyReport

__all__ = [
    "Participant",
    "ParticipantPool",
    "ParticipantStudy",
    "StudyMaterials",
    "GroupReport",
    "StudyReport",
]
