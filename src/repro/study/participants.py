"""Simulated study participants.

The paper measures how long real users take to understand a TP/AP
performance difference from (a) raw EXPLAIN plan details versus (b) the
LLM-generated explanation, how often they identify the correct reason, and
how difficult they rate each artefact.  We cannot run human subjects, so the
participants here follow a simple cognitive-cost model:

* reading/interpreting time is proportional to the artefact size, with
  structured plan JSON interpreted far more slowly (tokens of nested JSON
  with operator names and cost figures) than natural-language prose;
* the probability of identifying the correct reason from plans alone depends
  on the participant's database expertise; with the LLM explanation in hand
  it is nearly certain;
* perceived difficulty (0 = easiest, 10 = hardest) decreases with expertise
  and is much lower for prose than for plan JSON.

Parameters are calibrated so a mixed pool reproduces the magnitudes the
paper reports (≈8.2 min and 60 % correct from plans alone; ≈3.5 min and
100 % correct with the explanation; difficulty ≈8.5 vs ≈3).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

#: Interpretation speed over structured plan JSON, in characters per minute,
#: for a participant of average expertise.
PLAN_CHARS_PER_MINUTE = 620.0
#: Reading speed over natural-language prose, in words per minute.
PROSE_WORDS_PER_MINUTE = 190.0
#: Extra minutes spent cross-comparing the two plans once both are read.
PLAN_CROSS_COMPARISON_MINUTES = 1.6
#: Minutes spent skimming the plans when an explanation is also provided.
PLAN_SKIM_MINUTES = 2.2


@dataclass
class Participant:
    """One simulated participant.

    ``expertise`` is in ``[0, 1]``: 0 is a novice application developer, 1 is
    close to a database expert.  The paper's participants are database users,
    not engine developers, so pools are skewed toward the low-middle range.
    """

    participant_id: str
    expertise: float
    reading_speed_factor: float

    # ------------------------------------------------------------------ times
    def plan_reading_minutes(self, plan_chars: int) -> float:
        """Minutes to read and interpret ``plan_chars`` characters of plan JSON."""
        speed = PLAN_CHARS_PER_MINUTE * self.reading_speed_factor * (0.7 + 0.6 * self.expertise)
        return plan_chars / speed + PLAN_CROSS_COMPARISON_MINUTES * (1.2 - 0.5 * self.expertise)

    def explanation_reading_minutes(self, explanation_words: int) -> float:
        """Minutes to read the natural-language explanation."""
        speed = PROSE_WORDS_PER_MINUTE * self.reading_speed_factor
        return explanation_words / speed

    def assisted_total_minutes(self, plan_chars: int, explanation_words: int) -> float:
        """Total understanding time when the explanation is provided up front."""
        skim = PLAN_SKIM_MINUTES * (1.1 - 0.4 * self.expertise) * (plan_chars / 2_500.0) ** 0.5
        return skim + self.explanation_reading_minutes(explanation_words)

    # ----------------------------------------------------------- comprehension
    def understands_from_plans(self, rng: random.Random) -> bool:
        """Whether the participant identifies the correct reason from plans alone."""
        probability = 0.25 + 0.5 * self.expertise
        return rng.random() < probability

    def understands_with_explanation(self, rng: random.Random) -> bool:
        """Whether the participant identifies the correct reason given the explanation."""
        probability = 0.99 + 0.01 * self.expertise
        return rng.random() < probability

    # -------------------------------------------------------------- difficulty
    def plan_difficulty_rating(self, rng: random.Random) -> float:
        """0–10 difficulty rating of the raw plan details."""
        rating = 9.6 - 2.4 * self.expertise + rng.uniform(-0.4, 0.4)
        return float(min(10.0, max(0.0, rating)))

    def explanation_difficulty_rating(self, rng: random.Random) -> float:
        """0–10 difficulty rating of the LLM explanation."""
        rating = 3.7 - 1.5 * self.expertise + rng.uniform(-0.4, 0.4)
        return float(min(10.0, max(0.0, rating)))


class ParticipantPool:
    """Generates a reproducible pool of participants."""

    def __init__(self, size: int = 24, seed: int = 2025):
        if size < 2:
            raise ValueError("need at least two participants to form two groups")
        self.size = size
        self.seed = seed

    def participants(self) -> list[Participant]:
        rng = random.Random(self.seed)
        pool: list[Participant] = []
        for index in range(self.size):
            # Expertise skewed toward ordinary database users (beta-like draw).
            expertise = min(1.0, max(0.0, rng.betavariate(2.2, 3.2)))
            speed = rng.uniform(0.85, 1.15)
            pool.append(
                Participant(
                    participant_id=f"p{index + 1:02d}",
                    expertise=expertise,
                    reading_speed_factor=speed,
                )
            )
        return pool

    def split_groups(self) -> tuple[list[Participant], list[Participant]]:
        """Divide the pool into two equal groups (alternating assignment)."""
        participants = self.participants()
        group_with = participants[0::2]
        group_without = participants[1::2]
        return group_with, group_without
