"""The two-group study protocol (paper Section VI-C).

* **Group "with LLM"** receives the plan details (JSON) *and* the
  LLM-generated explanation from the start; we record the time until they
  report full understanding and whether their interpretation is correct.
* **Group "without LLM"** first receives only the plan details; we record
  their time, correctness and difficulty rating, then show them the LLM
  explanation and record whether they revise an incorrect interpretation.

Both groups rate the difficulty of the plan details and of the LLM
explanation on a 0–10 scale.  The report aggregates the same quantities the
paper reports in prose.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass, field

from repro.study.participants import Participant, ParticipantPool


@dataclass
class StudyMaterials:
    """The artefacts shown to participants for one query."""

    sql: str
    tp_plan_json: str
    ap_plan_json: str
    explanation_text: str

    @property
    def plan_chars(self) -> int:
        return len(self.tp_plan_json) + len(self.ap_plan_json)

    @property
    def explanation_words(self) -> int:
        return len(self.explanation_text.split())

    @classmethod
    def from_dicts(cls, sql: str, tp_plan: dict, ap_plan: dict, explanation_text: str) -> "StudyMaterials":
        return cls(
            sql=sql,
            tp_plan_json=json.dumps(tp_plan, indent=1),
            ap_plan_json=json.dumps(ap_plan, indent=1),
            explanation_text=explanation_text,
        )


@dataclass
class ParticipantOutcome:
    """What one participant did in the study."""

    participant_id: str
    group: str
    minutes_to_understand: float
    correct_initially: bool
    corrected_after_explanation: bool
    plan_difficulty: float
    explanation_difficulty: float


@dataclass
class GroupReport:
    """Aggregates for one study group."""

    group: str
    outcomes: list[ParticipantOutcome] = field(default_factory=list)

    @property
    def size(self) -> int:
        return len(self.outcomes)

    @property
    def average_minutes(self) -> float:
        if not self.outcomes:
            return 0.0
        return sum(outcome.minutes_to_understand for outcome in self.outcomes) / self.size

    @property
    def correct_fraction(self) -> float:
        if not self.outcomes:
            return 0.0
        return sum(1 for outcome in self.outcomes if outcome.correct_initially) / self.size

    @property
    def corrected_fraction(self) -> float:
        """Among initially-incorrect participants, how many corrected themselves."""
        incorrect = [outcome for outcome in self.outcomes if not outcome.correct_initially]
        if not incorrect:
            return 1.0
        return sum(1 for outcome in incorrect if outcome.corrected_after_explanation) / len(incorrect)

    @property
    def average_plan_difficulty(self) -> float:
        if not self.outcomes:
            return 0.0
        return sum(outcome.plan_difficulty for outcome in self.outcomes) / self.size

    @property
    def average_explanation_difficulty(self) -> float:
        if not self.outcomes:
            return 0.0
        return sum(outcome.explanation_difficulty for outcome in self.outcomes) / self.size


@dataclass
class StudyReport:
    """Full study outcome: one report per group."""

    with_llm: GroupReport
    without_llm: GroupReport

    def as_rows(self) -> list[dict[str, float | str]]:
        """Rows for the benchmark table (one per group)."""
        rows = []
        for report in (self.without_llm, self.with_llm):
            rows.append(
                {
                    "group": report.group,
                    "participants": report.size,
                    "avg_minutes": round(report.average_minutes, 2),
                    "correct_fraction": round(report.correct_fraction, 3),
                    "corrected_after_llm": round(report.corrected_fraction, 3),
                    "plan_difficulty": round(report.average_plan_difficulty, 2),
                    "explanation_difficulty": round(report.average_explanation_difficulty, 2),
                }
            )
        return rows


class ParticipantStudy:
    """Runs the two-group protocol over a participant pool."""

    def __init__(self, materials: StudyMaterials, pool: ParticipantPool | None = None, seed: int = 99):
        self.materials = materials
        self.pool = pool or ParticipantPool()
        self.seed = seed

    def run(self) -> StudyReport:
        group_with, group_without = self.pool.split_groups()
        rng = random.Random(self.seed)
        with_report = GroupReport(group="with_llm")
        for participant in group_with:
            with_report.outcomes.append(self._run_with_llm(participant, rng))
        without_report = GroupReport(group="without_llm")
        for participant in group_without:
            without_report.outcomes.append(self._run_without_llm(participant, rng))
        return StudyReport(with_llm=with_report, without_llm=without_report)

    # --------------------------------------------------------------- internals
    def _run_with_llm(self, participant: Participant, rng: random.Random) -> ParticipantOutcome:
        minutes = participant.assisted_total_minutes(
            self.materials.plan_chars, self.materials.explanation_words
        )
        correct = participant.understands_with_explanation(rng)
        return ParticipantOutcome(
            participant_id=participant.participant_id,
            group="with_llm",
            minutes_to_understand=minutes,
            correct_initially=correct,
            corrected_after_explanation=correct,
            plan_difficulty=participant.plan_difficulty_rating(rng),
            explanation_difficulty=participant.explanation_difficulty_rating(rng),
        )

    def _run_without_llm(self, participant: Participant, rng: random.Random) -> ParticipantOutcome:
        minutes = participant.plan_reading_minutes(self.materials.plan_chars)
        correct = participant.understands_from_plans(rng)
        corrected = correct or participant.understands_with_explanation(rng)
        return ParticipantOutcome(
            participant_id=participant.participant_id,
            group="without_llm",
            minutes_to_understand=minutes,
            correct_initially=correct,
            corrected_after_explanation=corrected,
            plan_difficulty=participant.plan_difficulty_rating(rng),
            explanation_difficulty=participant.explanation_difficulty_rating(rng),
        )
