"""Shared fixtures for the benchmark suite.

Every benchmark reproduces one table or figure from the paper (the mapping
is the per-experiment index in DESIGN.md).  They all share one
:class:`~repro.bench.harness.ExperimentHarness` built at the paper's
experimental scale (SF=100 statistics, 20-entry knowledge base, 200-query
test set, K=2 retrieval).  Measured values are printed as aligned tables so
``pytest benchmarks/ --benchmark-only`` output can be compared against
EXPERIMENTS.md directly.
"""

from __future__ import annotations

import pytest

from repro.bench.harness import ExperimentHarness


@pytest.fixture(scope="session")
def harness() -> ExperimentHarness:
    return ExperimentHarness()


def run_once(benchmark, function, *args, **kwargs):
    """Run ``function`` exactly once under pytest-benchmark timing.

    The experiments are deterministic and some take seconds; a single round
    keeps the suite fast while still recording wall-clock time per experiment.
    """
    return benchmark.pedantic(function, args=args, kwargs=kwargs, rounds=1, iterations=1)
