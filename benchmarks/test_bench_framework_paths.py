"""E1 — Figure 1: the framework's historical (black) and new-query (red) paths."""

from benchmarks.conftest import run_once
from repro.bench.reporting import format_table


def test_bench_framework_paths(benchmark, harness):
    result = run_once(benchmark, harness.framework_paths)
    print()
    print(format_table([result], title="E1  Figure 1 framework paths (smoke)"))
    assert result["knowledge_base_size"] == 20
    assert result["embedding_size"] == 16
    assert result["new_query_retrieved"] == 2
    assert result["new_query_answered"] in (True, False)
    assert result["historical_has_expert_explanation"]
