"""E12 — Knowledge-base maintenance (Section VII future work, implemented).

The paper names two maintenance policies as future work: automatically
selecting representative queries and expiring stale entries.  This ablation
measures how well a k-center representative selection covers the
explanation-factor space compared with a naive selection of the same budget,
and exercises the stale-expiry policy.
"""

from benchmarks.conftest import run_once
from repro.bench.reporting import format_percent, format_table


def test_bench_kb_curation(benchmark, harness):
    result = run_once(benchmark, harness.curation_experiment)
    rows = [
        {
            "policy": "k-center representative selection",
            "factor coverage": format_percent(result["representative_factor_coverage"]),
        },
        {
            "policy": "first-N (naive) selection",
            "factor coverage": format_percent(result["random_factor_coverage"]),
        },
        {
            "policy": "stale expiry",
            "factor coverage": f"kept {int(result['kb_size_after_expiry'])} of {int(result['candidate_pool'])}",
        },
    ]
    print()
    print(format_table(rows, title="E12  KB curation policies (budget = 20 entries)"))

    assert result["representative_factor_coverage"] >= result["random_factor_coverage"]
    assert result["representative_factor_coverage"] >= 0.8
    assert result["kb_size_after_expiry"] == result["budget"]
    assert result["expired_entries"] == result["candidate_pool"] - result["budget"]
