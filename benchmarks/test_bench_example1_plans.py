"""E3 — Table II: TP and AP execution plans for Example 1."""

import json

from benchmarks.conftest import run_once
from repro.htap.engines.base import EngineKind


def test_bench_example1_plans(benchmark, harness):
    example = run_once(benchmark, harness.example1)
    print()
    print("E3  Table II — TP plan for Example 1:")
    print(json.dumps(example.tp_plan_dict, indent=1)[:1200])
    print("E3  Table II — AP plan for Example 1:")
    print(json.dumps(example.ap_plan_dict, indent=1)[:1200])

    # Shape checks against the paper's Table II.
    assert example.tp_plan_dict["Node Type"] == "Group aggregate"
    tp_text = json.dumps(example.tp_plan_dict)
    assert tp_text.count("Nested loop inner join") == 2
    assert "Inner hash join" not in tp_text

    assert example.ap_plan_dict["Node Type"] in ("Aggregate", "Hash aggregate")
    ap_text = json.dumps(example.ap_plan_dict)
    assert ap_text.count("Inner hash join") == 2
    assert "Nested loop" not in ap_text

    # Cost estimates are expressed in incomparable units: AP's number is
    # orders of magnitude larger even though AP executes faster.
    assert example.ap_plan_dict["Total Cost"] > 100 * example.tp_plan_dict["Total Cost"]
    assert example.execution.faster_engine is EngineKind.AP
