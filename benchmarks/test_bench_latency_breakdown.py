"""E7 — Section VI-B end-to-end response-time breakdown.

Paper: smart-router encoding < 0.1 ms (reported as ~1 ms inference budget in
III-A), knowledge-base search < 0.1 ms at 20 entries, LLM thinking <= 2 s,
LLM generation ~= 10 s; retrieval is near-instantaneous relative to
generation.
"""

from benchmarks.conftest import run_once
from repro.bench.reporting import format_table


def test_bench_latency_breakdown(benchmark, harness):
    breakdown = run_once(benchmark, harness.latency_breakdown)
    rows = [
        {"component": "smart-router encoding (ms)", "paper": "< 1", "measured": round(breakdown["encode_ms"], 3)},
        {"component": "KB search, 20 entries (ms)", "paper": "< 0.1", "measured": round(breakdown["search_ms"], 3)},
        {"component": "LLM thinking (s)", "paper": "<= 2", "measured": round(breakdown["llm_thinking_s"], 2)},
        {"component": "LLM generation (s)", "paper": "~ 10", "measured": round(breakdown["llm_generation_s"], 2)},
        {"component": "total (s)", "paper": "~ 12", "measured": round(breakdown["total_s"], 2)},
    ]
    print()
    print(format_table(rows, title=f"E7  End-to-end latency breakdown ({breakdown['samples']} queries)"))

    assert breakdown["encode_ms"] < 5.0
    assert breakdown["search_ms"] < 1.0
    assert breakdown["llm_thinking_s"] <= 2.5
    assert 5.0 <= breakdown["llm_generation_s"] <= 20.0
    # Retrieval (encode + search) is negligible next to generation.
    retrieval_seconds = (breakdown["encode_ms"] + breakdown["search_ms"]) / 1000.0
    assert retrieval_seconds < 0.01 * breakdown["llm_generation_s"]
