"""S1 — serving-layer throughput and cache-hit speedup.

Beyond the paper: the ROADMAP's north star is serving heavy concurrent
traffic, so this benchmark drives the new
:class:`~repro.service.server.ExplanationService` with a 32-way concurrent,
repeating workload and reports

* end-to-end throughput vs. the bare blocking :class:`RagExplainer`,
* the warm-cache / cold-request latency ratio (acceptance: >= 10x),
* micro-batch coalescing (mean batch size of the batched router path), and
* that ``SmartRouter.embed_batch`` reproduces per-pair embeddings
  (atol 1e-9).
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor

import numpy as np

from benchmarks.conftest import run_once
from repro.bench.reporting import format_table
from repro.service import ExplanationService

CONCURRENCY = 32
DISTINCT_QUERIES = 24
TOTAL_REQUESTS = 96


def _timed(function, argument) -> tuple[object, float]:
    start = time.perf_counter()
    result = function(argument)
    return result, time.perf_counter() - start


def _run_service_experiment(harness) -> dict:
    sqls = [labeled.sql for labeled in harness.dataset.test[:DISTINCT_QUERIES]]

    # Baseline: the bare blocking explainer, one query at a time.
    baseline_start = time.perf_counter()
    for sql in sqls[: DISTINCT_QUERIES // 2]:
        harness.explainer.explain_sql(sql)
    baseline_seconds_per_query = (time.perf_counter() - baseline_start) / (DISTINCT_QUERIES // 2)

    service = ExplanationService(
        harness.system,
        harness.router,
        harness.knowledge_base,
        harness.llm,
        top_k=harness.top_k,
        max_workers=8,
        max_in_flight=TOTAL_REQUESTS + CONCURRENCY,
    )
    try:
        # Phase A — cold, sequential: per-request end-to-end cold latency.
        cold_seconds = []
        for sql in sqls[: DISTINCT_QUERIES // 2]:
            result, seconds = _timed(service.explain, sql)
            assert result.ok and not result.cache_hit
            cold_seconds.append(seconds)

        # Phase B — 32-way concurrent repeating workload over all queries:
        # half are warm from phase A, half arrive cold concurrently and
        # exercise the micro-batcher.
        workload = [sqls[i % len(sqls)] for i in range(TOTAL_REQUESTS)]
        service_start = time.perf_counter()
        with ThreadPoolExecutor(max_workers=CONCURRENCY) as pool:
            results = list(pool.map(service.explain, workload))
        service_seconds = time.perf_counter() - service_start
        errors = [result for result in results if not result.ok]
        cache_hits = sum(result.cache_hit for result in results)

        # Phase C — warm, sequential: everything is cached now.
        warm_seconds = []
        for sql in sqls:
            result, seconds = _timed(service.explain, sql)
            assert result.ok and result.cache_hit
            warm_seconds.append(seconds)

        # Batched vs per-pair embedding equivalence on the same plans.
        pairs = [labeled.execution.plan_pair for labeled in harness.dataset.test[:16]]
        batched = harness.router.embed_batch(pairs)
        singles = np.stack([harness.router.embed_pair(pair) for pair in pairs])
        max_abs_diff = float(np.max(np.abs(batched - singles)))

        mean_cold = sum(cold_seconds) / len(cold_seconds)
        mean_warm = sum(warm_seconds) / len(warm_seconds)
        snapshot = service.metrics_snapshot()
        return {
            "requests": len(results),
            "errors": len(errors),
            "cache_hits": cache_hits,
            "service_throughput_qps": len(results) / service_seconds,
            "baseline_throughput_qps": 1.0 / baseline_seconds_per_query,
            "mean_cold_ms": 1e3 * mean_cold,
            "mean_warm_ms": 1e3 * mean_warm,
            "warm_speedup": mean_cold / mean_warm,
            "mean_batch_size": snapshot["batching"]["mean_batch_size"],
            "p99_cold_ms": 1e3 * snapshot["latency.cold_seconds"]["p99"],
            "p50_warm_ms": 1e3 * snapshot["latency.warm_seconds"]["p50"],
            "embed_batch_max_abs_diff": max_abs_diff,
            "explanation_hit_rate": snapshot["cache"]["explanations"]["hit_rate"],
        }
    finally:
        service.shutdown()


def test_bench_service_throughput(benchmark, harness):
    report = run_once(benchmark, _run_service_experiment, harness)
    rows = [
        {"metric": f"{CONCURRENCY}-way concurrent requests", "value": report["requests"]},
        {"metric": "errors", "value": report["errors"]},
        {"metric": "cache hits", "value": report["cache_hits"]},
        {"metric": "service throughput (req/s)", "value": round(report["service_throughput_qps"], 1)},
        {"metric": "bare RagExplainer (req/s)", "value": round(report["baseline_throughput_qps"], 1)},
        {"metric": "mean cold latency (ms)", "value": round(report["mean_cold_ms"], 3)},
        {"metric": "mean warm latency (ms)", "value": round(report["mean_warm_ms"], 4)},
        {"metric": "warm-cache speedup (x)", "value": round(report["warm_speedup"], 1)},
        {"metric": "p99 cold latency (ms)", "value": round(report["p99_cold_ms"], 3)},
        {"metric": "p50 warm latency (ms)", "value": round(report["p50_warm_ms"], 4)},
        {"metric": "mean encode batch size", "value": round(report["mean_batch_size"], 2)},
        {"metric": "embed_batch max |diff|", "value": f"{report['embed_batch_max_abs_diff']:.2e}"},
        {"metric": "explanation cache hit rate", "value": round(report["explanation_hit_rate"], 3)},
    ]
    print()
    print(format_table(rows, title="S1  ExplanationService throughput and caching"))

    # Acceptance criteria for the serving layer.
    assert report["errors"] == 0
    assert report["requests"] == TOTAL_REQUESTS
    assert report["cache_hits"] > 0
    assert report["warm_speedup"] >= 10.0
    assert report["embed_batch_max_abs_diff"] <= 1e-9
    # Concurrency + caching must beat the blocking baseline's throughput.
    assert report["service_throughput_qps"] > report["baseline_throughput_qps"]
