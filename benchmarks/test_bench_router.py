"""E10 — Section III-A smart-router claims.

Paper: the tree-CNN router routes queries to the faster engine with high
accuracy, has a physical model size below 1 MB, and an average inference
time around (well under) 1 ms.
"""

from benchmarks.conftest import run_once
from repro.bench.reporting import format_percent, format_table


def test_bench_router(benchmark, harness):
    result = run_once(benchmark, harness.router_benchmark)
    rows = [
        {"claim": "routing accuracy", "paper": "high", "measured": format_percent(result["routing_accuracy"])},
        {"claim": "model size (bytes)", "paper": "< 1,000,000", "measured": int(result["model_size_bytes"])},
        {"claim": "mean inference (ms)", "paper": "~1", "measured": round(result["mean_inference_ms"], 3)},
        {"claim": "p95 inference (ms)", "paper": "-", "measured": round(result["p95_inference_ms"], 3)},
        {"claim": "parameters", "paper": "-", "measured": int(result["parameter_count"])},
    ]
    print()
    print(format_table(rows, title="E10  Smart router (tree-CNN) operational claims"))

    assert result["routing_accuracy"] >= 0.9
    assert result["model_size_bytes"] < 1_000_000
    assert result["mean_inference_ms"] < 5.0
