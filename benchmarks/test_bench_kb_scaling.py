"""E11 — Knowledge-base growth (Section VI-B note + HNSW citation).

The paper argues that although the 20-entry knowledge base searches in well
under 0.1 ms, search will not become the dominant cost as the KB grows,
citing HNSW-style vector indexing.  This ablation measures search latency
for growing KB sizes with the flat (exact) store and the HNSW store.
"""

from benchmarks.conftest import run_once
from repro.bench.reporting import format_table


def test_bench_kb_scaling(benchmark, harness):
    rows = run_once(benchmark, harness.kb_scaling)
    print()
    print(
        format_table(
            [row.as_dict() for row in rows],
            title="E11  KB search latency vs size (top-2 retrieval, ms per query)",
        )
    )

    by_store = {}
    for row in rows:
        by_store.setdefault(row.store, {})[row.kb_size] = row.search_ms
    # At the paper's 20 entries, either store answers in well under a millisecond.
    assert by_store["flat"][20] < 1.0
    assert by_store["hnsw"][20] < 2.0
    largest = max(by_store["flat"])
    # Even at the largest size, retrieval stays far below the ~10 s LLM
    # generation time, so it never dominates the response time.
    assert by_store["flat"][largest] < 100.0
    assert by_store["hnsw"][largest] < 100.0
