"""E9 — Section VI-D comparison with DBG-PT (and the no-RAG ablation).

The paper reports DBG-PT's qualitative limitations rather than a single
number: fundamental index-usage errors, over-emphasis of column storage,
reliance on incomparable cost estimates, and inability to judge relative
LIMIT/OFFSET values.  This benchmark quantifies those error categories on
the shared test workload and verifies the RAG pipeline avoids them.
"""

from benchmarks.conftest import run_once
from repro.bench.reporting import format_percent, format_table


def test_bench_dbgpt_comparison(benchmark, harness):
    comparison = run_once(benchmark, harness.dbgpt_comparison)
    rows = []
    for method in ("ours", "norag", "dbgpt"):
        metrics = comparison[method]
        rows.append(
            {
                "method": method,
                "accurate": format_percent(metrics["accurate"]),
                "winner correct": format_percent(metrics["winner_correct"]),
                "cost-compare errors": format_percent(metrics["cost_comparison"]),
                "index misreads": format_percent(metrics["index_misread"]),
                "storage over-emphasis": format_percent(metrics["storage_overemphasis"]),
                "None answers": format_percent(metrics["none"]),
            }
        )
    print()
    print(format_table(rows, title="E9  Ours vs no-RAG vs DBG-PT (100 test queries)"))

    ours, norag, dbgpt = comparison["ours"], comparison["norag"], comparison["dbgpt"]
    # Who wins: the RAG pipeline is the most accurate, the diff-only baseline the least.
    assert ours["accurate"] > norag["accurate"] > dbgpt["accurate"]
    # DBG-PT exhibits every limitation the paper lists; ours exhibits none of them.
    assert dbgpt["cost_comparison"] > 0.15
    assert dbgpt["storage_overemphasis"] > 0.2
    assert dbgpt["winner_correct"] < 0.9
    assert ours["cost_comparison"] == 0.0
    assert ours["winner_correct"] >= 0.9
    assert ours["storage_overemphasis"] <= 0.1
