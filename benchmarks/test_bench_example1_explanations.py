"""E4 — Table III + Example 1 latencies: expert vs ours vs DBG-PT explanations."""

from benchmarks.conftest import run_once
from repro.bench.reporting import format_table


def test_bench_example1_explanations(benchmark, harness):
    example = run_once(benchmark, harness.example1)
    rows = [
        {
            "quantity": "TP latency (s)",
            "paper": 5.80,
            "measured": round(example.tp_latency_seconds, 2),
        },
        {
            "quantity": "AP latency (s)",
            "paper": 0.31,
            "measured": round(example.ap_latency_seconds, 3),
        },
        {
            "quantity": "AP speedup (x)",
            "paper": round(5.80 / 0.31, 1),
            "measured": round(example.execution.speedup, 1),
        },
    ]
    print()
    print(format_table(rows, title="E4  Example 1 execution result (paper vs measured)"))
    print("\nExpert explanation:\n  " + example.expert_explanation)
    print("\nOur (RAG + LLM) explanation:\n  " + example.our_explanation.text)
    print("\nDBG-PT explanation:\n  " + example.dbgpt_explanation_text)

    # Shape: AP wins by roughly an order of magnitude (paper: 18.7x).
    assert example.execution.speedup > 8
    assert example.tp_latency_seconds > 2.0
    assert example.ap_latency_seconds < 1.0
    # Our explanation is grounded and names the join-method factor, like the expert.
    assert "hash join" in example.our_explanation.text.lower()
    assert "nested loop" in example.our_explanation.text.lower()
    assert "hash_join_vs_nested_loop" in example.our_explanation.cited_factors
    # The expert text follows the paper's style ("AP is faster than TP because ...").
    assert example.expert_explanation.startswith("AP is faster")
    # DBG-PT produces an answer (it never abstains) without any grounding.
    assert example.dbgpt_claims.get("grounded") is False
