"""E6 — Section VI-B retrieval-depth sweep (K = 1..5).

Paper: K=1 drops accuracy to 85 % and raises None answers to 8 %;
K=2..5 show minimal differences with accuracy between 89 % and 91 %.
"""

from benchmarks.conftest import run_once
from repro.bench.reporting import format_percent, format_table

_PAPER_ACCURACY = {1: "85%", 2: "89-91%", 3: "89-91%", 4: "89-91%", 5: "89-91%"}
_PAPER_NONE = {1: "8%", 2: "3.5%", 3: "-", 4: "-", 5: "-"}


def test_bench_topk_sweep(benchmark, harness):
    sweep = run_once(benchmark, harness.topk_sweep)
    rows = []
    for k, report in sorted(sweep.items()):
        rows.append(
            {
                "K": k,
                "paper accuracy": _PAPER_ACCURACY[k],
                "measured accuracy": format_percent(report.accurate_rate),
                "paper None": _PAPER_NONE[k],
                "measured None": format_percent(report.none_rate),
            }
        )
    print()
    print(format_table(rows, title="E6  Retrieval-K sweep (200 test queries)"))

    accuracy = {k: report.accurate_rate for k, report in sweep.items()}
    none_rate = {k: report.none_rate for k, report in sweep.items()}
    # Shape: K=1 is the worst configuration and abstains the most; K>=2 are
    # close to each other and all better than K=1.
    assert accuracy[1] < min(accuracy[k] for k in (2, 3, 4, 5))
    assert none_rate[1] >= max(none_rate[k] for k in (2, 3, 4, 5))
    assert max(accuracy[k] for k in (2, 3, 4, 5)) - min(accuracy[k] for k in (2, 3, 4, 5)) <= 0.06
    assert 0.80 <= accuracy[1] <= 0.92
    assert 0.85 <= accuracy[2] <= 0.97
