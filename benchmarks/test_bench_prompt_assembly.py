"""E2 — Table I: prompt engineering (background / task / user context)."""

from benchmarks.conftest import run_once
from repro.bench.reporting import format_table


def test_bench_prompt_assembly(benchmark, harness):
    result = run_once(benchmark, harness.prompt_assembly)
    rows = [
        {"section": name, "chars": len(text), "excerpt": text[:70] + "..."}
        for name, text in result["table_i"].items()
    ]
    print()
    print(format_table(rows, title="E2  Table I prompt sections"))
    print(
        f"assembled Example-1 prompt: {result['prompt_chars']} chars, "
        f"{result['knowledge_blocks']} retrieved KNOWLEDGE blocks"
    )
    assert result["contains_cost_guard"], "the prompt must forbid cross-engine cost comparison"
    assert result["contains_question"]
    assert result["knowledge_blocks"] == 2
