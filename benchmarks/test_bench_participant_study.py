"""E8 — Section VI-C participant study (simulated participants).

Paper: plans-only group — 60 % correct, 8.2 minutes on average, plan
difficulty 8.5; all initially-wrong participants corrected themselves after
reading the LLM explanation.  Explanation-from-the-start group — 3.5 minutes
on average, 100 % correct; explanation difficulty rated 3.
"""

from benchmarks.conftest import run_once
from repro.bench.reporting import format_table


def test_bench_participant_study(benchmark, harness):
    report = run_once(benchmark, harness.participant_study)
    rows = report.as_rows()
    print()
    print(format_table(rows, title="E8  Participant study (24 simulated participants, Example 1)"))
    paper_rows = [
        {"group": "without_llm", "avg_minutes": 8.2, "correct_fraction": 0.60, "plan_difficulty": 8.5, "explanation_difficulty": 3.0},
        {"group": "with_llm", "avg_minutes": 3.5, "correct_fraction": 1.00, "plan_difficulty": 8.5, "explanation_difficulty": 3.0},
    ]
    print(format_table(paper_rows, title="      paper-reported values"))

    without_llm = report.without_llm
    with_llm = report.with_llm
    # Time: explanation roughly halves-to-thirds the time to understanding.
    assert with_llm.average_minutes < 0.6 * without_llm.average_minutes
    assert 6.0 <= without_llm.average_minutes <= 11.0
    assert 2.0 <= with_llm.average_minutes <= 5.0
    # Correctness: all explanation-group participants get it right; the
    # plans-only group sits around the paper's 60 %.
    assert with_llm.correct_fraction == 1.0
    assert 0.45 <= without_llm.correct_fraction <= 0.8
    assert without_llm.corrected_fraction == 1.0
    # Difficulty ratings: plans ~8.5, explanation ~3.
    assert 7.5 <= without_llm.average_plan_difficulty <= 9.5
    assert 2.0 <= without_llm.average_explanation_difficulty <= 4.0
