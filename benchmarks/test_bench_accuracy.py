"""E5 — Section VI-B accuracy study: 200 test queries, 20-entry KB, K=2.

Paper: 91 % of explanations accurate and informative; the remaining 9 % less
precise than expert interpretations, including 3.5 % None answers.
"""

from benchmarks.conftest import run_once
from repro.bench.reporting import format_percent, format_table


def test_bench_accuracy(benchmark, harness):
    report = run_once(benchmark, harness.accuracy_experiment)
    rows = [
        {"metric": "accurate & informative", "paper": "91%", "measured": format_percent(report.accurate_rate)},
        {"metric": "less precise (total)", "paper": "9%", "measured": format_percent(report.less_precise_rate)},
        {"metric": "  of which None answers", "paper": "3.5%", "measured": format_percent(report.none_rate)},
        {"metric": "  of which imprecise", "paper": "-", "measured": format_percent(report.imprecise_rate)},
        {"metric": "  of which wrong factor", "paper": "-", "measured": format_percent(report.wrong_rate)},
    ]
    print()
    print(format_table(rows, title=f"E5  Explanation accuracy over {report.total} test queries (K=2)"))

    assert report.total == 200
    # Shape: high-80s/low-90s accuracy, single-digit less-precise bucket.
    assert 0.85 <= report.accurate_rate <= 0.97
    assert report.less_precise_rate <= 0.15
    assert report.none_rate <= 0.08
