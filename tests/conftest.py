"""Shared fixtures for the test suite.

Fixtures are deliberately lightweight: the HTAP simulator never materialises
data, so building systems and planning queries is cheap.  The trained router
fixture uses a reduced workload and few epochs to stay fast while still being
a genuinely trained model.
"""

from __future__ import annotations

import pytest

from repro.htap.catalog import Catalog
from repro.htap.statistics import StatisticsCatalog
from repro.htap.system import HTAPSystem
from repro.knowledge.knowledge_base import KnowledgeBase
from repro.llm.simulated import SimulatedLLM
from repro.router.router import SmartRouter
from repro.explainer.pipeline import RagExplainer, entries_from_labeled
from repro.workloads.experts import SimulatedExpert
from repro.workloads.generator import WorkloadGenerator
from repro.workloads.labeling import WorkloadLabeler

EXAMPLE1_SQL = (
    "SELECT COUNT(*) FROM customer, nation, orders "
    "WHERE SUBSTRING(c_phone, 1, 2) IN ('20', '40', '22', '30', '39', '42', '21') "
    "AND c_mktsegment = 'machinery' "
    "AND n_name = 'egypt' AND o_orderstatus = 'p' "
    "AND o_custkey = c_custkey "
    "AND n_nationkey = c_nationkey;"
)


@pytest.fixture(scope="session")
def catalog() -> Catalog:
    return Catalog(scale_factor=100.0)


@pytest.fixture(scope="session")
def statistics(catalog: Catalog) -> StatisticsCatalog:
    return StatisticsCatalog(catalog)


@pytest.fixture(scope="session")
def system() -> HTAPSystem:
    return HTAPSystem(scale_factor=100.0)


@pytest.fixture(scope="session")
def example1_sql() -> str:
    return EXAMPLE1_SQL


@pytest.fixture(scope="session")
def labeled_workload(system: HTAPSystem):
    """A labeled 60-query workload shared across tests (read-only)."""
    generator = WorkloadGenerator(seed=11)
    labeler = WorkloadLabeler(system)
    return labeler.label_many(generator.generate(60))


@pytest.fixture(scope="session")
def trained_router(system: HTAPSystem, labeled_workload) -> SmartRouter:
    router = SmartRouter(system.catalog, seed=13)
    router.fit(labeled_workload, epochs=8)
    return router


@pytest.fixture(scope="session")
def knowledge_base(trained_router: SmartRouter, labeled_workload) -> KnowledgeBase:
    kb = KnowledgeBase()
    kb.add_many(entries_from_labeled(labeled_workload[:20], trained_router, SimulatedExpert()))
    return kb


@pytest.fixture(scope="session")
def simulated_llm() -> SimulatedLLM:
    return SimulatedLLM(seed=7)


@pytest.fixture(scope="session")
def rag_explainer(system, trained_router, knowledge_base, simulated_llm) -> RagExplainer:
    return RagExplainer(system, trained_router, knowledge_base, simulated_llm, top_k=2)
