"""Round-trip and retrieval-quality tests for the int8 embedding codec."""

import numpy as np
import pytest

from repro.knowledge.quantization import dequantize_vector, quantize_vector
from repro.knowledge.vector_store import FlatVectorStore


def _random_vectors(count: int, dimensions: int = 16, seed: int = 0) -> list[np.ndarray]:
    rng = np.random.default_rng(seed)
    return [rng.normal(size=dimensions) for _ in range(count)]


# -------------------------------------------------------------- round trip
def test_roundtrip_error_bounded_by_half_step():
    for vector in _random_vectors(20, dimensions=32):
        quantized = quantize_vector(vector)
        recovered = quantized.dequantize()
        assert recovered.dtype == np.float64
        assert np.max(np.abs(recovered - vector)) <= quantized.max_abs_error + 1e-12
        np.testing.assert_array_equal(dequantize_vector(quantized), recovered)


def test_codes_are_int8_and_symmetric():
    vector = np.array([-3.0, 0.0, 1.5, 3.0])
    quantized = quantize_vector(vector)
    assert quantized.codes.dtype == np.int8
    assert quantized.codes[0] == -127  # peak magnitude maps to ±127
    assert quantized.codes[1] == 0     # zero maps exactly to zero
    assert quantized.codes[3] == 127
    assert quantized.scale == pytest.approx(3.0 / 127)


def test_zero_vector_roundtrips_exactly():
    quantized = quantize_vector(np.zeros(8))
    assert quantized.scale == 0.0
    np.testing.assert_array_equal(quantized.dequantize(), np.zeros(8))
    assert quantized.max_abs_error == 0.0


def test_non_finite_and_non_1d_rejected():
    with pytest.raises(ValueError):
        quantize_vector(np.array([1.0, np.nan]))
    with pytest.raises(ValueError):
        quantize_vector(np.array([1.0, np.inf]))
    with pytest.raises(ValueError):
        quantize_vector(np.ones((2, 2)))


def test_payload_is_about_8x_smaller():
    vector = np.random.default_rng(1).normal(size=64)
    quantized = quantize_vector(vector)
    # 64 float64 components = 512 bytes; 64 int8 codes + one scale = 72.
    assert quantized.nbytes == 64 + 8
    assert vector.nbytes / quantized.nbytes > 7.0


# ------------------------------------------------------------ recall@5 gate
def test_quantized_recall_at_5_stays_high():
    """Searching with dequantized embeddings must keep recall@5 ≥ 0.95.

    This is the acceptance bound for the L2-cache codec: an embedding that
    went through the cache (quantize → dequantize) must retrieve nearly the
    same top-5 KB entries as the original float64 embedding.
    """
    vectors = _random_vectors(300, seed=42)
    store = FlatVectorStore()
    for index, vector in enumerate(vectors):
        store.add(f"v{index}", vector)
    queries = _random_vectors(40, dimensions=16, seed=43)
    hits = 0
    for query in queries:
        exact = {r.key for r in store.search(query, k=5)}
        requantized = quantize_vector(query).dequantize()
        approx = {r.key for r in store.search(requantized, k=5)}
        hits += len(exact & approx)
    recall = hits / (len(queries) * 5)
    assert recall >= 0.95
