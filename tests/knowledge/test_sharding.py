"""Consistent-hash ring properties and ShardedKnowledgeBase behaviour."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.knowledge.entry import KnowledgeEntry
from repro.knowledge.knowledge_base import KnowledgeBase
from repro.knowledge.sharding import (
    DEFAULT_TENANT,
    ConsistentHashRing,
    ShardedKnowledgeBase,
    namespaced_key,
)
from repro.knowledge.vector_store import HNSWVectorStore


def make_entry(i: int, rng: np.random.Generator, dim: int = 8) -> KnowledgeEntry:
    return KnowledgeEntry(
        entry_id=f"entry-{i}",
        embedding=rng.normal(size=dim),
        sql=f"SELECT {i} FROM t",
        plan_details="plan",
        faster_engine="tp",
        tp_latency_seconds=0.1,
        ap_latency_seconds=0.2,
        expert_explanation="because",
        factors=("selectivity",),
    )


def make_entries(n: int, seed: int = 0) -> list[KnowledgeEntry]:
    rng = np.random.default_rng(seed)
    return [make_entry(i, rng) for i in range(n)]


# --------------------------------------------------------------------- ring
@settings(max_examples=30, deadline=None)
@given(st.lists(st.text(min_size=1, max_size=32), min_size=1, max_size=50, unique=True))
def test_ring_assignment_is_stable(keys):
    """The same key maps to the same shard on independently built rings."""
    ring_a = ConsistentHashRing(["s0", "s1", "s2"])
    ring_b = ConsistentHashRing(["s2", "s0", "s1"])  # insertion order irrelevant
    for key in keys:
        assert ring_a.shard_for(key) == ring_b.shard_for(key)


def test_ring_uniform_within_tolerance():
    """With vnodes, no shard owns a grossly disproportionate key share."""
    shards = [f"s{i}" for i in range(4)]
    ring = ConsistentHashRing(shards, vnodes=128)
    counts = dict.fromkeys(shards, 0)
    total = 4000
    for i in range(total):
        counts[ring.shard_for(f"key-{i}")] += 1
    expected = total / len(shards)
    for shard, count in counts.items():
        assert 0.5 * expected <= count <= 1.6 * expected, (shard, counts)


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=0, max_value=2**31))
def test_ring_add_shard_moves_bounded_fraction(seed):
    """Adding one shard to N moves roughly K/(N+1) keys, never a reshuffle."""
    ring = ConsistentHashRing([f"s{i}" for i in range(4)], vnodes=128)
    keys = [f"key-{seed}-{i}" for i in range(1500)]
    before = {key: ring.shard_for(key) for key in keys}
    ring.add_shard("s-new")
    moved = sum(1 for key in keys if ring.shard_for(key) != before[key])
    # Ideal is K/(N+1) = 20%; allow generous slack for vnode imbalance but
    # fail hard on anything near a full reshuffle.
    assert moved <= 0.40 * len(keys)
    # Every moved key must have moved *to* the new shard, not between old ones.
    for key in keys:
        now = ring.shard_for(key)
        assert now == before[key] or now == "s-new"


def test_ring_remove_shard_moves_only_its_keys():
    ring = ConsistentHashRing([f"s{i}" for i in range(5)], vnodes=128)
    keys = [f"key-{i}" for i in range(1500)]
    before = {key: ring.shard_for(key) for key in keys}
    ring.remove_shard("s2")
    for key in keys:
        if before[key] == "s2":
            assert ring.shard_for(key) != "s2"
        else:
            assert ring.shard_for(key) == before[key]


def test_ring_rejects_duplicates_and_unknown():
    ring = ConsistentHashRing(["a"])
    with pytest.raises(ValueError):
        ring.add_shard("a")
    with pytest.raises(KeyError):
        ring.remove_shard("zz")
    with pytest.raises(RuntimeError):
        ConsistentHashRing().shard_for("key")


# ------------------------------------------------------------- sharded KB
def test_sharded_retrieval_matches_plain_kb():
    """Flat-store scatter-gather returns exactly the plain KB's top-k."""
    entries = make_entries(150)
    plain = KnowledgeBase()
    plain.add_many(entries)
    sharded = ShardedKnowledgeBase(4)
    sharded.add_many(entries)
    rng = np.random.default_rng(42)
    try:
        for _ in range(20):
            query = rng.normal(size=8)
            expected = [(h.entry.entry_id, h.distance) for h in plain.retrieve(query, k=5).hits]
            got = [(h.entry.entry_id, h.distance) for h in sharded.retrieve(query, k=5).hits]
            assert [e[0] for e in expected] == [g[0] for g in got]
            for (_, d_expected), (_, d_got) in zip(expected, got):
                assert d_expected == pytest.approx(d_got)
    finally:
        sharded.close()


def test_from_knowledge_base_seeds_default_tenant():
    entries = make_entries(40)
    plain = KnowledgeBase()
    plain.add_many(entries)
    sharded = ShardedKnowledgeBase.from_knowledge_base(plain, 3)
    try:
        assert len(sharded) == 40
        assert sharded.tenants() == (DEFAULT_TENANT,)
        assert sharded.count(tenant=DEFAULT_TENANT) == 40
        assert sum(sharded.shard_sizes().values()) == 40
    finally:
        sharded.close()


def test_crud_round_trip_and_errors():
    sharded = ShardedKnowledgeBase(3)
    entries = make_entries(10)
    try:
        sharded.add_many(entries[:9])
        sharded.add(entries[9])
        assert len(sharded) == 10
        assert "entry-3" in sharded
        assert sharded.get("entry-3").entry_id == "entry-3"
        sharded.correct("entry-3", "corrected text", ("new-factor",))
        assert sharded.get("entry-3").expert_explanation == "corrected text"
        removed = sharded.remove("entry-3")
        assert removed.entry_id == "entry-3"
        assert "entry-3" not in sharded
        with pytest.raises(KeyError):
            sharded.get("entry-3")
        with pytest.raises(KeyError):
            sharded.remove("entry-3")
        with pytest.raises(KeyError):
            sharded.correct("nope", "x")
    finally:
        sharded.close()


def test_tenant_namespaces_are_isolated():
    sharded = ShardedKnowledgeBase(3)
    rng = np.random.default_rng(1)
    try:
        sharded.add_many(make_entries(30), tenant="tenant-a")
        sharded.add_many(make_entries(5, seed=9), tenant="tenant-b")
        assert sharded.count(tenant="tenant-a") == 30
        assert sharded.count(tenant="tenant-b") == 5
        assert sharded.tenants() == ("tenant-a", "tenant-b")
        # Same entry id may exist under both tenants independently.
        assert sharded.contains("entry-0", tenant="tenant-a")
        assert sharded.contains("entry-0", tenant="tenant-b")
        assert not sharded.contains("entry-0")  # default tenant is empty
        # Retrieval never crosses tenants.
        query = rng.normal(size=8)
        hits = sharded.retrieve(query, k=50, tenant="tenant-b").hits
        assert len(hits) == 5
        ids_b = {f"entry-{i}" for i in range(5)}
        assert {h.entry.entry_id for h in hits} <= ids_b
        assert sharded.retrieve(query, k=5).hits == []  # default tenant empty
    finally:
        sharded.close()


def test_tenant_retrieval_grounds_on_shared_corpus():
    """The default namespace is the shared corpus: tenant retrieval unions
    it with the tenant's own entries, and a tenant entry shadows a shared
    entry with the same id."""
    sharded = ShardedKnowledgeBase(3)
    rng = np.random.default_rng(7)
    try:
        shared = make_entries(20)
        sharded.add_many(shared)  # default tenant = shared corpus
        query = rng.normal(size=8)
        # A tenant with no entries of its own still retrieves shared hits.
        baseline = [h.entry.entry_id for h in sharded.retrieve(query, k=5, tenant="acme").hits]
        assert baseline == [h.entry.entry_id for h in sharded.retrieve(query, k=5).hits]
        # The tenant's private entry joins the merged ranking...
        private = make_entry(999, rng)
        private = dataclasses_replace_embedding(private, query)  # distance ~0
        sharded.add(private, tenant="acme")
        top = sharded.retrieve(query, k=1, tenant="acme").hits[0]
        assert top.entry.entry_id == "entry-999"
        # ...but stays invisible to other tenants and to the default view.
        zeta_ids = {h.entry.entry_id for h in sharded.retrieve(query, k=20, tenant="zeta").hits}
        assert "entry-999" not in zeta_ids
        default_ids = {h.entry.entry_id for h in sharded.retrieve(query, k=20).hits}
        assert "entry-999" not in default_ids
        # Shadowing: a tenant entry with a shared id wins the merge.
        override = dataclasses_replace_embedding(make_entry(0, rng), query)
        sharded.add(override, tenant="beta")
        best_beta = sharded.retrieve(query, k=1, tenant="beta").hits[0]
        assert best_beta.entry.entry_id == "entry-0"
        assert best_beta.distance == pytest.approx(0.0, abs=1e-9)
    finally:
        sharded.close()


def dataclasses_replace_embedding(entry: KnowledgeEntry, embedding) -> KnowledgeEntry:
    import dataclasses

    return dataclasses.replace(entry, embedding=np.asarray(embedding, dtype=np.float64))


def test_write_listener_reports_tenant():
    sharded = ShardedKnowledgeBase(2)
    events: list[tuple[str, str, str]] = []
    sharded.add_write_listener(lambda *args: events.append(args))
    entries = make_entries(2)
    try:
        sharded.add(entries[0], tenant="acme")
        sharded.add(entries[1])
        sharded.correct("entry-1", "fixed")
        sharded.remove("entry-0", tenant="acme")
        assert events == [
            ("add", "entry-0", "acme"),
            ("add", "entry-1", DEFAULT_TENANT),
            ("correct", "entry-1", DEFAULT_TENANT),
            ("remove", "entry-0", "acme"),
        ]
        sharded.remove_write_listener(sharded._listeners[0])
    finally:
        sharded.close()


def test_rebalance_add_and_remove_shard():
    entries = make_entries(200)
    sharded = ShardedKnowledgeBase(4, vnodes=128)
    rng = np.random.default_rng(3)
    query = rng.normal(size=8)
    try:
        sharded.add_many(entries)
        baseline = [h.entry.entry_id for h in sharded.retrieve(query, k=5).hits]
        report = sharded.add_shard()
        assert report.total_entries == 200
        # Bounded movement: ~K/(N+1) ideally, never a wholesale reshuffle.
        assert report.moved_entries <= 0.40 * 200
        assert len(sharded) == 200
        assert sharded.num_shards == 5
        assert [h.entry.entry_id for h in sharded.retrieve(query, k=5).hits] == baseline
        # Ring placement invariant: every entry lives where the ring says.
        for entry in entries[:50]:
            assert sharded.get(entry.entry_id).entry_id == entry.entry_id

        report2 = sharded.remove_shard(report.shard)
        assert sharded.num_shards == 4
        assert len(sharded) == 200
        assert report2.moved_entries <= 0.40 * 200
        assert [h.entry.entry_id for h in sharded.retrieve(query, k=5).hits] == baseline
    finally:
        sharded.close()


def test_remove_last_shard_rejected():
    sharded = ShardedKnowledgeBase(1)
    try:
        with pytest.raises(ValueError):
            sharded.remove_shard(sharded.shard_names[0])
        with pytest.raises(KeyError):
            sharded.remove_shard("missing")
    finally:
        sharded.close()


def test_hnsw_store_factory_and_stats():
    sharded = ShardedKnowledgeBase(
        3, store_factory=lambda: HNSWVectorStore(M=8, ef_construction=32, ef_search=16)
    )
    try:
        sharded.add_many(make_entries(60))
        rng = np.random.default_rng(5)
        hits = sharded.retrieve(rng.normal(size=8), k=4).hits
        assert len(hits) == 4
        stats = sharded.stats()
        assert stats["num_shards"] == 3
        assert stats["entries"] == 60
        assert stats["tenants"] == 1
        assert sum(stats["shard_sizes"].values()) == 60
    finally:
        sharded.close()


def test_namespaced_key_shapes_ring_placement():
    """Tenant is folded into the ring key, so the same entry id can land on
    different shards for different tenants."""
    ring = ConsistentHashRing([f"s{i}" for i in range(8)], vnodes=64)
    placements = {
        tenant: ring.shard_for(namespaced_key(tenant, "entry-1"))
        for tenant in ("a", "b", "c", "d", "e", "f")
    }
    assert len(set(placements.values())) > 1
