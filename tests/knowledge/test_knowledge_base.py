"""Tests for knowledge entries, the knowledge base, and curation policies."""

import numpy as np
import pytest

from repro.htap.engines.base import EngineKind
from repro.knowledge.curation import expire_stale_entries, select_representative_queries
from repro.knowledge.entry import KnowledgeEntry
from repro.knowledge.knowledge_base import KnowledgeBase
from repro.knowledge.vector_store import HNSWVectorStore


def _entry(entry_id: str, vector, faster=EngineKind.AP, factors=("hash_join_vs_nested_loop",)) -> KnowledgeEntry:
    return KnowledgeEntry(
        entry_id=entry_id,
        embedding=np.asarray(vector, dtype=float),
        sql=f"SELECT * FROM orders -- {entry_id}",
        plan_details={"TP": {"Node Type": "Table Scan"}, "AP": {"Node Type": "Table Scan"}},
        faster_engine=faster,
        tp_latency_seconds=5.0,
        ap_latency_seconds=0.3,
        expert_explanation="AP is faster because it uses hash joins.",
        factors=factors,
    )


# ------------------------------------------------------------------- entry
def test_entry_validation_and_text():
    entry = _entry("e1", [1.0, 0.0, 0.0])
    assert "AP was faster" in entry.execution_result_text
    assert entry.speedup == pytest.approx(5.0 / 0.3, rel=0.01)
    with pytest.raises(ValueError):
        _entry("bad", [[1.0, 2.0], [3.0, 4.0]])


def test_entry_correction_updates_text_and_count():
    entry = _entry("e1", [1.0, 0.0])
    entry.apply_correction("Corrected explanation.", factors=("no_usable_index",))
    assert entry.expert_explanation == "Corrected explanation."
    assert entry.factors == ("no_usable_index",)
    assert entry.correction_count == 1


# ---------------------------------------------------------- knowledge base
def test_kb_add_retrieve_top_k():
    kb = KnowledgeBase()
    kb.add(_entry("a", [1.0, 0.0, 0.0]))
    kb.add(_entry("b", [0.0, 1.0, 0.0]))
    kb.add(_entry("c", [0.9, 0.1, 0.0]))
    result = kb.retrieve(np.array([1.0, 0.0, 0.0]), k=2)
    assert [hit.entry.entry_id for hit in result.hits] == ["a", "c"]
    assert result.hits[0].rank == 1
    assert result.hits[0].similarity > result.hits[1].similarity
    assert result.search_seconds < 0.05
    assert result.search_ms == pytest.approx(result.search_seconds * 1000)


def test_kb_duplicate_and_missing_ids():
    kb = KnowledgeBase()
    kb.add(_entry("a", [1.0, 0.0]))
    with pytest.raises(KeyError):
        kb.add(_entry("a", [1.0, 0.0]))
    with pytest.raises(KeyError):
        kb.get("zzz")
    with pytest.raises(KeyError):
        kb.remove("zzz")


def test_kb_remove_and_contains():
    kb = KnowledgeBase()
    kb.add(_entry("a", [1.0, 0.0]))
    kb.add(_entry("b", [0.0, 1.0]))
    removed = kb.remove("a")
    assert removed.entry_id == "a"
    assert "a" not in kb
    assert len(kb) == 1
    assert [hit.entry.entry_id for hit in kb.retrieve(np.array([1.0, 0.0]), k=5).hits] == ["b"]


def test_kb_correct_applies_expert_feedback():
    kb = KnowledgeBase()
    kb.add(_entry("a", [1.0, 0.0]))
    kb.correct("a", "Fixed explanation", ("selective_index_access",))
    assert kb.get("a").expert_explanation == "Fixed explanation"
    assert kb.get("a").correction_count == 1


def test_kb_insert_order_recorded():
    kb = KnowledgeBase()
    kb.add(_entry("a", [1.0, 0.0]))
    kb.add(_entry("b", [0.0, 1.0]))
    assert kb.get("a").inserted_at < kb.get("b").inserted_at


def test_kb_with_hnsw_backend():
    kb = KnowledgeBase(vector_store=HNSWVectorStore(seed=4))
    rng = np.random.default_rng(1)
    for index in range(50):
        kb.add(_entry(f"e{index}", rng.normal(size=16)))
    target = kb.get("e7").embedding
    hits = kb.retrieve(target, k=3).hits
    assert hits[0].entry.entry_id == "e7"


# ---------------------------------------------------------------- curation
def test_representative_selection_covers_space():
    rng = np.random.default_rng(0)
    clusters = []
    for center in ([5, 0, 0], [0, 5, 0], [0, 0, 5], [-5, 0, 0]):
        for index in range(10):
            clusters.append(np.array(center, dtype=float) + rng.normal(0, 0.1, 3))
    entries = [_entry(f"e{i}", vector) for i, vector in enumerate(clusters)]
    selected = select_representative_queries(entries, budget=4)
    assert len(selected) == 4
    # One pick from each cluster: the four selected vectors should be far apart.
    picked = np.vstack([entry.embedding for entry in selected])
    pairwise_min = min(
        np.linalg.norm(picked[i] - picked[j]) for i in range(4) for j in range(4) if i != j
    )
    assert pairwise_min > 3.0


def test_representative_selection_budget_edges():
    entries = [_entry(f"e{i}", [float(i), 0.0]) for i in range(5)]
    assert select_representative_queries(entries, 0) == []
    assert select_representative_queries(entries, 10) == entries


def test_expire_stale_entries_prefers_redundant_then_oldest():
    kb = KnowledgeBase()
    kb.add(_entry("old-dup", [1.0, 0.0, 0.0]))
    kb.add(_entry("unique", [0.0, 1.0, 0.0]))
    kb.add(_entry("new-dup", [1.0, 0.001, 0.0]))
    removed = expire_stale_entries(kb, max_entries=2)
    assert [entry.entry_id for entry in removed] == ["old-dup"]
    assert len(kb) == 2
    assert "new-dup" in kb and "unique" in kb
    # Further shrinking falls back to oldest-first.
    removed_more = expire_stale_entries(kb, max_entries=1)
    assert len(kb) == 1
    assert len(removed_more) == 1


def test_expire_noop_when_under_budget():
    kb = KnowledgeBase()
    kb.add(_entry("a", [1.0, 0.0]))
    assert expire_stale_entries(kb, max_entries=5) == []
    assert len(kb) == 1
