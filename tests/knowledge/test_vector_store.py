"""Tests for the flat and HNSW vector stores."""

import numpy as np
import pytest

from repro.knowledge.vector_store import (
    FlatVectorStore,
    HNSWVectorStore,
    cosine_distance,
    euclidean_distance,
)


def _random_vectors(count: int, dimensions: int = 16, seed: int = 0) -> list[np.ndarray]:
    rng = np.random.default_rng(seed)
    return [rng.normal(size=dimensions) for _ in range(count)]


# ----------------------------------------------------------------- metrics
def test_cosine_distance_basics():
    a = np.array([1.0, 0.0])
    b = np.array([0.0, 1.0])
    assert cosine_distance(a, a) == pytest.approx(0.0)
    assert cosine_distance(a, b) == pytest.approx(1.0)
    assert cosine_distance(a, -a) == pytest.approx(2.0)
    assert cosine_distance(a, np.zeros(2)) == 1.0


def test_euclidean_distance_basics():
    assert euclidean_distance(np.array([0.0, 0.0]), np.array([3.0, 4.0])) == pytest.approx(5.0)


def test_unknown_metric_rejected():
    with pytest.raises(ValueError):
        FlatVectorStore(metric="manhattan")


# -------------------------------------------------------------- flat store
def test_flat_store_exact_nearest_neighbor():
    store = FlatVectorStore()
    vectors = _random_vectors(50)
    for index, vector in enumerate(vectors):
        store.add(f"v{index}", vector)
    query = vectors[7] + 1e-6
    results = store.search(query, k=3)
    assert results[0].key == "v7"
    assert results[0].distance < results[1].distance <= results[2].distance
    assert len(store) == 50
    assert "v7" in store


def test_flat_store_duplicate_and_missing_keys():
    store = FlatVectorStore()
    store.add("a", np.ones(4))
    with pytest.raises(KeyError):
        store.add("a", np.ones(4))
    with pytest.raises(KeyError):
        store.remove("b")


def test_flat_store_remove_renumbers():
    store = FlatVectorStore()
    for index, vector in enumerate(_random_vectors(10)):
        store.add(f"v{index}", vector)
    store.remove("v3")
    assert len(store) == 9
    assert "v3" not in store.keys()
    # Remaining keys still searchable.
    assert {result.key for result in store.search(np.zeros(16), k=9)} == set(store.keys())


def test_flat_store_k_bounds():
    store = FlatVectorStore()
    assert store.search(np.zeros(4), k=3) == []
    store.add("a", np.ones(4))
    assert len(store.search(np.ones(4), k=10)) == 1
    assert store.search(np.ones(4), k=0) == []


def test_flat_store_euclidean_metric():
    store = FlatVectorStore(metric="euclidean")
    store.add("near", np.array([1.0, 1.0]))
    store.add("far", np.array([10.0, 10.0]))
    assert store.search(np.array([0.0, 0.0]), k=1)[0].key == "near"


# -------------------------------------------------------------- HNSW store
def test_hnsw_matches_flat_on_small_data():
    vectors = _random_vectors(200, seed=5)
    flat = FlatVectorStore()
    hnsw = HNSWVectorStore(seed=1)
    for index, vector in enumerate(vectors):
        flat.add(f"v{index}", vector)
        hnsw.add(f"v{index}", vector)
    queries = _random_vectors(25, seed=9)
    recall_hits = 0
    for query in queries:
        exact = {result.key for result in flat.search(query, k=5)}
        approx = {result.key for result in hnsw.search(query, k=5)}
        recall_hits += len(exact & approx)
    recall = recall_hits / (len(queries) * 5)
    assert recall >= 0.9  # HNSW should be a high-recall approximation


def test_hnsw_handles_deletions():
    hnsw = HNSWVectorStore(seed=2)
    vectors = _random_vectors(40, seed=3)
    for index, vector in enumerate(vectors):
        hnsw.add(f"v{index}", vector)
    target = hnsw.search(vectors[11], k=1)[0].key
    hnsw.remove(target)
    assert len(hnsw) == 39
    assert target not in hnsw.keys()
    results = hnsw.search(vectors[11], k=5)
    assert target not in {result.key for result in results}
    with pytest.raises(KeyError):
        hnsw.remove(target)


def test_hnsw_duplicate_key_rejected():
    hnsw = HNSWVectorStore()
    hnsw.add("a", np.ones(8))
    with pytest.raises(KeyError):
        hnsw.add("a", np.ones(8))


def test_hnsw_empty_and_single_entry():
    hnsw = HNSWVectorStore()
    assert hnsw.search(np.ones(8), k=2) == []
    hnsw.add("only", np.ones(8))
    results = hnsw.search(np.ones(8), k=2)
    assert [result.key for result in results] == ["only"]


def test_hnsw_parameter_validation():
    with pytest.raises(ValueError):
        HNSWVectorStore(M=1)


def test_hnsw_delete_then_search_keeps_full_recall():
    """Tombstones must not shrink the result list below k live hits."""
    hnsw = HNSWVectorStore(seed=4, ef_search=8)
    vectors = _random_vectors(60, seed=7)
    for index, vector in enumerate(vectors):
        hnsw.add(f"v{index}", vector)
    # Delete half the store: the tombstones would previously crowd out the
    # ef candidate list and search(k) could return fewer than k live hits.
    for index in range(0, 60, 2):
        hnsw.remove(f"v{index}")
    assert len(hnsw) == 30
    for query in _random_vectors(10, seed=8):
        results = hnsw.search(query, k=10)
        keys = [result.key for result in results]
        assert len(keys) == 10
        assert len(set(keys)) == 10
        assert all(int(key[1:]) % 2 == 1 for key in keys)  # only live entries


def test_hnsw_search_caps_at_live_count():
    hnsw = HNSWVectorStore(seed=4)
    for index, vector in enumerate(_random_vectors(8, seed=2)):
        hnsw.add(f"v{index}", vector)
    for index in range(5):
        hnsw.remove(f"v{index}")
    results = hnsw.search(np.zeros(16), k=8)
    assert len(results) == 3  # everything still alive


def test_contains_is_constant_time_dispatch():
    """__contains__ must hit the key dicts, not materialize keys()."""
    flat = FlatVectorStore()
    hnsw = HNSWVectorStore(seed=1)
    for index, vector in enumerate(_random_vectors(10, seed=6)):
        flat.add(f"v{index}", vector)
        hnsw.add(f"v{index}", vector)

    def forbidden(self):  # any keys() call inside `in` is the old slow path
        raise AssertionError("__contains__ must not call keys()")

    flat.keys = forbidden.__get__(flat)
    hnsw.keys = forbidden.__get__(hnsw)
    assert "v3" in flat and "missing" not in flat
    assert "v3" in hnsw and "missing" not in hnsw
    del flat.keys, hnsw.keys
    hnsw.remove("v3")
    assert "v3" not in hnsw  # tombstoned keys are not members


def test_add_many_convenience():
    store = FlatVectorStore()
    store.add_many((f"v{i}", vector) for i, vector in enumerate(_random_vectors(5)))
    assert len(store) == 5
