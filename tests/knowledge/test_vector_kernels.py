"""Equivalence tests for the batched distance kernels.

``pairwise_distances`` is checked row-by-row against the scalar distance
functions, the flat store's swap-with-last ``remove`` is checked for
key→index consistency under interleaved mutation, and the HNSW store's
batched frontier scoring is checked for exact result parity against the
retained scalar path — on the *same* graph, by toggling
``use_batched_kernels`` between searches, so any divergence is the kernel's
fault and not an artifact of two independently built graphs.
"""

import numpy as np
import pytest

from repro.knowledge.vector_store import (
    FlatVectorStore,
    HNSWVectorStore,
    cosine_distance,
    euclidean_distance,
)


def _random_vectors(count: int, dimensions: int = 16, seed: int = 0) -> list[np.ndarray]:
    rng = np.random.default_rng(seed)
    return [rng.normal(size=dimensions) for _ in range(count)]


# -------------------------------------------------------------- kernel math
@pytest.mark.parametrize("metric", ["cosine", "euclidean"])
def test_pairwise_distances_match_scalar_loop(metric):
    store = FlatVectorStore(metric=metric)
    scalar = cosine_distance if metric == "cosine" else euclidean_distance
    rng = np.random.default_rng(3)
    matrix = rng.normal(size=(64, 16))
    query = rng.normal(size=16)
    batched = store.pairwise_distances(query, matrix)
    expected = np.array([scalar(query, row) for row in matrix])
    np.testing.assert_allclose(batched, expected, atol=1e-9)


def test_pairwise_distances_accepts_cached_norms():
    store = FlatVectorStore(metric="euclidean")
    rng = np.random.default_rng(4)
    matrix = rng.normal(size=(32, 8))
    query = rng.normal(size=8)
    plain = store.pairwise_distances(query, matrix)
    cached = store.pairwise_distances(
        query,
        matrix,
        row_norms=np.linalg.norm(matrix, axis=1),
        row_sq_norms=np.einsum("ij,ij->i", matrix, matrix),
    )
    np.testing.assert_allclose(plain, cached, atol=1e-12)


def test_pairwise_cosine_zero_vectors_maximally_distant():
    store = FlatVectorStore(metric="cosine")
    matrix = np.vstack([np.zeros(4), np.ones(4)])
    assert store.pairwise_distances(np.ones(4), matrix)[0] == pytest.approx(1.0)
    # A zero query is maximally distant from everything, like cosine_distance.
    np.testing.assert_allclose(
        store.pairwise_distances(np.zeros(4), matrix), [1.0, 1.0], atol=1e-12
    )


def test_pairwise_euclidean_identity_never_goes_negative():
    """Catastrophic cancellation in ‖a‖²+‖b‖²−2a·b must clamp to 0, not NaN."""
    store = FlatVectorStore(metric="euclidean")
    vector = np.full(16, 1e8)
    distances = store.pairwise_distances(vector, np.vstack([vector, vector]))
    assert np.all(np.isfinite(distances))
    np.testing.assert_allclose(distances, [0.0, 0.0], atol=1e-3)


# ------------------------------------------------- flat store cache + remove
def test_flat_search_matches_bruteforce_after_interleaved_mutation():
    store = FlatVectorStore()
    vectors = {f"v{i}": v for i, v in enumerate(_random_vectors(40, seed=11))}
    alive = dict(vectors)
    for key, vector in vectors.items():
        store.add(key, vector)
    # Interleave removes and adds so the swap-with-last path and the dirty
    # matrix rebuild both run repeatedly.
    rng = np.random.default_rng(12)
    for round_index in range(12):
        victim = sorted(alive)[int(rng.integers(len(alive)))]
        store.remove(victim)
        del alive[victim]
        if round_index % 3 == 0:
            key = f"new{round_index}"
            vector = rng.normal(size=16)
            store.add(key, vector)
            alive[key] = vector
        # key→index map stays consistent with the key list after every swap.
        assert store._index_of == {key: i for i, key in enumerate(store._keys)}
        query = rng.normal(size=16)
        results = store.search(query, k=5)
        expected = sorted(alive, key=lambda k: cosine_distance(query, alive[k]))[:5]
        assert [result.key for result in results] == expected
    assert len(store) == len(alive)
    assert set(store.keys()) == set(alive)


def test_flat_remove_last_key_no_swap():
    store = FlatVectorStore()
    for index, vector in enumerate(_random_vectors(3, seed=1)):
        store.add(f"v{index}", vector)
    store.remove("v2")  # last slot: pop without swapping
    assert store.keys() == ["v0", "v1"]
    assert store._index_of == {"v0": 0, "v1": 1}


# --------------------------------------------------- HNSW batched == scalar
def test_hnsw_batched_and_scalar_paths_identical_with_tombstones():
    """Same 1k-entry graph, both kernel paths, identical results.

    The store is built once (graph construction is part of the store's
    state), then ``use_batched_kernels`` is flipped between searches so the
    comparison isolates the search kernels themselves.  Tombstones are
    included because deletion changes the ef inflation and the layer-0
    candidate filtering.
    """
    store = HNSWVectorStore(seed=17)
    vectors = _random_vectors(1000, seed=19)
    for index, vector in enumerate(vectors):
        store.add(f"v{index}", vector)
    for index in range(0, 1000, 7):
        store.remove(f"v{index}")
    queries = _random_vectors(20, seed=23)
    for query in queries:
        store.use_batched_kernels = True
        batched = store.search(query, k=5)
        store.use_batched_kernels = False
        scalar = store.search(query, k=5)
        assert [r.key for r in batched] == [r.key for r in scalar]
        np.testing.assert_allclose(
            [r.distance for r in batched], [r.distance for r in scalar], atol=1e-9
        )


@pytest.mark.parametrize("metric", ["cosine", "euclidean"])
def test_hnsw_batched_and_scalar_paths_identical_small(metric):
    store = HNSWVectorStore(metric=metric, seed=5)
    for index, vector in enumerate(_random_vectors(120, seed=6)):
        store.add(f"v{index}", vector)
    for query in _random_vectors(10, seed=7):
        store.use_batched_kernels = True
        batched = store.search(query, k=4)
        store.use_batched_kernels = False
        scalar = store.search(query, k=4)
        assert [r.key for r in batched] == [r.key for r in scalar]
        np.testing.assert_allclose(
            [r.distance for r in batched], [r.distance for r in scalar], atol=1e-9
        )


def test_hnsw_scalar_construction_builds_searchable_graph():
    """The scalar path must stay usable end-to-end, not just for search."""
    store = HNSWVectorStore(seed=2, use_batched_kernels=False)
    vectors = _random_vectors(80, seed=3)
    for index, vector in enumerate(vectors):
        store.add(f"v{index}", vector)
    results = store.search(vectors[10] + 1e-8, k=3)
    assert results[0].key == "v10"


def test_hnsw_dimension_mismatch_rejected():
    store = HNSWVectorStore()
    store.add("a", np.ones(8))
    with pytest.raises(ValueError):
        store.add("b", np.ones(4))


def test_search_spans_report_kernel_accounting():
    from repro.obs.store import TraceStore
    from repro.obs.tracing import get_tracer, traced

    flat = FlatVectorStore()
    hnsw = HNSWVectorStore(seed=9)
    for index, vector in enumerate(_random_vectors(50, seed=8)):
        flat.add(f"v{index}", vector)
        hnsw.add(f"v{index}", vector)
    store = TraceStore()
    with traced(store=store):
        tracer = get_tracer()
        with tracer.span("test.root", root=True):
            flat.search(np.ones(16), k=3)
            hnsw.search(np.ones(16), k=3)
    spans = [span for trace in store.traces() for span in trace.find("kb.search")]
    by_store = {span.attributes["store"]: span.attributes for span in spans}
    assert by_store["flat"]["kernel_batches"] == 1
    assert by_store["flat"]["vectors_scored"] == 50
    assert by_store["hnsw"]["kernel_batches"] >= 1
    assert by_store["hnsw"]["vectors_scored"] >= by_store["hnsw"]["kernel_batches"]
