"""Tests for prompt assembly (Table I) and structural plan reasoning."""

import numpy as np

from repro.htap.engines.base import EngineKind
from repro.htap.plan.serialize import plan_to_dict
from repro.knowledge.entry import KnowledgeEntry
from repro.llm.prompts import KnowledgeAttachment, PromptBuilder, QuestionAttachment
from repro.llm.reasoning import extract_signals, extract_signals_with_costs, factor_applies, hypothesize_factors
from repro.workloads.labeling import ExplanationFactor


def _question(system, sql, execution=None) -> QuestionAttachment:
    pair = system.explain_pair(sql)
    return QuestionAttachment(
        sql=sql,
        tp_plan=plan_to_dict(pair.tp_plan),
        ap_plan=plan_to_dict(pair.ap_plan),
        execution_result=None if execution is None else execution,
        faster_engine=None,
    )


# ----------------------------------------------------------------- prompts
def test_table_i_sections_follow_paper(system):
    builder = PromptBuilder(data_size_gb=100.0)
    rows = builder.table_i_rows()
    assert set(rows) == {"Background information", "Task description", "Additional user context"}
    assert "100GB" in rows["Background information"]
    assert "row-oriented storage" in rows["Background information"]
    assert "not allowed to compare the cost estimates" in rows["Background information"]
    assert "KNOWLEDGE" in rows["Task description"]
    assert "return None" in rows["Task description"]
    assert "c_phone" in rows["Additional user context"]


def test_prompt_contains_knowledge_and_question(system, example1_sql):
    builder = PromptBuilder()
    question = _question(system, example1_sql, execution="AP was faster")
    entry = KnowledgeEntry(
        entry_id="k1",
        embedding=np.zeros(4),
        sql="SELECT COUNT(*) FROM orders;",
        plan_details={"TP": {}, "AP": {}},
        faster_engine=EngineKind.AP,
        tp_latency_seconds=4.0,
        ap_latency_seconds=0.4,
        expert_explanation="AP is faster because of hash joins.",
        factors=("hash_join_vs_nested_loop",),
    )
    knowledge = [KnowledgeAttachment.from_entry(entry, similarity=0.93)]
    payload = builder.build(question, knowledge, user_notes="An index exists on c_phone.")
    assert "KNOWLEDGE 1:" in payload.text
    assert "Historical expert explanation: AP is faster because of hash joins." in payload.text
    assert "QUESTION:" in payload.text
    assert "New execution result: AP was faster" in payload.text
    assert "Additional user context: An index exists on c_phone." in payload.text
    attachments = payload.attachments()
    assert attachments["question"] is question
    assert attachments["knowledge"] == knowledge


def test_prompt_without_knowledge_says_so(system, example1_sql):
    payload = PromptBuilder().build(_question(system, example1_sql))
    assert "no relevant historical queries were retrieved" in payload.text


def test_cost_guard_can_be_ablated(system, example1_sql):
    question = _question(system, example1_sql)
    guarded = PromptBuilder().build(question, forbid_cost_comparison=True)
    unguarded = PromptBuilder().build(question, forbid_cost_comparison=False)
    assert "not allowed to compare the cost estimates" in guarded.text
    assert "not allowed to compare the cost estimates" not in unguarded.text


# --------------------------------------------------------------- reasoning
def test_signals_for_example1(system, example1_sql):
    question = _question(system, example1_sql)
    signals = extract_signals(example1_sql, question.tp_plan, question.ap_plan)
    assert signals.tp_uses_nested_loop
    assert signals.ap_uses_hash_join
    assert not signals.tp_uses_index
    assert signals.sql_wraps_column_in_function
    assert signals.is_large_scan
    assert signals.has_aggregation


def test_signals_with_costs_exposes_root_costs(system, example1_sql):
    question = _question(system, example1_sql)
    signals = extract_signals_with_costs(example1_sql, question.tp_plan, question.ap_plan)
    assert signals.ap_total_cost > signals.tp_total_cost > 0


def test_signals_for_topn_offset(system):
    sql = "SELECT l_orderkey FROM lineitem ORDER BY l_extendedprice DESC LIMIT 10 OFFSET 10000;"
    question = _question(system, sql)
    signals = extract_signals(sql, question.tp_plan, question.ap_plan)
    assert signals.has_top_n
    assert signals.offset_rows >= 10_000
    assert signals.limit_rows == 10


def test_factor_applies_consistency(system, example1_sql):
    question = _question(system, example1_sql)
    signals = extract_signals(example1_sql, question.tp_plan, question.ap_plan)
    assert factor_applies(ExplanationFactor.HASH_JOIN_VS_NESTED_LOOP.value, signals)
    assert factor_applies(ExplanationFactor.NO_USABLE_INDEX.value, signals)
    assert factor_applies(ExplanationFactor.INDEX_DEFEATED_BY_FUNCTION.value, signals)
    assert not factor_applies(ExplanationFactor.SELECTIVE_INDEX_ACCESS.value, signals)
    assert not factor_applies(ExplanationFactor.INDEX_PROVIDES_ORDER.value, signals)
    assert not factor_applies("not_a_factor", signals)


def test_hypothesize_factors_respects_winner(system, example1_sql):
    question = _question(system, example1_sql)
    signals = extract_signals(example1_sql, question.tp_plan, question.ap_plan)
    ap_factors = hypothesize_factors(signals, EngineKind.AP)
    assert ap_factors[0] == ExplanationFactor.HASH_JOIN_VS_NESTED_LOOP.value
    tp_factors = hypothesize_factors(signals, EngineKind.TP)
    assert all(ExplanationFactor(value).favours is EngineKind.TP for value in tp_factors)


def test_hypothesize_factors_point_lookup(system):
    sql = "SELECT o_totalprice FROM orders WHERE o_orderkey = 99;"
    question = _question(system, sql)
    signals = extract_signals(sql, question.tp_plan, question.ap_plan)
    factors = hypothesize_factors(signals, EngineKind.TP)
    assert ExplanationFactor.SELECTIVE_INDEX_ACCESS.value in factors
