"""Tests for the offline simulated LLM."""

import pytest

from repro.htap.engines.base import EngineKind
from repro.htap.plan.serialize import plan_to_dict
from repro.llm.client import LLMRequest, NONE_ANSWER
from repro.llm.prompts import KnowledgeAttachment, PromptBuilder, QuestionAttachment
from repro.llm.simulated import SimulatedLLM


def _question(system, sql, faster=None) -> QuestionAttachment:
    pair = system.explain_pair(sql)
    result_text = None if faster is None else f"{faster.value} was faster"
    return QuestionAttachment(
        sql=sql,
        tp_plan=plan_to_dict(pair.tp_plan),
        ap_plan=plan_to_dict(pair.ap_plan),
        execution_result=result_text,
        faster_engine=faster,
    )


def _knowledge(sql="SELECT COUNT(*) FROM orders, customer WHERE o_custkey = c_custkey;",
               faster=EngineKind.AP,
               factors=("hash_join_vs_nested_loop", "no_usable_index"),
               similarity=0.95) -> KnowledgeAttachment:
    return KnowledgeAttachment(
        sql=sql,
        plan_details={"TP": {}, "AP": {}},
        faster_engine=faster,
        execution_result=f"{faster.value} was faster",
        expert_explanation="Expert text.",
        factors=factors,
        similarity=similarity,
    )


def _request(system, sql, knowledge, faster=EngineKind.AP) -> LLMRequest:
    question = _question(system, sql, faster)
    payload = PromptBuilder().build(question, knowledge)
    return LLMRequest(prompt=payload.text, attachments=payload.attachments())


def test_grounded_answer_cites_applicable_factors(system, example1_sql):
    llm = SimulatedLLM(seed=7)
    response = llm.generate(_request(system, example1_sql, [_knowledge(), _knowledge(similarity=0.9)]))
    assert not response.is_none_answer
    assert response.claims["grounded"]
    assert response.claims["winner"] == "AP"
    assert "hash_join_vs_nested_loop" in response.claims["factors"]
    assert "hash join" in response.text.lower()


def test_irrelevant_knowledge_triggers_none_or_fallback(system):
    # A TP-favourable point lookup with only AP-favourable knowledge available.
    sql = "SELECT o_totalprice FROM orders WHERE o_orderkey = 7;"
    llm = SimulatedLLM(seed=7, fallback_none_rate=1.0)
    response = llm.generate(_request(system, sql, [_knowledge()], faster=EngineKind.TP))
    assert response.is_none_answer
    assert response.text == NONE_ANSWER
    llm_answering = SimulatedLLM(seed=7, fallback_none_rate=0.0)
    response2 = llm_answering.generate(_request(system, sql, [_knowledge()], faster=EngineKind.TP))
    assert not response2.is_none_answer
    assert response2.claims["winner"] == "TP"


def test_ungrounded_answer_exhibits_storage_overemphasis(system, example1_sql):
    llm = SimulatedLLM(seed=7, storage_overemphasis_rate=1.0, cost_bias_rate=0.0)
    question = _question(system, example1_sql, EngineKind.AP)
    payload = PromptBuilder().build(question, knowledge=[])
    response = llm.generate(LLMRequest(prompt=payload.text, attachments=payload.attachments()))
    assert not response.claims["grounded"]
    assert response.claims["factors"][0] == "columnar_parallel_scan"


def test_ungrounded_cost_bias_when_winner_unknown(system, example1_sql):
    llm = SimulatedLLM(seed=7, cost_bias_rate=1.0)
    question = _question(system, example1_sql, faster=None)
    payload = PromptBuilder().build(question, knowledge=[])
    response = llm.generate(LLMRequest(prompt=payload.text, attachments=payload.attachments()))
    assert response.claims["used_cost_comparison"]
    # The cost comparison points at the numerically cheaper TP plan, which is
    # the wrong conclusion for Example 1 — the paper's DBG-PT failure mode.
    assert response.claims["winner"] == "TP"
    assert "cost estimate" in response.text


def test_index_misread_bias_on_function_wrapped_predicate(system, example1_sql):
    llm = SimulatedLLM(seed=7, index_misread_rate=1.0, cost_bias_rate=0.0)
    question = _question(system, example1_sql, EngineKind.AP)
    payload = PromptBuilder().build(question, knowledge=[])
    response = llm.generate(LLMRequest(prompt=payload.text, attachments=payload.attachments()))
    assert response.claims["index_misread"]
    assert "index" in response.text.lower()


def test_latency_model_matches_paper_magnitudes(system, example1_sql):
    llm = SimulatedLLM(seed=7)
    response = llm.generate(_request(system, example1_sql, [_knowledge()]))
    assert response.thinking_seconds <= 2.0
    assert 3.0 <= response.generation_seconds <= 30.0
    assert response.total_seconds == pytest.approx(
        response.thinking_seconds + response.generation_seconds
    )


def test_determinism_per_query(system, example1_sql):
    llm = SimulatedLLM(seed=7)
    first = llm.generate(_request(system, example1_sql, [_knowledge()]))
    second = llm.generate(_request(system, example1_sql, [_knowledge()]))
    assert first.text == second.text
    assert first.claims == second.claims


def test_prompt_without_question_attachment_gets_generic_reply():
    llm = SimulatedLLM(seed=7)
    response = llm.generate(LLMRequest(prompt="Why is my query slow?"))
    assert "execution plans" in response.text
    assert llm.generate_text("Why is my query slow?") == response.text
