"""Tests for the SQL lexer and parser."""

import pytest

from repro.htap.sql import ast
from repro.htap.sql.lexer import LexerError, tokenize
from repro.htap.sql.parser import ParserError, parse_query
from repro.htap.sql.tokens import TokenType


# ------------------------------------------------------------------- lexer
def test_tokenize_basic_query():
    tokens = tokenize("SELECT c_name FROM customer WHERE c_custkey = 5;")
    kinds = [token.type for token in tokens]
    assert kinds[0] == TokenType.KEYWORD
    assert kinds[-1] == TokenType.EOF
    values = [token.value for token in tokens]
    assert "customer" in values
    assert "=" in values


def test_tokenize_string_with_escaped_quote():
    tokens = tokenize("SELECT * FROM nation WHERE n_name = 'o''brien';")
    strings = [token for token in tokens if token.type == TokenType.STRING]
    assert strings[0].value == "o'brien"


def test_tokenize_numbers_and_decimals():
    tokens = tokenize("SELECT 42, 3.14 FROM nation;")
    numbers = [token.value for token in tokens if token.type == TokenType.NUMBER]
    assert numbers == ["42", "3.14"]


def test_tokenize_unterminated_string_raises():
    with pytest.raises(LexerError):
        tokenize("SELECT * FROM nation WHERE n_name = 'egypt")


def test_tokenize_unknown_character_raises():
    with pytest.raises(LexerError):
        tokenize("SELECT @ FROM nation")


def test_keywords_case_insensitive():
    tokens = tokenize("select COUNT(*) from ORDERS")
    assert tokens[0].matches_keyword("SELECT")
    identifiers = [token.value for token in tokens if token.type == TokenType.IDENTIFIER]
    assert "orders" in identifiers


# ------------------------------------------------------------------ parser
def test_parse_example1(example1_sql):
    query = parse_query(example1_sql)
    assert query.tables == ("customer", "nation", "orders")
    assert query.has_aggregation
    assert not query.is_top_n
    select = query.select_items[0].expression
    assert isinstance(select, ast.FunctionCall)
    assert select.name == "COUNT"
    conjuncts = ast.conjuncts(query.where)
    assert len(conjuncts) == 6
    joins = [conjunct for conjunct in conjuncts if ast.is_join_predicate(conjunct)]
    assert len(joins) == 2


def test_parse_top_n_query():
    query = parse_query(
        "SELECT o_orderkey, o_totalprice FROM orders ORDER BY o_totalprice DESC LIMIT 10 OFFSET 100;"
    )
    assert query.is_top_n
    assert query.limit == 10
    assert query.offset == 100
    assert query.order_by[0].descending


def test_parse_group_by_and_aliases():
    query = parse_query(
        "SELECT l_returnflag, COUNT(*) AS cnt, SUM(l_extendedprice) total FROM lineitem "
        "GROUP BY l_returnflag ORDER BY l_returnflag;"
    )
    assert query.select_items[1].alias == "cnt"
    assert query.select_items[2].alias == "total"
    assert len(query.group_by) == 1
    assert query.has_aggregation


def test_parse_explicit_join_folds_into_where():
    query = parse_query(
        "SELECT COUNT(*) FROM customer JOIN orders ON c_custkey = o_custkey WHERE c_mktsegment = 'machinery';"
    )
    assert query.tables == ("customer", "orders")
    joins = [conjunct for conjunct in ast.conjuncts(query.where) if ast.is_join_predicate(conjunct)]
    assert len(joins) == 1


def test_parse_in_between_like_isnull():
    query = parse_query(
        "SELECT c_name FROM customer WHERE c_mktsegment IN ('machinery', 'building') "
        "AND c_acctbal BETWEEN 0 AND 500 AND c_phone NOT LIKE '13%' AND c_comment IS NOT NULL;"
    )
    conjuncts = ast.conjuncts(query.where)
    assert any(isinstance(conjunct, ast.InList) for conjunct in conjuncts)
    assert any(isinstance(conjunct, ast.Between) for conjunct in conjuncts)
    assert any(isinstance(conjunct, ast.Like) and conjunct.negated for conjunct in conjuncts)
    assert any(isinstance(conjunct, ast.IsNull) and conjunct.negated for conjunct in conjuncts)


def test_parse_qualified_column_references():
    query = parse_query("SELECT customer.c_name FROM customer WHERE customer.c_custkey = 7;")
    select = query.select_items[0].expression
    assert isinstance(select, ast.ColumnRef)
    assert select.table == "customer"


def test_parse_or_and_not_precedence():
    query = parse_query(
        "SELECT COUNT(*) FROM orders WHERE o_orderstatus = 'p' OR o_orderstatus = 'f' AND NOT o_shippriority = 1;"
    )
    # AND binds tighter than OR.
    assert isinstance(query.where, ast.Or)
    assert isinstance(query.where.right, ast.And)
    assert isinstance(query.where.right.right, ast.Not)


def test_parser_error_on_missing_from():
    with pytest.raises(ParserError):
        parse_query("SELECT c_name customer;")


def test_parser_error_on_trailing_garbage():
    with pytest.raises(ParserError):
        parse_query("SELECT c_name FROM customer WHERE c_custkey = 1 EXTRA;")


def test_parser_error_on_bad_in_list():
    with pytest.raises(ParserError):
        parse_query("SELECT c_name FROM customer WHERE c_custkey IN (c_nationkey);")


def test_referenced_columns_cover_all_clauses():
    query = parse_query(
        "SELECT c_name FROM customer, orders WHERE c_custkey = o_custkey AND o_totalprice > 10 "
        "GROUP BY c_name ORDER BY c_name LIMIT 5;"
    )
    referenced = query.referenced_columns()
    assert {"c_name", "c_custkey", "o_custkey", "o_totalprice"} <= referenced


def test_conjuncts_roundtrip():
    query = parse_query("SELECT COUNT(*) FROM orders WHERE o_orderstatus = 'p' AND o_totalprice > 10;")
    parts = ast.conjuncts(query.where)
    rebuilt = ast.combine_conjuncts(parts)
    assert ast.conjuncts(rebuilt) == parts
    assert ast.combine_conjuncts([]) is None


def test_query_is_hashable_and_comparable():
    first = parse_query("SELECT c_name FROM customer WHERE c_custkey = 1;")
    second = parse_query("SELECT c_name FROM customer WHERE c_custkey = 1;")
    assert first.select_items == second.select_items
    assert first.where == second.where
