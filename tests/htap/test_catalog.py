"""Tests for the TPC-H catalog."""

import pytest

from repro.htap.catalog import Catalog, ColumnType


def test_all_eight_tpch_tables_present(catalog):
    expected = {"region", "nation", "supplier", "customer", "orders", "lineitem", "part", "partsupp"}
    assert set(catalog.table_names) == expected


def test_row_counts_scale_with_scale_factor():
    small = Catalog(scale_factor=1)
    large = Catalog(scale_factor=100)
    assert large.row_count("orders") == 100 * small.row_count("orders")
    assert large.row_count("lineitem") == 100 * small.row_count("lineitem")


def test_fixed_tables_do_not_scale():
    small = Catalog(scale_factor=1)
    large = Catalog(scale_factor=100)
    assert small.row_count("nation") == large.row_count("nation") == 25
    assert small.row_count("region") == large.row_count("region") == 5


def test_sf100_orders_cardinality_matches_spec(catalog):
    assert catalog.row_count("orders") == 150_000_000
    assert catalog.row_count("customer") == 15_000_000


def test_invalid_scale_factor_rejected():
    with pytest.raises(ValueError):
        Catalog(scale_factor=0)


def test_unknown_table_raises(catalog):
    with pytest.raises(KeyError):
        catalog.table("warehouse")


def test_column_lookup_and_width(catalog):
    orders = catalog.table("orders")
    status = orders.column("o_orderstatus")
    assert status.type is ColumnType.CHAR
    assert status.width_bytes == 1  # width override
    with pytest.raises(KeyError):
        orders.column("o_missing")


def test_resolve_column_finds_unique_owner(catalog):
    table, column = catalog.resolve_column("c_phone")
    assert table.name == "customer"
    assert column.name == "c_phone"
    with pytest.raises(KeyError):
        catalog.resolve_column("not_a_column")


def test_default_indexes_are_primary_keys_only(catalog):
    assert all(index.primary for index in catalog.indexes)
    assert catalog.index_on_column("customer", "c_custkey") is not None
    assert catalog.index_on_column("customer", "c_nationkey") is None


def test_fk_indexes_can_be_enabled():
    with_fk = Catalog(scale_factor=1, include_fk_indexes=True)
    assert with_fk.index_on_column("orders", "o_custkey") is not None
    assert with_fk.index_on_column("customer", "c_nationkey") is not None


def test_create_and_drop_secondary_index():
    catalog = Catalog(scale_factor=1)
    index = catalog.create_index("customer", "c_phone")
    assert catalog.index_on_column("customer", "c_phone") is index
    # Creating again returns the existing index rather than duplicating it.
    assert catalog.create_index("customer", "c_phone") is index
    catalog.drop_index(index.name)
    assert catalog.index_on_column("customer", "c_phone") is None


def test_cannot_drop_primary_key_index():
    catalog = Catalog(scale_factor=1)
    with pytest.raises(ValueError):
        catalog.drop_index("pk_orders")


def test_create_index_on_unknown_column_raises():
    catalog = Catalog(scale_factor=1)
    with pytest.raises(KeyError):
        catalog.create_index("customer", "c_missing")


def test_table_sizes_are_positive_and_scale(catalog):
    assert catalog.table_size_bytes("lineitem") > catalog.table_size_bytes("nation")
    assert catalog.database_size_bytes() > 50e9  # roughly 100 GB class


def test_pk_fk_relationship_detection(catalog):
    assert catalog.join_is_pk_fk("orders", "o_custkey", "customer", "c_custkey")
    assert catalog.join_is_pk_fk("customer", "c_custkey", "orders", "o_custkey")
    assert not catalog.join_is_pk_fk("orders", "o_orderstatus", "customer", "c_custkey")


def test_distinct_values_respects_fixed_domains(catalog):
    nation = catalog.table("nation")
    assert nation.column("n_name").distinct_values(25) == 25
    orders = catalog.table("orders")
    assert orders.column("o_orderstatus").distinct_values(catalog.row_count("orders")) == 3
