"""Tests for selectivity and cardinality estimation."""

import pytest

from repro.htap.sql.parser import parse_query
from repro.htap.statistics import StatisticsCatalog


def _where(statistics: StatisticsCatalog, table: str, condition: str):
    query = parse_query(f"SELECT COUNT(*) FROM {table} WHERE {condition};")
    return statistics.estimate_predicate(table, query.where)


def test_equality_selectivity_uses_distinct_count(statistics):
    estimate = _where(statistics, "orders", "o_orderstatus = 'p'")
    assert estimate.selectivity == pytest.approx(1.0 / 3.0)
    assert estimate.index_eligible
    assert estimate.column == "o_orderstatus"


def test_primary_key_equality_is_extremely_selective(statistics):
    estimate = _where(statistics, "orders", "o_orderkey = 42")
    assert estimate.selectivity <= 1e-7
    assert estimate.index_eligible


def test_in_list_selectivity_scales_with_list_size(statistics):
    two = _where(statistics, "customer", "c_mktsegment IN ('machinery', 'building')")
    one = _where(statistics, "customer", "c_mktsegment IN ('machinery')")
    assert two.selectivity == pytest.approx(2 * one.selectivity)


def test_function_wrapped_predicate_not_index_eligible(statistics):
    estimate = _where(statistics, "customer", "SUBSTRING(c_phone, 1, 2) IN ('20', '40')")
    assert not estimate.index_eligible
    assert estimate.column == "c_phone"
    assert 0.0 < estimate.selectivity < 0.5


def test_conjunction_multiplies_selectivities(statistics):
    combined = _where(statistics, "customer", "c_mktsegment = 'machinery' AND c_nationkey = 4")
    single_a = _where(statistics, "customer", "c_mktsegment = 'machinery'")
    single_b = _where(statistics, "customer", "c_nationkey = 4")
    assert combined.selectivity == pytest.approx(single_a.selectivity * single_b.selectivity)


def test_disjunction_uses_inclusion_exclusion(statistics):
    either = _where(statistics, "orders", "o_orderstatus = 'p' OR o_orderstatus = 'f'")
    single = _where(statistics, "orders", "o_orderstatus = 'p'")
    expected = 2 * single.selectivity - single.selectivity**2
    assert either.selectivity == pytest.approx(expected)
    assert not either.index_eligible


def test_negation_complements_selectivity(statistics):
    positive = _where(statistics, "orders", "o_orderstatus = 'p'")
    negative = _where(statistics, "orders", "NOT o_orderstatus = 'p'")
    assert negative.selectivity == pytest.approx(1.0 - positive.selectivity)


def test_narrow_numeric_between_is_selective(statistics):
    narrow = _where(statistics, "customer", "c_custkey BETWEEN 1000 AND 1100")
    assert narrow.selectivity < 1e-4
    assert narrow.index_eligible


def test_like_prefix_vs_wildcard(statistics):
    prefix = _where(statistics, "part", "p_name LIKE 'forest%'")
    wildcard = _where(statistics, "part", "p_name LIKE '%forest%'")
    assert prefix.index_eligible
    assert not wildcard.index_eligible
    assert prefix.selectivity < wildcard.selectivity


def test_join_selectivity_and_rows(statistics):
    selectivity = statistics.estimate_join_selectivity("orders", "o_custkey", "customer", "c_custkey")
    assert selectivity == pytest.approx(1.0 / 15_000_000)
    rows = statistics.estimate_join_rows(
        150_000_000, 15_000_000, "orders", "o_custkey", "customer", "c_custkey"
    )
    assert rows == pytest.approx(150_000_000, rel=0.01)


def test_group_count_bounded_by_input_rows(statistics):
    groups = statistics.estimate_group_count(1_000.0, [("orders", "o_orderkey")])
    assert groups <= 1_000.0
    few = statistics.estimate_group_count(1e9, [("orders", "o_orderstatus")])
    assert few == pytest.approx(3.0)


def test_selectivities_always_within_unit_interval(statistics):
    conditions = [
        ("orders", "o_orderstatus = 'p'"),
        ("orders", "o_totalprice > 1000"),
        ("customer", "c_acctbal BETWEEN 0 AND 1000"),
        ("customer", "c_phone LIKE '%99%'"),
        ("lineitem", "l_shipdate <= '1995-01-01'"),
        ("nation", "n_name IS NULL"),
    ]
    for table, condition in conditions:
        estimate = _where(statistics, table, condition)
        assert 0.0 <= estimate.selectivity <= 1.0
