"""Tests for query analysis, the two optimizers, and their cost models."""

import pytest

from repro.htap.catalog import Catalog
from repro.htap.engines.ap_optimizer import APOptimizer
from repro.htap.engines.query_analysis import analyze_query
from repro.htap.engines.tp_optimizer import TPOptimizer
from repro.htap.plan.nodes import NodeType
from repro.htap.sql.parser import parse_query


# --------------------------------------------------------- query analysis
def test_analysis_splits_filters_and_joins(catalog, statistics, example1_sql):
    analysis = analyze_query(parse_query(example1_sql), catalog, statistics)
    assert set(analysis.tables) == {"customer", "nation", "orders"}
    assert analysis.join_count == 2
    assert analysis.is_aggregation
    assert not analysis.is_top_n
    customer = analysis.access["customer"]
    assert len(customer.filters) == 2
    assert customer.combined_selectivity < 0.1
    nation = analysis.access["nation"]
    assert nation.filtered_rows == pytest.approx(1.0, abs=1.0)


def test_analysis_collects_required_columns(catalog, statistics):
    query = parse_query(
        "SELECT c_name, o_totalprice FROM customer, orders WHERE c_custkey = o_custkey AND c_mktsegment = 'machinery';"
    )
    analysis = analyze_query(query, catalog, statistics)
    assert {"c_name", "c_custkey", "c_mktsegment"} <= analysis.access["customer"].required_columns
    assert {"o_totalprice", "o_custkey"} <= analysis.access["orders"].required_columns


def test_analysis_rejects_unknown_table(catalog, statistics):
    with pytest.raises(KeyError):
        analyze_query(parse_query("SELECT x FROM warehouse;"), catalog, statistics)


def test_analysis_top_n_and_offset(catalog, statistics):
    query = parse_query("SELECT o_orderkey FROM orders ORDER BY o_totalprice DESC LIMIT 10 OFFSET 500;")
    analysis = analyze_query(query, catalog, statistics)
    assert analysis.is_top_n
    assert analysis.limit == 10
    assert analysis.offset == 500
    assert analysis.order_by_columns == [("orders", "o_totalprice", True)]


# ------------------------------------------------------------ TP optimizer
def test_tp_example1_plan_shape(catalog, example1_sql):
    plan = TPOptimizer(catalog).optimize(parse_query(example1_sql))
    assert plan.node_type == NodeType.GROUP_AGGREGATE
    join_types = [node.node_type for node in plan.join_nodes()]
    assert join_types.count(NodeType.NESTED_LOOP_JOIN) == 2
    assert not plan.uses_index()  # no FK indexes, substring defeats c_phone
    assert set(plan.scanned_tables()) == {"nation", "customer", "orders"}


def test_tp_uses_index_scan_for_selective_indexed_predicate(catalog):
    plan = TPOptimizer(catalog).optimize(parse_query("SELECT o_totalprice FROM orders WHERE o_orderkey = 77;"))
    scans = plan.scan_nodes()
    assert scans[0].node_type == NodeType.INDEX_SCAN
    assert scans[0].index_name == "pk_orders"
    assert scans[0].plan_rows <= 2


def test_tp_secondary_index_used_after_creation():
    catalog = Catalog(scale_factor=100)
    optimizer = TPOptimizer(catalog)
    before = optimizer.optimize(parse_query("SELECT c_name FROM customer WHERE c_phone = '11-111';"))
    assert before.scan_nodes()[0].node_type == NodeType.TABLE_SCAN
    catalog.create_index("customer", "c_phone")
    after = TPOptimizer(catalog).optimize(parse_query("SELECT c_name FROM customer WHERE c_phone = '11-111';"))
    assert after.scan_nodes()[0].node_type == NodeType.INDEX_SCAN


def test_tp_index_nested_loop_join_with_fk_indexes():
    catalog = Catalog(scale_factor=100, include_fk_indexes=True)
    plan = TPOptimizer(catalog).optimize(
        parse_query("SELECT COUNT(*) FROM customer, orders WHERE c_custkey = o_custkey AND c_custkey = 5;")
    )
    assert any(node.node_type == NodeType.INDEX_NESTED_LOOP_JOIN for node in plan.walk())


def test_tp_topn_uses_ordered_index_scan(catalog):
    plan = TPOptimizer(catalog).optimize(
        parse_query("SELECT o_orderkey, o_totalprice FROM orders ORDER BY o_orderkey LIMIT 10;")
    )
    assert plan.node_type == NodeType.LIMIT
    assert any(node.extra.get("Ordered") == "o_orderkey" for node in plan.walk())
    assert not any(node.node_type in (NodeType.SORT, NodeType.TOP_N_SORT) for node in plan.walk())


def test_tp_topn_without_index_uses_bounded_sort(catalog):
    plan = TPOptimizer(catalog).optimize(
        parse_query("SELECT o_orderkey FROM orders ORDER BY o_totalprice DESC LIMIT 10;")
    )
    assert any(node.node_type == NodeType.TOP_N_SORT for node in plan.walk())


def test_tp_group_by_many_groups_sorts(catalog):
    plan = TPOptimizer(catalog).optimize(
        parse_query("SELECT o_custkey, COUNT(*) FROM orders GROUP BY o_custkey;")
    )
    assert any(node.node_type == NodeType.SORT for node in plan.walk())
    plan_few = TPOptimizer(catalog).optimize(
        parse_query("SELECT o_orderstatus, COUNT(*) FROM orders GROUP BY o_orderstatus;")
    )
    assert not any(node.node_type == NodeType.SORT for node in plan_few.walk())


def test_tp_costs_positive_and_monotone_with_children(catalog, example1_sql):
    plan = TPOptimizer(catalog).optimize(parse_query(example1_sql))
    for node in plan.walk():
        assert node.total_cost >= 0
        for child in node.children:
            assert node.total_cost >= child.total_cost * 0.99


# ------------------------------------------------------------ AP optimizer
def test_ap_example1_plan_shape(catalog, example1_sql):
    plan = APOptimizer(catalog).optimize(parse_query(example1_sql))
    assert plan.node_type == NodeType.AGGREGATE
    joins = plan.find_all(NodeType.HASH_JOIN)
    assert len(joins) == 2
    # Build side of the top join is wrapped in a Hash node; probe side is the
    # larger (orders) subtree.
    top_join = joins[0]
    assert top_join.children[1].node_type == NodeType.HASH
    assert "orders" in [node.relation for node in top_join.children[0].walk() if node.relation]
    assert not plan.uses_index()


def test_ap_scans_prune_columns(catalog, example1_sql):
    plan = APOptimizer(catalog).optimize(parse_query(example1_sql))
    customer_scan = next(node for node in plan.scan_nodes() if node.relation == "customer")
    assert set(customer_scan.output_columns) <= {"c_custkey", "c_mktsegment", "c_nationkey", "c_phone"}
    assert customer_scan.extra["Storage"] == "column-oriented"


def test_ap_never_uses_btree_indexes():
    catalog = Catalog(scale_factor=100, include_fk_indexes=True)
    catalog.create_index("customer", "c_phone")
    plan = APOptimizer(catalog).optimize(
        parse_query("SELECT c_name FROM customer WHERE c_phone = '11-111';")
    )
    assert not plan.uses_index()


def test_ap_topn_uses_topn_sort(catalog):
    plan = APOptimizer(catalog).optimize(
        parse_query("SELECT o_orderkey FROM orders ORDER BY o_totalprice DESC LIMIT 10 OFFSET 100;")
    )
    top_n = plan.find_all(NodeType.TOP_N_SORT)
    assert len(top_n) == 1
    assert top_n[0].extra["Limit"] == "10"
    assert top_n[0].extra["Offset"] == "100"


def test_ap_group_by_uses_hash_aggregate(catalog):
    plan = APOptimizer(catalog).optimize(
        parse_query("SELECT l_returnflag, COUNT(*) FROM lineitem GROUP BY l_returnflag;")
    )
    assert plan.node_type == NodeType.HASH_AGGREGATE


def test_cost_units_differ_across_engines(catalog, example1_sql):
    """The paper's central caveat: AP and TP costs are not comparable.

    The AP optimizer's cost for the same query is orders of magnitude larger
    than the TP optimizer's even though AP executes faster.
    """
    query = parse_query(example1_sql)
    tp_cost = TPOptimizer(catalog).optimize(query).total_cost
    ap_cost = APOptimizer(catalog).optimize(query).total_cost
    assert ap_cost > 100 * tp_cost


def test_single_table_queries_have_no_joins(catalog):
    for sql in (
        "SELECT n_name FROM nation WHERE n_regionkey = 2;",
        "SELECT o_totalprice FROM orders WHERE o_orderkey = 5;",
    ):
        tp_plan = TPOptimizer(catalog).optimize(parse_query(sql))
        ap_plan = APOptimizer(catalog).optimize(parse_query(sql))
        assert not tp_plan.join_nodes()
        assert not ap_plan.join_nodes()
