"""Tests for the B+-tree and the row/column storage models."""

import pytest

from repro.htap.storage.btree import BPlusTree
from repro.htap.storage.column_store import ColumnStoreModel
from repro.htap.storage.row_store import RowStoreModel, PAGE_SIZE_BYTES


# ------------------------------------------------------------------ b+tree
def test_btree_insert_and_search():
    tree = BPlusTree(order=4)
    for key in range(100):
        tree.insert(key, f"row-{key}")
    assert len(tree) == 100
    assert tree.search(42) == ["row-42"]
    assert tree.search(1000) == []
    assert 42 in tree
    assert 1000 not in tree


def test_btree_duplicate_keys_accumulate():
    tree = BPlusTree(order=8)
    tree.insert("x", 1)
    tree.insert("x", 2)
    tree.insert("x", 3)
    assert sorted(tree.search("x")) == [1, 2, 3]
    assert len(tree) == 3


def test_btree_range_scan_in_order():
    tree = BPlusTree(order=4)
    for key in range(0, 200, 2):
        tree.insert(key, key * 10)
    scanned = list(tree.range_scan(10, 20))
    assert [key for key, _value in scanned] == [10, 12, 14, 16, 18, 20]
    assert [value for _key, value in scanned] == [100, 120, 140, 160, 180, 200]


def test_btree_items_sorted_even_with_random_insertion_order():
    import random

    keys = list(range(500))
    random.Random(3).shuffle(keys)
    tree = BPlusTree(order=16)
    for key in keys:
        tree.insert(key, key)
    assert [key for key, _ in tree.items()] == sorted(range(500))


def test_btree_delete_removes_all_values():
    tree = BPlusTree(order=4)
    for key in range(50):
        tree.insert(key, key)
    removed = tree.delete(25)
    assert removed == 1
    assert tree.search(25) == []
    assert len(tree) == 49
    assert tree.delete(25) == 0


def test_btree_height_grows_slowly():
    tree = BPlusTree(order=32)
    for key in range(5_000):
        tree.insert(key, key)
    assert tree.height <= 4
    assert tree.leaf_count() >= 5_000 // 33


def test_btree_rejects_tiny_order():
    with pytest.raises(ValueError):
        BPlusTree(order=2)


def test_estimated_height_monotone():
    small = BPlusTree.estimated_height(1_000)
    large = BPlusTree.estimated_height(1_000_000_000)
    assert small <= large
    assert BPlusTree.estimated_height(1) == 1


# --------------------------------------------------------------- row store
def test_row_store_page_counts(catalog):
    model = RowStoreModel(catalog)
    stats = model.table_stats("orders")
    assert stats.row_count == catalog.row_count("orders")
    assert stats.rows_per_page >= 1
    assert stats.page_count == pytest.approx(stats.row_count / stats.rows_per_page, rel=0.01)
    assert stats.size_bytes == stats.page_count * PAGE_SIZE_BYTES


def test_row_store_index_lookup_pages(catalog):
    model = RowStoreModel(catalog)
    pk = catalog.index_on_column("orders", "o_orderkey")
    assert pk is not None
    few = model.index_lookup_pages(pk, matching_rows=1)
    many = model.index_lookup_pages(pk, matching_rows=10_000)
    assert few < many
    assert model.index_height(pk) >= 2


def test_row_store_full_scan_bigger_for_bigger_tables(catalog):
    model = RowStoreModel(catalog)
    assert model.full_scan_pages("lineitem") > model.full_scan_pages("orders") > model.full_scan_pages("nation")


# ------------------------------------------------------------ column store
def test_column_store_compression_reduces_bytes(catalog):
    model = ColumnStoreModel(catalog)
    stats = model.column_stats("orders", "o_custkey")
    assert stats.compressed_bytes < stats.uncompressed_bytes
    assert stats.chunk_count >= 1


def test_column_store_scan_bytes_scale_with_projection(catalog):
    model = ColumnStoreModel(catalog)
    narrow = model.scan_bytes("orders", ["o_custkey"])
    wide = model.scan_bytes("orders", ["o_custkey", "o_orderstatus", "o_totalprice"])
    everything = model.scan_bytes("orders", None)
    assert narrow < wide < everything


def test_zone_map_skipping_bounds(catalog):
    model = ColumnStoreModel(catalog)
    # Selective predicate on a key-like (clustered) column skips chunks.
    key_skip = model.zone_map_skip_fraction("orders", "o_orderkey", selectivity=1e-6)
    # Low-cardinality scattered column cannot skip much.
    status_skip = model.zone_map_skip_fraction("orders", "o_orderstatus", selectivity=0.33)
    assert 0.0 <= status_skip < key_skip <= 0.95


def test_effective_scan_rows_never_exceed_table(catalog):
    model = ColumnStoreModel(catalog)
    rows = catalog.row_count("orders")
    assert model.effective_scan_rows("orders", "o_orderkey", 1e-6) <= rows
    assert model.effective_scan_rows("orders", None, 0.5) == rows
