"""Tests for the execution-latency model and the HTAPSystem facade."""

import pytest

from repro.htap.engines.base import EngineKind
from repro.htap.engines.execution import ExecutionSimulator, HardwareProfile, LatencyBreakdown
from repro.htap.system import HTAPSystem


# ------------------------------------------------------------- EngineKind
def test_engine_kind_properties():
    assert EngineKind.TP.other() is EngineKind.AP
    assert EngineKind.AP.other() is EngineKind.TP
    assert EngineKind.TP.storage_format == "row-oriented"
    assert EngineKind.AP.storage_format == "column-oriented"
    assert str(EngineKind.AP) == "AP"


# -------------------------------------------------------- LatencyBreakdown
def test_breakdown_accumulates_and_finds_dominant():
    breakdown = LatencyBreakdown()
    breakdown.add("scan", 2.0)
    breakdown.add("scan", 1.0)
    breakdown.add("join", 0.5)
    assert breakdown.total_seconds == pytest.approx(3.5)
    assert breakdown.dominant_component() == "scan"
    assert breakdown.as_dict() == {"scan": 3.0, "join": 0.5}


def test_empty_breakdown_dominant_is_startup():
    assert LatencyBreakdown().dominant_component() == "startup"


# ------------------------------------------------------- Example 1 shapes
def test_example1_ap_wins_by_paper_magnitude(system, example1_sql):
    """Example 1: TP ≈ seconds, AP ≈ hundreds of ms, AP wins by ~10-40x."""
    execution = system.run_both(example1_sql)
    assert execution.faster_engine is EngineKind.AP
    assert 2.0 < execution.tp_result.latency_seconds < 15.0
    assert 0.1 < execution.ap_result.latency_seconds < 1.0
    assert 8.0 < execution.speedup < 60.0


def test_example1_tp_bottleneck_is_the_scan(system, example1_sql):
    execution = system.run_both(example1_sql)
    assert execution.tp_result.breakdown.dominant_component() == "scan"


def test_point_lookup_tp_wins(system):
    execution = system.run_both("SELECT o_totalprice FROM orders WHERE o_orderkey = 12345;")
    assert execution.faster_engine is EngineKind.TP
    assert execution.tp_result.latency_seconds < 0.01
    assert execution.ap_result.breakdown.dominant_component() in ("startup", "scan")


def test_indexed_topn_tp_wins(system):
    execution = system.run_both("SELECT o_orderkey, o_totalprice FROM orders ORDER BY o_orderkey LIMIT 10;")
    assert execution.faster_engine is EngineKind.TP
    assert execution.speedup > 5.0


def test_unindexed_topn_ap_wins(system):
    execution = system.run_both(
        "SELECT o_orderkey, o_totalprice FROM orders ORDER BY o_totalprice DESC LIMIT 10;"
    )
    assert execution.faster_engine is EngineKind.AP


def test_large_aggregation_ap_wins(system):
    execution = system.run_both(
        "SELECT l_returnflag, COUNT(*) FROM lineitem GROUP BY l_returnflag;"
    )
    assert execution.faster_engine is EngineKind.AP
    assert execution.speedup > 10.0


def test_small_table_query_tp_wins(system):
    execution = system.run_both("SELECT n_name FROM nation WHERE n_regionkey = 1;")
    assert execution.faster_engine is EngineKind.TP


def test_latencies_are_deterministic(system, example1_sql):
    first = system.run_both(example1_sql)
    second = system.run_both(example1_sql)
    assert first.tp_result.latency_seconds == pytest.approx(second.tp_result.latency_seconds)
    assert first.ap_result.latency_seconds == pytest.approx(second.ap_result.latency_seconds)


def test_hardware_profile_changes_latency(example1_sql):
    fast_ap = HTAPSystem(scale_factor=100, hardware=HardwareProfile(ap_parallelism=64))
    slow_ap = HTAPSystem(scale_factor=100, hardware=HardwareProfile(ap_parallelism=4))
    fast = fast_ap.run_both(example1_sql).ap_result.latency_seconds
    slow = slow_ap.run_both(example1_sql).ap_result.latency_seconds
    assert fast < slow


def test_scale_factor_changes_latency(example1_sql):
    small = HTAPSystem(scale_factor=1).run_both(example1_sql)
    large = HTAPSystem(scale_factor=100).run_both(example1_sql)
    assert small.tp_result.latency_seconds < large.tp_result.latency_seconds


# ------------------------------------------------------------- HTAPSystem
def test_explain_pair_returns_both_plans(system, example1_sql):
    pair = system.explain_pair(example1_sql)
    explained = pair.explain_dicts()
    assert explained["TP"]["Node Type"] == "Group aggregate"
    assert explained["AP"]["Node Type"] == "Aggregate"
    assert pair.plan_for(EngineKind.TP) is pair.tp_plan
    assert pair.plan_for(EngineKind.AP) is pair.ap_plan


def test_execution_summary_mentions_both_latencies(system, example1_sql):
    execution = system.run_both(example1_sql)
    summary = execution.summary()
    assert "TP=" in summary and "AP=" in summary
    assert execution.slower_engine is EngineKind.TP


def test_create_index_changes_tp_plan(example1_sql):
    system = HTAPSystem(scale_factor=100)
    before = system.explain_pair("SELECT c_name FROM customer WHERE c_phone = '30-123';")
    system.create_index("customer", "c_phone")
    after = system.explain_pair("SELECT c_name FROM customer WHERE c_phone = '30-123';")
    assert not before.tp_plan.uses_index()
    assert after.tp_plan.uses_index()


def test_execute_plan_directly(system, example1_sql):
    pair = system.explain_pair(example1_sql)
    simulator = ExecutionSimulator(system.catalog)
    result = simulator.execute(EngineKind.AP, pair.ap_plan)
    assert result.latency_seconds > 0
    assert result.latency_ms == pytest.approx(result.latency_seconds * 1000)
