"""Tests for plan nodes, serialization, derived properties, and diffing."""

import json

import pytest

from repro.htap.plan.diff import diff_plans
from repro.htap.plan.nodes import NodeType, PlanNode
from repro.htap.plan.properties import analyze_plan, compare_properties
from repro.htap.plan.serialize import plan_from_dict, plan_to_dict, plan_to_json, plan_pair_to_dict


def _small_tp_plan() -> PlanNode:
    scan_nation = PlanNode(NodeType.TABLE_SCAN, total_cost=2.75, plan_rows=25, relation="nation")
    filter_nation = PlanNode(
        NodeType.FILTER, total_cost=2.75, plan_rows=2, predicate="n_name = 'egypt'", children=[scan_nation]
    )
    scan_customer = PlanNode(NodeType.TABLE_SCAN, total_cost=290.0, plan_rows=1142, relation="customer")
    filter_customer = PlanNode(
        NodeType.FILTER, total_cost=290.0, plan_rows=114, predicate="c_mktsegment = 'machinery'",
        children=[scan_customer],
    )
    join = PlanNode(
        NodeType.NESTED_LOOP_JOIN, total_cost=1002.0, plan_rows=285, children=[filter_nation, filter_customer]
    )
    return PlanNode(NodeType.GROUP_AGGREGATE, total_cost=5213.0, plan_rows=1, children=[join])


def _small_ap_plan() -> PlanNode:
    scan = PlanNode(
        NodeType.TABLE_SCAN,
        total_cost=0.5,
        plan_rows=135_000_000,
        relation="orders",
        output_columns=("o_custkey", "o_orderstatus"),
        extra={"Storage": "column-oriented"},
    )
    filtered = PlanNode(NodeType.FILTER, total_cost=13.5e6, plan_rows=13_500_000, children=[scan])
    hash_node = PlanNode(NodeType.HASH, total_cost=3.0, plan_rows=2, children=[
        PlanNode(NodeType.TABLE_SCAN, total_cost=0.5, plan_rows=25, relation="nation")
    ])
    join = PlanNode(NodeType.HASH_JOIN, total_cost=16.5e6, plan_rows=134_933, children=[filtered, hash_node])
    return PlanNode(NodeType.AGGREGATE, total_cost=16.5e6, plan_rows=1, children=[join])


# ------------------------------------------------------------------- nodes
def test_walk_is_preorder_and_counts():
    plan = _small_tp_plan()
    node_types = [node.node_type for node in plan.walk()]
    assert node_types[0] == NodeType.GROUP_AGGREGATE
    assert plan.node_count() == 6
    assert plan.depth() == 4


def test_scanned_tables_and_joins():
    plan = _small_tp_plan()
    assert plan.scanned_tables() == ["nation", "customer"]
    assert len(plan.join_nodes()) == 1
    assert len(plan.aggregate_nodes()) == 1
    assert not plan.uses_index()


def test_structural_signature_ignores_costs():
    first = _small_tp_plan()
    second = _small_tp_plan()
    for node in second.walk():
        node.total_cost *= 10
    assert first.structural_signature() == second.structural_signature()


def test_pretty_output_contains_node_names():
    text = _small_tp_plan().pretty()
    assert "Group aggregate" in text
    assert "Nested loop inner join" in text
    assert "Table Scan on customer" in text


def test_node_type_from_display_name_roundtrip():
    for node_type in NodeType:
        assert NodeType.from_display_name(node_type.value) is node_type
    with pytest.raises(ValueError):
        NodeType.from_display_name("Quantum Join")


# --------------------------------------------------------------- serialize
def test_plan_to_dict_matches_paper_format():
    data = plan_to_dict(_small_tp_plan())
    assert data["Node Type"] == "Group aggregate"
    assert data["Total Cost"] == 5213.0
    assert data["Plan Rows"] == 1
    child = data["Plans"][0]
    assert child["Node Type"] == "Nested loop inner join"
    leaf = child["Plans"][0]["Plans"][0]
    assert leaf["Relation Name"] == "nation"


def test_plan_roundtrip_through_dict():
    original = _small_ap_plan()
    rebuilt = plan_from_dict(plan_to_dict(original))
    assert rebuilt.structural_signature() == original.structural_signature()
    assert rebuilt.node_count() == original.node_count()
    orders_scan = next(node for node in rebuilt.walk() if node.relation == "orders")
    assert orders_scan.output_columns == ("o_custkey", "o_orderstatus")
    assert orders_scan.extra["Storage"] == "column-oriented"


def test_plan_to_json_is_valid_json():
    payload = json.loads(plan_to_json(_small_tp_plan()))
    assert payload["Node Type"] == "Group aggregate"


def test_plan_from_dict_requires_node_type():
    with pytest.raises(ValueError):
        plan_from_dict({"Total Cost": 1.0})


def test_plan_pair_to_dict_has_both_engines():
    pair = plan_pair_to_dict(_small_tp_plan(), _small_ap_plan())
    assert set(pair) == {"TP", "AP"}


# -------------------------------------------------------------- properties
def test_analyze_plan_extracts_join_and_scan_info():
    properties = analyze_plan(_small_tp_plan())
    assert properties.join_count == 1
    assert properties.uses_nested_loop
    assert not properties.uses_hash_join
    assert properties.scanned_tables == ["nation", "customer"]
    assert properties.largest_scan_rows == 1142
    assert properties.dominant_join_method == "Nested loop inner join"


def test_analyze_plan_ap_side():
    properties = analyze_plan(_small_ap_plan())
    assert properties.uses_hash_join
    assert properties.storage_format == "column-oriented"
    assert properties.aggregate_methods == ["Aggregate"]


def test_compare_properties_mentions_both_engines():
    comparison = compare_properties(analyze_plan(_small_tp_plan()), analyze_plan(_small_ap_plan()))
    assert "TP joins" in comparison["join_methods"]
    assert "AP joins" in comparison["join_methods"]
    assert "storage" in comparison


# -------------------------------------------------------------------- diff
def test_diff_detects_join_strategy_difference():
    diff = diff_plans(_small_tp_plan(), _small_ap_plan())
    assert diff.join_strategy_differs
    assert "Nested loop inner join" in diff.tp_join_methods
    assert "Inner hash join" in diff.ap_join_methods
    assert diff.cost_ratio > 100  # AP cost is numerically much larger
    lines = diff.summary_lines()
    assert any("Join strategies differ" in line for line in lines)
    assert any("different cost units" in line for line in lines)


def test_diff_scan_differences_cover_all_tables():
    diff = diff_plans(_small_tp_plan(), _small_ap_plan())
    tables = {difference.table for difference in diff.scan_differences}
    assert tables == {"nation", "customer", "orders"}
    orders_diff = next(d for d in diff.scan_differences if d.table == "orders")
    assert orders_diff.tp_access is None
    assert orders_diff.ap_access == "Table Scan"
    assert orders_diff.differs
