"""End-to-end tests for ExplanationService: concurrency, caching, shedding,
deadlines, invalidation, and telemetry (the PR's acceptance criteria)."""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor


from repro.service import ExplanationService, RequestStatus, ServiceErrorCode


# ------------------------------------------------------------- happy paths
def test_cold_request_produces_explanation(service, service_stack):
    _system, _router, _kb, _llm, sqls, _labeled = service_stack
    result = service.explain(sqls[0])
    assert result.ok
    assert result.status is RequestStatus.OK
    assert not result.cache_hit
    assert result.explanation is not None and result.explanation.text
    assert result.explanation.retrieved  # grounded in the knowledge base
    assert result.request_id.startswith("req-")


def test_warm_request_is_cache_hit_and_10x_faster(service, service_stack):
    _system, _router, _kb, _llm, sqls, _labeled = service_stack
    start = time.perf_counter()
    cold = service.explain(sqls[0])
    cold_seconds = time.perf_counter() - start
    assert cold.ok and not cold.cache_hit

    warm_seconds = []
    for _ in range(5):
        start = time.perf_counter()
        warm = service.explain(sqls[0])
        warm_seconds.append(time.perf_counter() - start)
        assert warm.ok and warm.cache_hit
        assert warm.explanation.text == cold.explanation.text
    # Acceptance criterion: warm-cache requests >= 10x faster end-to-end.
    assert cold_seconds / min(warm_seconds) >= 10.0


def test_normalized_sql_variants_share_one_cache_line(service, service_stack):
    _system, _router, _kb, _llm, sqls, _labeled = service_stack
    sql = sqls[0]
    service.explain(sql)
    variant = "  " + sql.rstrip(";").upper().replace(" ", "  ") + " ;"
    # Upper-casing keywords/identifiers and reflowing whitespace must hit;
    # string literals are preserved by the simulator's semantics, so keep them.
    if "'" not in sql:
        result = service.explain(variant)
        assert result.cache_hit


def test_32_concurrent_requests_zero_errors(service, service_stack):
    _system, _router, _kb, _llm, sqls, _labeled = service_stack
    workload = [sqls[i % len(sqls)] for i in range(64)]  # repeating workload
    with ThreadPoolExecutor(max_workers=32) as pool:
        results = list(pool.map(service.explain, workload))
        # Second wave over the same workload: now fully warm.
        second_wave = list(pool.map(service.explain, workload))
    assert len(results) == 64
    assert all(result.ok for result in results), [
        result.error for result in results if not result.ok
    ]
    assert all(result.ok and result.cache_hit for result in second_wave)
    # Some of the first wave's repeats are served from cache too (twins that
    # raced the same cold SQL may each compute, so only a weak bound holds).
    assert any(result.cache_hit for result in results)
    snapshot = service.metrics_snapshot()
    assert snapshot["requests.ok"] == 128
    assert snapshot["requests.submitted"] == 128


def test_plan_cache_skips_replanning_after_kb_write(service, service_stack):
    _system, _router, kb, _llm, sqls, labeled = service_stack
    first = service.explain(sqls[1])
    assert first.ok and not first.plan_cache_hit
    # A KB write evicts explanations but not plans …
    kb.correct(labeled[0].query_id, "corrected text")
    second = service.explain(sqls[1])
    assert second.ok and not second.cache_hit
    assert second.plan_cache_hit  # … so the replay skips parse/optimize/encode.


# ---------------------------------------------------------------- shedding
def test_queue_full_returns_typed_rejection(service_stack):
    system, router, kb, llm, sqls, _labeled = service_stack
    with ExplanationService(
        system, router, kb, llm, max_workers=1, max_in_flight=1
    ) as service:
        futures = [service.submit(sqls[i % len(sqls)]) for i in range(12)]
        results = [future.result() for future in futures]
    shed = [result for result in results if not result.ok]
    served = [result for result in results if result.ok]
    assert served, "at least the first admitted request must be served"
    assert shed, "with a 1-deep budget, most of a 12-burst must be shed"
    for result in shed:
        assert result.status is RequestStatus.REJECTED
        assert result.error is not None
        assert result.error.code is ServiceErrorCode.QUEUE_FULL
        assert result.error.retryable


def test_shutdown_rejects_new_requests(service_stack):
    system, router, kb, llm, sqls, _labeled = service_stack
    service = ExplanationService(system, router, kb, llm)
    service.shutdown()
    result = service.explain(sqls[0])
    assert result.status is RequestStatus.REJECTED
    assert result.error.code is ServiceErrorCode.SERVICE_CLOSED
    assert not result.error.retryable


# ---------------------------------------------------------------- deadlines
def test_expired_deadline_is_typed_failure(service_stack):
    system, router, kb, llm, sqls, _labeled = service_stack
    with ExplanationService(system, router, kb, llm, max_workers=2) as service:
        result = service.explain(sqls[0], deadline_seconds=1e-9)
        assert result.status is RequestStatus.FAILED
        assert result.error.code is ServiceErrorCode.DEADLINE_EXCEEDED
        assert result.error.retryable


def test_generous_deadline_succeeds(service, service_stack):
    _system, _router, _kb, _llm, sqls, _labeled = service_stack
    result = service.explain(sqls[2], deadline_seconds=30.0)
    assert result.ok


# ------------------------------------------------------------- invalidation
def test_ddl_evicts_explanations_and_plans(service, service_stack):
    _system, _router, _kb, _llm, sqls, _labeled = service_stack
    service.explain(sqls[0])
    assert service.explain(sqls[0]).cache_hit
    service.create_index("customer", "c_phone")
    after_ddl = service.explain(sqls[0])
    assert after_ddl.ok
    assert not after_ddl.cache_hit
    assert not after_ddl.plan_cache_hit  # plans re-derived under the new index
    snapshot = service.metrics_snapshot()
    assert snapshot["invalidations.ddl"] == 1


def test_kb_write_evicts_explanations(service, service_stack):
    _system, _router, kb, _llm, sqls, labeled = service_stack
    service.explain(sqls[0])
    kb.correct(labeled[0].query_id, "better wording", None)
    refreshed = service.explain(sqls[0])
    assert refreshed.ok and not refreshed.cache_hit
    assert service.metrics_snapshot()["invalidations.kb_write"] == 1


def test_drop_index_also_invalidates(service, service_stack):
    _system, _router, _kb, _llm, sqls, _labeled = service_stack
    index = service.create_index("customer", "c_phone")
    service.explain(sqls[0])
    service.drop_index(index.name)
    assert not service.explain(sqls[0]).cache_hit


# ---------------------------------------------------------------- telemetry
def test_metrics_snapshot_shape(service, service_stack):
    _system, _router, _kb, _llm, sqls, _labeled = service_stack
    service.explain(sqls[0])
    service.explain(sqls[0])
    snapshot = service.metrics_snapshot()
    assert snapshot["requests.submitted"] == 2
    assert snapshot["requests.ok"] == 2
    cold = snapshot["latency.cold_seconds"]
    assert cold["count"] == 1
    assert {"p50", "p95", "p99", "mean", "max"} <= set(cold)
    assert snapshot["cache"]["explanations"]["hit_rate"] > 0.0
    assert snapshot["batching"]["requests"] == 1
    assert snapshot["in_flight"] == 0


def test_error_results_never_raise(service):
    # Unparseable SQL must come back as a typed INTERNAL_ERROR failure.
    result = service.explain("THIS IS NOT SQL")
    assert result.status is RequestStatus.FAILED
    assert result.error.code is ServiceErrorCode.INTERNAL_ERROR
    assert not result.ok
    assert result.text is None
