"""Concurrent reader/writer/rebalance stress for the sharded KB.

Marked ``shard_stress`` so CI runs these in a dedicated job; they also
stay short enough to ride along in the default (tier-1) run.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.knowledge.entry import KnowledgeEntry
from repro.knowledge.sharding import ShardedKnowledgeBase
from repro.knowledge.vector_store import HNSWVectorStore

pytestmark = pytest.mark.shard_stress


def make_entry(name: str, rng: np.random.Generator, dim: int = 8) -> KnowledgeEntry:
    return KnowledgeEntry(
        entry_id=name,
        embedding=rng.normal(size=dim),
        sql=f"SELECT * FROM t -- {name}",
        plan_details="plan",
        faster_engine="ap",
        tp_latency_seconds=0.2,
        ap_latency_seconds=0.1,
        expert_explanation="because",
        factors=("scan",),
    )


def test_concurrent_readers_and_writers_never_error():
    rng = np.random.default_rng(11)
    sharded = ShardedKnowledgeBase(4)
    sharded.add_many([make_entry(f"seed-{i}", rng) for i in range(120)])
    errors: list[BaseException] = []
    stop = threading.Event()

    def writer(worker: int) -> None:
        wrng = np.random.default_rng(100 + worker)
        serial = 0
        try:
            while not stop.is_set():
                name = f"w{worker}-{serial}"
                sharded.add(make_entry(name, wrng))
                if serial % 3 == 0:
                    sharded.correct(name, "updated")
                sharded.remove(name)
                serial += 1
        except BaseException as exc:  # noqa: BLE001 - collected for the assert
            errors.append(exc)

    def reader(worker: int) -> None:
        qrng = np.random.default_rng(200 + worker)
        try:
            for _ in range(150):
                hits = sharded.retrieve(qrng.normal(size=8), k=5).hits
                assert len(hits) == 5
                # Seed entries never churn, so lookups must always succeed.
                sharded.get(f"seed-{int(qrng.integers(0, 120))}")
        except BaseException as exc:  # noqa: BLE001
            errors.append(exc)

    writers = [threading.Thread(target=writer, args=(i,)) for i in range(2)]
    readers = [threading.Thread(target=reader, args=(i,)) for i in range(3)]
    try:
        for thread in writers + readers:
            thread.start()
        for thread in readers:
            thread.join(timeout=30)
    finally:
        stop.set()
        for thread in writers:
            thread.join(timeout=30)
        sharded.close()
    assert not errors, errors
    assert sharded.count() == 120  # every churn entry was removed again


def test_retrieval_stays_correct_during_rebalance():
    rng = np.random.default_rng(17)
    entries = [make_entry(f"e-{i}", rng) for i in range(160)]
    sharded = ShardedKnowledgeBase(3, vnodes=128)
    sharded.add_many(entries)
    queries = [rng.normal(size=8) for _ in range(8)]
    expected = [
        [h.entry.entry_id for h in sharded.retrieve(query, k=5).hits] for query in queries
    ]
    errors: list[BaseException] = []
    stop = threading.Event()

    def reader() -> None:
        try:
            while not stop.is_set():
                for query, want in zip(queries, expected):
                    got = [h.entry.entry_id for h in sharded.retrieve(query, k=5).hits]
                    # Flat stores are exact: the top-k set must be identical
                    # at every instant of the add-before-remove move window.
                    assert got == want, (got, want)
        except BaseException as exc:  # noqa: BLE001
            errors.append(exc)

    readers = [threading.Thread(target=reader) for _ in range(3)]
    try:
        for thread in readers:
            thread.start()
        added = []
        for _ in range(3):
            added.append(sharded.add_shard().shard)
        for name in added:
            sharded.remove_shard(name)
    finally:
        stop.set()
        for thread in readers:
            thread.join(timeout=30)
        sharded.close()
    assert not errors, errors
    assert sharded.num_shards == 3
    assert len(sharded) == 160


def test_hnsw_bulk_ingest_under_concurrent_retrieval():
    """The bench scenario in miniature: bulk add_many on HNSW shards while
    readers retrieve — no errors, no empty results once seeded."""
    rng = np.random.default_rng(23)
    sharded = ShardedKnowledgeBase(
        4, store_factory=lambda: HNSWVectorStore(M=8, ef_construction=32, ef_search=16)
    )
    sharded.add_many([make_entry(f"seed-{i}", rng) for i in range(80)])
    errors: list[BaseException] = []
    done = threading.Event()

    def writer() -> None:
        wrng = np.random.default_rng(99)
        try:
            for batch in range(6):
                sharded.add_many([make_entry(f"b{batch}-{i}", wrng) for i in range(24)])
            for batch in range(6):
                for i in range(24):
                    sharded.remove(f"b{batch}-{i}")
        except BaseException as exc:  # noqa: BLE001
            errors.append(exc)
        finally:
            done.set()

    def reader(worker: int) -> None:
        qrng = np.random.default_rng(300 + worker)
        try:
            while not done.is_set():
                hits = sharded.retrieve(qrng.normal(size=8), k=3).hits
                assert len(hits) == 3
        except BaseException as exc:  # noqa: BLE001
            errors.append(exc)

    writer_thread = threading.Thread(target=writer)
    readers = [threading.Thread(target=reader, args=(i,)) for i in range(3)]
    try:
        for thread in [writer_thread, *readers]:
            thread.start()
    finally:
        writer_thread.join(timeout=60)
        done.set()
        for thread in readers:
            thread.join(timeout=30)
        sharded.close()
    assert not errors, errors
    assert sharded.count() == 80


def test_per_tenant_writes_do_not_block_other_tenants_reads():
    rng = np.random.default_rng(31)
    sharded = ShardedKnowledgeBase(4)
    sharded.add_many([make_entry(f"a-{i}", rng) for i in range(60)], tenant="a")
    sharded.add_many([make_entry(f"b-{i}", rng) for i in range(60)], tenant="b")
    errors: list[BaseException] = []
    stop = threading.Event()

    def writer_a() -> None:
        wrng = np.random.default_rng(55)
        serial = 0
        try:
            while not stop.is_set():
                name = f"churn-{serial}"
                sharded.add(make_entry(name, wrng), tenant="a")
                sharded.remove(name, tenant="a")
                serial += 1
        except BaseException as exc:  # noqa: BLE001
            errors.append(exc)

    def reader_b() -> None:
        qrng = np.random.default_rng(66)
        try:
            for _ in range(200):
                hits = sharded.retrieve(qrng.normal(size=8), k=4, tenant="b").hits
                assert len(hits) == 4
                assert all(h.entry.entry_id.startswith("b-") for h in hits)
        except BaseException as exc:  # noqa: BLE001
            errors.append(exc)

    writer_thread = threading.Thread(target=writer_a)
    reader_thread = threading.Thread(target=reader_b)
    try:
        writer_thread.start()
        reader_thread.start()
        reader_thread.join(timeout=30)
    finally:
        stop.set()
        writer_thread.join(timeout=30)
        sharded.close()
    assert not errors, errors
    assert sharded.count(tenant="a") == 60
    assert sharded.count(tenant="b") == 60
