"""ServiceConfig merging and the int8-quantized L2 embedding cache."""

import numpy as np
import pytest

from repro.knowledge.quantization import QuantizedVector
from repro.service import ExplanationService, ServiceCache, ServiceConfig


# ------------------------------------------------------------ ServiceConfig
def test_config_defaults_match_legacy_kwargs():
    config = ServiceConfig()
    assert config.top_k == 2
    assert config.max_workers == 4
    assert config.max_in_flight == 64
    assert config.batch_max_size == 16
    assert config.quantize_embedding_cache is False


def test_with_overrides_applies_non_none_only():
    config = ServiceConfig(plan_cache_capacity=100)
    merged = config.with_overrides(top_k=5, max_workers=None)
    assert merged.top_k == 5
    assert merged.max_workers == 4           # None fell through to the config
    assert merged.plan_cache_capacity == 100  # untouched fields survive
    assert config.top_k == 2                  # original is immutable


def test_with_overrides_rejects_unknown_fields():
    with pytest.raises(TypeError, match="unknown ServiceConfig field"):
        ServiceConfig().with_overrides(bogus_knob=3)


def test_with_overrides_no_changes_returns_self():
    config = ServiceConfig()
    assert config.with_overrides(top_k=None) is config


def test_service_accepts_config_and_kwarg_overrides(service_stack):
    system, router, knowledge_base, llm, _sqls, _labeled = service_stack
    config = ServiceConfig(max_workers=2, top_k=1)
    service = ExplanationService(
        system, router, knowledge_base, llm, config=config, top_k=3
    )
    try:
        assert service.config.max_workers == 2  # from the config
        assert service.config.top_k == 3        # explicit kwarg wins
        assert service.explainer.top_k == 3
    finally:
        service.shutdown()


def test_invalid_config_values_still_rejected(service_stack):
    system, router, knowledge_base, llm, _sqls, _labeled = service_stack
    with pytest.raises(ValueError):
        ExplanationService(
            system, router, knowledge_base, llm,
            config=ServiceConfig(max_workers=0),
        )


# ----------------------------------------------------- quantized L2 entries
def test_service_cache_quantizes_plan_embeddings():
    cache = ServiceCache(quantize_embeddings=True)
    embedding = np.random.default_rng(5).normal(size=16)
    assert cache.put_plan("fp1", "execution-sentinel", embedding)
    raw_execution, raw_stored = cache.plans.get("fp1")
    assert isinstance(raw_stored, QuantizedVector)  # stored as int8 codes
    assert raw_stored.nbytes * 4 < embedding.nbytes
    execution, recovered = cache.get_plan("fp1")
    assert execution == "execution-sentinel"
    assert recovered.dtype == np.float64
    assert np.max(np.abs(recovered - embedding)) <= raw_stored.max_abs_error + 1e-12


def test_service_cache_plain_embeddings_pass_through():
    cache = ServiceCache(quantize_embeddings=False)
    embedding = np.arange(8, dtype=np.float64)
    cache.put_plan("fp1", "execution-sentinel", embedding)
    _execution, stored = cache.get_plan("fp1")
    np.testing.assert_array_equal(stored, embedding)
    assert cache.get_plan("missing") is None


def test_get_plan_respects_epoch_guard():
    cache = ServiceCache(quantize_embeddings=True)
    epoch = cache.plans.epoch
    cache.plans.clear()
    assert not cache.put_plan("fp1", "x", np.ones(4), epoch=epoch)
    assert cache.get_plan("fp1") is None


def test_quantized_cache_serves_l2_hits_end_to_end(service_stack):
    system, router, knowledge_base, llm, sqls, _labeled = service_stack
    service = ExplanationService(
        system, router, knowledge_base, llm,
        config=ServiceConfig(quantize_embedding_cache=True, max_workers=2),
    )
    try:
        sql = sqls[0]
        cold = service.explain(sql, user_notes="first")
        assert cold.ok and not cold.plan_cache_hit
        # Different notes → different L1 key, same SQL fingerprint → the L2
        # entry (with its quantized embedding) serves the plan + embedding.
        warm = service.explain(sql, user_notes="second")
        assert warm.ok and warm.plan_cache_hit
        assert warm.explanation is not None
        snapshot = service.metrics_snapshot()
        assert snapshot["cache"]["plans"]["hits"] >= 1
    finally:
        service.shutdown()
