"""Fixtures for the serving-layer tests.

The session-scoped ``system`` / ``trained_router`` / ``knowledge_base``
fixtures from the top-level conftest are read-only and shared; the service
tests that mutate state (DDL, knowledge writes) build their own small stack
so they cannot poison other tests.
"""

from __future__ import annotations

import pytest

from repro.explainer.pipeline import entries_from_labeled
from repro.htap.system import HTAPSystem
from repro.knowledge.knowledge_base import KnowledgeBase
from repro.llm.simulated import SimulatedLLM
from repro.router.router import SmartRouter
from repro.service import ExplanationService
from repro.workloads.experts import SimulatedExpert
from repro.workloads.generator import WorkloadGenerator
from repro.workloads.labeling import WorkloadLabeler


@pytest.fixture()
def service_stack():
    """A private (system, router, kb, llm, workload-sqls) bundle per test."""
    system = HTAPSystem(scale_factor=100.0)
    generator = WorkloadGenerator(seed=21)
    labeler = WorkloadLabeler(system)
    labeled = labeler.label_many(generator.generate(30))
    router = SmartRouter(system.catalog, seed=13)
    router.fit(labeled, epochs=4)
    knowledge_base = KnowledgeBase()
    knowledge_base.add_many(entries_from_labeled(labeled[:12], router, SimulatedExpert()))
    sqls = [item.sql for item in labeled[12:22]]
    return system, router, knowledge_base, SimulatedLLM(seed=7), sqls, labeled


@pytest.fixture()
def service(service_stack):
    system, router, knowledge_base, llm, _sqls, _labeled = service_stack
    svc = ExplanationService(
        system, router, knowledge_base, llm, max_workers=4, max_in_flight=64
    )
    yield svc
    svc.shutdown()
