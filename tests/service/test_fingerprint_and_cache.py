"""Tests for SQL fingerprinting and the LRU+TTL cache levels."""

from __future__ import annotations

from repro.service.cache import LRUTTLCache, ServiceCache
from repro.service.fingerprint import normalize_sql, request_cache_key, sql_fingerprint


# ------------------------------------------------------------- fingerprints
def test_normalize_collapses_whitespace_and_case():
    a = "SELECT  *\nFROM   customer ;"
    b = "select * from customer"
    assert normalize_sql(a) == normalize_sql(b) == "select * from customer"
    assert sql_fingerprint(a) == sql_fingerprint(b)


def test_normalize_preserves_string_literals():
    upper = "SELECT * FROM customer WHERE c_mktsegment = 'MACHINERY'"
    lower = "SELECT * FROM customer WHERE c_mktsegment = 'machinery'"
    assert "'MACHINERY'" in normalize_sql(upper)
    assert sql_fingerprint(upper) != sql_fingerprint(lower)


def test_request_cache_key_varies_with_notes_and_k():
    sql = "SELECT * FROM orders"
    base = request_cache_key(sql)
    assert request_cache_key(sql) == base
    assert request_cache_key(sql, user_notes="index on c_phone") != base
    assert request_cache_key(sql, top_k=3) != request_cache_key(sql, top_k=2)


# -------------------------------------------------------------------- LRU
def test_lru_eviction_order():
    cache = LRUTTLCache(capacity=2)
    cache.put("a", 1)
    cache.put("b", 2)
    assert cache.get("a") == 1  # refresh a
    cache.put("c", 3)           # evicts b (least recently used)
    assert cache.get("b") is None
    assert cache.get("a") == 1
    assert cache.get("c") == 3
    assert cache.stats.evictions == 1


def test_ttl_expiry_with_fake_clock():
    now = [0.0]
    cache = LRUTTLCache(capacity=8, ttl_seconds=10.0, clock=lambda: now[0])
    cache.put("a", "fresh")
    assert cache.get("a") == "fresh"
    now[0] = 9.9
    assert cache.get("a") == "fresh"
    now[0] = 10.1
    assert cache.get("a") is None
    assert cache.stats.expirations == 1
    assert "a" not in cache


def test_hit_miss_accounting_and_invalidate():
    cache = LRUTTLCache(capacity=4)
    cache.put("k", 42)
    assert cache.get("k") == 42
    assert cache.get("unknown") is None
    assert cache.stats.hits == 1
    assert cache.stats.misses == 1
    assert cache.stats.hit_rate == 0.5
    assert cache.invalidate("k") is True
    assert cache.invalidate("k") is False
    assert cache.stats.invalidations == 1
    assert len(cache) == 0


# ----------------------------------------------------------- service cache
def test_kb_write_evicts_only_explanations():
    cache = ServiceCache()
    cache.explanations.put("e1", "explanation")
    cache.plans.put("p1", "plan")
    cache.on_kb_write("add", "entry-1")
    assert cache.explanations.get("e1") is None
    assert cache.plans.get("p1") == "plan"


def test_ddl_evicts_both_levels():
    cache = ServiceCache()
    cache.explanations.put("e1", "explanation")
    cache.plans.put("p1", "plan")
    cache.on_ddl("create_index", "idx_customer_c_phone")
    assert cache.explanations.get("e1") is None
    assert cache.plans.get("p1") is None


def test_epoch_guard_refuses_stale_put_after_clear():
    """A put computed before an invalidation must not repopulate the cache."""
    cache = LRUTTLCache(capacity=8)
    epoch = cache.epoch
    cache.clear()  # invalidation races the in-flight computation
    assert cache.put("k", "stale", epoch=epoch) is False
    assert cache.get("k") is None
    assert cache.put("k", "fresh", epoch=cache.epoch) is True
    assert cache.get("k") == "fresh"


def test_snapshot_shape():
    cache = ServiceCache()
    cache.plans.put("p", 1)
    cache.plans.get("p")
    snap = cache.snapshot()
    assert set(snap) == {"explanations", "plans"}
    assert snap["plans"]["hits"] == 1
    assert snap["plans"]["size"] == 1
