"""Tenancy policy: quotas, weighted fair queueing, and cache isolation."""

from __future__ import annotations

import queue

import pytest

from repro.service import ExplanationService
from repro.service.batching import WeightedFairQueue
from repro.service.cache import ServiceCache
from repro.service.fingerprint import request_cache_key, sql_fingerprint
from repro.service.tenancy import (
    DEFAULT_TENANT,
    TenantConfig,
    TenantRegistry,
    TokenBucket,
)


class FakeClock:
    def __init__(self, now: float = 0.0):
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


# ------------------------------------------------------------- token bucket
def test_token_bucket_burst_then_refill():
    clock = FakeClock()
    bucket = TokenBucket(rate=2.0, capacity=3.0, clock=clock)
    assert [bucket.try_acquire() for _ in range(4)] == [True, True, True, False]
    clock.advance(0.5)  # refills one token at 2/s
    assert bucket.try_acquire()
    assert not bucket.try_acquire()
    clock.advance(100.0)  # refill clamps at capacity
    assert bucket.available == pytest.approx(3.0)


def test_token_bucket_default_capacity_and_validation():
    bucket = TokenBucket(rate=5.0)
    assert bucket.capacity == pytest.approx(10.0)
    assert TokenBucket(rate=0.1).capacity == pytest.approx(1.0)
    with pytest.raises(ValueError):
        TokenBucket(rate=0.0)


def test_tenant_config_validation():
    with pytest.raises(ValueError):
        TenantConfig(name="")
    with pytest.raises(ValueError):
        TenantConfig(name="a", weight=0.0)
    with pytest.raises(ValueError):
        TenantConfig(name="a", requests_per_second=-1.0)
    with pytest.raises(ValueError):
        TenantConfig(name="a", burst=0.0)


def test_registry_weights_quotas_and_open_default():
    clock = FakeClock()
    registry = TenantRegistry(
        (
            TenantConfig(name="gold", weight=4.0),
            TenantConfig(name="tiny", requests_per_second=1.0, burst=2.0),
        ),
        clock=clock,
    )
    assert registry.names() == ("gold", "tiny")
    assert registry.known("gold") and not registry.known("stranger")
    assert registry.weight("gold") == 4.0
    # Unknown tenants are open by default: weight 1.0, no quota.
    assert registry.weight("stranger") == 1.0
    assert all(registry.try_admit("stranger") for _ in range(50))
    assert all(registry.try_admit("gold") for _ in range(50))
    # Quota'd tenant: burst of 2, then rejected until the bucket refills.
    assert [registry.try_admit("tiny") for _ in range(3)] == [True, True, False]
    clock.advance(1.0)
    assert registry.try_admit("tiny")
    with pytest.raises(ValueError):
        TenantRegistry((TenantConfig(name="a"), TenantConfig(name="a")))


# ------------------------------------------------------- weighted fair queue
def test_wfq_fifo_within_tenant_and_empty():
    wfq: WeightedFairQueue[str] = WeightedFairQueue()
    with pytest.raises(queue.Empty):
        wfq.get_nowait()
    with pytest.raises(queue.Empty):
        wfq.get(timeout=0.01)
    for item in ("a1", "a2", "a3"):
        wfq.put(item, tenant="a")
    assert [wfq.get_nowait() for _ in range(3)] == ["a1", "a2", "a3"]
    assert wfq.qsize() == 0


def test_wfq_interleaves_tenants_by_weight():
    wfq: WeightedFairQueue[str] = WeightedFairQueue()
    # Tenant "heavy" (weight 2) should drain twice as fast as "light"
    # (weight 1) when both have a backlog.
    for i in range(4):
        wfq.put(f"light-{i}", tenant="light", weight=1.0)
    for i in range(8):
        wfq.put(f"heavy-{i}", tenant="heavy", weight=2.0)
    order = [wfq.get_nowait() for _ in range(12)]
    # In any drain prefix, heavy items appear ~2x as often as light ones.
    first_six = order[:6]
    heavy_count = sum(1 for item in first_six if item.startswith("heavy"))
    assert heavy_count == 4, order
    # FIFO holds within each tenant regardless of interleaving.
    assert [i for i in order if i.startswith("light")] == [f"light-{i}" for i in range(4)]
    assert [i for i in order if i.startswith("heavy")] == [f"heavy-{i}" for i in range(8)]


def test_wfq_rejects_non_positive_weight():
    wfq: WeightedFairQueue[str] = WeightedFairQueue()
    with pytest.raises(ValueError):
        wfq.put("x", weight=0.0)


# ----------------------------------------------------- fingerprints + caches
def test_fingerprint_tenant_folding():
    sql = "SELECT a FROM t WHERE b = 1"
    # Default/None tenants produce the legacy, byte-identical key.
    assert sql_fingerprint(sql) == sql_fingerprint(sql, tenant=None)
    assert sql_fingerprint(sql) == sql_fingerprint(sql, tenant=DEFAULT_TENANT)
    assert request_cache_key(sql) == request_cache_key(sql, tenant=DEFAULT_TENANT)
    # Distinct tenants get distinct keys for identical SQL.
    acme = sql_fingerprint(sql, tenant="acme")
    zeta = sql_fingerprint(sql, tenant="zeta")
    assert len({sql_fingerprint(sql), acme, zeta}) == 3
    assert request_cache_key(sql, tenant="acme") != request_cache_key(sql, tenant="zeta")


def test_cache_levels_are_isolated_per_tenant():
    cache = ServiceCache()
    cache.level("a").explanations.put("key", "answer-a")
    cache.level("b").explanations.put("key", "answer-b")
    cache.explanations.put("key", "answer-default")
    # Tenant A's KB write clears only tenant A's explanations.
    cache.on_kb_write("add", "entry-1", tenant="a")
    assert cache.level("a").explanations.get("key") is None
    assert cache.level("b").explanations.get("key") == "answer-b"
    assert cache.explanations.get("key") == "answer-default"
    # A legacy un-namespaced KB write clears every tenant's explanations.
    cache.on_kb_write("add", "entry-2")
    assert cache.level("b").explanations.get("key") is None
    assert cache.explanations.get("key") is None


def test_plan_cache_is_tenant_scoped_and_ddl_clears_all():
    cache = ServiceCache()
    cache.put_plan("fp", "exec-a", [1.0, 2.0], tenant="a")
    assert cache.get_plan("fp", tenant="a") == ("exec-a", [1.0, 2.0])
    assert cache.get_plan("fp", tenant="b") is None
    assert cache.get_plan("fp") is None
    # KB writes never touch plans.
    cache.on_kb_write("add", "entry-1", tenant="a")
    assert cache.get_plan("fp", tenant="a") == ("exec-a", [1.0, 2.0])
    # DDL clears every tenant's both levels.
    cache.on_ddl("create_index", "idx")
    assert cache.get_plan("fp", tenant="a") is None


def test_cache_snapshot_uses_tenant_suffixed_keys():
    cache = ServiceCache()
    cache.level("acme")
    snapshot = cache.snapshot()
    assert "explanations" in snapshot and "plans" in snapshot
    assert "explanations.acme" in snapshot and "plans.acme" in snapshot
    assert cache.tenants() == tuple(sorted((DEFAULT_TENANT, "acme")))


# ----------------------------------------------------------- service wiring
def test_service_quota_rejection_and_tenant_isolation(service_stack):
    system, router, knowledge_base, llm, sqls, _labeled = service_stack
    svc = ExplanationService(
        system,
        router,
        knowledge_base,
        llm,
        max_workers=2,
        max_in_flight=32,
        num_shards=2,
        tenants=(TenantConfig(name="tiny", requests_per_second=0.001, burst=2.0),),
    )
    try:
        # Burst of 2, then typed QUOTA_EXCEEDED rejections (retryable).
        outcomes = [svc.explain(sqls[0], tenant="tiny") for _ in range(4)]
        assert [r.status.value for r in outcomes] == ["ok", "ok", "rejected", "rejected"]
        assert outcomes[2].error is not None
        assert outcomes[2].error.code.value == "quota_exceeded"
        assert outcomes[2].error.retryable

        # Other tenants are unaffected by tiny's exhausted bucket, and each
        # tenant warms its own L1 — no cross-tenant cache hits.
        first = svc.explain(sqls[1], tenant="acme")
        assert first.ok and not first.cache_hit
        warm = svc.explain(sqls[1], tenant="acme")
        assert warm.ok and warm.cache_hit
        other = svc.explain(sqls[1], tenant="beta")
        assert other.ok and not other.cache_hit

        snapshot = svc.metrics_snapshot()
        assert snapshot["sharding"]["num_shards"] == 2
        assert snapshot["requests.tenant.acme"] == 2
        assert snapshot["requests.tenant.tiny"] == 4
        assert "explanations.acme" in snapshot["cache"]

        # Tenants ground on the shared (default-namespace) corpus.
        assert first.explanation is not None and len(first.explanation.retrieved) > 0

        # A shared-corpus write stales every tenant's L1: acme's warm
        # entry must drop and the next request recompute.
        shared_id = svc.knowledge_base.entries(tenant=DEFAULT_TENANT)[0].entry_id
        svc.knowledge_base.correct(shared_id, "updated shared grounding")
        recomputed = svc.explain(sqls[1], tenant="acme")
        assert recomputed.ok and not recomputed.cache_hit
    finally:
        svc.shutdown()
