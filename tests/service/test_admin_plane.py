"""The embedded admin plane on a live ExplanationService."""

from __future__ import annotations

import json
import urllib.request

import pytest

from repro.obs.promtext import METRIC_LINE
from repro.obs.sampling import Sampler
from repro.obs.store import TraceStore
from repro.obs.tracing import traced
from repro.service import ExplanationService


def _get(url: str) -> tuple[int, str]:
    with urllib.request.urlopen(url, timeout=5) as response:
        return response.status, response.read().decode()


def test_admin_plane_disabled_by_default(service):
    assert service.admin is None
    assert service.slo is None


def test_admin_plane_end_to_end(service_stack):
    """admin_port=0 starts the server; every endpoint answers over HTTP."""
    system, router, knowledge_base, llm, sqls, _labeled = service_stack
    store = TraceStore(max_recent=32)
    with traced(store=store, sampler=Sampler(head_probability=1.0)):
        service = ExplanationService(
            system, router, knowledge_base, llm, max_workers=2, admin_port=0
        )
        try:
            assert service.admin is not None and service.admin.running
            assert service.admin.port != 0
            for sql in sqls[:3]:
                assert service.explain(sql).ok
            base = service.admin.url

            status, metrics = _get(base + "/metrics")
            assert status == 200
            # service counters, tracer stages, sampler accounting, store
            # retention, and SLO gauges all on one page
            assert "repro_requests_submitted 3" in metrics
            assert "repro_stage_service_explain" in metrics
            assert "repro_sampler_kept 3" in metrics
            assert "repro_store_traces_seen 3" in metrics
            assert "repro_slo_worst_burn_rate" in metrics
            assert "repro_slo_availability_met 1.0" in metrics
            for line in metrics.splitlines():
                assert METRIC_LINE.match(line), f"nonconforming line: {line!r}"

            status, health = _get(base + "/healthz")
            assert status == 200 and json.loads(health)["ok"] is True
            status, ready = _get(base + "/readyz")
            assert status == 200
            names = {check["name"] for check in json.loads(ready)["checks"]}
            assert {"service_open", "worker_pool", "batcher", "queue_depth", "caches"} <= names

            status, traces = _get(base + "/traces")
            payload = json.loads(traces)
            assert payload["stats"]["added"] == 3
            assert payload["recent"][0]["sampled"] == "head"
            trace_id = payload["recent"][0]["trace_id"]
            status, one = _get(f"{base}/traces/{trace_id}")
            assert status == 200 and json.loads(one)["trace_id"] == trace_id

            status, slo = _get(base + "/slo")
            assert status == 200
            assert {e["name"] for e in json.loads(slo)["objectives"]} == {
                "request_latency",
                "availability",
            }
        finally:
            service.shutdown()
        assert not service.admin.running  # shutdown stops the admin plane


def test_rejected_requests_survive_one_percent_sampling(service_stack):
    """Satellite regression: a rejection is always retained, even at 1%."""
    system, router, knowledge_base, llm, sqls, _labeled = service_stack
    store = TraceStore(max_recent=64)
    sampler = Sampler(head_probability=0.01)
    with traced(store=store, sampler=sampler):
        service = ExplanationService(system, router, knowledge_base, llm, max_workers=2)
        service.shutdown()  # every subsequent submit is rejected (closed)
        results = [service.explain(sql) for sql in sqls]
    assert all(not result.ok for result in results)
    retained = store.traces()
    assert len(retained) == len(sqls)
    for trace in retained:
        attributes = trace.root.attributes
        assert attributes["status"] == "rejected"
        assert attributes["sampled"] in ("head", "tail_rejected")
    # every rejection was kept — by the tail rule unless head sampling
    # happened to keep it anyway — and none was dropped
    assert sampler.kept == len(sqls)
    assert sampler.dropped == 0


def test_health_report_degrades_when_batcher_dies(service):
    report = service.health_report()
    assert report.ok
    service.batcher.close()
    report = service.health_report()
    assert not report.ok
    assert "batcher" in {check.name for check in report.failing}


@pytest.mark.parametrize("readiness", [False, True])
def test_health_report_after_shutdown(service_stack, readiness):
    system, router, knowledge_base, llm, _sqls, _labeled = service_stack
    service = ExplanationService(system, router, knowledge_base, llm, max_workers=2)
    service.shutdown()
    report = service.health_report(readiness=readiness)
    assert not report.ok
    assert "service_open" in {check.name for check in report.failing}
