"""Tests for the micro-batcher and the metrics registry."""

from __future__ import annotations

import threading

import numpy as np

from repro.service.batching import MicroBatcher
from repro.service.metrics import LatencyHistogram, MetricsRegistry


# --------------------------------------------------------------- batching
def test_batcher_single_request(trained_router, labeled_workload):
    pair = labeled_workload[0].execution.plan_pair
    with MicroBatcher(trained_router) as batcher:
        embedding = batcher.encode(pair)
    assert np.allclose(embedding, trained_router.embed_pair(pair), atol=1e-9)


def test_batcher_concurrent_requests_match_per_pair(trained_router, labeled_workload):
    pairs = [labeled.execution.plan_pair for labeled in labeled_workload[:16]]
    with MicroBatcher(trained_router, max_batch_size=8, max_wait_seconds=0.01) as batcher:
        barrier = threading.Barrier(len(pairs))
        results: list[np.ndarray | None] = [None] * len(pairs)

        def worker(position: int) -> None:
            barrier.wait()
            results[position] = batcher.encode(pairs[position])

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(len(pairs))]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        stats = batcher.stats()
    for position, pair in enumerate(pairs):
        assert np.allclose(results[position], trained_router.embed_pair(pair), atol=1e-9)
    assert stats["requests"] == 16
    # Concurrent arrivals must actually coalesce into multi-pair batches.
    assert stats["batches"] < 16
    assert stats["mean_batch_size"] > 1.0


def test_lone_request_flushes_without_waiting_for_window(trained_router, labeled_workload):
    """A single cold request must not pay the coalescing wait."""
    import time

    pair = labeled_workload[0].execution.plan_pair
    # An absurd window: if the greedy flush regressed, encode would block
    # for the full 0.5 s instead of returning in single-digit milliseconds.
    with MicroBatcher(trained_router, max_wait_seconds=0.5) as batcher:
        batcher.encode(pair)  # warm the scheduler thread
        start = time.perf_counter()
        batcher.encode(pair)
        elapsed = time.perf_counter() - start
    assert elapsed < 0.25


def test_flush_spans_carry_featurization_split(trained_router, labeled_workload):
    from repro.obs.store import TraceStore
    from repro.obs.tracing import get_tracer, traced

    pair = labeled_workload[0].execution.plan_pair
    store = TraceStore()
    with traced(store=store):
        tracer = get_tracer()
        with tracer.span("test.root", root=True):
            with MicroBatcher(trained_router) as batcher:
                batcher.encode(pair)
    spans = [span for trace in store.traces() for span in trace.find("router.embed_batch")]
    assert spans
    attributes = spans[0].attributes
    assert attributes["batch_size"] == 1
    assert attributes["featurize_seconds"] >= 0.0
    assert attributes["forward_seconds"] > 0.0


def test_embed_batch_reports_timings_dict(trained_router, labeled_workload):
    pairs = [labeled.execution.plan_pair for labeled in labeled_workload[:4]]
    timings: dict[str, float] = {}
    embeddings = trained_router.embed_batch(pairs, timings=timings)
    assert embeddings.shape[0] == len(pairs)
    assert timings["featurize_seconds"] >= 0.0
    assert timings["forward_seconds"] > 0.0


def test_batcher_close_rejects_new_work(trained_router, labeled_workload):
    batcher = MicroBatcher(trained_router)
    batcher.close()
    try:
        batcher.submit(labeled_workload[0].execution.plan_pair)
    except RuntimeError:
        pass
    else:  # pragma: no cover
        raise AssertionError("submit after close must raise")


# ---------------------------------------------------------------- metrics
def test_counter_and_registry():
    registry = MetricsRegistry()
    registry.counter("requests").increment()
    registry.counter("requests").increment(4)
    assert registry.counter("requests").value == 5
    assert registry.snapshot()["requests"] == 5


def test_histogram_percentiles():
    histogram = LatencyHistogram()
    for value in range(1, 101):  # 0.01 .. 1.00
        histogram.record(value / 100.0)
    summary = histogram.summary()
    assert summary["count"] == 100
    assert summary["min"] == 0.01
    assert summary["p50"] == 0.50
    assert summary["p95"] == 0.95
    assert summary["p99"] == 0.99
    assert summary["max"] == 1.0
    assert abs(summary["mean"] - 0.505) < 1e-9
    assert abs(summary["sum"] - 50.5) < 1e-9


def test_histogram_bounded_memory():
    histogram = LatencyHistogram(max_samples=64)
    for value in range(1000):
        histogram.record(float(value))
    assert histogram.count == 1000
    summary = histogram.summary()
    assert summary["count"] == 1000
    assert summary["max"] == 999.0
    # Retained window is the most recent overwrites; percentile still sane.
    assert 0.0 <= summary["p50"] <= 999.0


def test_empty_histogram_summary():
    assert LatencyHistogram().summary() == {
        "count": 0,
        "sum": 0.0,
        "mean": 0.0,
        "min": 0.0,
        "p50": 0.0,
        "p95": 0.0,
        "p99": 0.0,
        "max": 0.0,
    }


def test_histogram_min_survives_ring_overwrite():
    """``min`` is all-time, not window-bound: the smallest sample must
    still be reported after the ring has overwritten it."""
    histogram = LatencyHistogram(max_samples=4)
    histogram.record(0.001)
    for value in range(10, 20):
        histogram.record(float(value))
    summary = histogram.summary()
    assert summary["min"] == 0.001
    assert summary["max"] == 19.0


def test_snapshot_under_concurrent_writers():
    """Satellite: snapshot() racing 16 writer threads must never raise or
    return malformed summaries (the sorted-cache is invalidated by record
    and rebuilt by summary under the same per-histogram lock)."""
    registry = MetricsRegistry()
    names = [f"stage.s{i}" for i in range(4)]
    stop = threading.Event()
    errors: list[BaseException] = []

    def writer(seed: int) -> None:
        value = float(seed + 1)
        try:
            while not stop.is_set():
                registry.histogram(names[seed % len(names)]).record(value)
                registry.counter("writes").increment()
        except BaseException as exc:  # pragma: no cover - failure path
            errors.append(exc)

    threads = [threading.Thread(target=writer, args=(i,)) for i in range(16)]
    for thread in threads:
        thread.start()
    try:
        for _ in range(200):
            snapshot = registry.snapshot()
            for name in names:
                summary = snapshot.get(name)
                if summary is None:  # histogram not created yet
                    continue
                assert summary["count"] >= 1
                assert summary["min"] <= summary["p50"] <= summary["max"]
                assert summary["sum"] >= summary["max"]
    finally:
        stop.set()
        for thread in threads:
            thread.join(timeout=10.0)
    assert not errors
    assert registry.snapshot()["writes"] > 0
