"""Tests for the DBG-PT-style baseline and the no-RAG ablation."""

import pytest

from repro.baselines.dbgpt import DBGPTExplainer
from repro.baselines.norag import NoRagExplainer
from repro.htap.engines.base import EngineKind
from repro.llm.simulated import SimulatedLLM


@pytest.fixture(scope="module")
def dbgpt(system):
    return DBGPTExplainer(system, SimulatedLLM(seed=7))


@pytest.fixture(scope="module")
def norag(system):
    return NoRagExplainer(system, SimulatedLLM(seed=7))


def test_dbgpt_prompt_contains_diff_not_knowledge(dbgpt, example1_sql):
    answer = dbgpt.explain_sql(example1_sql)
    assert "Plan differences:" in answer.prompt_text
    assert "KNOWLEDGE" not in answer.prompt_text
    assert "New execution result: (not provided)" in answer.prompt_text
    assert answer.text
    assert not answer.is_none_answer


def test_dbgpt_never_sees_execution_result(dbgpt, labeled_workload):
    answer = dbgpt.explain_execution(labeled_workload[0].execution)
    assert "was faster" not in answer.prompt_text


def test_dbgpt_claims_are_ungrounded(dbgpt, example1_sql):
    answer = dbgpt.explain_sql(example1_sql)
    assert answer.claims["grounded"] is False
    assert answer.claimed_winner in (EngineKind.TP, EngineKind.AP)
    assert answer.latency.llm_generation_seconds > 0


def test_dbgpt_makes_characteristic_errors_on_workload(system, labeled_workload):
    """Across a workload, DBG-PT shows the paper's error taxonomy: wrong
    winners (cost comparison), storage over-emphasis, index misreads."""
    dbgpt = DBGPTExplainer(system, SimulatedLLM(seed=7))
    sample = labeled_workload[:40]
    wrong_winner = 0
    cost_comparison = 0
    storage_led = 0
    for labeled in sample:
        answer = dbgpt.explain_execution(labeled.execution)
        if answer.claimed_winner is not labeled.faster_engine:
            wrong_winner += 1
        if answer.claims.get("used_cost_comparison"):
            cost_comparison += 1
        factors = answer.cited_factors
        if factors and factors[0] == "columnar_parallel_scan":
            storage_led += 1
    assert wrong_winner > 0
    assert cost_comparison > 0
    assert storage_led > 0


def test_norag_keeps_execution_result_and_guard(norag, labeled_workload):
    labeled = labeled_workload[1]
    answer = norag.explain_execution(labeled.execution)
    assert "was faster" in answer.prompt_text
    assert "not allowed to compare the cost estimates" in answer.prompt_text
    assert "no relevant historical queries were retrieved" in answer.prompt_text
    assert answer.claimed_winner is labeled.faster_engine
    assert answer.claims["used_cost_comparison"] is False


def test_norag_user_notes_passthrough(norag, labeled_workload):
    answer = norag.explain_execution(labeled_workload[2].execution, user_notes="Index added on c_phone.")
    assert "Index added on c_phone." in answer.prompt_text


def test_norag_explain_sql_roundtrip(norag, example1_sql):
    answer = norag.explain_sql(example1_sql)
    assert answer.claimed_winner is EngineKind.AP
    assert answer.text
