"""Property-based tests (hypothesis) on the core data structures and invariants."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.htap.plan.nodes import NodeType, PlanNode
from repro.htap.plan.serialize import plan_from_dict, plan_to_dict
from repro.htap.sql import ast
from repro.htap.sql.parser import parse_query
from repro.htap.statistics import StatisticsCatalog
from repro.htap.catalog import Catalog
from repro.htap.storage.btree import BPlusTree
from repro.knowledge.vector_store import FlatVectorStore, HNSWVectorStore

_CATALOG = Catalog(scale_factor=100)
_STATISTICS = StatisticsCatalog(_CATALOG)


# ------------------------------------------------------------------ B+tree
@settings(max_examples=50, deadline=None)
@given(st.lists(st.integers(min_value=-10_000, max_value=10_000), min_size=0, max_size=300))
def test_btree_items_always_sorted_and_complete(keys):
    tree = BPlusTree(order=8)
    for position, key in enumerate(keys):
        tree.insert(key, position)
    assert len(tree) == len(keys)
    emitted = [key for key, _value in tree.items()]
    assert emitted == sorted(keys)


@settings(max_examples=50, deadline=None)
@given(
    st.lists(st.integers(min_value=0, max_value=500), min_size=1, max_size=200),
    st.integers(min_value=0, max_value=500),
    st.integers(min_value=0, max_value=500),
)
def test_btree_range_scan_matches_filter(keys, low, high):
    low, high = min(low, high), max(low, high)
    tree = BPlusTree(order=6)
    for key in keys:
        tree.insert(key, key)
    scanned = [key for key, _value in tree.range_scan(low, high)]
    assert scanned == sorted(key for key in keys if low <= key <= high)


# ------------------------------------------------------------ vector store
@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=1, max_value=60), st.integers(min_value=0, max_value=1_000))
def test_flat_store_top1_is_true_nearest(count, seed):
    rng = np.random.default_rng(seed)
    vectors = rng.normal(size=(count, 8))
    store = FlatVectorStore(metric="euclidean")
    for index in range(count):
        store.add(f"v{index}", vectors[index])
    query = rng.normal(size=8)
    result = store.search(query, k=1)[0]
    true_best = min(range(count), key=lambda i: float(np.linalg.norm(vectors[i] - query)))
    assert result.key == f"v{true_best}"


@settings(max_examples=15, deadline=None)
@given(st.integers(min_value=5, max_value=80), st.integers(min_value=0, max_value=100))
def test_hnsw_returns_valid_keys_and_sorted_distances(count, seed):
    rng = np.random.default_rng(seed)
    store = HNSWVectorStore(seed=seed)
    for index in range(count):
        store.add(f"v{index}", rng.normal(size=8))
    results = store.search(rng.normal(size=8), k=5)
    assert 1 <= len(results) <= 5
    distances = [result.distance for result in results]
    assert distances == sorted(distances)
    assert all(result.key.startswith("v") for result in results)


# ------------------------------------------------------------ plan roundtrip
_node_types = st.sampled_from(
    [NodeType.TABLE_SCAN, NodeType.FILTER, NodeType.HASH_JOIN, NodeType.NESTED_LOOP_JOIN, NodeType.SORT]
)


def _plans(depth: int = 3):
    base = st.builds(
        PlanNode,
        node_type=_node_types,
        total_cost=st.floats(min_value=0, max_value=1e9, allow_nan=False),
        plan_rows=st.floats(min_value=1, max_value=1e9, allow_nan=False),
        relation=st.sampled_from([None, "orders", "customer", "nation"]),
    )
    return st.recursive(
        base,
        lambda children: st.builds(
            PlanNode,
            node_type=_node_types,
            total_cost=st.floats(min_value=0, max_value=1e9, allow_nan=False),
            plan_rows=st.floats(min_value=1, max_value=1e9, allow_nan=False),
            children=st.lists(children, min_size=1, max_size=2),
        ),
        max_leaves=6,
    )


@settings(max_examples=50, deadline=None)
@given(_plans())
def test_plan_serialisation_roundtrip_preserves_structure(plan):
    rebuilt = plan_from_dict(plan_to_dict(plan))
    assert rebuilt.structural_signature() == plan.structural_signature()
    assert rebuilt.node_count() == plan.node_count()
    assert rebuilt.depth() == plan.depth()


# ----------------------------------------------------------------- parser
_segments = st.sampled_from(["machinery", "building", "furniture", "household", "automobile"])
_limits = st.integers(min_value=1, max_value=1000)


@settings(max_examples=50, deadline=None)
@given(_segments, _limits, st.booleans())
def test_parser_handles_generated_topn_queries(segment, limit, descending):
    direction = "DESC" if descending else "ASC"
    sql = (
        f"SELECT c_custkey, c_acctbal FROM customer WHERE c_mktsegment = '{segment}' "
        f"ORDER BY c_acctbal {direction} LIMIT {limit};"
    )
    query = parse_query(sql)
    assert query.is_top_n
    assert query.limit == limit
    assert query.order_by[0].descending is descending
    assert query.raw_sql == sql.strip()


@settings(max_examples=50, deadline=None)
@given(st.lists(_segments, min_size=1, max_size=5, unique=True))
def test_in_list_selectivity_monotone_in_list_size(segments):
    values = ", ".join(f"'{segment}'" for segment in segments)
    query = parse_query(f"SELECT COUNT(*) FROM customer WHERE c_mktsegment IN ({values});")
    estimate = _STATISTICS.estimate_predicate("customer", query.where)
    assert 0.0 < estimate.selectivity <= 1.0
    smaller = parse_query("SELECT COUNT(*) FROM customer WHERE c_mktsegment IN ('machinery');")
    single = _STATISTICS.estimate_predicate("customer", smaller.where)
    assert estimate.selectivity >= single.selectivity - 1e-12


# ----------------------------------------------------------- expressions
@settings(max_examples=50, deadline=None)
@given(st.integers(min_value=0, max_value=10_000_000), st.integers(min_value=0, max_value=10_000_000))
def test_between_selectivity_within_bounds_and_monotone(a, b):
    low, high = min(a, b), max(a, b)
    sql = f"SELECT COUNT(*) FROM customer WHERE c_custkey BETWEEN {low} AND {high};"
    estimate = _STATISTICS.estimate_predicate("customer", parse_query(sql).where)
    assert 0.0 < estimate.selectivity <= 1.0
    wider = _STATISTICS.estimate_predicate(
        "customer",
        parse_query(f"SELECT COUNT(*) FROM customer WHERE c_custkey BETWEEN {low} AND {high + 1000};").where,
    )
    assert wider.selectivity >= estimate.selectivity - 1e-12


@settings(max_examples=30, deadline=None)
@given(st.sampled_from(["orders", "customer", "lineitem", "nation"]))
def test_conjuncts_combine_roundtrip_for_simple_filters(table):
    column = {"orders": "o_orderstatus", "customer": "c_mktsegment", "lineitem": "l_shipmode", "nation": "n_name"}[table]
    sql = f"SELECT COUNT(*) FROM {table} WHERE {column} = 'x' AND {column} <> 'y';"
    where = parse_query(sql).where
    parts = ast.conjuncts(where)
    assert len(parts) == 2
    assert ast.conjuncts(ast.combine_conjuncts(parts)) == parts
