"""Prometheus text exposition of metrics snapshots."""

from __future__ import annotations

from repro.obs.promtext import merged_exposition, metric_name, render_prometheus
from repro.service.metrics import MetricsRegistry


def test_metric_name_sanitization():
    assert metric_name("requests.ok") == "repro_requests_ok"
    assert metric_name("latency.p95-ms") == "repro_latency_p95_ms"
    assert metric_name("stage.kb.search") == "repro_stage_kb_search"
    # leading digits are guarded after namespace stripping
    assert metric_name("9lives", namespace="") == "_9lives"


def test_counter_and_gauge_rendering():
    text = render_prometheus({"requests.ok": 7, "hit_rate": 0.25})
    assert "# TYPE repro_requests_ok counter" in text
    assert "repro_requests_ok 7" in text
    assert "# TYPE repro_hit_rate gauge" in text
    assert "repro_hit_rate 0.25" in text


def test_summary_rendering_with_quantiles_count_and_sum():
    registry = MetricsRegistry()
    histogram = registry.histogram("latency.cold_seconds")
    for value in (0.1, 0.2, 0.3, 0.4):
        histogram.record(value)
    text = render_prometheus(registry.snapshot())
    assert "# TYPE repro_latency_cold_seconds summary" in text
    assert 'repro_latency_cold_seconds{quantile="0.5"} 0.2' in text
    assert 'repro_latency_cold_seconds{quantile="0.95"} 0.4' in text
    assert 'repro_latency_cold_seconds{quantile="0.99"} 0.4' in text
    assert "repro_latency_cold_seconds_count 4" in text
    assert "repro_latency_cold_seconds_sum 1.0" in text
    assert "repro_latency_cold_seconds_min 0.1" in text
    assert "repro_latency_cold_seconds_max 0.4" in text
    assert "repro_latency_cold_seconds_mean 0.25" in text


def test_nested_dicts_flatten_and_strings_are_skipped():
    snapshot = {
        "cache": {"explanations": {"hit_rate": 0.5, "size": 3, "name": "lru"}},
        "status": "ok",
    }
    text = render_prometheus(snapshot)
    assert "repro_cache_explanations_hit_rate 0.5" in text
    assert "repro_cache_explanations_size 3" in text
    assert "lru" not in text
    assert "status" not in text


def test_booleans_are_not_counters():
    text = render_prometheus({"enabled": True})
    assert "repro_enabled" not in text


def test_merged_exposition_later_snapshot_wins():
    text = merged_exposition({"requests": 1, "only_a": 2}, {"requests": 5})
    assert "repro_requests 5" in text
    assert "repro_only_a 2" in text
    assert "repro_requests 1" not in text


def test_exposition_ends_with_newline():
    assert render_prometheus({"x": 1}).endswith("\n")
