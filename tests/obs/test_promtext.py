"""Prometheus text exposition of metrics snapshots."""

from __future__ import annotations

from repro.obs.promtext import (
    METRIC_LINE,
    escape_label_value,
    merged_exposition,
    metric_name,
    render_prometheus,
    render_sample,
)
from repro.service.metrics import MetricsRegistry


def test_metric_name_sanitization():
    assert metric_name("requests.ok") == "repro_requests_ok"
    assert metric_name("latency.p95-ms") == "repro_latency_p95_ms"
    assert metric_name("stage.kb.search") == "repro_stage_kb_search"
    # leading digits are guarded after namespace stripping
    assert metric_name("9lives", namespace="") == "_9lives"


def test_counter_and_gauge_rendering():
    text = render_prometheus({"requests.ok": 7, "hit_rate": 0.25})
    assert "# TYPE repro_requests_ok counter" in text
    assert "repro_requests_ok 7" in text
    assert "# TYPE repro_hit_rate gauge" in text
    assert "repro_hit_rate 0.25" in text


def test_summary_rendering_with_quantiles_count_and_sum():
    registry = MetricsRegistry()
    histogram = registry.histogram("latency.cold_seconds")
    for value in (0.1, 0.2, 0.3, 0.4):
        histogram.record(value)
    text = render_prometheus(registry.snapshot())
    assert "# TYPE repro_latency_cold_seconds summary" in text
    assert 'repro_latency_cold_seconds{quantile="0.5"} 0.2' in text
    assert 'repro_latency_cold_seconds{quantile="0.95"} 0.4' in text
    assert 'repro_latency_cold_seconds{quantile="0.99"} 0.4' in text
    assert "repro_latency_cold_seconds_count 4" in text
    assert "repro_latency_cold_seconds_sum 1.0" in text
    assert "repro_latency_cold_seconds_min 0.1" in text
    assert "repro_latency_cold_seconds_max 0.4" in text
    assert "repro_latency_cold_seconds_mean 0.25" in text


def test_nested_dicts_flatten_and_strings_are_skipped():
    snapshot = {
        "cache": {"explanations": {"hit_rate": 0.5, "size": 3, "name": "lru"}},
        "status": "ok",
    }
    text = render_prometheus(snapshot)
    assert "repro_cache_explanations_hit_rate 0.5" in text
    assert "repro_cache_explanations_size 3" in text
    assert "lru" not in text
    assert "status" not in text


def test_booleans_are_not_counters():
    text = render_prometheus({"enabled": True})
    assert "repro_enabled" not in text


def test_merged_exposition_later_snapshot_wins():
    text = merged_exposition({"requests": 1, "only_a": 2}, {"requests": 5})
    assert "repro_requests 5" in text
    assert "repro_only_a 2" in text
    assert "repro_requests 1" not in text


def test_exposition_ends_with_newline():
    assert render_prometheus({"x": 1}).endswith("\n")


# ------------------------------------------------------------ label escaping
def test_escape_label_value_per_spec():
    assert escape_label_value('say "hi"') == 'say \\"hi\\"'
    assert escape_label_value("back\\slash") == "back\\\\slash"
    assert escape_label_value("line\nbreak") == "line\\nbreak"
    assert escape_label_value("plain") == "plain"
    assert escape_label_value(42) == "42"


def test_render_sample_with_labels():
    assert render_sample("repro_x", {"quantile": "0.5"}, 0.25) == 'repro_x{quantile="0.5"} 0.25'
    assert render_sample("repro_x", None, 3) == "repro_x 3"
    line = render_sample("repro_x", {"sql": 'SELECT "a"\nFROM t\\u'}, 1.0)
    assert line == 'repro_x{sql="SELECT \\"a\\"\\nFROM t\\\\u"} 1.0'
    assert METRIC_LINE.match(line)


def test_metric_name_never_empty():
    assert metric_name("", namespace="") == "_"
    assert metric_name("...", namespace="") == "___"


# --------------------------------------------------------- format conformance
def test_metric_line_grammar():
    good = [
        "# TYPE repro_requests_ok counter",
        "# TYPE repro_hit_rate gauge",
        "# TYPE repro_latency summary",
        "repro_requests_ok 7",
        "repro_hit_rate 0.25",
        'repro_latency{quantile="0.99"} 1e-06',
        'repro_x{a="1",b="two"} -3.5',
        "repro_up +Inf",
        "repro_gap NaN",
    ]
    for line in good:
        assert METRIC_LINE.match(line), line
    bad = [
        "",
        "# HELP repro_x something",  # we never emit HELP; reject it here
        "repro x 1",  # space in name
        "repro_x",  # no value
        'repro_x{a=unquoted} 1',
        "9leading 1",
    ]
    for line in bad:
        assert not METRIC_LINE.match(line), line


def test_realistic_merged_exposition_is_fully_conformant():
    """Every line of a service-shaped merged page matches the grammar."""
    registry = MetricsRegistry()
    registry.counter("requests.ok").increment(12)
    histogram = registry.histogram("stage.service.explain")
    for value in (0.001, 0.02, 0.3):
        histogram.record(value)
    tracer_side = {
        "tracer.traces": 3,
        "sampler": {"kept": 2, "dropped": 1, "sampled_ratio": 2 / 3},
        "store": {"traces_seen": 3, "recent_ring_size": 3.0},
    }
    slo_side = {"slo": {"availability": {"met": 1.0, "burn_rate_60s": 0.5}}}
    text = merged_exposition(registry.snapshot(), tracer_side, slo_side)
    lines = text.splitlines()
    assert lines  # non-empty page
    for line in lines:
        assert METRIC_LINE.match(line), f"nonconforming line: {line!r}"
