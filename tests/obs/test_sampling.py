"""Head+tail trace sampling: determinism, recording bit, tail rescues."""

from __future__ import annotations

import pytest

from repro.obs.promtext import render_prometheus
from repro.obs.sampling import Sampler, head_decision
from repro.obs.store import TraceStore
from repro.obs.tracing import NULL_SPAN, Tracer


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


@pytest.fixture()
def clock() -> FakeClock:
    return FakeClock()


def sampled_tracer(clock: FakeClock, sampler: Sampler, **store_kwargs: int) -> Tracer:
    return Tracer(
        enabled=True, store=TraceStore(**store_kwargs), sampler=sampler, clock=clock
    )


# ------------------------------------------------------------- head decision
def test_head_decision_is_deterministic():
    keys = [f"req-{i}" for i in range(100)]
    first = [head_decision(key, 0.5) for key in keys]
    second = [head_decision(key, 0.5) for key in keys]
    assert first == second


def test_head_decision_ratio_tracks_probability():
    keys = [f"req-{i}" for i in range(1000)]
    kept = sum(head_decision(key, 0.5) for key in keys)
    # CRC32 over sequential ids is close to uniform; wide bounds keep this
    # deterministic assertion robust to the exact key set.
    assert 400 < kept < 600
    assert sum(head_decision(key, 0.05) for key in keys) < 150


def test_head_decision_extremes():
    assert head_decision("anything", 1.0) is True
    assert head_decision("anything", 0.0) is False


def test_sampler_validates_arguments():
    with pytest.raises(ValueError):
        Sampler(head_probability=1.5)
    with pytest.raises(ValueError):
        Sampler(head_probability=-0.1)
    with pytest.raises(ValueError):
        Sampler(slow_threshold_seconds=-1.0)


# ------------------------------------------------------------- recording bit
def test_head_dropped_root_suppresses_children(clock: FakeClock):
    sampler = Sampler(head_probability=0.0, slow_threshold_seconds=10.0)
    tracer = sampled_tracer(clock, sampler)
    root = tracer.span("service.explain", root=True, request_id="req-1")
    assert root.enabled and not root.recording
    assert tracer.span("pipeline.encode", parent=root) is NULL_SPAN
    recorded = tracer.record_span(
        "router.embed_batch", parent=root, start_seconds=0.0, end_seconds=0.1
    )
    assert recorded is NULL_SPAN
    clock.advance(0.001)
    root.end()
    # Fast, clean, head-dropped: the trace vanishes entirely.
    assert tracer.store.traces() == []
    assert sampler.dropped == 1 and sampler.kept == 0


def test_head_dropped_root_still_feeds_stage_histogram(clock: FakeClock):
    sampler = Sampler(head_probability=0.0)
    tracer = sampled_tracer(clock, sampler)
    root = tracer.span("service.explain", root=True, request_id="req-1")
    clock.advance(0.25)
    root.end()
    snapshot = tracer.stage_snapshot()
    assert snapshot["stage.service.explain"]["count"] == 1
    assert snapshot["stage.service.explain"]["max"] == pytest.approx(0.25)


def test_head_kept_trace_is_full_and_tagged(clock: FakeClock):
    sampler = Sampler(head_probability=1.0)
    tracer = sampled_tracer(clock, sampler)
    root = tracer.span("service.explain", root=True, request_id="req-1")
    child = tracer.span("pipeline.encode", parent=root)
    assert child.enabled
    child.end()
    root.end()
    trace = tracer.store.traces()[0]
    assert trace.root.attributes["sampled"] == "head"
    assert "sampled_partial" not in trace.root.attributes
    assert sorted(trace.span_names()) == ["pipeline.encode", "service.explain"]
    assert sampler.snapshot()["kept_head"] == 1


# ----------------------------------------------------------------- tail keep
def test_tail_keeps_slow_trace_as_partial(clock: FakeClock):
    sampler = Sampler(head_probability=0.0, slow_threshold_seconds=0.5)
    tracer = sampled_tracer(clock, sampler)
    root = tracer.span("service.explain", root=True, request_id="req-1")
    clock.advance(0.75)
    root.end()
    trace = tracer.store.traces()[0]
    assert trace.root.attributes["sampled"] == "tail_slow"
    assert trace.root.attributes["sampled_partial"] is True
    assert trace.span_names() == ["service.explain"]  # root-only partial
    assert sampler.snapshot()["kept_tail_slow"] == 1


def test_tail_keeps_error_trace(clock: FakeClock):
    sampler = Sampler(head_probability=0.0)
    tracer = sampled_tracer(clock, sampler)
    root = tracer.span("service.explain", root=True, request_id="req-1")
    root.set_attributes(status="failed", error="ValueError")
    root.end()
    trace = tracer.store.traces()[0]
    assert trace.root.attributes["sampled"] == "tail_error"
    assert sampler.snapshot()["kept_tail_error"] == 1


def test_tail_keeps_rejected_trace(clock: FakeClock):
    sampler = Sampler(head_probability=0.0)
    tracer = sampled_tracer(clock, sampler)
    root = tracer.span("service.explain", root=True, request_id="req-1")
    root.set_attributes(status="rejected", rejected_reason="QUEUE_FULL")
    root.end()
    trace = tracer.store.traces()[0]
    assert trace.root.attributes["sampled"] == "tail_rejected"
    assert sampler.snapshot()["kept_tail_rejected"] == 1


def test_error_outranks_slow(clock: FakeClock):
    sampler = Sampler(head_probability=0.0, slow_threshold_seconds=0.1)
    tracer = sampled_tracer(clock, sampler)
    root = tracer.span("service.explain", root=True, request_id="req-1")
    root.set_attribute("error", "TimeoutError")
    clock.advance(5.0)  # also slow — but error is the more severe reason
    root.end()
    assert tracer.store.traces()[0].root.attributes["sampled"] == "tail_error"


def test_tail_rules_can_be_disabled(clock: FakeClock):
    sampler = Sampler(head_probability=0.0, keep_errors=False, keep_rejected=False)
    tracer = sampled_tracer(clock, sampler)
    root = tracer.span("service.explain", root=True, request_id="req-1")
    root.set_attributes(status="rejected", error="ValueError")
    root.end()
    assert tracer.store.traces() == []
    assert sampler.dropped == 1


# ------------------------------------------------------------ slow-tail sweep
def test_every_slow_trace_survives_one_percent_sampling(clock: FakeClock):
    """The tail rescue at scale: 1% head sampling, hundreds of traces."""
    sampler = Sampler(head_probability=0.01, slow_threshold_seconds=0.5)
    tracer = sampled_tracer(clock, sampler, max_slow=8, max_recent=512)
    slow_ids = []
    for i in range(300):
        request_id = f"req-{i}"
        root = tracer.span("service.explain", root=True, request_id=request_id)
        if i % 50 == 0:
            clock.advance(1.0)
            slow_ids.append(root.trace_id)
        else:
            clock.advance(0.001)
        root.end()
    retained = {trace.trace_id for trace in tracer.store.traces()}
    assert set(slow_ids) <= retained
    snapshot = sampler.snapshot()
    assert snapshot["kept"] + snapshot["dropped"] == 300
    assert snapshot["kept"] < 50  # the vast majority was dropped
    assert 0.0 < snapshot["sampled_ratio"] < 0.2


# ------------------------------------------------------------------ counters
def test_sampler_counters_in_stage_snapshot_and_exposition(clock: FakeClock):
    sampler = Sampler(head_probability=0.0, slow_threshold_seconds=0.5)
    tracer = sampled_tracer(clock, sampler)
    for i in range(3):
        root = tracer.span("service.explain", root=True, request_id=f"req-{i}")
        clock.advance(1.0 if i == 0 else 0.001)
        root.end()
    snapshot = tracer.stage_snapshot()
    assert snapshot["sampler"]["kept"] == 1
    assert snapshot["sampler"]["dropped"] == 2
    assert snapshot["sampler"]["sampled_ratio"] == pytest.approx(1 / 3)
    text = render_prometheus(snapshot)
    assert "# TYPE repro_sampler_kept counter" in text
    assert "repro_sampler_dropped 2" in text
    assert "# TYPE repro_sampler_sampled_ratio gauge" in text
    assert "# TYPE repro_sampler_head_probability gauge" in text


def test_store_retention_stats_in_stage_snapshot(clock: FakeClock):
    tracer = Tracer(
        enabled=True, store=TraceStore(max_slow=2, max_recent=4), clock=clock
    )
    for _ in range(6):
        root = tracer.span("service.explain", root=True)
        clock.advance(0.01)
        root.end()
    snapshot = tracer.stage_snapshot()
    store = snapshot["store"]
    assert store["traces_seen"] == 6
    assert store["slow_heap_size"] == 2.0
    assert store["recent_ring_size"] == 4.0
    assert store["slow_heap_capacity"] == 2.0
    assert store["recent_ring_capacity"] == 4.0
    text = render_prometheus(snapshot)
    assert "# TYPE repro_store_traces_seen counter" in text
    assert "# TYPE repro_store_recent_ring_size gauge" in text
    assert "repro_tracer_spans_dropped 0" in text  # always exported


def test_sampler_absent_means_no_sampler_metrics(clock: FakeClock):
    tracer = Tracer(enabled=True, clock=clock)
    root = tracer.span("service.explain", root=True)
    root.end()
    snapshot = tracer.stage_snapshot()
    assert "sampler" not in snapshot
    trace = tracer.store.traces()[0]
    assert "sampled" not in trace.root.attributes
