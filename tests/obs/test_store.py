"""TraceStore retention: slow exemplars, recent ring, pooled durations."""

from __future__ import annotations

import pytest

from repro.obs.store import Trace, TraceStore, stage_durations
from repro.obs.tracing import Tracer


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


def make_trace(tracer: Tracer, clock: FakeClock, duration: float, name: str = "request") -> Trace:
    root = tracer.span(name, root=True)
    clock.now += duration
    root.end()
    return tracer.store.recent(1)[0]


@pytest.fixture()
def clock() -> FakeClock:
    return FakeClock()


def test_slow_exemplars_keep_the_slowest(clock: FakeClock):
    store = TraceStore(max_slow=3, max_recent=100)
    tracer = Tracer(enabled=True, store=store, clock=clock)
    for duration in (0.05, 0.90, 0.10, 0.70, 0.01, 0.80):
        make_trace(tracer, clock, duration)
    slow = store.slowest()
    assert [round(trace.duration_seconds, 2) for trace in slow] == [0.90, 0.80, 0.70]


def test_recent_ring_is_bounded_and_newest_first(clock: FakeClock):
    store = TraceStore(max_slow=2, max_recent=3)
    tracer = Tracer(enabled=True, store=store, clock=clock)
    for duration in (0.1, 0.2, 0.3, 0.4, 0.5):
        make_trace(tracer, clock, duration)
    recent = store.recent()
    assert len(recent) == 3
    assert [round(trace.duration_seconds, 1) for trace in recent] == [0.5, 0.4, 0.3]


def test_sampling_split_retains_slow_outlier_after_ring_ages_out(clock: FakeClock):
    """The N-slowest + recent-ring split: a slow outlier early in the
    stream must survive after the ring has rolled far past it."""
    store = TraceStore(max_slow=1, max_recent=2)
    tracer = Tracer(enabled=True, store=store, clock=clock)
    make_trace(tracer, clock, 9.0)  # the outlier
    for _ in range(10):
        make_trace(tracer, clock, 0.01)
    assert store.stats() == {
        "added": 11,
        "retained": 3,
        "slow_retained": 1,
        "recent_retained": 2,
        "max_slow": 1,
        "max_recent": 2,
    }
    assert store.slowest(1)[0].duration_seconds == pytest.approx(9.0)
    # traces() is the distinct union of both sides
    assert len(store.traces()) == 3


def test_get_by_trace_id(clock: FakeClock):
    store = TraceStore(max_slow=2, max_recent=2)
    tracer = Tracer(enabled=True, store=store, clock=clock)
    trace = make_trace(tracer, clock, 0.5)
    assert store.get(trace.trace_id) is trace
    assert store.get("t-does-not-exist") is None


def test_clear(clock: FakeClock):
    store = TraceStore()
    tracer = Tracer(enabled=True, store=store, clock=clock)
    make_trace(tracer, clock, 0.5)
    store.clear()
    assert store.traces() == []


def test_store_validation():
    with pytest.raises(ValueError):
        TraceStore(max_slow=-1)
    with pytest.raises(ValueError):
        TraceStore(max_recent=0)


def test_stage_durations_pools_by_name(clock: FakeClock):
    store = TraceStore()
    tracer = Tracer(enabled=True, store=store, clock=clock)
    for _ in range(2):
        root = tracer.span("request", root=True)
        with tracer.attach(root):
            with tracer.span("encode"):
                clock.now += 0.1
            with tracer.span("generate"):
                clock.now += 0.3
        root.end()
    pooled = stage_durations(store.traces())
    assert pooled["encode"] == pytest.approx([0.1, 0.1])
    assert pooled["generate"] == pytest.approx([0.3, 0.3])
    assert len(pooled["request"]) == 2


def test_trace_to_dict_shape(clock: FakeClock):
    store = TraceStore()
    tracer = Tracer(enabled=True, store=store, clock=clock)
    root = tracer.span("request", root=True, request_id="r9")
    with tracer.attach(root):
        with tracer.span("stage"):
            clock.now += 0.2
    root.end()
    payload = store.recent(1)[0].to_dict()
    assert payload["name"] == "request"
    assert payload["span_count"] == 2
    names = {span["name"] for span in payload["spans"]}
    assert names == {"request", "stage"}
    root_dict = next(s for s in payload["spans"] if s["name"] == "request")
    assert root_dict["parent_id"] is None
    assert root_dict["attributes"]["request_id"] == "r9"
