"""AdminServer unit tests: routing, status codes, lifecycle (stub providers)."""

from __future__ import annotations

import json
import urllib.error
import urllib.request

import pytest

from repro.obs.health import HealthCheck, HealthReport
from repro.obs.server import PROMETHEUS_CONTENT_TYPE, AdminServer
from repro.obs.slo import SLOTracker
from repro.obs.store import TraceStore
from repro.obs.tracing import Tracer


def _get(url: str) -> tuple[int, str, str]:
    with urllib.request.urlopen(url, timeout=5) as response:
        return response.status, response.headers.get("Content-Type", ""), response.read().decode()


def _get_error(url: str, *, method: str = "GET", data: bytes | None = None) -> int:
    request = urllib.request.Request(url, data=data, method=method)
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        urllib.request.urlopen(request, timeout=5)
    return excinfo.value.code


@pytest.fixture()
def store() -> TraceStore:
    store = TraceStore()
    tracer = Tracer(enabled=True, store=store)
    with tracer.span("service.explain", root=True, request_id="req-1"):
        with tracer.span("pipeline.encode"):
            pass
    return store


@pytest.fixture()
def server(store: TraceStore):
    admin = AdminServer(
        port=0,
        snapshot_providers=(
            lambda: {"requests.ok": 3, "hit_rate": 0.5},
            lambda: {"requests.submitted": 4},
        ),
        health=lambda: HealthReport(checks=(HealthCheck("alive", True, "up"),)),
        ready=lambda: HealthReport(checks=(HealthCheck("queue_depth", False, "full"),)),
        store_provider=lambda: store,
        slo=SLOTracker(),
    )
    with admin:
        yield admin


# ------------------------------------------------------------------ lifecycle
def test_ephemeral_port_is_bound(server: AdminServer):
    assert server.port != 0
    assert server.url == f"http://127.0.0.1:{server.port}"
    assert server.running


def test_start_twice_raises(server: AdminServer):
    with pytest.raises(RuntimeError, match="already running"):
        server.start()


def test_stop_is_idempotent():
    admin = AdminServer(port=0).start()
    admin.stop()
    assert not admin.running
    admin.stop()  # second stop must not raise


def test_bind_failure_surfaces(server: AdminServer):
    clash = AdminServer(port=server.port)
    with pytest.raises(RuntimeError, match="failed to bind"):
        clash.start()


# -------------------------------------------------------------------- routing
def test_index_lists_endpoints(server: AdminServer):
    status, _content_type, body = _get(server.url + "/")
    assert status == 200
    assert "/metrics" in json.loads(body)["endpoints"]


def test_metrics_renders_prometheus_text(server: AdminServer):
    status, content_type, body = _get(server.url + "/metrics")
    assert status == 200
    assert content_type == PROMETHEUS_CONTENT_TYPE
    assert "# TYPE repro_requests_ok counter" in body
    assert "repro_requests_ok 3" in body
    assert "repro_hit_rate 0.5" in body
    assert "repro_requests_submitted 4" in body
    # the attached SLO tracker is scraped too
    assert "repro_slo_worst_burn_rate" in body


def test_healthz_ok(server: AdminServer):
    status, _content_type, body = _get(server.url + "/healthz")
    assert status == 200
    payload = json.loads(body)
    assert payload["ok"] is True
    assert payload["checks"][0]["name"] == "alive"


def test_readyz_failing_check_is_503(server: AdminServer):
    assert _get_error(server.url + "/readyz") == 503


def test_readyz_falls_back_to_health():
    admin = AdminServer(
        port=0, health=lambda: HealthReport(checks=(HealthCheck("alive", True),))
    )
    with admin:
        status, _content_type, body = _get(admin.url + "/readyz")
    assert status == 200 and json.loads(body)["ok"] is True


def test_health_without_provider_defaults_ok():
    with AdminServer(port=0) as admin:
        status, _content_type, body = _get(admin.url + "/healthz")
    assert status == 200 and json.loads(body) == {"ok": True, "checks": []}


def test_traces_listing_and_limit(server: AdminServer, store: TraceStore):
    status, _content_type, body = _get(server.url + "/traces?limit=1")
    assert status == 200
    payload = json.loads(body)
    assert payload["stats"]["added"] == 1
    assert len(payload["recent"]) == 1
    summary = payload["recent"][0]
    assert summary["trace_id"] == store.traces()[0].trace_id
    assert summary["span_count"] == 2


def test_trace_by_id_and_missing(server: AdminServer, store: TraceStore):
    trace_id = store.traces()[0].trace_id
    status, _content_type, body = _get(f"{server.url}/traces/{trace_id}")
    assert status == 200
    payload = json.loads(body)
    assert payload["trace_id"] == trace_id
    assert len(payload["spans"]) == 2
    assert _get_error(server.url + "/traces/t-does-not-exist") == 404


def test_traces_404_without_store():
    with AdminServer(port=0) as admin:
        assert _get_error(admin.url + "/traces") == 404


def test_slo_endpoint(server: AdminServer):
    status, _content_type, body = _get(server.url + "/slo")
    assert status == 200
    payload = json.loads(body)
    names = {entry["name"] for entry in payload["objectives"]}
    assert names == {"request_latency", "availability"}
    assert payload["windows_seconds"] == [60.0, 300.0, 1800.0]


def test_slo_404_without_tracker():
    with AdminServer(port=0) as admin:
        assert _get_error(admin.url + "/slo") == 404


def test_unknown_path_is_404(server: AdminServer):
    assert _get_error(server.url + "/nope") == 404


def test_post_is_405(server: AdminServer):
    assert _get_error(server.url + "/metrics", method="POST", data=b"{}") == 405


def test_provider_error_returns_500():
    def broken() -> dict[str, int]:
        raise RuntimeError("snapshot exploded")

    with AdminServer(port=0, snapshot_providers=(broken,)) as admin:
        assert _get_error(admin.url + "/metrics") == 500
