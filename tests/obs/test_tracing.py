"""Span/Tracer semantics: zero-cost off, child-only, nesting, assembly."""

from __future__ import annotations

import pytest

from repro.obs.store import TraceStore
from repro.obs.tracing import (
    NULL_SPAN,
    Tracer,
    get_tracer,
    set_tracer,
    traced,
)


class FakeClock:
    """Deterministic monotonic clock for duration assertions."""

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


@pytest.fixture()
def clock() -> FakeClock:
    return FakeClock()


@pytest.fixture()
def tracer(clock: FakeClock) -> Tracer:
    return Tracer(enabled=True, store=TraceStore(), clock=clock)


# ------------------------------------------------------------- zero cost off
def test_global_tracer_is_disabled_by_default():
    assert get_tracer().enabled is False
    assert get_tracer().span("anything") is NULL_SPAN
    assert get_tracer().span("anything", root=True) is NULL_SPAN


def test_null_span_is_inert():
    with NULL_SPAN as span:
        assert span is NULL_SPAN
        assert span.set_attribute("k", 1) is NULL_SPAN
        assert span.set_attributes(a=1, b=2) is NULL_SPAN
    assert not NULL_SPAN  # falsy, so `if span:` guards work
    assert NULL_SPAN.duration_seconds == 0.0
    assert NULL_SPAN.attributes == {}
    assert NULL_SPAN.to_dict() == {}
    NULL_SPAN.end()  # must not raise


def test_disabled_tracer_records_nothing(clock: FakeClock):
    tracer = Tracer(enabled=False, clock=clock)
    with tracer.span("request", root=True):
        with tracer.span("child"):
            pass
    assert tracer.store.stats()["added"] == 0


# --------------------------------------------------------------- child-only
def test_child_only_without_open_trace(tracer: Tracer):
    # No ambient parent and no root=True: library instrumentation must not
    # open a one-span trace.
    assert tracer.span("kb.search") is NULL_SPAN
    assert tracer.store.stats()["added"] == 0


def test_root_opens_and_children_nest(tracer: Tracer, clock: FakeClock):
    with tracer.span("request", root=True, request_id="r1") as root:
        clock.advance(0.010)
        with tracer.span("stage_a") as stage_a:
            clock.advance(0.020)
            with tracer.span("inner") as inner:
                clock.advance(0.005)
        with tracer.span("stage_b"):
            clock.advance(0.001)
    traces = tracer.store.recent()
    assert len(traces) == 1
    trace = traces[0]
    assert trace.name == "request"
    assert trace.root.attributes["request_id"] == "r1"
    assert sorted(trace.span_names()) == sorted(["request", "stage_a", "inner", "stage_b"])
    assert stage_a.parent_id == root.span_id
    assert inner.parent_id == stage_a.span_id
    assert trace.duration_seconds == pytest.approx(0.036)
    assert inner.duration_seconds == pytest.approx(0.005)
    # children_of orders by start time
    assert [span.name for span in trace.children_of(root.span_id)] == ["stage_a", "stage_b"]


def test_explicit_parent_overrides_ambient(tracer: Tracer):
    root = tracer.span("request", root=True)
    child = tracer.span("side", parent=root)
    child.end()
    root.end()
    trace = tracer.store.recent(1)[0]
    assert trace.find("side")[0].parent_id == root.span_id


# --------------------------------------------------------------- attributes
def test_exception_tags_error_attribute(tracer: Tracer):
    with pytest.raises(ValueError):
        with tracer.span("request", root=True):
            with tracer.span("stage"):
                raise ValueError("boom")
    trace = tracer.store.recent(1)[0]
    assert trace.find("stage")[0].attributes["error"] == "ValueError"


def test_end_is_idempotent(tracer: Tracer, clock: FakeClock):
    root = tracer.span("request", root=True)
    clock.advance(1.0)
    root.end()
    clock.advance(5.0)
    root.end()
    assert tracer.store.recent(1)[0].duration_seconds == pytest.approx(1.0)
    assert tracer.store.stats()["added"] == 1


# --------------------------------------------------------- pre-timed record
def test_record_span_replays_timing(tracer: Tracer, clock: FakeClock):
    root = tracer.span("request", root=True)
    recorded = tracer.record_span(
        "router.embed_batch",
        parent=root,
        start_seconds=0.5,
        end_seconds=0.9,
        batch_size=4,
    )
    root.end()
    assert recorded.parent_id == root.span_id
    span = tracer.store.recent(1)[0].find("router.embed_batch")[0]
    assert span.duration_seconds == pytest.approx(0.4)
    assert span.attributes["batch_size"] == 4


def test_record_span_without_parent_is_noop(tracer: Tracer):
    assert tracer.record_span("x", parent=None, start_seconds=0.0, end_seconds=1.0) is NULL_SPAN
    assert tracer.record_span("x", parent=NULL_SPAN, start_seconds=0.0, end_seconds=1.0) is NULL_SPAN


# --------------------------------------------------------------- span bound
def test_span_buffer_is_bounded(clock: FakeClock):
    tracer = Tracer(enabled=True, max_spans_per_trace=4, clock=clock)
    with tracer.span("request", root=True):
        for index in range(10):
            with tracer.span(f"s{index}"):
                pass
    trace = tracer.store.recent(1)[0]
    assert len(trace.spans) == 4
    dropped = tracer.metrics.counter("tracer.spans_dropped").value
    assert dropped == 7  # 10 children + root = 11 finishes for 4 slots


# ------------------------------------------------------------ stage metrics
def test_finish_feeds_stage_histograms(tracer: Tracer, clock: FakeClock):
    with tracer.span("request", root=True):
        with tracer.span("stage_a"):
            clock.advance(0.25)
    snapshot = tracer.stage_snapshot()
    assert snapshot["stage.stage_a"]["count"] == 1
    assert snapshot["stage.stage_a"]["max"] == pytest.approx(0.25)
    assert snapshot["tracer.traces"] == 1


# ------------------------------------------------------------ global install
def test_traced_installs_and_restores():
    before = get_tracer()
    with traced() as session_tracer:
        assert get_tracer() is session_tracer
        assert session_tracer.enabled
    assert get_tracer() is before
    assert get_tracer().enabled is False


def test_set_tracer_returns_previous():
    replacement = Tracer(enabled=True)
    previous = set_tracer(replacement)
    try:
        assert get_tracer() is replacement
    finally:
        assert set_tracer(previous) is replacement
    assert get_tracer() is previous
