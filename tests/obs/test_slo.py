"""SLO objectives, windowed burn rates, and their gauge exposition."""

from __future__ import annotations

import pytest

from repro.obs.promtext import render_prometheus
from repro.obs.slo import (
    ErrorRateObjective,
    LatencyObjective,
    SLOTracker,
    default_service_objectives,
)


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


AVAILABILITY = ErrorRateObjective(
    name="availability", total=("requests.submitted",), bad=("requests.failed",), target=0.01
)
LATENCY = LatencyObjective(
    name="request_latency", metric="stage.service.explain", threshold_seconds=0.5
)


def make_tracker(clock: FakeClock, *objectives) -> SLOTracker:
    return SLOTracker(
        objectives=tuple(objectives) or None,
        windows=(60.0, 300.0),
        clock=clock,
    )


# ----------------------------------------------------------------- objectives
def test_default_objectives_cover_latency_and_availability():
    kinds = {type(objective).__name__ for objective in default_service_objectives()}
    assert kinds == {"LatencyObjective", "ErrorRateObjective"}


def test_objective_validation():
    with pytest.raises(ValueError):
        LatencyObjective(name="x", metric="m", threshold_seconds=0.0)
    with pytest.raises(ValueError):
        ErrorRateObjective(name="x", total=("t",), bad=("b",), target=0.0)
    with pytest.raises(ValueError):
        ErrorRateObjective(name="x", total=("t",), bad=("b",), target=1.5)
    with pytest.raises(ValueError):
        SLOTracker(windows=())


# ----------------------------------------------------------------- error rate
def test_error_rate_uses_windowed_deltas():
    clock = FakeClock()
    tracker = make_tracker(clock, AVAILABILITY)
    tracker.observe({"requests.submitted": 1000, "requests.failed": 100})
    clock.advance(30.0)
    # 100 new requests in the short window, 5 of them bad → 5% windowed
    # error rate even though the lifetime cumulative rate is ~9.5%.
    evaluation = tracker.evaluate({"requests.submitted": 1100, "requests.failed": 105})
    entry = evaluation["objectives"][0]
    assert entry["value"] == pytest.approx(105 / 1100)
    window = entry["windows"]["60s"]
    assert window["value"] == pytest.approx(0.05)
    assert window["burn_rate"] == pytest.approx(5.0)
    assert not entry["met"]
    assert evaluation["worst_burn_rate"] == pytest.approx(5.0)


def test_error_rate_single_sample_falls_back_to_cumulative():
    clock = FakeClock()
    tracker = make_tracker(clock, AVAILABILITY)
    evaluation = tracker.evaluate({"requests.submitted": 200, "requests.failed": 1})
    entry = evaluation["objectives"][0]
    assert entry["windows"]["60s"]["value"] == pytest.approx(0.005)
    assert entry["windows"]["60s"]["burn_rate"] == pytest.approx(0.5)
    assert entry["met"]


def test_old_samples_age_out_of_short_windows():
    clock = FakeClock()
    tracker = make_tracker(clock, AVAILABILITY)
    tracker.observe({"requests.submitted": 100, "requests.failed": 50})
    clock.advance(120.0)  # beyond the 60s window, inside the 300s one
    tracker.observe({"requests.submitted": 200, "requests.failed": 50})
    clock.advance(10.0)
    evaluation = tracker.evaluate({"requests.submitted": 300, "requests.failed": 50})
    entry = evaluation["objectives"][0]
    # The bad counter stopped moving after the early burn, so every
    # windowed *delta* is clean; only the cumulative value keeps history.
    assert entry["windows"]["60s"]["value"] == pytest.approx(0.0)
    assert entry["windows"]["300s"]["value"] == pytest.approx(0.0)
    assert entry["value"] == pytest.approx(50 / 300)


# -------------------------------------------------------------------- latency
def test_latency_burn_is_worst_quantile_in_window():
    clock = FakeClock()
    tracker = make_tracker(clock, LATENCY)
    tracker.observe({"stage.service.explain": {"count": 10, "p50": 0.1, "p95": 0.8}})
    clock.advance(30.0)
    evaluation = tracker.evaluate(
        {"stage.service.explain": {"count": 20, "p50": 0.1, "p95": 0.2}}
    )
    entry = evaluation["objectives"][0]
    assert entry["value"] == pytest.approx(0.2)  # latest
    assert entry["windows"]["60s"]["value"] == pytest.approx(0.8)  # worst in window
    assert entry["windows"]["60s"]["burn_rate"] == pytest.approx(1.6)
    assert entry["met"]  # the *latest* quantile is within budget


def test_latency_missing_metric_is_zero_burn():
    clock = FakeClock()
    tracker = make_tracker(clock, LATENCY)
    evaluation = tracker.evaluate({"unrelated": 1})
    entry = evaluation["objectives"][0]
    assert entry["value"] == 0.0
    assert entry["windows"]["60s"]["burn_rate"] == 0.0
    assert entry["met"]


# ------------------------------------------------------------------- pruning
def test_sample_horizon_is_bounded():
    clock = FakeClock()
    tracker = make_tracker(clock, AVAILABILITY)
    for _ in range(10):
        tracker.observe({"requests.submitted": 1, "requests.failed": 0})
        clock.advance(200.0)
    # horizon is 2× the longest window (600s): only the last ~4 samples live
    assert tracker.evaluate()["samples"] <= 4


# ---------------------------------------------------------------- exposition
def test_snapshot_renders_as_slo_gauges():
    clock = FakeClock()
    tracker = make_tracker(clock, AVAILABILITY, LATENCY)
    snapshot = tracker.snapshot(
        {
            "requests.submitted": 100,
            "requests.failed": 2,
            "stage.service.explain": {"count": 5, "p50": 0.1, "p95": 0.3},
        }
    )
    gauges = snapshot["slo"]
    assert gauges["availability"]["met"] == 0.0  # 2% > 1% budget
    assert gauges["request_latency"]["met"] == 1.0
    assert all(
        isinstance(value, float)
        for entry in gauges.values()
        if isinstance(entry, dict)
        for value in entry.values()
    )
    text = render_prometheus(snapshot)
    assert "# TYPE repro_slo_worst_burn_rate gauge" in text
    assert "# TYPE repro_slo_availability_burn_rate_60s gauge" in text
    assert "repro_slo_request_latency_target 0.5" in text
    assert "repro_slo_availability_met 0.0" in text
