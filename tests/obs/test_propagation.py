"""Context propagation across thread hops — the regression tests for lost
span parentage.

The serving layer crosses threads twice: request work moves onto a
ThreadPoolExecutor worker, and encodes move onto the micro-batcher's
scheduler thread.  ``contextvars`` do not follow either hop on their own,
so each test pins the explicit re-parenting mechanism (``Tracer.attach``
for the pool, captured parent + ``Tracer.record_span`` for the batcher).
A regression that drops either mechanism turns nested stage spans into
orphans, and these tests fail.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor

from repro.obs.tracing import NULL_SPAN, Tracer, traced
from repro.service import ExplanationService
from repro.service.batching import MicroBatcher


# ----------------------------------------------------------- synthetic hops
def test_worker_thread_span_is_orphaned_without_attach():
    tracer = Tracer(enabled=True)
    root = tracer.span("request", root=True)
    seen: list[object] = []

    def worker() -> None:
        # No attach: the pool thread has no ambient span, so a child-only
        # span must refuse to record rather than start a parentless trace.
        seen.append(tracer.span("stage"))

    thread = threading.Thread(target=worker)
    thread.start()
    thread.join()
    root.end()
    assert seen == [NULL_SPAN]
    assert tracer.store.recent(1)[0].span_names() == ["request"]


def test_attach_reparents_worker_thread_spans():
    tracer = Tracer(enabled=True)
    root = tracer.span("request", root=True)

    def worker() -> None:
        with tracer.attach(root):
            with tracer.span("stage"):
                pass

    with ThreadPoolExecutor(max_workers=1) as pool:
        pool.submit(worker).result()
    root.end()
    trace = tracer.store.recent(1)[0]
    stage = trace.find("stage")[0]
    assert stage.parent_id == root.span_id
    assert stage.trace_id == root.trace_id


def test_attach_does_not_leak_across_requests():
    """The ambient span must be reset when attach exits, so a reused pool
    thread does not parent the next request's spans under the old root."""
    tracer = Tracer(enabled=True)
    root = tracer.span("request", root=True)
    with ThreadPoolExecutor(max_workers=1) as pool:

        def first() -> None:
            with tracer.attach(root):
                pass

        def second() -> object:
            return tracer.span("stray")  # same thread, after attach exited

        pool.submit(first).result()
        assert pool.submit(second).result() is NULL_SPAN
    root.end()
    assert tracer.store.recent(1)[0].span_names() == ["request"]


# ------------------------------------------------------------- micro-batcher
def test_microbatch_flush_span_parents_under_submitting_request(
    trained_router, labeled_workload
):
    pair = labeled_workload[0].execution.plan_pair
    with traced() as tracer:
        with MicroBatcher(trained_router) as batcher:
            with tracer.span("request", root=True) as root:
                with tracer.span("pipeline.encode") as encode:
                    batcher.encode(pair)
    trace = tracer.store.recent(1)[0]
    embed_spans = trace.find("router.embed_batch")
    assert len(embed_spans) == 1
    # The flush ran on the scheduler thread, but its span must hang off the
    # span that was ambient on the *submitting* thread.
    assert embed_spans[0].parent_id == encode.span_id
    assert embed_spans[0].trace_id == root.trace_id
    assert embed_spans[0].attributes["batch_size"] == 1
    assert embed_spans[0].duration_seconds > 0.0


def test_coalesced_batch_reparents_each_request_separately(
    trained_router, labeled_workload
):
    pairs = [labeled.execution.plan_pair for labeled in labeled_workload[:6]]
    with traced() as tracer:
        with MicroBatcher(trained_router, max_batch_size=6, max_wait_seconds=0.05) as batcher:
            barrier = threading.Barrier(len(pairs))
            roots: list[object] = [None] * len(pairs)

            def request(position: int) -> None:
                root = tracer.span("request", root=True)
                roots[position] = root
                with tracer.attach(root):
                    barrier.wait()
                    batcher.encode(pairs[position])
                root.end()

            threads = [threading.Thread(target=request, args=(i,)) for i in range(len(pairs))]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
    traces = tracer.store.recent()
    assert len(traces) == len(pairs)
    trace_ids = set()
    for trace in traces:
        embed_spans = trace.find("router.embed_batch")
        assert len(embed_spans) == 1, "each request gets exactly one embed span"
        assert embed_spans[0].parent_id == trace.root.span_id
        trace_ids.add(trace.trace_id)
    assert len(trace_ids) == len(pairs), "no cross-request trace bleed"


# --------------------------------------------------------- full served path
def test_served_request_trace_has_all_stages_parented(
    system, trained_router, knowledge_base, simulated_llm
):
    with traced() as tracer:
        service = ExplanationService(
            system, trained_router, knowledge_base, simulated_llm, max_workers=2
        )
        try:
            result = service.explain("SELECT COUNT(*) FROM orders WHERE o_orderstatus = 'p';")
            assert result.ok
        finally:
            service.shutdown()
    trace = tracer.store.recent(1)[0]
    assert trace.name == "service.explain"
    names = trace.span_names()
    for stage in (
        "htap.parse",
        "htap.optimize",
        "htap.execute",
        "pipeline.encode",
        "pipeline.retrieve",
        "pipeline.generate",
    ):
        assert stage in names, f"missing stage span {stage}"
    by_id = {span.span_id: span for span in trace.spans}
    for span in trace.spans:
        assert span.trace_id == trace.trace_id
        if span.parent_id is None:
            assert span is trace.root or span.name == "service.explain"
        else:
            assert span.parent_id in by_id, f"orphaned span {span.name}"
        assert span.duration_seconds > 0.0
    # The batcher hop: router.embed_batch must sit under pipeline.encode.
    embed = trace.find("router.embed_batch")[0]
    assert by_id[embed.parent_id].name == "pipeline.encode"
    assert trace.root.attributes["status"] == "ok"


def test_warm_request_trace_marks_l1_hit(
    system, trained_router, knowledge_base, simulated_llm
):
    sql = "SELECT COUNT(*) FROM customer WHERE c_mktsegment = 'machinery';"
    with traced() as tracer:
        service = ExplanationService(
            system, trained_router, knowledge_base, simulated_llm, max_workers=2
        )
        try:
            assert service.explain(sql).ok
            warm = service.explain(sql)
            assert warm.ok and warm.cache_hit
        finally:
            service.shutdown()
    warm_trace = tracer.store.recent(1)[0]
    assert warm_trace.root.attributes.get("cache") == "l1_hit"
    lookup = warm_trace.find("cache.l1_lookup")[0]
    assert lookup.attributes["hit"] is True
