"""repro-trace rendering, the JSON-lines log, and the CLI subcommands."""

from __future__ import annotations

import json

from repro.obs.cli import breakdown_rows, main, render_trace_tree
from repro.obs.jsonlog import TraceLogWriter, read_traces
from repro.obs.store import TraceStore
from repro.obs.tracing import Tracer


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


def build_sample_trace(writer=None):
    clock = FakeClock()
    tracer = Tracer(enabled=True, store=TraceStore(), writer=writer, clock=clock)
    root = tracer.span("service.explain", root=True, request_id="req-1")
    with tracer.attach(root):
        with tracer.span("pipeline.encode", batched=True):
            clock.now += 0.004
        with tracer.span("pipeline.retrieve", hits=2):
            clock.now += 0.001
        with tracer.span("pipeline.generate"):
            clock.now += 0.002
    root.end()
    return tracer.store.recent(1)[0]


# ------------------------------------------------------------------- render
def test_render_trace_tree_nests_and_shows_attributes():
    text = render_trace_tree(build_sample_trace().to_dict())
    lines = text.splitlines()
    assert lines[0].startswith("trace t-")
    assert "service.explain" in lines[0]
    # children indented under the root, in start order
    encode_line = next(line for line in lines if "pipeline.encode" in line)
    assert encode_line.strip().startswith(("├─", "└─"))
    assert "batched=True" in encode_line
    assert "4.000 ms" in encode_line
    retrieve_index = next(i for i, l in enumerate(lines) if "pipeline.retrieve" in l)
    generate_index = next(i for i, l in enumerate(lines) if "pipeline.generate" in l)
    assert retrieve_index < generate_index


def test_breakdown_rows_share_sums_to_100():
    rows = breakdown_rows([build_sample_trace().to_dict()])
    stages = {row["stage"] for row in rows}
    assert {"service.explain", "pipeline.encode", "pipeline.retrieve", "pipeline.generate"} <= stages
    total_share = sum(float(row["share"].rstrip("%")) for row in rows)
    assert abs(total_share - 100.0) < 0.5
    encode_row = next(row for row in rows if row["stage"] == "pipeline.encode")
    assert encode_row["count"] == 1
    assert encode_row["p50 ms"] == 4.0


# ------------------------------------------------------------------ jsonlog
def test_writer_roundtrip_and_torn_line_tolerance(tmp_path):
    path = tmp_path / "traces.jsonl"
    writer = TraceLogWriter(path)
    trace = build_sample_trace(writer=None)
    writer.write(trace)
    writer.write(trace)
    writer.close()
    # simulate a torn final line from a crashed process
    with open(path, "a", encoding="utf-8") as handle:
        handle.write('{"trace_id": "t-torn", "spans": [')
    loaded = list(read_traces(path))
    assert len(loaded) == 2
    assert loaded[0]["name"] == "service.explain"
    assert loaded[0]["span_count"] == 4


def test_tracer_writer_integration(tmp_path):
    path = tmp_path / "live.jsonl"
    writer = TraceLogWriter(path)
    build_sample_trace(writer=writer)
    writer.close()
    loaded = list(read_traces(path))
    assert len(loaded) == 1
    assert {span["name"] for span in loaded[0]["spans"]} == {
        "service.explain",
        "pipeline.encode",
        "pipeline.retrieve",
        "pipeline.generate",
    }


# ---------------------------------------------------------------------- CLI
def _write_log(tmp_path, count: int = 3):
    path = tmp_path / "traces.jsonl"
    writer = TraceLogWriter(path)
    for _ in range(count):
        writer.write(build_sample_trace())
    writer.close()
    return path


def test_cli_show(tmp_path, capsys):
    path = _write_log(tmp_path)
    assert main(["show", str(path), "--limit", "2"]) == 0
    out = capsys.readouterr().out
    assert out.count("trace t-") == 2
    assert "pipeline.generate" in out


def test_cli_show_slowest_and_trace_id(tmp_path, capsys):
    path = _write_log(tmp_path)
    assert main(["show", str(path), "--slowest"]) == 0
    first_id = json.loads(path.read_text().splitlines()[0])["trace_id"]
    assert main(["show", str(path), "--trace-id", first_id]) == 0
    out = capsys.readouterr().out
    assert first_id in out
    assert main(["show", str(path), "--trace-id", "t-nope"]) == 1


def test_cli_breakdown(tmp_path, capsys):
    path = _write_log(tmp_path)
    assert main(["breakdown", str(path)]) == 0
    out = capsys.readouterr().out
    assert "per-stage latency breakdown" in out
    assert "pipeline.encode" in out
    assert "share" in out


def test_cli_missing_file(tmp_path, capsys):
    missing = tmp_path / "nope.jsonl"
    missing.write_text("")
    assert main(["show", str(missing)]) == 1
