"""Concurrent jsonlog writers and stage pooling over partial traces."""

from __future__ import annotations

import threading
from pathlib import Path

from repro.obs.jsonlog import TraceLogWriter, read_traces
from repro.obs.sampling import Sampler
from repro.obs.store import TraceStore, stage_durations
from repro.obs.tracing import Tracer


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


# ------------------------------------------------------------ concurrent log
def test_concurrent_writers_round_trip(tmp_path: Path):
    """8 threads sharing one writer: every line reads back intact."""
    path = tmp_path / "traces.jsonl"
    writer = TraceLogWriter(path)
    threads, per_thread = 8, 50
    barrier = threading.Barrier(threads)

    def worker(worker_id: int) -> None:
        # One tracer per thread (span ids are globally unique), one shared
        # writer — the contention point under test.
        tracer = Tracer(enabled=True, store=TraceStore(max_recent=1), writer=writer)
        barrier.wait()
        for i in range(per_thread):
            with tracer.span("service.explain", root=True, request_id=f"w{worker_id}-{i}"):
                with tracer.span("pipeline.encode"):
                    pass

    pool = [threading.Thread(target=worker, args=(n,)) for n in range(threads)]
    for thread in pool:
        thread.start()
    for thread in pool:
        thread.join()
    writer.close()

    payloads = list(read_traces(path))
    assert len(payloads) == threads * per_thread
    request_ids = set()
    for payload in payloads:
        assert payload["span_count"] == 2
        root = next(span for span in payload["spans"] if span["parent_id"] is None)
        request_ids.add(root["attributes"]["request_id"])
    assert len(request_ids) == threads * per_thread  # no torn/merged lines


def test_read_skips_torn_final_line(tmp_path: Path):
    path = tmp_path / "traces.jsonl"
    with TraceLogWriter(path) as writer:
        tracer = Tracer(enabled=True, writer=writer)
        with tracer.span("service.explain", root=True):
            pass
    with open(path, "a", encoding="utf-8") as handle:
        handle.write('{"trace_id": "t-torn", "spans": [')  # crash mid-write
    payloads = list(read_traces(path))
    assert len(payloads) == 1
    assert payloads[0]["spans"]


# ------------------------------------------------- pooling over partial traces
def test_stage_durations_pools_full_and_partial_traces():
    """A sampled stream mixes full traces with root-only partials; the
    pooling must simply see fewer child samples, never crash or skew."""
    clock = FakeClock()
    sampler = Sampler(head_probability=0.0, slow_threshold_seconds=0.5)
    tracer = Tracer(
        enabled=True, store=TraceStore(max_recent=16), sampler=sampler, clock=clock
    )
    # First a tail-kept root-only partial, then a fully-recorded trace
    # from a keep-everything sampler sharing the same store.
    slow_root = tracer.span("service.explain", root=True, request_id="slow-1")
    clock.advance(0.9)
    slow_root.end()  # tail-kept, root-only partial

    full_tracer = Tracer(
        enabled=True,
        store=tracer.store,
        sampler=Sampler(head_probability=1.0),
        clock=clock,
    )
    root = full_tracer.span("service.explain", root=True, request_id="full-1")
    child = full_tracer.span("pipeline.encode", parent=root)
    clock.advance(0.1)
    child.end()
    clock.advance(0.1)
    root.end()

    traces = tracer.store.traces()
    assert len(traces) == 2
    partial = [t for t in traces if t.root.attributes.get("sampled_partial")]
    assert len(partial) == 1 and partial[0].span_names() == ["service.explain"]

    pooled = stage_durations(traces)
    assert sorted(pooled) == ["pipeline.encode", "service.explain"]
    assert len(pooled["service.explain"]) == 2  # both roots pool
    assert len(pooled["pipeline.encode"]) == 1  # only the full trace has it
    assert max(pooled["service.explain"]) >= 0.9
