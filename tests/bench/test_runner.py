"""Runner lifecycle tests: warm-up exclusion, teardown-on-failure, pooling."""

from __future__ import annotations

import pytest

from repro.bench.runner import (
    ExperimentConfig,
    ExperimentContext,
    ExperimentStrategy,
    RunResult,
    StrategyRunner,
)


class RecordingStrategy(ExperimentStrategy):
    """Returns 999.0 during warm-up runs and 1.0 afterwards.

    If warm-ups leak into the statistics, every percentile shoots up by
    three orders of magnitude — the assertion cannot pass by accident.
    """

    name = "recording"

    def __init__(self, fail_on_run: int | None = None):
        self.setup_calls = 0
        self.teardown_calls = 0
        self.execute_calls = 0
        self.fail_on_run = fail_on_run

    def setup(self, context: ExperimentContext) -> None:
        self.setup_calls += 1
        context.state["prepared"] = True

    def execute(self, context: ExperimentContext) -> RunResult:
        assert context.state.get("prepared"), "setup must run before execute"
        self.execute_calls += 1
        if self.fail_on_run is not None and self.execute_calls == self.fail_on_run:
            raise RuntimeError("boom")
        warming = self.execute_calls <= 2  # matches warmup_runs=2 below
        value = 999.0 if warming else 1.0
        return RunResult(
            metrics={"value": value, "series": [value, value]},
            counters={"executions": 1},
            operations=4,
        )

    def teardown(self, context: ExperimentContext) -> None:
        self.teardown_calls += 1


@pytest.fixture
def runner():
    # The lifecycle tests never touch the harness; a sentinel keeps them fast.
    return StrategyRunner(harness=object())


def test_warmups_are_excluded_from_statistics(runner):
    strategy = RecordingStrategy()
    report = runner.run(strategy, ExperimentConfig(runs=3, warmup_runs=2))
    assert strategy.execute_calls == 5
    assert strategy.setup_calls == 1
    assert strategy.teardown_calls == 1
    # Only the three measured runs contribute observations.
    assert report.metrics["value"]["count"] == 3
    assert report.metrics["series"]["count"] == 6
    for quantile in ("p50", "p95", "p99", "max"):
        assert report.metrics["value"][quantile] == 1.0
    assert report.counters["executions"] == 3
    assert report.operations == 12
    assert report.duration_seconds["count"] == 3
    assert report.ops_per_second > 0


def test_teardown_runs_when_execute_fails(runner):
    strategy = RecordingStrategy(fail_on_run=2)
    with pytest.raises(RuntimeError, match="boom"):
        runner.run(strategy, ExperimentConfig(runs=3, warmup_runs=1))
    assert strategy.teardown_calls == 1


def test_teardown_runs_when_setup_fails(runner):
    class FailingSetup(RecordingStrategy):
        def setup(self, context):
            super().setup(context)
            raise ValueError("no resources")

    strategy = FailingSetup()
    with pytest.raises(ValueError, match="no resources"):
        runner.run(strategy)
    assert strategy.teardown_calls == 1
    assert strategy.execute_calls == 0


def test_config_validation():
    with pytest.raises(ValueError):
        ExperimentConfig(runs=0)
    with pytest.raises(ValueError):
        ExperimentConfig(runs=1, warmup_runs=-1)


def test_default_config_used_when_none_given(runner):
    class OneShot(RecordingStrategy):
        def default_config(self):
            return ExperimentConfig(runs=1, warmup_runs=0)

    strategy = OneShot()
    report = runner.run(strategy)
    assert strategy.execute_calls == 1
    assert report.config.runs == 1
    assert report.config.warmup_runs == 0


def test_throughput_zero_when_duration_zero(runner):
    class Instant(ExperimentStrategy):
        name = "instant"

        def execute(self, context):
            return RunResult(operations=0)

    report = runner.run(Instant(), ExperimentConfig(runs=1, warmup_runs=0))
    assert report.operations == 0
    assert report.ops_per_second >= 0.0
