"""Tests for the reporting helpers and a reduced-size experiment harness."""

import pytest

from repro.bench.export import report_to_payload, validate_payload
from repro.bench.harness import EXAMPLE1_SQL, ExperimentHarness
from repro.bench.reporting import format_percent, format_table
from repro.bench.runner import ExperimentConfig, StrategyRunner
from repro.htap.engines.base import EngineKind


# --------------------------------------------------------------- reporting
def test_format_percent():
    assert format_percent(0.905) == "90.5%"
    assert format_percent(1.0, digits=0) == "100%"


def test_format_table_alignment_and_missing_cells():
    rows = [
        {"name": "flat", "ms": 0.01},
        {"name": "hnsw", "ms": 0.02, "extra": "yes"},
    ]
    text = format_table(rows, title="stores")
    lines = text.splitlines()
    assert lines[0] == "stores"
    assert "name" in lines[1] and "ms" in lines[1] and "extra" in lines[1]
    assert len(lines) == 5
    assert format_table([], title="empty").endswith("(no rows)")


# ----------------------------------------------------------------- harness
@pytest.fixture(scope="module")
def small_harness():
    """A reduced harness: same code paths, smaller workloads, fewer epochs."""
    return ExperimentHarness(
        knowledge_base_size=12,
        test_size=40,
        router_training_size=60,
        router_epochs=8,
    )


def test_harness_builds_all_components(small_harness):
    assert len(small_harness.knowledge_base) == 12
    assert len(small_harness.dataset.test) == 40
    assert small_harness.router.training_report is not None
    assert small_harness.build_seconds > 0


def test_framework_paths_smoke(small_harness):
    paths = small_harness.framework_paths()
    assert paths["knowledge_base_size"] == 12
    assert paths["embedding_size"] == 16
    assert paths["new_query_retrieved"] >= 1


def test_example1_artifacts(small_harness):
    example = small_harness.example1()
    assert example.sql == EXAMPLE1_SQL
    assert example.execution.faster_engine is EngineKind.AP
    assert example.tp_plan_dict["Node Type"] == "Group aggregate"
    assert example.ap_plan_dict["Node Type"] == "Aggregate"
    assert "nested loop join" in example.expert_explanation
    assert example.our_explanation.text
    assert example.dbgpt_explanation_text
    # Cached: second call returns the same object without recomputing.
    assert small_harness.example1() is example


def test_accuracy_experiment_and_sweep(small_harness):
    report = small_harness.accuracy_experiment()
    assert report.total == 40
    assert report.accurate_rate >= 0.65
    sweep = small_harness.topk_sweep(ks=(1, 2))
    assert set(sweep) == {1, 2}
    counts = small_harness.grade_counts(report)
    assert sum(counts.values()) == 40


def test_latency_breakdown_magnitudes(small_harness):
    breakdown = small_harness.latency_breakdown(sample_size=8)
    assert breakdown["samples"] == 8
    assert breakdown["encode_ms"] < 10.0
    assert breakdown["search_ms"] < 10.0
    assert breakdown["llm_thinking_s"] <= 2.5
    assert 3.0 < breakdown["llm_generation_s"] < 30.0


def test_router_benchmark_claims(small_harness):
    result = small_harness.router_benchmark(sample_size=20)
    assert result["routing_accuracy"] >= 0.8
    assert result["model_size_bytes"] < 1_000_000
    assert result["mean_inference_ms"] < 10.0


def test_dbgpt_comparison_orders_methods(small_harness):
    comparison = small_harness.dbgpt_comparison(sample_size=25)
    assert set(comparison) == {"ours", "dbgpt", "norag"}
    assert comparison["ours"]["accurate"] > comparison["dbgpt"]["accurate"]
    assert comparison["ours"]["winner_correct"] >= comparison["dbgpt"]["winner_correct"]
    assert comparison["dbgpt"]["cost_comparison"] > 0.0


def test_participant_study_rows(small_harness):
    report = small_harness.participant_study(participants=12)
    rows = report.as_rows()
    assert len(rows) == 2
    assert rows[0]["avg_minutes"] > rows[1]["avg_minutes"]


def test_kb_scaling_rows(small_harness):
    rows = small_harness.kb_scaling(sizes=(20, 200), k=2)
    assert len(rows) == 4
    assert {row.store for row in rows} == {"flat", "hnsw"}
    assert all(row.search_ms >= 0.0 for row in rows)
    # Rows are properly typed now: sizes are ints, not floats in disguise.
    assert all(isinstance(row.kb_size, int) for row in rows)
    assert rows[0].as_dict() == {
        "kb_size": rows[0].kb_size,
        "store": rows[0].store,
        "search_ms": rows[0].search_ms,
    }


def test_curation_experiment(small_harness):
    result = small_harness.curation_experiment(candidate_pool=40, budget=10)
    assert result["kb_size_after_expiry"] == 10
    assert result["representative_factor_coverage"] >= result["random_factor_coverage"] - 1e-9


def test_router_strategy_end_to_end(small_harness):
    """A concrete strategy over the real harness exports a valid payload."""
    from repro.bench.strategies import RouterInferenceStrategy, harness_config

    runner = StrategyRunner(small_harness)
    report = runner.run(
        RouterInferenceStrategy(sample_size=10), ExperimentConfig(runs=2, warmup_runs=1)
    )
    assert report.name == "router"
    assert report.metrics["inference_seconds"]["count"] == 20  # 2 runs x 10 routes
    assert report.metrics["routing_accuracy"]["count"] == 2
    assert report.metrics["routing_accuracy"]["p50"] >= 0.8
    assert report.counters["routed"] == 20
    assert report.ops_per_second > 0
    payload = report_to_payload(
        report, profile="quick", harness_config=harness_config(small_harness)
    )
    validate_payload(payload)
    assert payload["harness"]["test_size"] == 40


def test_prompt_assembly_checks(small_harness):
    result = small_harness.prompt_assembly()
    assert result["contains_cost_guard"]
    assert result["contains_question"]
    assert result["knowledge_blocks"] >= 1
    assert set(result["table_i"]) == {"Background information", "Task description", "Additional user context"}
