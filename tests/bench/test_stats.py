"""The shared percentile convention — one set of semantics everywhere."""

from __future__ import annotations

import pytest

from repro.bench.stats import percentile, percentile_index, summarize
from repro.service.metrics import LatencyHistogram


def test_percentile_nearest_rank():
    samples = [value / 100.0 for value in range(1, 101)]
    assert percentile(samples, 0.50) == 0.50
    assert percentile(samples, 0.95) == 0.95
    assert percentile(samples, 0.99) == 0.99
    assert percentile(samples, 1.0) == 1.0


def test_percentile_unsorted_and_presorted_agree():
    samples = [5.0, 1.0, 3.0, 2.0, 4.0]
    assert percentile(samples, 0.5) == percentile(sorted(samples), 0.5, presorted=True)
    assert percentile(samples, 1.0) == 5.0


def test_percentile_empty_and_validation():
    assert percentile([], 0.5) == 0.0
    with pytest.raises(ValueError):
        percentile([1.0], 0.0)
    with pytest.raises(ValueError):
        percentile([1.0], 1.5)
    with pytest.raises(ValueError):
        percentile_index(0, 0.5)


def test_summarize_shape_and_values():
    summary = summarize([3.0, 1.0, 2.0])
    assert summary == {
        "count": 3,
        "sum": 6.0,
        "mean": 2.0,
        "min": 1.0,
        "p50": 2.0,
        "p95": 3.0,
        "p99": 3.0,
        "max": 3.0,
    }
    empty = summarize([])
    assert empty["count"] == 0
    assert empty["sum"] == 0.0


def test_histogram_agrees_with_shared_convention():
    """A p95 from the serving histograms equals stats.percentile on the
    same samples — the property the router-benchmark fix relies on."""
    samples = [value / 10.0 for value in range(1, 38)]
    histogram = LatencyHistogram()
    for sample in samples:
        histogram.record(sample)
    for fraction in (0.5, 0.95, 0.99):
        assert histogram.percentile(fraction) == percentile(samples, fraction)
    summary = histogram.summary()
    reference = summarize(samples)
    for key in ("p50", "p95", "p99", "max"):
        assert summary[key] == reference[key]
