"""BENCH_*.json schema tests: round-trip, versioning, validation errors."""

from __future__ import annotations

import json

import pytest

from repro.bench.export import (
    REQUIRED_KEYS,
    SCHEMA_VERSION,
    BenchSchemaError,
    bench_filename,
    bench_path,
    load_bench,
    report_to_payload,
    validate_payload,
    write_bench,
)
from repro.bench.runner import (
    ExperimentConfig,
    ExperimentStrategy,
    RunResult,
    StrategyRunner,
)
from repro.bench.stats import percentile, summarize


class TinyStrategy(ExperimentStrategy):
    name = "tiny"

    def execute(self, context):
        return RunResult(
            metrics={"latency_seconds": [0.1, 0.2, 0.3], "accuracy": 0.9},
            counters={"errors": 0, "requests": 3},
            operations=3,
        )


@pytest.fixture
def report():
    runner = StrategyRunner(harness=object())
    return runner.run(TinyStrategy(), ExperimentConfig(runs=2, warmup_runs=1))


HARNESS_CONFIG = {"scale_factor": 100.0, "seed": 2024}


def test_payload_shape_and_summary_convention(report):
    payload = report_to_payload(report, profile="quick", harness_config=HARNESS_CONFIG)
    validate_payload(payload)
    assert payload["schema_version"] == SCHEMA_VERSION
    assert payload["suite"] == "tiny"
    assert payload["profile"] == "quick"
    assert payload["harness"] == HARNESS_CONFIG
    assert payload["config"] == {"runs": 2, "warmup_runs": 1}
    # Two measured runs pool 3 samples each.
    latency = payload["metrics"]["latency_seconds"]
    assert latency["count"] == 6
    expected = summarize([0.1, 0.2, 0.3, 0.1, 0.2, 0.3])
    assert latency == expected
    assert latency["p95"] == percentile([0.1, 0.2, 0.3] * 2, 0.95)
    assert payload["counters"] == {"errors": 0.0, "requests": 6.0}
    assert payload["throughput"]["operations"] == 6.0


def test_write_and_load_round_trip(report, tmp_path):
    path = write_bench(report, tmp_path, profile="quick", harness_config=HARNESS_CONFIG)
    assert path == bench_path(tmp_path, "tiny")
    assert path.name == bench_filename("tiny") == "BENCH_tiny.json"
    loaded = load_bench(path)
    assert loaded == report_to_payload(report, profile="quick", harness_config=HARNESS_CONFIG)


def test_unsupported_schema_version_rejected(report, tmp_path):
    path = write_bench(report, tmp_path, profile="quick", harness_config=HARNESS_CONFIG)
    payload = json.loads(path.read_text())
    payload["schema_version"] = SCHEMA_VERSION + 1
    path.write_text(json.dumps(payload))
    with pytest.raises(BenchSchemaError, match="schema_version"):
        load_bench(path)


def test_missing_keys_rejected(report):
    payload = report_to_payload(report, profile="quick", harness_config=HARNESS_CONFIG)
    for key in REQUIRED_KEYS:
        broken = dict(payload)
        del broken[key]
        with pytest.raises(BenchSchemaError):
            validate_payload(broken)


def test_malformed_metric_summary_rejected(report):
    payload = report_to_payload(report, profile="quick", harness_config=HARNESS_CONFIG)
    payload["metrics"]["latency_seconds"] = {"p50": 0.1}  # missing the rest
    with pytest.raises(BenchSchemaError, match="latency_seconds"):
        validate_payload(payload)


def test_invalid_json_rejected(tmp_path):
    path = tmp_path / "BENCH_broken.json"
    path.write_text("{not json")
    with pytest.raises(BenchSchemaError, match="not valid JSON"):
        load_bench(path)
