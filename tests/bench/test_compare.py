"""Regression-gate tests: pass, regression, and missing-baseline verdicts."""

from __future__ import annotations

import copy
import json

from repro.bench.compare import (
    EXIT_ERROR,
    EXIT_OK,
    EXIT_REGRESSION,
    ComparisonReport,
    Direction,
    Tolerance,
    Verdict,
    compare_directories,
    compare_payloads,
    tolerance_for,
)
from repro.bench.export import SCHEMA_VERSION, bench_filename


def _summary(value: float, count: int = 4) -> dict[str, float]:
    return {
        "count": count,
        "mean": value,
        "min": value,
        "p50": value,
        "p95": value,
        "p99": value,
        "max": value,
    }


def _payload(**overrides) -> dict:
    payload = {
        "schema_version": SCHEMA_VERSION,
        "suite": "tiny",
        "profile": "quick",
        "harness": {"seed": 2024},
        "config": {"runs": 3, "warmup_runs": 1},
        "duration_seconds": _summary(0.5),
        "metrics": {
            "latency_seconds": _summary(0.010),
            "routing_accuracy": _summary(0.95),
        },
        "counters": {"errors": 0.0, "requests": 12.0},
        "throughput": {"operations": 12.0, "ops_per_second": 100.0},
    }
    payload.update(overrides)
    return payload


# ----------------------------------------------------------- tolerance table
def test_tolerance_classification():
    assert tolerance_for("counters.errors").abs == 0.0
    assert tolerance_for("counters.errors").direction is Direction.LOWER_IS_BETTER
    assert tolerance_for("metrics.latency_seconds").direction is Direction.LOWER_IS_BETTER
    assert tolerance_for("metrics.routing_accuracy").direction is Direction.HIGHER_IS_BETTER
    assert tolerance_for("throughput.ops_per_second").direction is Direction.HIGHER_IS_BETTER
    # Unmatched names never gate.
    assert tolerance_for("counters.requests").direction is Direction.INFORMATIONAL


def test_tolerance_slack_and_direction():
    slower = Tolerance(Direction.LOWER_IS_BETTER, rel=1.0)
    assert not slower.is_regression(baseline=0.010, current=0.019)  # within 2x
    assert slower.is_regression(baseline=0.010, current=0.021)  # beyond 2x
    faster_ok = Tolerance(Direction.HIGHER_IS_BETTER, rel=0.5)
    assert not faster_ok.is_regression(baseline=100.0, current=51.0)
    assert faster_ok.is_regression(baseline=100.0, current=49.0)
    # Scale widens the slack.
    assert not slower.is_regression(baseline=0.010, current=0.025, scale=2.0)


# ------------------------------------------------------------- payload diffs
def test_identical_payloads_all_pass():
    baseline = _payload()
    verdicts = compare_payloads(copy.deepcopy(baseline), baseline)
    assert all(v.verdict in (Verdict.PASS, Verdict.INFO) for v in verdicts)
    report = ComparisonReport(verdicts)
    assert report.exit_code == EXIT_OK


def test_latency_regression_detected():
    baseline = _payload()
    current = copy.deepcopy(baseline)
    current["metrics"]["latency_seconds"] = _summary(0.200)  # 20x slower, > 5x allowed
    verdicts = compare_payloads(current, baseline)
    regressed = {v.metric for v in verdicts if v.verdict is Verdict.REGRESSION}
    assert "metrics.latency_seconds" in regressed
    assert ComparisonReport(verdicts).exit_code == EXIT_REGRESSION


def test_accuracy_drop_and_error_increase_detected():
    baseline = _payload()
    current = copy.deepcopy(baseline)
    current["metrics"]["routing_accuracy"] = _summary(0.70)  # drop > 0.10 abs
    current["counters"]["errors"] = 2.0  # any increase fails
    regressed = {
        v.metric
        for v in compare_payloads(current, baseline)
        if v.verdict is Verdict.REGRESSION
    }
    assert {"metrics.routing_accuracy", "counters.errors"} <= regressed


def test_improvement_never_gates():
    baseline = _payload()
    current = copy.deepcopy(baseline)
    current["metrics"]["latency_seconds"] = _summary(0.001)  # 10x faster
    current["metrics"]["routing_accuracy"] = _summary(1.0)
    current["throughput"]["ops_per_second"] = 1000.0
    verdicts = compare_payloads(current, baseline)
    assert not [v for v in verdicts if v.verdict is Verdict.REGRESSION]


def test_metric_disappearing_is_flagged():
    baseline = _payload()
    current = copy.deepcopy(baseline)
    del current["metrics"]["routing_accuracy"]
    verdicts = compare_payloads(current, baseline)
    missing = [v for v in verdicts if v.verdict is Verdict.MISSING_IN_CURRENT]
    assert [v.metric for v in missing] == ["metrics.routing_accuracy"]
    assert ComparisonReport(verdicts).exit_code == EXIT_ERROR


def test_new_metric_is_informational():
    baseline = _payload()
    current = copy.deepcopy(baseline)
    current["metrics"]["new_thing_seconds"] = _summary(0.5)
    verdicts = compare_payloads(current, baseline)
    new = [v for v in verdicts if v.verdict is Verdict.NEW_METRIC]
    assert [v.metric for v in new] == ["metrics.new_thing_seconds"]
    assert ComparisonReport(verdicts).exit_code == EXIT_OK


def test_profile_mismatch_is_an_error():
    baseline = _payload()
    current = _payload(profile="paper")
    verdicts = compare_payloads(current, baseline)
    assert [v.verdict for v in verdicts] == [Verdict.ERROR]
    assert ComparisonReport(verdicts).exit_code == EXIT_ERROR


# ---------------------------------------------------------- directory diffs
def test_missing_baseline_file_verdict(tmp_path):
    current_dir = tmp_path / "current"
    baseline_dir = tmp_path / "baseline"
    current_dir.mkdir()
    baseline_dir.mkdir()
    (current_dir / bench_filename("tiny")).write_text(json.dumps(_payload()))
    report = compare_directories(current_dir, baseline_dir, ["tiny"])
    assert [v.verdict for v in report.verdicts] == [Verdict.MISSING_BASELINE]
    assert report.exit_code == EXIT_ERROR


def test_directory_compare_pass_and_regression(tmp_path):
    current_dir = tmp_path / "current"
    baseline_dir = tmp_path / "baseline"
    current_dir.mkdir()
    baseline_dir.mkdir()
    baseline = _payload()
    (baseline_dir / bench_filename("tiny")).write_text(json.dumps(baseline))
    (current_dir / bench_filename("tiny")).write_text(json.dumps(baseline))
    assert compare_directories(current_dir, baseline_dir, ["tiny"]).exit_code == EXIT_OK

    regressed = copy.deepcopy(baseline)
    regressed["throughput"]["ops_per_second"] = 1.0  # collapsed throughput
    (current_dir / bench_filename("tiny")).write_text(json.dumps(regressed))
    report = compare_directories(current_dir, baseline_dir, ["tiny"])
    assert report.exit_code == EXIT_REGRESSION


def test_unreadable_baseline_is_an_error(tmp_path):
    current_dir = tmp_path / "current"
    baseline_dir = tmp_path / "baseline"
    current_dir.mkdir()
    baseline_dir.mkdir()
    (baseline_dir / bench_filename("tiny")).write_text("{broken")
    (current_dir / bench_filename("tiny")).write_text(json.dumps(_payload()))
    report = compare_directories(current_dir, baseline_dir, ["tiny"])
    assert [v.verdict for v in report.verdicts] == [Verdict.ERROR]
    assert report.exit_code == EXIT_ERROR
