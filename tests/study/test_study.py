"""Tests for the simulated participant study."""

import random

import pytest

from repro.study.participants import Participant, ParticipantPool
from repro.study.protocol import ParticipantStudy, StudyMaterials


@pytest.fixture(scope="module")
def materials(system, example1_sql, rag_explainer):
    pair = system.explain_pair(example1_sql)
    explanation = rag_explainer.explain_sql(example1_sql)
    return StudyMaterials.from_dicts(
        sql=example1_sql,
        tp_plan=pair.explain_dicts()["TP"],
        ap_plan=pair.explain_dicts()["AP"],
        explanation_text=explanation.text,
    )


def test_materials_sizes(materials):
    assert materials.plan_chars > 500
    assert materials.explanation_words > 20


def test_participant_times_scale_with_artifact_size():
    participant = Participant("p1", expertise=0.5, reading_speed_factor=1.0)
    assert participant.plan_reading_minutes(4000) > participant.plan_reading_minutes(1000)
    assert participant.explanation_reading_minutes(300) > participant.explanation_reading_minutes(100)
    assert participant.assisted_total_minutes(3000, 150) < participant.plan_reading_minutes(3000)


def test_expert_participants_are_faster_and_more_accurate():
    novice = Participant("novice", expertise=0.05, reading_speed_factor=1.0)
    expert = Participant("expert", expertise=0.95, reading_speed_factor=1.0)
    assert expert.plan_reading_minutes(4000) < novice.plan_reading_minutes(4000)
    rng = random.Random(1)
    novice_correct = sum(novice.understands_from_plans(random.Random(i)) for i in range(200))
    expert_correct = sum(expert.understands_from_plans(random.Random(i)) for i in range(200))
    assert expert_correct > novice_correct
    assert expert.plan_difficulty_rating(rng) < novice.plan_difficulty_rating(rng) + 1.0


def test_difficulty_ratings_bounded():
    rng = random.Random(0)
    for expertise in (0.0, 0.5, 1.0):
        participant = Participant("p", expertise=expertise, reading_speed_factor=1.0)
        for _draw in range(20):
            assert 0.0 <= participant.plan_difficulty_rating(rng) <= 10.0
            assert 0.0 <= participant.explanation_difficulty_rating(rng) <= 10.0


def test_pool_is_deterministic_and_splits_evenly():
    pool = ParticipantPool(size=24, seed=5)
    assert [p.participant_id for p in pool.participants()] == [p.participant_id for p in pool.participants()]
    group_a, group_b = pool.split_groups()
    assert len(group_a) == len(group_b) == 12
    with pytest.raises(ValueError):
        ParticipantPool(size=1)


def test_study_reproduces_paper_directionality(materials):
    report = ParticipantStudy(materials, pool=ParticipantPool(size=24), seed=99).run()
    with_llm = report.with_llm
    without_llm = report.without_llm
    # Time: the LLM group understands substantially faster (paper: 3.5 vs 8.2 min).
    assert with_llm.average_minutes < 0.6 * without_llm.average_minutes
    assert 2.0 < with_llm.average_minutes < 6.0
    assert 5.0 < without_llm.average_minutes < 12.0
    # Correctness: all LLM-group participants identify the right reason.
    assert with_llm.correct_fraction == pytest.approx(1.0)
    assert 0.4 <= without_llm.correct_fraction <= 0.8
    # Everyone who was wrong corrects themselves after reading the explanation.
    assert without_llm.corrected_fraction == pytest.approx(1.0)
    # Difficulty: plan details ≈ 8.5, explanation ≈ 3.
    assert 7.5 <= without_llm.average_plan_difficulty <= 9.5
    assert 2.0 <= without_llm.average_explanation_difficulty <= 4.0


def test_study_report_rows_shape(materials):
    report = ParticipantStudy(materials).run()
    rows = report.as_rows()
    assert [row["group"] for row in rows] == ["without_llm", "with_llm"]
    assert all({"avg_minutes", "correct_fraction", "plan_difficulty"} <= set(row) for row in rows)


def test_study_deterministic_given_seed(materials):
    first = ParticipantStudy(materials, seed=7).run()
    second = ParticipantStudy(materials, seed=7).run()
    assert first.without_llm.average_minutes == second.without_llm.average_minutes
    assert first.with_llm.correct_fraction == second.with_llm.correct_fraction
