"""Equivalence and memoization tests for the vectorized featurization path.

The batched :meth:`PlanFeaturizer.features_for_nodes` must be numerically
interchangeable with the scalar :meth:`PlanFeaturizer.node_features`
reference on every plan the workload generator can produce — not just
hand-built trees — because the router's embeddings (and hence the KB's
retrieval geometry) are defined by the scalar semantics.
"""

import numpy as np
import pytest

from repro.htap.catalog import Catalog
from repro.htap.plan.nodes import NodeType, PlanNode
from repro.router.features import PlanFeaturizer
from repro.router.tensors import PlanTensor


def _workload_plans(labeled_workload) -> list[PlanNode]:
    plans: list[PlanNode] = []
    for labeled in labeled_workload:
        pair = labeled.execution.plan_pair
        plans.extend([pair.tp_plan, pair.ap_plan])
    return plans


# ------------------------------------------------------------- equivalence
def test_batched_features_match_scalar_on_every_workload_plan(catalog, labeled_workload):
    featurizer = PlanFeaturizer(catalog)
    plans = _workload_plans(labeled_workload)
    assert plans  # the fixture labels a 60-query workload
    for plan in plans:
        nodes = list(plan.walk())
        batched = featurizer.features_for_nodes(nodes)
        scalar = np.stack([featurizer.node_features(node) for node in nodes])
        np.testing.assert_allclose(batched, scalar, rtol=0.0, atol=1e-12)


def test_batched_features_match_scalar_without_catalog(labeled_workload):
    featurizer = PlanFeaturizer(None)
    for plan in _workload_plans(labeled_workload)[:10]:
        nodes = list(plan.walk())
        batched = featurizer.features_for_nodes(nodes)
        scalar = np.stack([featurizer.node_features(node) for node in nodes])
        np.testing.assert_allclose(batched, scalar, rtol=0.0, atol=1e-12)


def test_features_for_nodes_empty_input(catalog):
    featurizer = PlanFeaturizer(catalog)
    matrix = featurizer.features_for_nodes([])
    assert matrix.shape == (0, featurizer.feature_size)


def test_from_plans_matches_from_plan(catalog, labeled_workload):
    featurizer = PlanFeaturizer(catalog)
    plans = _workload_plans(labeled_workload)[:24]
    batched = PlanTensor.from_plans(plans, featurizer)
    assert len(batched) == len(plans)
    for plan, tensor in zip(plans, batched):
        single = PlanTensor.from_plan(plan, featurizer)
        np.testing.assert_array_equal(tensor.features, single.features)
        np.testing.assert_array_equal(tensor.left, single.left)
        np.testing.assert_array_equal(tensor.right, single.right)


def test_from_plans_empty():
    assert PlanTensor.from_plans([], PlanFeaturizer(None)) == []


# -------------------------------------------------------------- memoization
class _CountingCatalog:
    """Catalog facade that counts lookups the featurizer performs."""

    def __init__(self, catalog: Catalog):
        self._catalog = catalog
        self.row_count_calls = 0
        self.has_table_calls = 0

    def has_table(self, name: str) -> bool:
        self.has_table_calls += 1
        return self._catalog.has_table(name)

    def row_count(self, name: str) -> int:
        self.row_count_calls += 1
        return self._catalog.row_count(name)


def _scan(relation: str) -> PlanNode:
    return PlanNode(NodeType.TABLE_SCAN, total_cost=5.0, plan_rows=100.0, relation=relation)


def test_row_count_memoized_per_relation(catalog):
    counting = _CountingCatalog(catalog)
    featurizer = PlanFeaturizer(counting)
    nodes = [_scan("orders"), _scan("customer"), _scan("orders"), _scan("orders")]
    featurizer.features_for_nodes(nodes)
    assert counting.row_count_calls == 2  # one per distinct relation
    featurizer.features_for_nodes(nodes)
    featurizer.node_features(nodes[0])
    assert counting.row_count_calls == 2  # later passes hit the memo


def test_row_count_memo_cleared_on_invalidate(catalog):
    counting = _CountingCatalog(catalog)
    featurizer = PlanFeaturizer(counting)
    featurizer.features_for_nodes([_scan("orders")])
    assert counting.row_count_calls == 1
    featurizer.invalidate_catalog_cache()
    featurizer.features_for_nodes([_scan("orders")])
    assert counting.row_count_calls == 2


def test_unknown_relation_memoized_and_falls_back_to_plan_rows(catalog):
    counting = _CountingCatalog(catalog)
    featurizer = PlanFeaturizer(counting)
    stranger = PlanNode(
        NodeType.TABLE_SCAN, total_cost=1.0, plan_rows=42.0, relation="no_such_table"
    )
    first = featurizer.node_features(stranger)
    second = featurizer.node_features(stranger)
    np.testing.assert_array_equal(first, second)
    assert counting.row_count_calls == 0  # never resolved through the catalog
    assert counting.has_table_calls == 1  # the miss itself is memoized
    assert first[-1] == pytest.approx(np.log1p(42.0) / 22.0)


def test_service_ddl_clears_featurizer_memo(catalog):
    """The DDL listener hook must reach the featurizer's row-count memo."""
    from repro.htap.system import HTAPSystem
    from repro.router.router import SmartRouter

    system = HTAPSystem(scale_factor=100.0)
    router = SmartRouter(system.catalog, seed=13)
    router.featurizer._row_count_cache["orders"] = 123.0
    from repro.knowledge.knowledge_base import KnowledgeBase
    from repro.llm.simulated import SimulatedLLM
    from repro.service import ExplanationService

    service = ExplanationService(
        system, router, KnowledgeBase(), SimulatedLLM(seed=7), max_workers=1
    )
    try:
        assert router.featurizer._row_count_cache
        service.create_index("orders", "o_custkey")
        assert router.featurizer._row_count_cache == {}
    finally:
        service.shutdown()
