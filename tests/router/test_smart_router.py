"""Tests for training and the SmartRouter facade (paper claims in III-A)."""

import numpy as np
import pytest

from repro.htap.engines.base import EngineKind
from repro.router.router import SmartRouter


def test_training_report_and_high_accuracy(trained_router, labeled_workload):
    report = trained_router.training_report
    assert report is not None
    assert report.epochs == 8
    assert report.final_train_loss < 1.0
    assert report.final_train_accuracy >= 0.85
    # The paper's claim: the router identifies the faster engine with high accuracy.
    assert trained_router.accuracy(labeled_workload) >= 0.85


def test_routing_decision_fields(trained_router, labeled_workload):
    decision = trained_router.route(labeled_workload[0].execution.plan_pair)
    assert decision.engine in (EngineKind.TP, EngineKind.AP)
    assert 0.5 <= decision.confidence <= 1.0
    assert decision.probabilities[0] + decision.probabilities[1] == pytest.approx(1.0)
    assert decision.inference_seconds < 0.05  # well under the paper's 1 ms budget in most runs


def test_embedding_is_16_dim_and_deterministic(trained_router, labeled_workload):
    pair = labeled_workload[0].execution.plan_pair
    first = trained_router.embed_pair(pair)
    second = trained_router.embed_pair(pair)
    assert first.shape == (16,)
    assert np.allclose(first, second)


def test_different_plan_pairs_get_different_embeddings(trained_router, labeled_workload):
    first = trained_router.embed_pair(labeled_workload[0].execution.plan_pair)
    others = [
        trained_router.embed_pair(labeled.execution.plan_pair) for labeled in labeled_workload[1:10]
    ]
    assert any(not np.allclose(first, other) for other in others)


def test_model_size_under_one_megabyte(trained_router):
    assert trained_router.model_size_bytes() < 1_000_000


def test_timed_embed_reports_duration(trained_router, labeled_workload):
    _embedding, seconds = trained_router.timed_embed(labeled_workload[0].execution.plan_pair)
    assert 0.0 < seconds < 0.1


def test_save_and_load_roundtrip(tmp_path, trained_router, labeled_workload, system):
    path = tmp_path / "router.pkl"
    trained_router.save(path)
    restored = SmartRouter.load(path, system.catalog)
    pair = labeled_workload[3].execution.plan_pair
    assert np.allclose(restored.embed_pair(pair), trained_router.embed_pair(pair))
    assert restored.route(pair).engine == trained_router.route(pair).engine


def test_fit_on_empty_set_raises(system):
    router = SmartRouter(system.catalog)
    with pytest.raises(ValueError):
        router.fit([])


def test_untrained_router_still_embeds(system, labeled_workload):
    router = SmartRouter(system.catalog)
    embedding = router.embed_pair(labeled_workload[0].execution.plan_pair)
    assert embedding.shape == (16,)


def test_embed_batch_matches_embed_pair(trained_router, labeled_workload):
    """The vectorized path must reproduce per-pair embeddings (atol 1e-9)."""
    pairs = [labeled.execution.plan_pair for labeled in labeled_workload[:20]]
    batched = trained_router.embed_batch(pairs)
    singles = np.stack([trained_router.embed_pair(pair) for pair in pairs])
    assert batched.shape == (20, trained_router.embedding_size)
    assert np.allclose(batched, singles, atol=1e-9)


def test_embed_batch_empty_and_single(trained_router, labeled_workload):
    assert trained_router.embed_batch([]).shape == (0, trained_router.embedding_size)
    pair = labeled_workload[0].execution.plan_pair
    single = trained_router.embed_batch([pair])
    assert np.allclose(single[0], trained_router.embed_pair(pair), atol=1e-9)


def test_timed_embed_batch_reports_duration(trained_router, labeled_workload):
    pairs = [labeled.execution.plan_pair for labeled in labeled_workload[:4]]
    embeddings, seconds = trained_router.timed_embed_batch(pairs)
    assert embeddings.shape[0] == 4
    assert seconds > 0.0
