"""Tests for plan featurisation, tree tensors, and the tree-CNN internals."""

import numpy as np
import pytest

from repro.htap.plan.nodes import NodeType, PlanNode
from repro.router.features import PlanFeaturizer, structural_embedding
from repro.router.tensors import PlanTensor
from repro.router.treecnn import CLASS_AP, CLASS_TP, Gradients, TreeCNNClassifier, TreeCNNConfig


def _plan() -> PlanNode:
    scan = PlanNode(NodeType.TABLE_SCAN, total_cost=10.0, plan_rows=1000.0, relation="orders")
    filtered = PlanNode(NodeType.FILTER, total_cost=12.0, plan_rows=100.0, children=[scan])
    other = PlanNode(NodeType.INDEX_SCAN, total_cost=1.0, plan_rows=5.0, relation="customer", index_name="pk_customer")
    join = PlanNode(NodeType.HASH_JOIN, total_cost=20.0, plan_rows=80.0, children=[filtered, other])
    return PlanNode(NodeType.AGGREGATE, total_cost=25.0, plan_rows=1.0, children=[join])


# ---------------------------------------------------------------- features
def test_feature_vector_width_and_onehot(catalog):
    featurizer = PlanFeaturizer(catalog)
    vector = featurizer.node_features(_plan())
    assert vector.shape == (featurizer.feature_size,)
    one_hot = vector[: len(list(NodeType))]
    assert one_hot.sum() == pytest.approx(1.0)


def test_index_and_role_flags(catalog):
    featurizer = PlanFeaturizer(catalog)
    plan = _plan()
    index_scan = plan.find_all(NodeType.INDEX_SCAN)[0]
    vector = featurizer.node_features(index_scan)
    # Last 7 features: log_rows, log_cost, uses_index, is_scan, is_join, is_agg, log_table.
    tail = vector[-7:]
    assert tail[2] == 1.0  # uses_index
    assert tail[3] == 1.0  # is_scan
    assert tail[4] == 0.0  # is_join
    join_vector = featurizer.node_features(plan.find_all(NodeType.HASH_JOIN)[0])
    assert join_vector[-7:][4] == 1.0


def test_features_bounded(catalog):
    featurizer = PlanFeaturizer(catalog)
    matrix = featurizer.plan_features(_plan())
    assert matrix.shape[0] == _plan().node_count()
    assert np.all(matrix >= 0.0)
    assert np.all(matrix <= 2.0)


def test_featurizer_without_catalog_falls_back_to_plan_rows():
    featurizer = PlanFeaturizer(None)
    vector = featurizer.node_features(_plan().find_all(NodeType.TABLE_SCAN)[0])
    assert vector[-1] > 0.0


def test_structural_embedding_is_normalised():
    embedding = structural_embedding(_plan(), dimensions=16)
    assert embedding.shape == (16,)
    assert np.linalg.norm(embedding) == pytest.approx(1.0)


# ----------------------------------------------------------------- tensors
def test_plan_tensor_indices_consistent(catalog):
    featurizer = PlanFeaturizer(catalog)
    tensor = PlanTensor.from_plan(_plan(), featurizer)
    assert tensor.node_count == _plan().node_count()
    assert tensor.features.shape == (tensor.node_count + 1, featurizer.feature_size)
    assert np.all(tensor.features[0] == 0.0)  # padding row
    # Aggregate (node 1) has the join (node 2) as left child and no right child.
    assert tensor.left[0] == 2
    assert tensor.right[0] == 0
    triples = tensor.triples()
    assert triples.shape == (tensor.node_count, 3 * featurizer.feature_size)


def test_plan_tensor_rejects_ternary_nodes(catalog):
    featurizer = PlanFeaturizer(catalog)
    bad = PlanNode(
        NodeType.HASH_JOIN,
        children=[PlanNode(NodeType.TABLE_SCAN), PlanNode(NodeType.TABLE_SCAN), PlanNode(NodeType.TABLE_SCAN)],
    )
    with pytest.raises(ValueError):
        PlanTensor.from_plan(bad, featurizer)


# ---------------------------------------------------------------- tree-CNN
@pytest.fixture()
def small_model(catalog):
    featurizer = PlanFeaturizer(catalog)
    config = TreeCNNConfig(feature_size=featurizer.feature_size, conv1_channels=8, conv2_channels=8, head_hidden=8, embedding_size=4)
    return featurizer, TreeCNNClassifier(config)


def test_forward_pair_produces_probabilities(small_model):
    featurizer, model = small_model
    tensor = PlanTensor.from_plan(_plan(), featurizer)
    probabilities = model.predict_proba(tensor, tensor)
    assert probabilities.shape == (2,)
    assert probabilities.sum() == pytest.approx(1.0)
    assert np.all(probabilities >= 0.0)


def test_embedding_shape_and_nonnegativity(small_model):
    featurizer, model = small_model
    tensor = PlanTensor.from_plan(_plan(), featurizer)
    embedding = model.embed_pair(tensor, tensor)
    assert embedding.shape == (4,)
    assert np.all(embedding >= 0.0)  # relu output


def test_loss_decreases_with_gradient_steps(small_model):
    featurizer, model = small_model
    tensor = PlanTensor.from_plan(_plan(), featurizer)
    label = CLASS_AP
    first_loss = None
    for _step in range(30):
        gradients = Gradients()
        loss, _ = model.loss_and_gradients(tensor, tensor, label, gradients)
        if first_loss is None:
            first_loss = loss
        for name, gradient in gradients.values.items():
            model.parameters[name] -= 0.05 * gradient
    final_loss, _ = model.loss_and_gradients(tensor, tensor, label, Gradients())
    assert final_loss < first_loss


def test_numerical_gradient_check(small_model):
    """Backprop gradients match finite differences on a few parameters."""
    featurizer, model = small_model
    tensor = PlanTensor.from_plan(_plan(), featurizer)
    gradients = Gradients()
    model.loss_and_gradients(tensor, tensor, CLASS_TP, gradients)
    rng = np.random.default_rng(0)
    for name in ("out_w", "embed_w", "conv2_w", "conv1_w"):
        parameter = model.parameters[name]
        flat_index = rng.integers(0, parameter.size)
        index = np.unravel_index(flat_index, parameter.shape)
        epsilon = 1e-6
        original = parameter[index]
        parameter[index] = original + epsilon
        loss_plus, _ = model.loss_and_gradients(tensor, tensor, CLASS_TP, Gradients())
        parameter[index] = original - epsilon
        loss_minus, _ = model.loss_and_gradients(tensor, tensor, CLASS_TP, Gradients())
        parameter[index] = original
        numeric = (loss_plus - loss_minus) / (2 * epsilon)
        analytic = gradients.values[name][index]
        assert analytic == pytest.approx(numeric, rel=0.05, abs=1e-6)


def test_invalid_label_rejected(small_model):
    featurizer, model = small_model
    tensor = PlanTensor.from_plan(_plan(), featurizer)
    with pytest.raises(ValueError):
        model.loss_and_gradients(tensor, tensor, 5, Gradients())


def test_state_dict_roundtrip(small_model):
    featurizer, model = small_model
    state = model.state_dict()
    clone = TreeCNNClassifier(model.config)
    clone.load_state_dict(state)
    tensor = PlanTensor.from_plan(_plan(), featurizer)
    assert np.allclose(clone.predict_proba(tensor, tensor), model.predict_proba(tensor, tensor))
    with pytest.raises(KeyError):
        clone.load_state_dict({"bogus": np.zeros(3)})


def test_model_size_well_under_one_megabyte(small_model):
    _featurizer, model = small_model
    assert model.model_size_bytes() < 1_000_000
    assert model.parameter_count() == sum(p.size for p in model.parameters.values())
