"""Tests for the RAG pipeline, the evaluation panel, feedback, and timing."""

import pytest

from repro.explainer.evaluation import AccuracyReport, ExpertPanel, Grade
from repro.explainer.feedback import FeedbackLoop
from repro.explainer.pipeline import RagExplainer, entries_from_labeled
from repro.explainer.timing import LatencyProfile
from repro.htap.engines.base import EngineKind
from repro.knowledge.knowledge_base import KnowledgeBase
from repro.workloads.experts import SimulatedExpert


# ---------------------------------------------------------------- pipeline
def test_entries_from_labeled_capture_all_fields(labeled_workload, trained_router):
    entries = entries_from_labeled(labeled_workload[:5], trained_router, SimulatedExpert())
    assert len(entries) == 5
    for entry, labeled in zip(entries, labeled_workload[:5]):
        assert entry.entry_id == labeled.query_id
        assert entry.embedding.shape == (16,)
        assert entry.faster_engine is labeled.faster_engine
        assert set(entry.plan_details) == {"TP", "AP"}
        assert entry.expert_explanation
        assert entry.factors
        assert entry.metadata["pattern"] == labeled.workload_query.pattern.value


def test_explain_execution_returns_full_explanation(rag_explainer, labeled_workload):
    labeled = labeled_workload[25]
    explanation = rag_explainer.explain_execution(labeled.execution)
    assert explanation.sql == labeled.sql
    assert len(explanation.retrieved) <= 2
    assert explanation.embedding.shape == (16,)
    assert "QUESTION:" in explanation.prompt.text
    assert explanation.latency.total_seconds > 0
    if not explanation.is_none_answer:
        assert explanation.claims.get("winner") in ("TP", "AP")
        assert explanation.text


def test_explain_sql_runs_both_engines(rag_explainer, example1_sql):
    explanation = rag_explainer.explain_sql(example1_sql)
    assert explanation.faster_engine is EngineKind.AP
    assert "hash join" in explanation.text.lower() or explanation.is_none_answer is False


def test_user_notes_are_included_in_prompt(rag_explainer, labeled_workload):
    explanation = rag_explainer.explain_execution(
        labeled_workload[0].execution, user_notes="A new index exists on c_phone."
    )
    assert "A new index exists on c_phone." in explanation.prompt.text


def test_top_k_controls_retrieved_count(system, trained_router, knowledge_base, simulated_llm, labeled_workload):
    for k in (1, 3):
        explainer = RagExplainer(system, trained_router, knowledge_base, simulated_llm, top_k=k)
        explanation = explainer.explain_execution(labeled_workload[30].execution)
        assert len(explanation.retrieved) == min(k, len(knowledge_base))
    with pytest.raises(ValueError):
        RagExplainer(system, trained_router, knowledge_base, simulated_llm, top_k=-1)


def test_zero_k_behaves_like_no_rag(system, trained_router, knowledge_base, simulated_llm, labeled_workload):
    explainer = RagExplainer(system, trained_router, knowledge_base, simulated_llm, top_k=0)
    explanation = explainer.explain_execution(labeled_workload[10].execution)
    assert explanation.retrieved == []
    assert explanation.claims.get("grounded") is False


# -------------------------------------------------------------- evaluation
def test_panel_grades_accurate_explanations(rag_explainer, labeled_workload):
    panel = ExpertPanel()
    sample = labeled_workload[20:50]
    explanations = [rag_explainer.explain_execution(labeled.execution) for labeled in sample]
    report = panel.evaluate(sample, explanations)
    assert report.total == len(sample)
    assert report.accurate_rate >= 0.7
    assert report.accurate_rate + report.imprecise_rate + report.none_rate + report.wrong_rate == pytest.approx(1.0)
    assert 0.0 <= report.less_precise_rate <= 0.3
    assert set(report.as_dict()) == {"total", "accurate", "imprecise", "none", "wrong"}


def test_panel_grades_none_answer(rag_explainer, labeled_workload):
    labeled = labeled_workload[0]
    explanation = rag_explainer.explain_execution(labeled.execution)
    object.__setattr__(explanation.response, "text", "None")
    graded = ExpertPanel().grade(labeled, explanation)
    assert graded.grade is Grade.NONE_ANSWER


def test_panel_marks_wrong_winner_as_wrong(rag_explainer, labeled_workload):
    # Pick a query whose explanation is a real answer (not a None abstention).
    labeled, explanation = next(
        (candidate, answer)
        for candidate in labeled_workload[:20]
        for answer in [rag_explainer.explain_execution(candidate.execution)]
        if not answer.is_none_answer
    )
    explanation.claims["winner"] = labeled.faster_engine.other().value
    graded = ExpertPanel().grade(labeled, explanation)
    assert graded.grade is Grade.WRONG
    assert not graded.winner_correct


def test_panel_text_fallback_without_claims(rag_explainer, labeled_workload):
    labeled = labeled_workload[8]
    explanation = rag_explainer.explain_execution(labeled.execution)
    explanation.claims = {"winner": labeled.faster_engine.value}
    graded = ExpertPanel().grade(labeled, explanation)
    assert graded.grade in (Grade.ACCURATE, Grade.IMPRECISE, Grade.WRONG)


def test_panel_requires_aligned_inputs(rag_explainer, labeled_workload):
    with pytest.raises(ValueError):
        ExpertPanel().evaluate(labeled_workload[:2], [])
    with pytest.raises(ValueError):
        ExpertPanel(panel_size=0)


def test_empty_report_rates_are_zero():
    report = AccuracyReport()
    assert report.accurate_rate == 0.0
    assert report.less_precise_rate == 0.0


# ---------------------------------------------------------------- feedback
def test_feedback_loop_adds_corrections(system, trained_router, simulated_llm, labeled_workload):
    kb = KnowledgeBase()
    kb.add_many(entries_from_labeled(labeled_workload[:5], trained_router, SimulatedExpert()))
    explainer = RagExplainer(system, trained_router, kb, simulated_llm, top_k=2)
    loop = FeedbackLoop(explainer)
    batch = labeled_workload[30:55]
    first = loop.run_round(batch)
    assert first.knowledge_base_size >= 5
    assert sum(first.graded_counts.values()) == len(batch)
    second = loop.run_round(batch)
    # With corrections in the KB, the second pass cannot be less accurate.
    assert second.accurate_rate >= first.accurate_rate - 1e-9
    rounds = loop.run(batch, rounds=2)
    assert len(rounds) == 2


# ------------------------------------------------------------------ timing
def test_latency_profile_arithmetic():
    profile = LatencyProfile(0.001, 0.0001, 1.5, 9.0)
    assert profile.total_seconds == pytest.approx(10.5011)
    assert profile.retrieval_seconds == pytest.approx(0.0011)
    average = LatencyProfile.average([profile, LatencyProfile(0.003, 0.0003, 0.5, 11.0)])
    assert average.encode_seconds == pytest.approx(0.002)
    assert average.llm_generation_seconds == pytest.approx(10.0)
    assert LatencyProfile.average([]).total_seconds == 0.0
    assert "total_seconds" in profile.as_dict()
