"""Tests for the conversational follow-up interface (paper Section VI-B)."""

import pytest

from repro.explainer.conversation import ExplanationConversation


@pytest.fixture()
def conversation(rag_explainer, simulated_llm, example1_sql):
    explanation = rag_explainer.explain_sql(example1_sql)
    return ExplanationConversation(explanation=explanation, llm=simulated_llm)


def test_follow_up_about_index_under_function(conversation):
    turn = conversation.ask(
        "Why does the predicate on the customer table not benefit from the index on c_phone "
        "when SUBSTRING is applied?"
    )
    assert "index" in turn.answer.lower()
    assert "substring" in turn.answer.lower() or "function" in turn.answer.lower()
    assert turn.response.generation_seconds > 0
    assert conversation.turns == [turn]


def test_follow_up_about_cost_comparability(conversation):
    turn = conversation.ask("Can I compare the cost numbers of the two plans to decide which is faster?")
    assert "not comparable" in turn.answer or "different" in turn.answer


def test_follow_up_about_offset(conversation):
    turn = conversation.ask("Is an OFFSET of 100000 large enough to matter here?")
    assert "offset" in turn.answer.lower()


def test_unknown_follow_up_gets_default_answer(conversation):
    turn = conversation.ask("What colour is the database?")
    assert "dominant factor" in turn.answer


def test_history_accumulates_and_feeds_prompt(conversation):
    conversation.ask("Why is the hash join faster here?")
    second = conversation.ask("And is that also true for small tables?")
    assert len(conversation.turns) == 2
    prompt = conversation._build_prompt("next question")
    assert "Why is the hash join faster here?" in prompt
    assert conversation.explanation.sql in prompt
    assert second.answer


def test_empty_question_rejected(conversation):
    with pytest.raises(ValueError):
        conversation.ask("   ")
