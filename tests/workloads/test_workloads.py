"""Tests for workload generation, labeling, expert curation, and datasets."""

import pytest

from repro.htap.engines.base import EngineKind
from repro.htap.sql.parser import parse_query
from repro.workloads.datasets import build_paper_dataset
from repro.workloads.experts import SimulatedExpert, factor_is_consistent
from repro.workloads.generator import DEFAULT_PATTERN_WEIGHTS, QueryPattern, WorkloadGenerator
from repro.workloads.labeling import ExplanationFactor, WorkloadLabeler


# --------------------------------------------------------------- generator
def test_generator_is_deterministic_per_seed():
    first = [query.sql for query in WorkloadGenerator(seed=5).generate(20)]
    second = [query.sql for query in WorkloadGenerator(seed=5).generate(20)]
    third = [query.sql for query in WorkloadGenerator(seed=6).generate(20)]
    assert first == second
    assert first != third


def test_generated_queries_all_parse(system):
    for query in WorkloadGenerator(seed=1).generate(120):
        parsed = parse_query(query.sql)
        assert parsed.tables
        system.explain_pair(parsed)  # plans successfully on both engines


def test_every_pattern_produces_valid_queries():
    generator = WorkloadGenerator(seed=2)
    for pattern in QueryPattern:
        query = generator.generate_one(pattern)
        assert query.pattern is pattern
        assert query.family in {"join", "topn", "selective", "aggregation"}
        parse_query(query.sql)


def test_balanced_generation_cycles_patterns():
    queries = WorkloadGenerator(seed=3).generate_balanced(len(QueryPattern))
    assert {query.pattern for query in queries} == set(QueryPattern)


def test_pattern_families_match_paper_section_iv():
    joins = [pattern for pattern in QueryPattern if pattern.family == "join"]
    topns = [pattern for pattern in QueryPattern if pattern.family == "topn"]
    assert len(joins) >= 5
    assert len(topns) >= 4


def test_generator_rejects_negative_count():
    with pytest.raises(ValueError):
        WorkloadGenerator().generate(-1)


def test_default_weights_cover_all_patterns():
    assert set(DEFAULT_PATTERN_WEIGHTS) == set(QueryPattern)
    assert all(weight > 0 for weight in DEFAULT_PATTERN_WEIGHTS.values())


def test_query_ids_are_unique():
    queries = WorkloadGenerator(seed=4).generate(50)
    assert len({query.query_id for query in queries}) == 50


# ----------------------------------------------------------------- labeler
def test_labeler_produces_consistent_ground_truth(system, labeled_workload):
    for labeled in labeled_workload:
        ground_truth = labeled.ground_truth
        assert ground_truth.faster_engine is labeled.execution.faster_engine
        assert ground_truth.speedup >= 1.0
        # The primary factor must argue for the winning engine.
        assert ground_truth.primary_factor.favours is ground_truth.faster_engine
        assert ground_truth.primary_factor not in ground_truth.secondary_factors


def test_labeler_example1_factors(system, example1_sql):
    labeler = WorkloadLabeler(system)
    generator = WorkloadGenerator(seed=1)
    query = generator.generate_one(QueryPattern.JOIN_PHONE_PREFIX)
    workload_query = type(query)(query_id="ex1", sql=example1_sql, pattern=query.pattern, params={})
    labeled = labeler.label(workload_query)
    assert labeled.faster_engine is EngineKind.AP
    assert labeled.ground_truth.primary_factor is ExplanationFactor.HASH_JOIN_VS_NESTED_LOOP
    values = labeled.ground_truth.factor_values()
    assert ExplanationFactor.NO_USABLE_INDEX.value in values


def test_labeler_detects_index_defeated_by_function(example1_sql):
    """With the paper's extra index on c_phone, the SUBSTRING predicate defeats it."""
    from repro.htap.system import HTAPSystem

    system_with_index = HTAPSystem(scale_factor=100)
    system_with_index.create_index("customer", "c_phone")
    labeler = WorkloadLabeler(system_with_index)
    query = WorkloadGenerator(seed=1).generate_one(QueryPattern.JOIN_PHONE_PREFIX)
    workload_query = type(query)(query_id="ex1", sql=example1_sql, pattern=query.pattern, params={})
    labeled = labeler.label(workload_query)
    values = labeled.ground_truth.factor_values()
    assert ExplanationFactor.INDEX_DEFEATED_BY_FUNCTION.value in values
    # The plans are unchanged: the TP engine still cannot use the index.
    assert not labeled.execution.plan_pair.tp_plan.uses_index()


def test_workload_covers_both_winners_and_many_factors(labeled_workload):
    winners = {labeled.faster_engine for labeled in labeled_workload}
    assert winners == {EngineKind.TP, EngineKind.AP}
    primary_factors = {labeled.ground_truth.primary_factor for labeled in labeled_workload}
    assert len(primary_factors) >= 5


def test_topn_indexed_query_gets_order_factor(system):
    labeler = WorkloadLabeler(system)
    query = WorkloadGenerator(seed=8).generate_one(QueryPattern.TOPN_ORDERS_KEY)
    labeled = labeler.label(query)
    assert labeled.faster_engine is EngineKind.TP
    assert labeled.ground_truth.primary_factor is ExplanationFactor.INDEX_PROVIDES_ORDER


def test_factor_favours_mapping():
    assert ExplanationFactor.HASH_JOIN_VS_NESTED_LOOP.favours is EngineKind.AP
    assert ExplanationFactor.SELECTIVE_INDEX_ACCESS.favours is EngineKind.TP
    assert factor_is_consistent(ExplanationFactor.SELECTIVE_INDEX_ACCESS, EngineKind.TP)
    assert not factor_is_consistent(ExplanationFactor.SELECTIVE_INDEX_ACCESS, EngineKind.AP)
    for factor in ExplanationFactor:
        assert factor.short_description


# ----------------------------------------------------------------- experts
def test_expert_explanation_names_winner_and_factor(labeled_workload):
    expert = SimulatedExpert()
    for labeled in labeled_workload[:10]:
        text = expert.explain(labeled)
        assert labeled.faster_engine.value in text.split()[0]  # starts with the winner
        assert "faster" in text
        verdict = expert.execution_verdict(labeled)
        assert "TP" in verdict and "AP" in verdict


def test_expert_example1_style(system, example1_sql, labeled_workload):
    labeler = WorkloadLabeler(system)
    query = WorkloadGenerator(seed=1).generate_one(QueryPattern.JOIN_PHONE_PREFIX)
    workload_query = type(query)(query_id="ex1", sql=example1_sql, pattern=query.pattern, params={})
    labeled = labeler.label(workload_query)
    text = SimulatedExpert().explain(labeled)
    assert "nested loop join" in text
    assert "hash join" in text


def test_expert_without_secondary_sentences():
    expert = SimulatedExpert(include_secondary=False)
    assert expert.include_secondary is False


# ---------------------------------------------------------------- datasets
def test_paper_dataset_sizes(system):
    dataset = build_paper_dataset(
        system, knowledge_base_size=10, test_size=30, router_training_size=40, seed=5
    )
    assert dataset.summary() == {"router_training": 40, "knowledge_base": 10, "test": 30}
    # The knowledge-base queries are part of the router training set.
    training_ids = {labeled.query_id for labeled in dataset.router_training}
    assert {labeled.query_id for labeled in dataset.knowledge_base} <= training_ids
    assert len(dataset.all_labeled()) == 80


def test_paper_dataset_rejects_negative_sizes(system):
    with pytest.raises(ValueError):
        build_paper_dataset(system, knowledge_base_size=-1)
