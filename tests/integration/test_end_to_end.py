"""Integration tests across modules: the full paper pipeline on small scale."""

import pytest

from repro.baselines.dbgpt import DBGPTExplainer
from repro.explainer.evaluation import ExpertPanel
from repro.explainer.feedback import FeedbackLoop
from repro.explainer.pipeline import RagExplainer, entries_from_labeled
from repro.htap.engines.base import EngineKind
from repro.htap.system import HTAPSystem
from repro.knowledge.knowledge_base import KnowledgeBase
from repro.knowledge.vector_store import HNSWVectorStore
from repro.llm.simulated import SimulatedLLM
from repro.router.router import SmartRouter
from repro.workloads.datasets import build_paper_dataset
from repro.workloads.experts import SimulatedExpert


@pytest.fixture(scope="module")
def pipeline_setup():
    """A miniature version of the paper's full experimental pipeline."""
    system = HTAPSystem(scale_factor=100)
    dataset = build_paper_dataset(
        system, knowledge_base_size=15, test_size=50, router_training_size=80, seed=31
    )
    router = SmartRouter(system.catalog, seed=5)
    router.fit(dataset.router_training, epochs=10)
    knowledge_base = KnowledgeBase()
    knowledge_base.add_many(entries_from_labeled(dataset.knowledge_base, router, SimulatedExpert()))
    llm = SimulatedLLM(seed=11)
    explainer = RagExplainer(system, router, knowledge_base, llm, top_k=2)
    return system, dataset, router, knowledge_base, explainer


def test_full_pipeline_accuracy_beats_dbgpt(pipeline_setup):
    system, dataset, _router, _kb, explainer = pipeline_setup
    panel = ExpertPanel()
    sample = dataset.test[:30]
    ours = panel.evaluate(
        sample, [explainer.explain_execution(labeled.execution) for labeled in sample]
    )
    assert ours.accurate_rate >= 0.7

    dbgpt = DBGPTExplainer(system, SimulatedLLM(seed=11))
    wrong_winner = sum(
        1
        for labeled in sample
        if dbgpt.explain_execution(labeled.execution).claimed_winner is not labeled.faster_engine
    )
    # The ungrounded baseline misidentifies the winner on a visible fraction
    # of queries; the RAG pipeline (given execution results) never does.
    assert wrong_winner > 0
    assert all(
        explainer.explain_execution(labeled.execution).claims.get("winner")
        in (labeled.faster_engine.value, None)
        for labeled in sample[:10]
    )


def test_router_training_and_retrieval_consistency(pipeline_setup):
    _system, dataset, router, knowledge_base, _explainer = pipeline_setup
    # Routing accuracy on unseen queries is high (paper claim).
    assert router.accuracy(dataset.test) >= 0.85
    # Retrieval returns entries whose winner usually matches the query's.
    matches = 0
    for labeled in dataset.test[:30]:
        hits = knowledge_base.retrieve(router.embed_pair(labeled.execution.plan_pair), k=2).hits
        if any(hit.entry.faster_engine is labeled.faster_engine for hit in hits):
            matches += 1
    assert matches >= 24


def test_feedback_loop_improves_or_maintains_accuracy(pipeline_setup):
    system, dataset, router, _kb, _explainer = pipeline_setup
    # Start from a deliberately tiny KB so there is room to improve.
    small_kb = KnowledgeBase()
    small_kb.add_many(entries_from_labeled(dataset.knowledge_base[:4], router, SimulatedExpert()))
    explainer = RagExplainer(system, router, small_kb, SimulatedLLM(seed=11), top_k=2)
    loop = FeedbackLoop(explainer)
    batch = dataset.test[:30]
    first = loop.run_round(batch)
    second = loop.run_round(batch)
    assert len(small_kb) > 4
    assert second.accurate_rate >= first.accurate_rate


def test_hnsw_backed_pipeline_equivalent_results(pipeline_setup):
    system, dataset, router, _kb, _explainer = pipeline_setup
    flat_kb = KnowledgeBase()
    hnsw_kb = KnowledgeBase(vector_store=HNSWVectorStore(seed=3))
    entries = entries_from_labeled(dataset.knowledge_base, router, SimulatedExpert())
    flat_kb.add_many(entries)
    hnsw_kb.add_many(
        entries_from_labeled(dataset.knowledge_base, router, SimulatedExpert())
    )
    flat_explainer = RagExplainer(system, router, flat_kb, SimulatedLLM(seed=11), top_k=2)
    hnsw_explainer = RagExplainer(system, router, hnsw_kb, SimulatedLLM(seed=11), top_k=2)
    agreements = 0
    for labeled in dataset.test[:20]:
        flat_answer = flat_explainer.explain_execution(labeled.execution)
        hnsw_answer = hnsw_explainer.explain_execution(labeled.execution)
        if flat_answer.text == hnsw_answer.text:
            agreements += 1
    assert agreements >= 16  # HNSW is approximate but should rarely change the answer


def test_example1_end_to_end_matches_paper_story(pipeline_setup, example1_sql):
    system, _dataset, _router, _kb, explainer = pipeline_setup
    execution = system.run_both(example1_sql)
    assert execution.faster_engine is EngineKind.AP
    explanation = explainer.explain_execution(execution)
    graded_factors = set(explanation.cited_factors)
    assert "hash_join_vs_nested_loop" in graded_factors or explanation.is_none_answer is False
    assert "hash join" in explanation.text.lower()
    assert explanation.latency.retrieval_seconds < 0.05
