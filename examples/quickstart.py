#!/usr/bin/env python
"""Quickstart: explain why one HTAP engine beats the other for a query.

This walks the full pipeline from the paper on the Example 1 query:

1. build the simulated HTAP system (TPC-H at SF=100) and a labeled workload,
2. train the tree-CNN smart router on historical executions,
3. populate the RAG knowledge base with 20 expert-annotated queries,
4. ask the explainer why the AP engine beats the TP engine for the query.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from repro.bench.harness import EXAMPLE1_SQL
from repro.explainer import RagExplainer, entries_from_labeled
from repro.htap import HTAPSystem
from repro.knowledge import KnowledgeBase
from repro.llm import SimulatedLLM
from repro.router import SmartRouter
from repro.workloads import SimulatedExpert, build_paper_dataset


def main() -> None:
    print("Building the HTAP system and labeled workload (TPC-H, SF=100)...")
    system = HTAPSystem(scale_factor=100)
    dataset = build_paper_dataset(
        system, knowledge_base_size=20, test_size=0, router_training_size=120
    )

    print("Training the smart router (tree-CNN) on", len(dataset.router_training), "plan pairs...")
    router = SmartRouter(system.catalog)
    report = router.fit(dataset.router_training, epochs=20)
    print(f"  routing accuracy (validation): {report.validation_accuracy:.0%}")
    print(f"  model size: {router.model_size_bytes() / 1024:.0f} KiB")

    print("Populating the knowledge base with expert-annotated historical queries...")
    knowledge_base = KnowledgeBase()
    knowledge_base.add_many(entries_from_labeled(dataset.knowledge_base, router, SimulatedExpert()))
    print(f"  {len(knowledge_base)} entries stored (plan-pair embeddings as keys)")

    explainer = RagExplainer(system, router, knowledge_base, SimulatedLLM(), top_k=2)

    print("\nQuery (the paper's Example 1):")
    print(" ", EXAMPLE1_SQL)
    execution = system.run_both(EXAMPLE1_SQL)
    print(f"\nExecution: {execution.summary()}")

    explanation = explainer.explain_execution(execution)
    print("\nRetrieved historical queries:")
    for hit in explanation.retrieved:
        print(f"  [{hit.rank}] similarity={hit.similarity:.2f}  {hit.entry.sql[:70]}...")
    print("\nLLM explanation:")
    print(" ", explanation.text)
    print("\nLatency breakdown:")
    for component, seconds in explanation.latency.as_dict().items():
        print(f"  {component:>24s}: {seconds:.4f} s")

    # The conversational interface the paper highlights: follow-up questions.
    from repro.explainer import ExplanationConversation

    conversation = ExplanationConversation(explanation=explanation, llm=explainer.llm)
    follow_up = conversation.ask(
        "Why does the predicate on the customer table not benefit from an index on c_phone?"
    )
    print("\nFollow-up question:", follow_up.question)
    print("Follow-up answer:  ", follow_up.answer)


if __name__ == "__main__":
    main()
