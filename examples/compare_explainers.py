#!/usr/bin/env python
"""Side-by-side comparison: expert vs RAG pipeline vs no-RAG vs DBG-PT.

Reproduces the flavour of the paper's Table III and Section VI-D on a few
queries with very different performance profiles: the Example 1 join, a
top-N query whose ordering column has no index, and a selective primary-key
lookup where the TP engine wins.

Run with:  python examples/compare_explainers.py
"""

from __future__ import annotations

from repro.baselines import DBGPTExplainer, NoRagExplainer
from repro.bench.harness import EXAMPLE1_SQL
from repro.explainer import RagExplainer, entries_from_labeled
from repro.htap import HTAPSystem
from repro.knowledge import KnowledgeBase
from repro.llm import SimulatedLLM
from repro.router import SmartRouter
from repro.workloads import SimulatedExpert, WorkloadGenerator, WorkloadLabeler, build_paper_dataset

QUERIES = {
    "Example 1 (3-way join, SUBSTRING defeats the index)": EXAMPLE1_SQL,
    "Top-N without a usable index": (
        "SELECT o_orderkey, o_totalprice FROM orders WHERE o_orderstatus = 'o' "
        "ORDER BY o_totalprice DESC LIMIT 10;"
    ),
    "Selective primary-key lookup": "SELECT o_totalprice, o_orderdate FROM orders WHERE o_orderkey = 4242;",
}


def main() -> None:
    system = HTAPSystem(scale_factor=100)
    dataset = build_paper_dataset(system, knowledge_base_size=20, test_size=0, router_training_size=140)
    router = SmartRouter(system.catalog)
    router.fit(dataset.router_training, epochs=20)
    expert = SimulatedExpert()
    knowledge_base = KnowledgeBase()
    knowledge_base.add_many(entries_from_labeled(dataset.knowledge_base, router, expert))

    llm = SimulatedLLM()
    ours = RagExplainer(system, router, knowledge_base, llm, top_k=2)
    norag = NoRagExplainer(system, llm)
    dbgpt = DBGPTExplainer(system, llm)
    labeler = WorkloadLabeler(system)
    generator = WorkloadGenerator(seed=1)

    for title, sql in QUERIES.items():
        template = generator.generate_one()
        workload_query = type(template)(query_id=title, sql=sql, pattern=template.pattern, params={})
        labeled = labeler.label(workload_query)
        execution = labeled.execution
        print("\n" + "=" * 78)
        print(title)
        print("SQL:", sql)
        print(
            f"Measured: TP {execution.tp_result.latency_seconds:.3f}s, "
            f"AP {execution.ap_result.latency_seconds:.3f}s "
            f"-> {execution.faster_engine.value} faster ({execution.speedup:.0f}x)"
        )
        print("\n[Expert]  ", expert.explain(labeled))
        print("\n[Ours/RAG]", ours.explain_execution(execution).text)
        print("\n[No-RAG]  ", norag.explain_execution(execution).text)
        print("\n[DBG-PT]  ", dbgpt.explain_execution(execution).text)


if __name__ == "__main__":
    main()
