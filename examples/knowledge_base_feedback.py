#!/usr/bin/env python
"""Knowledge-base lifecycle: expert feedback, growth, and curation.

The paper's framework closes the loop between experts and the knowledge
base: inaccurate explanations are corrected by experts and folded back into
the KB, and Section VII sketches how a growing KB should be maintained
(representative selection, stale-entry expiry).  This example demonstrates
that lifecycle:

1. start from a deliberately tiny knowledge base (4 entries),
2. measure explanation accuracy on a batch of user queries,
3. run expert-correction rounds and watch accuracy improve,
4. let the KB grow, then apply the curation policies to shrink it back to
   budget while preserving factor coverage.

Run with:  python examples/knowledge_base_feedback.py
"""

from __future__ import annotations

from repro.explainer import ExpertPanel, FeedbackLoop, RagExplainer, entries_from_labeled
from repro.htap import HTAPSystem
from repro.knowledge import KnowledgeBase, expire_stale_entries, select_representative_queries
from repro.llm import SimulatedLLM
from repro.router import SmartRouter
from repro.workloads import SimulatedExpert, WorkloadGenerator, WorkloadLabeler, build_paper_dataset


def main() -> None:
    system = HTAPSystem(scale_factor=100)
    dataset = build_paper_dataset(system, knowledge_base_size=20, test_size=0, router_training_size=140)
    router = SmartRouter(system.catalog)
    router.fit(dataset.router_training, epochs=20)
    expert = SimulatedExpert()

    print("Starting with a tiny knowledge base of 4 expert-annotated queries...")
    knowledge_base = KnowledgeBase()
    knowledge_base.add_many(entries_from_labeled(dataset.knowledge_base[:4], router, expert))

    explainer = RagExplainer(system, router, knowledge_base, SimulatedLLM(), top_k=2)
    loop = FeedbackLoop(explainer, panel=ExpertPanel(), expert=expert)

    labeler = WorkloadLabeler(system)
    batch = labeler.label_many(WorkloadGenerator(seed=77).generate(40))

    print("\nRunning expert-correction rounds over a 40-query batch:")
    for round_number, outcome in enumerate(loop.run(batch, rounds=3), start=1):
        print(
            f"  round {round_number}: accurate {outcome.accurate_rate:.0%}, "
            f"corrections added {outcome.corrections_added}, "
            f"KB size {outcome.knowledge_base_size}"
        )

    print("\nApplying curation policies to the grown knowledge base:")
    entries = knowledge_base.entries()
    representative = select_representative_queries(entries, budget=20)
    covered = {factor for entry in representative for factor in entry.factors}
    all_factors = {factor for entry in entries for factor in entry.factors}
    print(
        f"  k-center selection keeps 20 of {len(entries)} entries and covers "
        f"{len(covered)}/{len(all_factors)} explanation factors"
    )
    removed = expire_stale_entries(knowledge_base, max_entries=20)
    print(f"  stale expiry removed {len(removed)} entries; KB size is now {len(knowledge_base)}")

    final_accuracy = loop.run_round(batch).accurate_rate
    print(f"\nAccuracy with the curated 20-entry knowledge base: {final_accuracy:.0%}")


if __name__ == "__main__":
    main()
