#!/usr/bin/env python
"""Serving demo: the explanation pipeline behind a concurrent front-end.

Builds the paper's full setup (HTAP system, trained router, populated
knowledge base, simulated LLM), then wraps it in the new
:class:`~repro.service.server.ExplanationService` and demonstrates:

1. a 32-way concurrent burst over a repeating workload — zero errors,
2. the multi-level cache: warm requests orders of magnitude faster,
3. micro-batched router inference coalescing concurrent encodes,
4. cache invalidation on DDL (create_index) and on knowledge-base writes,
5. graceful load shedding when the in-flight budget is exhausted.

Run with:  python examples/serving_demo.py
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor

from repro.explainer import entries_from_labeled
from repro.htap import HTAPSystem
from repro.knowledge import KnowledgeBase
from repro.llm import SimulatedLLM
from repro.router import SmartRouter
from repro.service import ExplanationService
from repro.workloads import SimulatedExpert, build_paper_dataset


def main() -> None:
    print("Building the HTAP system, router, and knowledge base...")
    system = HTAPSystem(scale_factor=100)
    dataset = build_paper_dataset(
        system, knowledge_base_size=20, test_size=24, router_training_size=120
    )
    router = SmartRouter(system.catalog)
    router.fit(dataset.router_training, epochs=20)
    knowledge_base = KnowledgeBase()
    knowledge_base.add_many(entries_from_labeled(dataset.knowledge_base, router, SimulatedExpert()))

    service = ExplanationService(
        system,
        router,
        knowledge_base,
        SimulatedLLM(),
        max_workers=8,
        max_in_flight=128,
    )
    sqls = [labeled.sql for labeled in dataset.test]

    # ------------------------------------------------- 1. concurrent burst
    workload = [sqls[i % len(sqls)] for i in range(96)]
    print(f"\nServing {len(workload)} requests from 32 concurrent clients...")
    start = time.perf_counter()
    with ThreadPoolExecutor(max_workers=32) as pool:
        results = list(pool.map(service.explain, workload))
    elapsed = time.perf_counter() - start
    errors = sum(not result.ok for result in results)
    hits = sum(result.cache_hit for result in results)
    print(f"  {len(results)} served in {elapsed:.2f}s "
          f"({len(results) / elapsed:.0f} req/s), errors={errors}, cache hits={hits}")

    # ------------------------------------------------------- 2. warm cache
    cold_sql = sqls[0]
    start = time.perf_counter()
    warm = service.explain(cold_sql)
    warm_seconds = time.perf_counter() - start
    print(f"\nWarm repeat of a served query: cache_hit={warm.cache_hit}, "
          f"{warm_seconds * 1e6:.0f} us end-to-end")

    # --------------------------------------------------- 3. micro-batching
    batching = service.batcher.stats()
    print(f"\nMicro-batcher: {batching['requests']:.0f} encodes in "
          f"{batching['batches']:.0f} batches "
          f"(mean batch size {batching['mean_batch_size']:.2f}, "
          f"{batching['coalesced_requests']:.0f} forward passes saved)")

    # ------------------------------------------------ 4. cache invalidation
    print("\nDDL invalidation: CREATE INDEX ON customer(c_phone)...")
    service.create_index("customer", "c_phone")
    after_ddl = service.explain(cold_sql)
    print(f"  same query after DDL: cache_hit={after_ddl.cache_hit} "
          "(plans re-derived under the new index)")

    entry = knowledge_base.entries()[0]
    knowledge_base.correct(entry.entry_id, "Expert-corrected explanation text.")
    after_write = service.explain(cold_sql)
    print(f"  same query after a KB correction: cache_hit={after_write.cache_hit}, "
          f"plan_cache_hit={after_write.plan_cache_hit} "
          "(explanations evicted, plans kept)")

    # ----------------------------------------------------- 5. load shedding
    print("\nLoad shedding with a tiny in-flight budget:")
    with ExplanationService(
        system, router, knowledge_base, SimulatedLLM(), max_workers=1, max_in_flight=2
    ) as tiny:
        futures = [tiny.submit(sqls[i % len(sqls)]) for i in range(10)]
        outcomes = [future.result() for future in futures]
    shed = [outcome for outcome in outcomes if not outcome.ok]
    print(f"  burst of {len(outcomes)} -> {len(outcomes) - len(shed)} served, "
          f"{len(shed)} shed with typed {shed[0].error.code.value!r} rejections"
          if shed else "  nothing shed")

    # ------------------------------------------------------------ telemetry
    snapshot = service.metrics_snapshot()
    cold_latency = snapshot["latency.cold_seconds"]
    print("\nTelemetry snapshot:")
    print(f"  requests ok/submitted: {snapshot['requests.ok']}/{snapshot['requests.submitted']}")
    print(f"  cold latency p50/p95/p99: {cold_latency['p50'] * 1e3:.2f} / "
          f"{cold_latency['p95'] * 1e3:.2f} / {cold_latency['p99'] * 1e3:.2f} ms")
    print(f"  explanation cache: {snapshot['cache']['explanations']['hit_rate']:.0%} hit rate")
    print(f"  plan cache:        {snapshot['cache']['plans']['hit_rate']:.0%} hit rate")

    service.shutdown()
    print("\nDone.")


if __name__ == "__main__":
    main()
