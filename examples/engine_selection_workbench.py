#!/usr/bin/env python
"""Engine-selection workbench: which engine should each query run on, and why?

The paper's introduction motivates two user needs: choosing the right engine
for a query and understanding why that engine is faster.  This example plays
the role of a DBA triaging a mixed workload:

* generate a realistic mix of join, top-N, selective and aggregation queries,
* run each on both engines of the simulated HTAP system,
* let the smart router predict the faster engine and compare it with the
  measured outcome,
* for the queries with the largest performance gaps, print the RAG-grounded
  explanation a user would receive.

Run with:  python examples/engine_selection_workbench.py
"""

from __future__ import annotations

from collections import Counter, defaultdict

from repro.explainer import RagExplainer, entries_from_labeled
from repro.htap import HTAPSystem
from repro.knowledge import KnowledgeBase
from repro.llm import SimulatedLLM
from repro.router import SmartRouter
from repro.workloads import SimulatedExpert, WorkloadGenerator, WorkloadLabeler, build_paper_dataset


def main() -> None:
    system = HTAPSystem(scale_factor=100)
    dataset = build_paper_dataset(system, knowledge_base_size=20, test_size=0, router_training_size=160)
    router = SmartRouter(system.catalog)
    router.fit(dataset.router_training, epochs=20)
    knowledge_base = KnowledgeBase()
    knowledge_base.add_many(entries_from_labeled(dataset.knowledge_base, router, SimulatedExpert()))
    explainer = RagExplainer(system, router, knowledge_base, SimulatedLLM(), top_k=2)

    print("Generating and executing a 60-query production-like workload...")
    labeler = WorkloadLabeler(system)
    workload = labeler.label_many(WorkloadGenerator(seed=404).generate(60))

    winners = Counter(labeled.faster_engine.value for labeled in workload)
    by_family: dict[str, Counter] = defaultdict(Counter)
    routing_correct = 0
    for labeled in workload:
        by_family[labeled.workload_query.family][labeled.faster_engine.value] += 1
        decision = router.route(labeled.execution.plan_pair)
        if decision.engine is labeled.faster_engine:
            routing_correct += 1

    print(f"\nMeasured winners over {len(workload)} queries: {dict(winners)}")
    print("Per query family:")
    for family, counts in sorted(by_family.items()):
        print(f"  {family:<12s} {dict(counts)}")
    print(f"Smart-router agreement with measured winner: {routing_correct / len(workload):.0%}")

    print("\nLargest performance gaps and their explanations:")
    extremes = sorted(workload, key=lambda labeled: -labeled.execution.speedup)[:3]
    for labeled in extremes:
        execution = labeled.execution
        print("\n" + "=" * 78)
        print("SQL:", labeled.sql[:110], "...")
        print(
            f"TP {execution.tp_result.latency_seconds:.3f}s vs "
            f"AP {execution.ap_result.latency_seconds:.3f}s "
            f"-> {execution.faster_engine.value} wins by {execution.speedup:.0f}x"
        )
        explanation = explainer.explain_execution(execution)
        print("Explanation:", explanation.text)


if __name__ == "__main__":
    main()
