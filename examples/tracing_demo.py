#!/usr/bin/env python
"""Tracing demo: watch a request cross every pipeline stage.

Builds the paper's full setup (HTAP system, trained router, populated
knowledge base, simulated LLM), turns on the :mod:`repro.obs` tracer, and
demonstrates:

1. a traced cold request — the nested span tree shows all six stages
   (``htap.parse/optimize/execute``, ``pipeline.encode/retrieve/generate``)
   plus the micro-batcher hop (``router.embed_batch`` re-parented under
   the submitting request's ``pipeline.encode`` span),
2. a warm repeat — a two-span trace tagged ``cache=l1_hit``,
3. slow-trace exemplar retention in the bounded ``TraceStore``,
4. the pooled per-stage latency breakdown across all traced requests,
5. Prometheus-style text exposition merging service metrics with the
   tracer's own per-stage histograms,
6. the JSON-lines trace log consumed by the ``repro-trace`` CLI,
7. the embedded admin HTTP server: a service started with
   ``admin_port=0`` scraping its own ``/metrics``, ``/healthz``, and
   ``/slo`` endpoints over HTTP.

Run with:  python examples/tracing_demo.py
"""

from __future__ import annotations

import json
import tempfile
import urllib.request
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

from repro.explainer import entries_from_labeled
from repro.htap import HTAPSystem
from repro.knowledge import KnowledgeBase
from repro.llm import SimulatedLLM
from repro.obs import (
    Sampler,
    TraceLogWriter,
    merged_exposition,
    stage_durations,
    traced,
)
from repro.obs.cli import breakdown_rows, render_trace_tree
from repro.router import SmartRouter
from repro.service import ExplanationService
from repro.workloads import SimulatedExpert, build_paper_dataset


def main() -> None:
    print("Building the HTAP system, router, and knowledge base...")
    system = HTAPSystem(scale_factor=100)
    dataset = build_paper_dataset(
        system, knowledge_base_size=20, test_size=12, router_training_size=120
    )
    router = SmartRouter(system.catalog)
    router.fit(dataset.router_training, epochs=20)
    knowledge_base = KnowledgeBase()
    knowledge_base.add_many(entries_from_labeled(dataset.knowledge_base, router, SimulatedExpert()))

    log_path = Path(tempfile.mkdtemp(prefix="repro-obs-")) / "traces.jsonl"
    sqls = [labeled.sql for labeled in dataset.test]

    with traced(writer=TraceLogWriter(log_path)) as tracer:
        with ExplanationService(
            system, router, knowledge_base, SimulatedLLM(), max_workers=4
        ) as service:
            # ------------------------------------------- 1. one cold request
            print("\nTracing one cold request...")
            assert service.explain(sqls[0]).ok
            cold = tracer.store.recent(1)[0]
            print(render_trace_tree(cold.to_dict()))

            # ------------------------------------------------ 2. warm repeat
            warm_result = service.explain(sqls[0])
            assert warm_result.ok and warm_result.cache_hit
            warm = tracer.store.recent(1)[0]
            print("Warm repeat of the same query:")
            print(render_trace_tree(warm.to_dict()))

            # ------------------------------- 3. a concurrent traced workload
            print(f"Serving {len(sqls)} more requests from 4 concurrent clients...")
            with ThreadPoolExecutor(max_workers=4) as pool:
                results = list(pool.map(service.explain, sqls))
            assert all(result.ok for result in results)

        store_stats = tracer.store.stats()
        slowest = tracer.store.slowest(3)
        print(f"\nTrace store: {store_stats['added']} traces added, "
              f"{store_stats['slow_retained']} slow exemplars retained, "
              f"{store_stats['recent_retained']} in the recent ring")
        print("Slowest traces:")
        for trace in slowest:
            print(f"  {trace.trace_id}  {trace.duration_seconds * 1e3:8.3f} ms  "
                  f"{len(trace.spans)} spans")

        # --------------------------------------- 4. per-stage breakdown
        pooled = stage_durations(tracer.store.traces())
        print("\nPer-stage latency (pooled over all traced requests):")
        for row in breakdown_rows([t.to_dict() for t in tracer.store.traces()]):
            print(f"  {row['stage']:<24} n={row['count']:<4} "
                  f"p50={row['p50 ms']:8.3f} ms  p95={row['p95 ms']:8.3f} ms  "
                  f"share={row['share']}")
        assert "pipeline.generate" in pooled

        # ------------------------------------ 5. Prometheus exposition
        exposition = merged_exposition(service.metrics_snapshot(), tracer.stage_snapshot())
        stage_lines = [line for line in exposition.splitlines()
                       if line.startswith("repro_stage_") and "quantile" not in line]
        print(f"\nPrometheus exposition: {len(exposition.splitlines())} lines; "
              "per-stage series include:")
        for line in stage_lines[:6]:
            print(f"  {line}")

    # ------------------------------------------------ 6. repro-trace CLI
    print(f"\nJSON-lines trace log written to {log_path}")
    print("Inspect it with:  repro-trace show "
          f"{log_path} --slowest   (or: repro-trace breakdown {log_path})")

    # ------------------------------------------- 7. embedded admin server
    print("\nStarting a service with an embedded admin server (admin_port=0)...")
    with traced(sampler=Sampler(head_probability=1.0, slow_threshold_seconds=0.05)):
        with ExplanationService(
            system, router, knowledge_base, SimulatedLLM(),
            max_workers=4, admin_port=0,
        ) as service:
            for sql in sqls[:4]:
                assert service.explain(sql).ok
            base = service.admin.url
            print(f"Admin endpoints live at {base}")

            with urllib.request.urlopen(base + "/metrics", timeout=5) as response:
                metrics = response.read().decode()
            interesting = [line for line in metrics.splitlines()
                           if line.startswith(("repro_sampler_", "repro_slo_",
                                               "repro_store_traces_"))]
            print(f"Self-scrape of /metrics ({len(metrics.splitlines())} lines):")
            for line in interesting[:8]:
                print(f"  {line}")

            with urllib.request.urlopen(base + "/healthz", timeout=5) as response:
                health = json.loads(response.read())
            print(f"/healthz: ok={health['ok']} "
                  f"({', '.join(check['name'] for check in health['checks'])})")

            with urllib.request.urlopen(base + "/slo", timeout=5) as response:
                slo = json.loads(response.read())
            for objective in slo["objectives"]:
                burn = max(window["burn_rate"] for window in objective["windows"].values())
                print(f"/slo: {objective['name']:<16} met={objective['met']} "
                      f"worst burn rate={burn:.3f}")
    print("\nDone.")


if __name__ == "__main__":
    main()
