"""Setup shim for environments without the `wheel` package.

All project metadata lives in ``setup.cfg``; this file only enables the
legacy ``pip install -e .`` code path (setup.py develop), which does not need
``bdist_wheel``.
"""

from setuptools import setup

setup()
